#include "testing/fault_injection.hpp"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>

#include "tensor/coo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace aoadmm::testing {
namespace {

/// All mutable injection state behind one mutex. Hooks sit at serial driver
/// points, so the lock is uncontended; it exists so that concurrent solver
/// sessions in tests cannot race the RNG.
struct FaultState {
  std::mutex mu;
  FaultConfig config;
  FaultCounts counts;
  Rng rng{1};
};

FaultState& state() {
  static FaultState s;
  return s;
}

/// Fast-path gate: a single relaxed load when nothing is armed.
std::atomic<bool>& armed_flag() {
  static std::atomic<bool> armed{false};
  return armed;
}

/// Decide whether the site fires this visit. Caller holds the lock.
bool roll(FaultState& s, FaultSite site) {
  const std::size_t i = static_cast<std::size_t>(site);
  ++s.counts.visits[i];
  const FaultSpec& spec = s.config.site[i];
  if (!(spec.rate > 0) || s.counts.fires[i] >= spec.max_fires) {
    return false;
  }
  if (s.rng.uniform(0.0, 1.0) >= spec.rate) {
    return false;
  }
  ++s.counts.fires[i];
  return true;
}

}  // namespace

void arm_faults(const FaultConfig& cfg) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.config = cfg;
  s.counts = FaultCounts{};
  s.rng = Rng(cfg.seed);
  armed_flag().store(cfg.any(), std::memory_order_release);
}

void disarm_faults() {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.config = FaultConfig{};
  s.counts = FaultCounts{};
  armed_flag().store(false, std::memory_order_release);
}

FaultSpec parse_fault_spec(const char* text, const char* what) {
  const auto fail = [&](const char* why) {
    throw InvalidArgument(std::string(what) + ": " + why + " (got \"" +
                          text + "\"; expected \"rate\" or "
                          "\"rate:max_fires\", e.g. \"0.5:2\")");
  };
  const char* colon = std::strchr(text, ':');
  const std::string rate_part(text, colon ? colon - text : std::strlen(text));

  errno = 0;
  char* end = nullptr;
  const double rate = std::strtod(rate_part.c_str(), &end);
  if (end == rate_part.c_str() || *end != '\0' || errno == ERANGE) {
    fail("rate is not a number");
  }
  if (!std::isfinite(rate) || rate < 0 || rate > 1) {
    fail("rate must lie in [0, 1]");
  }

  FaultSpec spec;
  spec.rate = rate;
  if (colon) {
    const char* mstart = colon + 1;
    const char* mend = mstart + std::strlen(mstart);
    std::uint64_t max_fires = 0;
    const auto [p, ec] = std::from_chars(mstart, mend, max_fires);
    if (ec != std::errc{} || p != mend) {
      fail("max_fires is not a non-negative integer");
    }
    spec.max_fires = max_fires;
  }
  return spec;
}

bool arm_faults_from_env() {
  FaultConfig cfg;
  if (const char* seed = std::getenv("AOADMM_FAULT_SEED")) {
    const char* end = seed + std::strlen(seed);
    std::uint64_t value = 0;
    const auto [p, ec] = std::from_chars(seed, end, value);
    if (ec != std::errc{} || p != end) {
      throw InvalidArgument(std::string("AOADMM_FAULT_SEED: not a "
                                        "non-negative integer (got \"") +
                            seed + "\")");
    }
    cfg.seed = value;
  }
  struct {
    const char* var;
    FaultSite site;
  } const vars[] = {
      {"AOADMM_FAULT_GRAM_NONPD", FaultSite::kGramNonPd},
      {"AOADMM_FAULT_MTTKRP_NAN", FaultSite::kMttkrpNaN},
      {"AOADMM_FAULT_CHECKPOINT_WRITE", FaultSite::kCheckpointWrite},
      {"AOADMM_FAULT_WAL_WRITE", FaultSite::kWalWrite},
      {"AOADMM_FAULT_INGEST_CORRUPT", FaultSite::kIngestCorrupt},
      {"AOADMM_FAULT_REFRESH_THROW", FaultSite::kRefreshThrow},
      {"AOADMM_FAULT_REFRESH_HANG", FaultSite::kRefreshHang},
      {"AOADMM_FAULT_TELEMETRY_WRITE", FaultSite::kTelemetryWrite},
  };
  for (const auto& v : vars) {
    const char* text = std::getenv(v.var);
    if (text != nullptr && *text != '\0') {
      cfg.at(v.site) = parse_fault_spec(text, v.var);
    }
  }
  if (!cfg.any()) {
    return false;
  }
  arm_faults(cfg);
  return true;
}

FaultCounts fault_counts() {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.counts;
}

bool maybe_corrupt_gram(Matrix& g) {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!roll(s, FaultSite::kGramNonPd)) {
    return false;
  }
  // A negative leading entry of magnitude > 10·tr/F defeats the ρ = tr(G)/F
  // ridge the ADMM system adds, so the unguarded Cholesky must reject it.
  const std::size_t f = g.rows();
  real_t trace = 0;
  for (std::size_t i = 0; i < f; ++i) {
    trace += g(i, i);
  }
  const real_t scale = std::abs(trace) / static_cast<real_t>(f > 0 ? f : 1);
  g(0, 0) = -(real_t{10} * scale + real_t{1});
  return true;
}

bool maybe_inject_nan(Matrix& k) {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!roll(s, FaultSite::kMttkrpNaN) || k.empty()) {
    return false;
  }
  const real_t nan = std::numeric_limits<real_t>::quiet_NaN();
  const span<real_t> flat = k.flat();
  flat[0] = nan;
  flat[flat.size() / 2] = nan;
  flat[flat.size() - 1] = nan;
  return true;
}

bool maybe_fail_checkpoint_write() {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return roll(s, FaultSite::kCheckpointWrite);
}

bool maybe_fail_wal_write() {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return roll(s, FaultSite::kWalWrite);
}

bool maybe_corrupt_ingest(CooTensor& batch) {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!roll(s, FaultSite::kIngestCorrupt) || batch.nnz() == 0) {
    return false;
  }
  batch.value(0) = std::numeric_limits<real_t>::quiet_NaN();
  return true;
}

bool maybe_throw_refresh() {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return roll(s, FaultSite::kRefreshThrow);
}

bool maybe_hang_refresh() {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return roll(s, FaultSite::kRefreshHang);
}

bool maybe_fail_telemetry_write() {
  if (!armed_flag().load(std::memory_order_acquire)) {
    return false;
  }
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return roll(s, FaultSite::kTelemetryWrite);
}

}  // namespace aoadmm::testing
