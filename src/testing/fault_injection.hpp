// Seeded, deterministic fault injection for exercising the numerical guard
// rails (core/robustness.hpp) without hand-crafting pathological tensors.
//
// Faults are armed either programmatically (arm_faults, used by the test
// suites) or from the environment (arm_faults_from_env, used to fault a
// stock binary such as tensor_tool without recompiling):
//
//   AOADMM_FAULT_SEED=42                 # RNG seed (default 1)
//   AOADMM_FAULT_GRAM_NONPD=0.5:1        # rate[:max_fires]
//   AOADMM_FAULT_MTTKRP_NAN=0.25:2
//   AOADMM_FAULT_CHECKPOINT_WRITE=1.0:1
//   AOADMM_FAULT_WAL_WRITE=1.0:1         # streaming WAL append failure
//   AOADMM_FAULT_INGEST_CORRUPT=0.5:1    # poison a batch value with NaN
//   AOADMM_FAULT_REFRESH_THROW=1.0:3     # refresh() throws NumericalError
//   AOADMM_FAULT_REFRESH_HANG=1.0:1      # refresh() stalls until deadline
//   AOADMM_FAULT_TELEMETRY_WRITE=1.0:2   # journal/file-writer write failure
//
// Each hook sits at a *serial* driver point (once per mode per outer
// iteration, or per checkpoint write / WAL append / batch ingest /
// refresh), so a fixed seed yields the same firing sequence on every run
// regardless of thread count. When nothing is armed — the default — every
// hook is a single relaxed atomic load.
#pragma once

#include <cstdint>

#include "la/matrix.hpp"

namespace aoadmm {
class CooTensor;
}

namespace aoadmm::testing {

/// Where a fault can be injected.
enum class FaultSite {
  kGramNonPd = 0,        ///< make a Gram product indefinite (g(0,0) < 0)
  kMttkrpNaN = 1,        ///< poison an MTTKRP output with NaNs
  kCheckpointWrite = 2,  ///< force a checkpoint write failure (short write)
  kWalWrite = 3,         ///< force a streaming WAL append to fail
  kIngestCorrupt = 4,    ///< poison an ingest batch with a NaN value
  kRefreshThrow = 5,     ///< make StreamingSolver::refresh throw
  kRefreshHang = 6,      ///< stall a refresh until its deadline (or a cap)
  kTelemetryWrite = 7    ///< fail an event-journal / telemetry-file write
};
inline constexpr std::size_t kFaultSiteCount = 8;

/// Per-site firing policy: each visit fires with probability `rate`
/// (deterministically, from the shared seeded RNG), at most `max_fires`
/// times overall. rate = 0 disarms the site.
struct FaultSpec {
  double rate = 0;
  std::uint64_t max_fires = ~std::uint64_t{0};
};

struct FaultConfig {
  std::uint64_t seed = 1;
  FaultSpec site[kFaultSiteCount];

  FaultSpec& at(FaultSite s) noexcept {
    return site[static_cast<std::size_t>(s)];
  }
  const FaultSpec& at(FaultSite s) const noexcept {
    return site[static_cast<std::size_t>(s)];
  }
  bool any() const noexcept {
    for (const FaultSpec& f : site) {
      if (f.rate > 0) {
        return true;
      }
    }
    return false;
  }
};

/// How often each site was consulted and how often it fired.
struct FaultCounts {
  std::uint64_t visits[kFaultSiteCount] = {};
  std::uint64_t fires[kFaultSiteCount] = {};

  std::uint64_t visits_at(FaultSite s) const noexcept {
    return visits[static_cast<std::size_t>(s)];
  }
  std::uint64_t fires_at(FaultSite s) const noexcept {
    return fires[static_cast<std::size_t>(s)];
  }
};

/// Arm the given faults, resetting the RNG to cfg.seed and all counters to
/// zero. Replaces any previous configuration.
void arm_faults(const FaultConfig& cfg);

/// Disarm everything and clear counters; hooks become no-ops again.
void disarm_faults();

/// Read AOADMM_FAULT_* (see file header) and arm accordingly. Returns true
/// when at least one site was armed. Unset/empty variables leave their site
/// disarmed; malformed values throw InvalidArgument naming the variable.
bool arm_faults_from_env();

/// Parse a "rate" or "rate:max_fires" spec (exposed for tests). Throws
/// InvalidArgument mentioning `what` on malformed input.
FaultSpec parse_fault_spec(const char* text, const char* what);

/// Snapshot of the per-site visit/fire counters.
FaultCounts fault_counts();

// --- Hooks, called from the solver/checkpoint code -----------------------

/// Maybe make `g` indefinite: g(0,0) ← −(10·|tr G|/F + 1), which no
/// tr(G)/F-sized ridge can mask, guaranteeing the plain Cholesky rejects it.
/// Returns true when the fault fired.
bool maybe_corrupt_gram(Matrix& g);

/// Maybe poison `k` with a few NaNs (first entry plus two interior ones).
/// Returns true when the fault fired.
bool maybe_inject_nan(Matrix& k);

/// Maybe report that the current checkpoint write must fail; the writer
/// turns this into a stream error mid-payload (a short write). Returns true
/// when the fault fired.
bool maybe_fail_checkpoint_write();

/// Maybe report that the current WAL append must fail; the log turns this
/// into a write error before any bytes land. Returns true when fired.
bool maybe_fail_wal_write();

/// Maybe poison `batch` with a quiet NaN in its first value — the shape of
/// corruption ingest validation must quarantine. No-op on an empty batch.
/// Returns true when the fault fired.
bool maybe_corrupt_ingest(CooTensor& batch);

/// Maybe report that the current refresh must fail; the streaming solver
/// turns this into a NumericalError before the solve starts. Returns true
/// when the fault fired.
bool maybe_throw_refresh();

/// Maybe report that the current refresh must hang; the streaming solver
/// stalls (checking its CancelToken) until the deadline fires or a safety
/// cap elapses. Returns true when the fault fired.
bool maybe_hang_refresh();

/// Maybe report that the current telemetry write (event-journal line or
/// telemetry-file rewrite) must fail; the sink counts it and keeps running.
/// Returns true when the fault fired.
bool maybe_fail_telemetry_write();

}  // namespace aoadmm::testing
