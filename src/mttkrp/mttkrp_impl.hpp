// Shared CSF-MTTKRP skeleton, templated on the leaf accumulation so the
// dense / CSR / hybrid variants reuse one traversal, and on the compile-time
// rank R (0 = runtime rank) so the rank loops become fixed-trip SIMD code
// (see microkernels.hpp). Internal header.
#pragma once

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "la/matrix.hpp"
#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "obs/parallel_stats.hpp"
#include "parallel/runtime.hpp"
#include "tensor/csf.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace aoadmm::detail {

/// Monotonic seconds for per-thread busy-time measurement.
inline double mttkrp_now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Element-wise atomic scatter of one rank-length row (the legacy kDynamic
/// reduction, shared by the CSF non-root and ALTO kernels).
inline void atomic_add_row(real_t* __restrict dst,
                           const real_t* __restrict src, std::size_t f) {
  for (std::size_t k = 0; k < f; ++k) {
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp atomic
#endif
    dst[k] += src[k];
  }
}

/// Pointer table shared across a team: per-thread private-accumulator base
/// addresses, registered inside the region and read by the reduction pass.
/// Inline storage for the common case so steady-state calls allocate
/// nothing (same pattern as obs::BusyTimes). Shared by the privatized /
/// owner-computes scatter paths of the CSF non-root, dimension-tree and
/// ALTO kernels.
class BufferTable {
 public:
  explicit BufferTable(int n) : n_(n) {
    if (n_ > kInline) {
      heap_.reset(new real_t*[static_cast<std::size_t>(n_)]());
      bufs_ = heap_.get();
    } else {
      std::fill(inline_bufs_, inline_bufs_ + kInline, nullptr);
    }
  }
  real_t** data() noexcept { return bufs_; }
  int size() const noexcept { return n_; }

 private:
  static constexpr int kInline = 64;
  real_t* inline_bufs_[kInline];
  std::unique_ptr<real_t*[]> heap_;
  real_t** bufs_ = inline_bufs_;
  int n_ = 0;
};

/// In-region driver for the loop over root nodes. With `bounds` (parts+1
/// nnz-weighted boundaries from CsfTensor::root_partition), each thread
/// strides over whole chunks — a static assignment that costs nothing per
/// call and absorbs power-law slice costs; chunks beyond the team size are
/// picked up round-robin, so correctness never depends on the planned and
/// actual team sizes agreeing. Without bounds, the legacy
/// schedule(dynamic, 16) worksharing loop runs (nowait: the enclosing
/// region's barrier, or an explicit one, orders any cross-thread reads).
/// Must be executed by every thread of the enclosing parallel region.
template <typename Body>
inline void mttkrp_root_loop(std::ptrdiff_t nroots,
                             const std::vector<std::size_t>* bounds, int tid,
                             int team, const Body& body) {
  if (bounds != nullptr) {
    const std::size_t parts = bounds->size() - 1;
    const auto stride = static_cast<std::size_t>(team > 0 ? team : 1);
    for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
         c += stride) {
      for (std::size_t r = (*bounds)[c]; r < (*bounds)[c + 1]; ++r) {
        body(static_cast<std::ptrdiff_t>(r));
      }
    }
    return;
  }
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16) nowait
#endif
  for (std::ptrdiff_t r = 0; r < nroots; ++r) {
    body(r);
  }
}

/// LeafOp contract: void op(index_t leaf_index, real_t value,
///                          real_t* __restrict z, std::size_t f)
/// accumulating  z += value * LeafFactorRow(leaf_index)  (length f).
template <int R, typename LeafOp>
void mttkrp_csf_skeleton(const CsfTensor& csf, cspan<const Matrix> factors,
                         std::size_t rank, const LeafOp& leaf_op,
                         Matrix& out, bool accumulate = false,
                         MttkrpSchedule schedule = MttkrpSchedule::kAuto) {
  using Ops = RowOps<R>;
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(factors.size() == order);
  const std::size_t f = rank;

  const index_t out_rows = csf.level_dim(0);
  if (out.rows() != out_rows || out.cols() != f) {
    out.resize(out_rows, f);  // resize zero-initializes
  } else if (!accumulate) {
    out.zero();
  }

  const auto root_fids = csf.fids(0);
  const auto nroots = static_cast<std::ptrdiff_t>(root_fids.size());

  // Dense factor rows for the internal levels 1..order-2, by CSF level.
  std::vector<const Matrix*> level_factor(order, nullptr);
  for (std::size_t l = 1; l + 1 < order; ++l) {
    level_factor[l] = &factors[csf.level_mode(l)];
    AOADMM_CHECK(level_factor[l]->cols() == f);
  }

  const MttkrpSchedule sched = resolve_root_schedule(schedule);
  const int planned = max_threads();
  const std::vector<std::size_t>* bounds =
      sched == MttkrpSchedule::kWeighted ? &csf.root_partition(
                                               static_cast<std::size_t>(planned))
                                         : nullptr;
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

  if (order == 3) {
    // Flat three-mode fast path (Algorithm 3) — the common case. Written
    // without recursion so the templated leaf_op inlines into tight loops,
    // keeping the CSR/hybrid kernels on equal footing with the dense one.
    const Matrix& b_mid = factors[csf.level_mode(1)];
    const auto mid_fids = csf.fids(1);
    const auto leaf_fids = csf.fids(2);
    const auto fptr0 = csf.fptr(0);
    const auto fptr1 = csf.fptr(1);
    const auto vals = csf.vals();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
    {
      real_t* __restrict z = mttkrp_thread_scratch(f);
      const int tid = thread_id();
      const double t0 = mttkrp_now();
      mttkrp_root_loop(
          nroots, bounds, tid, team_size(), [&](std::ptrdiff_t r) {
            const auto rr = static_cast<std::size_t>(r);
            real_t* __restrict krow =
                out.data() + static_cast<std::size_t>(root_fids[rr]) * f;
            for (offset_t jn = fptr0[rr]; jn < fptr0[rr + 1]; ++jn) {
              Ops::zero(z, f);
              for (offset_t c = fptr1[jn]; c < fptr1[jn + 1]; ++c) {
                leaf_op(leaf_fids[c], vals[c], z, f);
              }
              const real_t* __restrict brow =
                  b_mid.data() + static_cast<std::size_t>(mid_fids[jn]) * f;
              Ops::mul_add(krow, z, brow, f);
            }
          });
      busy.add(tid, mttkrp_now() - t0);
    }
    return;
  }

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    // One accumulation buffer per internal level (order-2 of them; none for
    // matrices). Thread-private and persistent across calls.
    real_t* const scratch_base =
        mttkrp_thread_scratch(order >= 2 ? (order - 1) * f : f);
    const int tid = thread_id();
    const double t0 = mttkrp_now();

    mttkrp_root_loop(
        nroots, bounds, tid, team_size(), [&](std::ptrdiff_t r) {
          const auto rr = static_cast<std::size_t>(r);
          real_t* __restrict out_row =
              out.data() + static_cast<std::size_t>(root_fids[rr]) * f;

          if (order == 2) {
            // Children of the root are leaves: accumulate directly.
            const auto leaf_fids = csf.fids(1);
            const auto vals = csf.vals();
            const auto fptr0 = csf.fptr(0);
            for (offset_t c = fptr0[rr]; c < fptr0[rr + 1]; ++c) {
              leaf_op(leaf_fids[c], vals[c], out_row, f);
            }
            return;
          }

          // General case: depth-first over the subtree; contributions bubble
          // upward through the per-level scratch buffers, each scaled by its
          // node's factor row on the way up.
          const auto fptr0 = csf.fptr(0);
          const auto leaf_fids = csf.fids(order - 1);
          const auto vals = csf.vals();

          // Iterate children of the root (level-1 nodes).
          for (offset_t n1 = fptr0[rr]; n1 < fptr0[rr + 1]; ++n1) {
            // Recursive contribution of the level-1 subtree into
            // scratch[0..f), via explicit recursion over levels.
            const auto subtree = [&](auto&& self, std::size_t level,
                                     offset_t node) -> void {
              real_t* __restrict z = scratch_base + (level - 1) * f;
              Ops::zero(z, f);
              if (level == order - 2) {
                const auto fptr = csf.fptr(level);
                for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
                  leaf_op(leaf_fids[c], vals[c], z, f);
                }
              } else {
                const auto fptr = csf.fptr(level);
                real_t* __restrict zc = scratch_base + level * f;
                for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
                  self(self, level + 1, c);
                  Ops::add(z, zc, f);
                }
              }
              // Scale by this node's own factor row.
              const Matrix& a = *level_factor[level];
              const real_t* __restrict row =
                  a.data() +
                  static_cast<std::size_t>(csf.fids(level)[node]) * f;
              Ops::mul_inplace(z, row, f);
            };
            subtree(subtree, 1, n1);
            Ops::add(out_row, scratch_base, f);
          }
        });
    busy.add(tid, mttkrp_now() - t0);
  }
}

}  // namespace aoadmm::detail
