// Shared CSF-MTTKRP skeleton, templated on the leaf accumulation so the
// dense / CSR / hybrid variants reuse one traversal. Internal header.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "tensor/csf.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace aoadmm::detail {

/// LeafOp contract: void op(index_t leaf_index, real_t value,
///                          real_t* __restrict z, std::size_t f)
/// accumulating  z += value * LeafFactorRow(leaf_index)  (length f).
template <typename LeafOp>
void mttkrp_csf_skeleton(const CsfTensor& csf, cspan<const Matrix> factors,
                         std::size_t rank, const LeafOp& leaf_op,
                         Matrix& out, bool accumulate = false) {
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(factors.size() == order);
  const std::size_t f = rank;

  const index_t out_rows = csf.level_dim(0);
  if (out.rows() != out_rows || out.cols() != f) {
    out.resize(out_rows, f);  // resize zero-initializes
  } else if (!accumulate) {
    out.zero();
  }

  const auto root_fids = csf.fids(0);
  const auto nroots = static_cast<std::ptrdiff_t>(root_fids.size());

  // Dense factor rows for the internal levels 1..order-2, by CSF level.
  std::vector<const Matrix*> level_factor(order, nullptr);
  for (std::size_t l = 1; l + 1 < order; ++l) {
    level_factor[l] = &factors[csf.level_mode(l)];
    AOADMM_CHECK(level_factor[l]->cols() == f);
  }

  if (order == 3) {
    // Flat three-mode fast path (Algorithm 3) — the common case. Written
    // without recursion so the templated leaf_op inlines into tight loops,
    // keeping the CSR/hybrid kernels on equal footing with the dense one.
    const Matrix& b_mid = *&factors[csf.level_mode(1)];
    const auto mid_fids = csf.fids(1);
    const auto leaf_fids = csf.fids(2);
    const auto fptr0 = csf.fptr(0);
    const auto fptr1 = csf.fptr(1);
    const auto vals = csf.vals();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
    {
      real_t* __restrict z = mttkrp_thread_scratch(f);
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16)
#endif
      for (std::ptrdiff_t r = 0; r < nroots; ++r) {
        const auto rr = static_cast<std::size_t>(r);
        real_t* __restrict krow =
            out.data() + static_cast<std::size_t>(root_fids[rr]) * f;
        for (offset_t jn = fptr0[rr]; jn < fptr0[rr + 1]; ++jn) {
          for (std::size_t k = 0; k < f; ++k) {
            z[k] = 0;
          }
          for (offset_t c = fptr1[jn]; c < fptr1[jn + 1]; ++c) {
            leaf_op(leaf_fids[c], vals[c], z, f);
          }
          const real_t* __restrict brow =
              b_mid.data() + static_cast<std::size_t>(mid_fids[jn]) * f;
          for (std::size_t k = 0; k < f; ++k) {
            krow[k] += z[k] * brow[k];
          }
        }
      }
    }
    return;
  }

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    // One accumulation buffer per internal level (order-2 of them; none for
    // matrices). Thread-private and persistent across calls.
    real_t* const scratch_base =
        mttkrp_thread_scratch(order >= 2 ? (order - 1) * f : f);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16)
#endif
    for (std::ptrdiff_t r = 0; r < nroots; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      real_t* __restrict out_row = out.data() +
          static_cast<std::size_t>(root_fids[rr]) * f;

      if (order == 2) {
        // Children of the root are leaves: accumulate directly.
        const auto leaf_fids = csf.fids(1);
        const auto vals = csf.vals();
        const auto fptr0 = csf.fptr(0);
        for (offset_t c = fptr0[rr]; c < fptr0[rr + 1]; ++c) {
          leaf_op(leaf_fids[c], vals[c], out_row, f);
        }
        continue;
      }

      // General case: depth-first over the subtree; contributions bubble
      // upward through the per-level scratch buffers, each scaled by its
      // node's factor row on the way up.
      const auto fptr0 = csf.fptr(0);
      const auto leaf_fids = csf.fids(order - 1);
      const auto vals = csf.vals();

      // Iterate children of the root (level-1 nodes).
      for (offset_t n1 = fptr0[rr]; n1 < fptr0[rr + 1]; ++n1) {
        // Recursive contribution of the level-1 subtree into scratch[0..f).
        // Implemented with explicit recursion over levels via lambda.
        const auto subtree = [&](auto&& self, std::size_t level,
                                 offset_t node) -> void {
          real_t* __restrict z = scratch_base + (level - 1) * f;
          for (std::size_t k = 0; k < f; ++k) {
            z[k] = 0;
          }
          if (level == order - 2) {
            const auto fptr = csf.fptr(level);
            for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
              leaf_op(leaf_fids[c], vals[c], z, f);
            }
          } else {
            const auto fptr = csf.fptr(level);
            real_t* __restrict zc = scratch_base + level * f;
            for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
              self(self, level + 1, c);
              for (std::size_t k = 0; k < f; ++k) {
                z[k] += zc[k];
              }
            }
          }
          // Scale by this node's own factor row.
          const Matrix& a = *level_factor[level];
          const real_t* __restrict row =
              a.data() + static_cast<std::size_t>(csf.fids(level)[node]) * f;
          for (std::size_t k = 0; k < f; ++k) {
            z[k] *= row[k];
          }
        };
        subtree(subtree, 1, n1);
        const real_t* __restrict z1 = scratch_base;
        for (std::size_t k = 0; k < f; ++k) {
          out_row[k] += z1[k];
        }
      }
    }
  }
}

}  // namespace aoadmm::detail
