// Internal helper: one-line observability for MTTKRP kernel entry points.
//
//   void mttkrp_csf_csr(...) {
//     AOADMM_MTTKRP_OBS("csf_csr");
//     ...
//   }
//
// registers (once) and maintains a per-kernel call counter
// `mttkrp/<kernel>/calls`, a per-kernel latency histogram
// `mttkrp/<kernel>/seconds`, the shared `mttkrp/seconds` histogram, and —
// in profiling builds — a `mttkrp/<kernel>` span.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace aoadmm {
namespace detail {

struct MttkrpKernelMetrics {
  obs::Counter calls;
  obs::Histogram seconds;
  /// Shared across all kernels: total MTTKRP latency distribution.
  obs::Histogram all_seconds;

  static MttkrpKernelMetrics make(const std::string& kernel) {
    auto& reg = obs::MetricsRegistry::global();
    MttkrpKernelMetrics m;
    m.calls = reg.counter("mttkrp/" + kernel + "/calls");
    m.seconds = reg.histogram("mttkrp/" + kernel + "/seconds");
    m.all_seconds = reg.histogram("mttkrp/seconds");
    return m;
  }
};

/// RAII: on destruction, bumps the kernel's call counter and records the
/// call's wall time into both the per-kernel and the shared histogram.
class MttkrpCallObs {
 public:
  explicit MttkrpCallObs(const MttkrpKernelMetrics& m) noexcept
      : m_(m), t0_(std::chrono::steady_clock::now()) {}
  ~MttkrpCallObs() {
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    m_.calls.add(1);
    m_.seconds.observe(s);
    m_.all_seconds.observe(s);
  }
  MttkrpCallObs(const MttkrpCallObs&) = delete;
  MttkrpCallObs& operator=(const MttkrpCallObs&) = delete;

 private:
  const MttkrpKernelMetrics& m_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace detail
}  // namespace aoadmm

/// Instruments the enclosing function as MTTKRP kernel `kernel` (a string
/// literal). Registration happens once per call site (magic static).
#define AOADMM_MTTKRP_OBS(kernel)                                         \
  static const ::aoadmm::detail::MttkrpKernelMetrics                      \
      aoadmm_mttkrp_metrics_ =                                            \
          ::aoadmm::detail::MttkrpKernelMetrics::make(kernel);            \
  const ::aoadmm::detail::MttkrpCallObs aoadmm_mttkrp_obs_(              \
      aoadmm_mttkrp_metrics_);                                            \
  AOADMM_PROFILE_SCOPE("mttkrp/" kernel)
