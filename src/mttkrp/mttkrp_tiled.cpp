// Leaf-mode cache tiling (SPLATT-style cache blocking). The root kernel's
// leaf accesses are random across the whole leaf factor; when that factor
// exceeds the cache, every non-zero pays a memory round-trip. Bucketing
// the non-zeros by leaf index range turns one pass over an out-of-cache
// factor into num_tiles passes over cache-resident slabs.
#include <vector>

#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "tensor/transform.hpp"
#include "util/error.hpp"

namespace aoadmm {

TiledCsf::TiledCsf(const CooTensor& coo, std::size_t root,
                   index_t tile_rows)
    : root_(root), tile_rows_(tile_rows) {
  AOADMM_CHECK(root < coo.order());
  AOADMM_CHECK_MSG(coo.order() >= 2, "tiling requires order >= 2");

  // Identify the leaf mode exactly as build_for_mode will place it (root
  // first, remaining modes by increasing length): the leaf is the longest
  // non-root mode.
  std::size_t leaf = root == 0 ? 1 : 0;
  for (std::size_t m = 0; m < coo.order(); ++m) {
    if (m != root && coo.dim(m) >= coo.dim(leaf)) {
      leaf = m;
    }
  }

  if (tile_rows_ == 0 || tile_rows_ >= coo.dim(leaf)) {
    tile_rows_ = coo.dim(leaf);  // degenerate: a single tile
    tiles_.push_back(CsfTensor::build_for_mode(coo, root));
    return;
  }

  const std::size_t ntiles =
      (static_cast<std::size_t>(coo.dim(leaf)) + tile_rows_ - 1) /
      tile_rows_;
  for (std::size_t t = 0; t < ntiles; ++t) {
    const index_t lo = static_cast<index_t>(t) * tile_rows_;
    const index_t hi =
        static_cast<index_t>(std::min<std::size_t>(
            static_cast<std::size_t>(lo) + tile_rows_, coo.dim(leaf)));
    const CooTensor bucket = filter(
        coo, [leaf, lo, hi](cspan<index_t> c, real_t) {
          return c[leaf] >= lo && c[leaf] < hi;
        });
    if (bucket.nnz() > 0) {
      tiles_.push_back(CsfTensor::build_for_mode(bucket, root));
    }
  }
  AOADMM_CHECK_MSG(!tiles_.empty(), "tensor has no non-zeros");
}

offset_t TiledCsf::nnz() const noexcept {
  offset_t total = 0;
  for (const CsfTensor& t : tiles_) {
    total += t.nnz();
  }
  return total;
}

std::size_t TiledCsf::storage_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const CsfTensor& t : tiles_) {
    bytes += t.storage_bytes();
  }
  return bytes;
}

void mttkrp_tiled(const TiledCsf& tiled, cspan<const Matrix> factors,
                  Matrix& out) {
  AOADMM_MTTKRP_OBS("tiled");
  AOADMM_CHECK(tiled.num_tiles() > 0);
  const CsfTensor& first = tiled.tile(0);
  AOADMM_CHECK(factors.size() == first.order());
  const std::size_t f = factors[0].cols();
  const index_t out_rows = first.level_dim(0);
  if (out.rows() != out_rows || out.cols() != f) {
    out.resize(out_rows, f);
  } else {
    out.zero();
  }
  // Tiles run in sequence (each internally root-parallel); within a tile
  // the leaf accesses are confined to one slab of the leaf factor.
  for (std::size_t t = 0; t < tiled.num_tiles(); ++t) {
    mttkrp_csf(tiled.tile(t), factors, out, /*accumulate=*/true);
  }
}

}  // namespace aoadmm
