// Leaf-mode cache tiling (SPLATT-style cache blocking). The root kernel's
// leaf accesses are random across the whole leaf factor; when that factor
// exceeds the cache, every non-zero pays a memory round-trip. Bucketing
// the non-zeros by leaf index range turns one pass over an out-of-cache
// factor into num_tiles passes over cache-resident slabs.
//
// The three-mode driver runs every tile inside ONE parallel region: the
// output zeroing and the thread-team/scratch setup happen once instead of
// once per tile, with a barrier between tiles (tiles accumulate into the
// same output rows, so tile t+1 must not start while tile t is in flight).
// Per-tile wall times go to the "mttkrp/tiled/tile_seconds" histogram so
// tiling ablations can attribute cost tile by tile.
#include <algorithm>
#include <vector>

#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel_stats.hpp"
#include "parallel/runtime.hpp"
#include "tensor/transform.hpp"
#include "util/error.hpp"

namespace aoadmm {

TiledCsf::TiledCsf(const CooTensor& coo, std::size_t root,
                   index_t tile_rows)
    : root_(root), tile_rows_(tile_rows) {
  AOADMM_CHECK(root < coo.order());
  AOADMM_CHECK_MSG(coo.order() >= 2, "tiling requires order >= 2");

  // Identify the leaf mode exactly as build_for_mode will place it (root
  // first, remaining modes by increasing length): the leaf is the longest
  // non-root mode.
  std::size_t leaf = root == 0 ? 1 : 0;
  for (std::size_t m = 0; m < coo.order(); ++m) {
    if (m != root && coo.dim(m) >= coo.dim(leaf)) {
      leaf = m;
    }
  }

  if (tile_rows_ == 0 || tile_rows_ >= coo.dim(leaf)) {
    tile_rows_ = coo.dim(leaf);  // degenerate: a single tile
    tiles_.push_back(CsfTensor::build_for_mode(coo, root));
    return;
  }

  const std::size_t ntiles =
      (static_cast<std::size_t>(coo.dim(leaf)) + tile_rows_ - 1) /
      tile_rows_;
  for (std::size_t t = 0; t < ntiles; ++t) {
    const index_t lo = static_cast<index_t>(t) * tile_rows_;
    const index_t hi =
        static_cast<index_t>(std::min<std::size_t>(
            static_cast<std::size_t>(lo) + tile_rows_, coo.dim(leaf)));
    const CooTensor bucket = filter(
        coo, [leaf, lo, hi](cspan<index_t> c, real_t) {
          return c[leaf] >= lo && c[leaf] < hi;
        });
    if (bucket.nnz() > 0) {
      tiles_.push_back(CsfTensor::build_for_mode(bucket, root));
    }
  }
  AOADMM_CHECK_MSG(!tiles_.empty(), "tensor has no non-zeros");
}

offset_t TiledCsf::nnz() const noexcept {
  offset_t total = 0;
  for (const CsfTensor& t : tiles_) {
    total += t.nnz();
  }
  return total;
}

std::size_t TiledCsf::storage_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const CsfTensor& t : tiles_) {
    bytes += t.storage_bytes();
  }
  return bytes;
}

namespace {

struct TiledMetrics {
  obs::Counter tiles;
  obs::Histogram tile_seconds;

  static const TiledMetrics& get() {
    static const TiledMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      TiledMetrics out;
      out.tiles = reg.counter("mttkrp/tiled/tiles");
      out.tile_seconds = reg.histogram("mttkrp/tiled/tile_seconds");
      return out;
    }();
    return m;
  }
};

/// All tiles of an order-3 compilation, one parallel region, dense factors.
template <int R>
void tiled3_dense(const TiledCsf& tiled, cspan<const Matrix> factors,
                  std::size_t f, Matrix& out, MttkrpSchedule schedule) {
  using Ops = detail::RowOps<R>;
  const TiledMetrics& metrics = TiledMetrics::get();
  const std::size_t ntiles = tiled.num_tiles();
  const Matrix& leaf = factors[tiled.tile(0).level_mode(2)];
  const Matrix& mid = factors[tiled.tile(0).level_mode(1)];

  const MttkrpSchedule sched = detail::resolve_root_schedule(schedule);
  const int planned = std::max(max_threads(), 1);
  std::vector<const std::vector<std::size_t>*> tile_bounds(ntiles, nullptr);
  if (sched == MttkrpSchedule::kWeighted) {
    for (std::size_t ti = 0; ti < ntiles; ++ti) {
      tile_bounds[ti] = &tiled.tile(ti).root_partition(
          static_cast<std::size_t>(planned));
    }
  }
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    real_t* __restrict z = detail::mttkrp_thread_scratch(f);
    const int tid = thread_id();
    const int team = team_size();
    double tile_t0 = 0;

    for (std::size_t ti = 0; ti < ntiles; ++ti) {
      const CsfTensor& tile = tiled.tile(ti);
      const auto root_fids = tile.fids(0);
      const auto mid_fids = tile.fids(1);
      const auto leaf_fids = tile.fids(2);
      const auto fptr0 = tile.fptr(0);
      const auto fptr1 = tile.fptr(1);
      const auto vals = tile.vals();
      const auto nroots = static_cast<std::ptrdiff_t>(root_fids.size());

      if (tid == 0) {
        tile_t0 = detail::mttkrp_now();
      }
      const double t0 = detail::mttkrp_now();
      detail::mttkrp_root_loop(
          nroots, tile_bounds[ti], tid, team, [&](std::ptrdiff_t r) {
            const auto rr = static_cast<std::size_t>(r);
            real_t* __restrict krow =
                out.data() + static_cast<std::size_t>(root_fids[rr]) * f;
            for (offset_t jn = fptr0[rr]; jn < fptr0[rr + 1]; ++jn) {
              Ops::zero(z, f);
              for (offset_t c = fptr1[jn]; c < fptr1[jn + 1]; ++c) {
                const real_t* __restrict crow =
                    leaf.data() +
                    static_cast<std::size_t>(leaf_fids[c]) * f;
                Ops::axpy(z, vals[c], crow, f);
              }
              const real_t* __restrict brow =
                  mid.data() + static_cast<std::size_t>(mid_fids[jn]) * f;
              Ops::mul_add(krow, z, brow, f);
            }
          });
      busy.add(tid, detail::mttkrp_now() - t0);

      // Tiles share output rows: tile ti must fully land before ti+1.
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp barrier
#endif
      if (tid == 0) {
        metrics.tile_seconds.observe(detail::mttkrp_now() - tile_t0);
        metrics.tiles.add(1);
      }
    }
  }
}

}  // namespace

void mttkrp_tiled(const TiledCsf& tiled, cspan<const Matrix> factors,
                  Matrix& out, MttkrpSchedule schedule) {
  AOADMM_MTTKRP_OBS("tiled");
  AOADMM_CHECK(tiled.num_tiles() > 0);
  const CsfTensor& first = tiled.tile(0);
  AOADMM_CHECK(factors.size() == first.order());
  const std::size_t f = factors[0].cols();
  const index_t out_rows = first.level_dim(0);
  if (out.rows() != out_rows || out.cols() != f) {
    out.resize(out_rows, f);
  } else {
    out.zero();
  }

  if (first.order() == 3) {
    detail::rank_dispatch(f, [&](auto rc) {
      tiled3_dense<decltype(rc)::value>(tiled, factors, f, out, schedule);
    });
    return;
  }

  // Generic orders: tiles run in sequence, each internally root-parallel
  // through the shared skeleton (still per-tile timed).
  const TiledMetrics& metrics = TiledMetrics::get();
  for (std::size_t t = 0; t < tiled.num_tiles(); ++t) {
    const double t0 = detail::mttkrp_now();
    mttkrp_csf(tiled.tile(t), factors, out, /*accumulate=*/true, schedule);
    metrics.tile_seconds.observe(detail::mttkrp_now() - t0);
    metrics.tiles.add(1);
  }
}

}  // namespace aoadmm
