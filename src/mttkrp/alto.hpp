// MTTKRP over the ALTO linearized format (tensor/alto.hpp): one flat pass
// over the sorted bit-interleaved non-zero stream serves ANY target mode —
// per non-zero, every mode coordinate is decoded from the 64-bit code with
// a few shift/and ops and the contribution val · ∘_{n≠target} Aₙ(iₙ,:) is
// scattered into the target row. Work is partitioned by non-zero count
// (perfectly even by construction), which load-balances power-law tensors
// whose root-slice weights defeat CSF fiber splitting. Scatter reductions
// reuse the CSF non-root machinery: per-thread privatized copies
// (kWeighted), owner-computes slot buffers + fixup (kOwner), per-element
// atomics (kDynamic ablation baseline).
#pragma once

#include "la/matrix.hpp"
#include "mttkrp/mttkrp.hpp"
#include "tensor/alto.hpp"

namespace aoadmm {

/// K = X(m)·KRP over the linearized index. `factors` is indexed by original
/// mode id (same contract as the CSF kernels); `out` is resized to
/// (I_m, F) and overwritten. Bitwise deterministic for a fixed thread count
/// under kWeighted/kOwner.
void mttkrp_alto(const AltoTensor& alto, cspan<const Matrix> factors,
                 std::size_t target_mode, Matrix& out,
                 MttkrpSchedule schedule = MttkrpSchedule::kAuto);

namespace detail {

/// BMI2-specialized kernel body (mttkrp/alto_bmi2.cpp — compiled with
/// -mbmi2 on x86-64 so the single-instruction pext decode inlines into the
/// non-zero walk). True only when the running CPU reports BMI2; call
/// mttkrp_alto_bmi2 only then. `sched` must be resolved (never kAuto).
bool alto_bmi2_available() noexcept;
void mttkrp_alto_bmi2(const AltoTensor& alto, cspan<const Matrix> factors,
                      std::size_t target_mode, std::size_t f, Matrix& out,
                      MttkrpSchedule sched, int planned);

}  // namespace detail

}  // namespace aoadmm
