// MTTKRP — matricized tensor times Khatri-Rao product: K = X(m)·(⊙_{n≠m} Aₙ),
// the dominant kernel of AO-ADMM (Algorithm 2, paper Fig. 3).
//
// Kernels:
//  * mttkrp_csf        — CSF tensor, dense factors (Algorithm 3, any order).
//  * mttkrp_csf_csr    — leaf-level factor compressed to CSR (paper §IV.C).
//  * mttkrp_csf_hybrid — leaf factor in hybrid dense+CSR with prefetch.
//  * mttkrp_csf_nonroot— non-root target over a single tree (one-tree mode).
//  * mttkrp_tiled      — root kernel over a leaf-tiled compilation.
//  * mttkrp_coo        — serial COO reference used as the test oracle.
//
// The root-mode CSF kernels parallelize over root slices (race-free);
// `factors` is indexed by ORIGINAL mode id and all matrices must share the
// same rank F. Every parallel kernel takes an MttkrpSchedule policy
// controlling how work maps to threads (see below and docs/performance.md).
#pragma once

#include "la/matrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/hybrid.hpp"
#include "tensor/coo.hpp"
#include "tensor/csf.hpp"

namespace aoadmm {

/// Storage format used for the leaf-level factor during MTTKRP; the
/// coarse-grained knob the Table II experiment sweeps. kAuto implements the
/// paper's future-work item (§VI): pick per factor, per iteration, from the
/// measured sparsity pattern (see auto_select_leaf_format).
enum class LeafFormat {
  kDense,
  kCsr,
  kHybrid,
  kAuto,
};

const char* to_string(LeafFormat f) noexcept;

/// How MTTKRP work maps to threads.
///  * kDynamic  — the legacy policy: uniform schedule(dynamic, 16) loops;
///    non-root targets scatter with per-element atomics. Kept as an explicit
///    fallback/ablation baseline only.
///  * kWeighted — precomputed nnz-weighted static root chunks (cached on the
///    CsfTensor); non-root targets use a privatized reduction (per-thread
///    dense output copies + partitioned parallel reduction).
///  * kOwner    — weighted root chunks with owner-computes non-root scatter:
///    rows touched by one chunk are written directly, rows shared between
///    chunks go through compact per-thread slot buffers plus a fixup pass.
///    Root-mode targets behave like kWeighted (they are owner-computes by
///    construction).
///  * kAuto     — cost model: kWeighted while the per-thread output copy is
///    small, kOwner for large target modes. The default.
enum class MttkrpSchedule {
  kAuto,
  kDynamic,
  kWeighted,
  kOwner,
};

const char* to_string(MttkrpSchedule s) noexcept;

/// Which MTTKRP compilation/kernel family the CPD driver uses:
///  * kAllMode — one tree per mode, root kernel everywhere (needs an
///    ALLMODE CsfSet).
///  * kOneTree — a single tree; non-root modes go through
///    mttkrp_csf_nonroot (needs a ONEMODE CsfSet).
///  * kTiled   — leaf-tiled root kernel per mode (needs a tiled CsfSet).
///  * kDimTree — dimension-tree engine over a single tree: per-level
///    partial contractions are cached across the cyclic mode sweep and
///    invalidated per factor update (needs an untiled ONEMODE CsfSet of
///    order >= 3; see mttkrp/dimtree.hpp).
///  * kAlto    — bit-interleaved linearized kernel: one mode-agnostic
///    sorted non-zero stream serves every target mode (needs an untiled
///    ONEMODE CsfSet with alto_linearizable dims; see mttkrp/alto.hpp).
///  * kAuto    — data-driven choice from the compilation strategy, order,
///    density and mode-length skew (resolve_auto_kernel). The default.
enum class MttkrpKernel {
  kAuto,
  kAllMode,
  kOneTree,
  kTiled,
  kDimTree,
  kAlto,
};

const char* to_string(MttkrpKernel k) noexcept;

namespace detail {

/// Per-thread bytes below which the privatized (dense-copy) non-root
/// reduction beats owner-computes in the kAuto cost model: the copy costs a
/// zero + reduce sweep of out_rows*F doubles per thread per call, which is
/// noise while it fits comfortably in cache but dominates for long modes.
inline constexpr std::size_t kPrivatizeMaxBytes = std::size_t{8} << 20;

/// Resolve kAuto for a non-root target of `out_rows` rows at rank `rank`
/// with `nthreads` planned threads. Never returns kAuto.
MttkrpSchedule resolve_nonroot_schedule(MttkrpSchedule s, index_t out_rows,
                                        std::size_t rank,
                                        int nthreads) noexcept;

/// Resolve the policy for a root-mode (race-free) kernel: kAuto and kOwner
/// collapse to kWeighted; kDynamic stays dynamic. Never returns kAuto.
MttkrpSchedule resolve_root_schedule(MttkrpSchedule s) noexcept;

class DimTreeEngine;  // mttkrp/dimtree.hpp

}  // namespace detail

/// Ranks at or above this stay on kOneTree when kAuto would otherwise pick
/// kDimTree: the engine's per-level caches are O(nnz x rank) and past this
/// point their memory traffic outweighs the saved flops (measured on the
/// committed bench_mttkrp_kernels head-to-heads).
inline constexpr rank_t kDimTreeMaxRank = 64;

/// Data-driven kAuto kernel resolution (the selection heuristic behind the
/// CPD drivers; logged at AOADMM_LOG_LEVEL=debug). A non-kAuto `requested`
/// is returned unchanged. Otherwise: tiled sets take kTiled, ALLMODE sets
/// the per-mode root kernel, and ONEMODE sets pick between kOneTree,
/// kDimTree (order >= 4 and rank < kDimTreeMaxRank — the deeper the tree,
/// the more the cached partials amortize, while high ranks blow the cache
/// budget) and kAlto (order 3 with strong mode-length skew and low
/// density, where even nnz splitting beats fiber splitting). `dense_leaf`
/// must be false when a CSR/hybrid leaf mirror is in play — the cached-
/// partial kernels require all-dense factors. `rank` 0 means unknown
/// (treated as small).
MttkrpKernel resolve_auto_kernel(MttkrpKernel requested, CsfStrategy strategy,
                                 bool tiled, bool dense_leaf,
                                 std::size_t order, cspan<index_t> dims,
                                 offset_t nnz, rank_t rank = 0);

/// Heuristic structure selection from a factor's measured pattern
/// (paper §VI, "automatically select the best data structure"):
///  * density >= threshold            → kDense (compression can't pay)
///  * few dense columns concentrating
///    most non-zeros                  → kHybrid (panel computes the bulk,
///                                      prefetch hides the CSR tail)
///  * otherwise                       → kCsr
/// `rows`/`cols` and the per-column counts come from DensityStats.
LeafFormat auto_select_leaf_format(offset_t nnz, std::size_t rows,
                                   std::size_t cols,
                                   cspan<offset_t> column_nnz,
                                   real_t threshold);

/// K = X(m)·KRP with all-dense factors, m = csf.level_mode(0). `out` is
/// resized to (I_m, F) and overwritten (or accumulated into when
/// `accumulate` is set — used by the tiled driver below).
void mttkrp_csf(const CsfTensor& csf, cspan<const Matrix> factors,
                Matrix& out, bool accumulate = false,
                MttkrpSchedule schedule = MttkrpSchedule::kAuto);

/// Root-mode MTTKRP over a tiled compilation (see TiledCsf in tensor/csf.hpp):
/// tiles are processed in sequence inside ONE parallel region (order 3; the
/// generic path re-enters per tile), accumulating into `out`. Per-tile wall
/// times land in the "mttkrp/tiled/tile_seconds" histogram.
void mttkrp_tiled(const TiledCsf& tiled, cspan<const Matrix> factors,
                  Matrix& out,
                  MttkrpSchedule schedule = MttkrpSchedule::kAuto);

/// Leaf factor (original mode csf.level_mode(order-1)) read from `leaf`
/// instead of `factors`; the other factors stay dense (paper: only C — the
/// per-non-zero factor — is worth compressing).
void mttkrp_csf_csr(const CsfTensor& csf, cspan<const Matrix> factors,
                    const CsrMatrix& leaf, Matrix& out,
                    MttkrpSchedule schedule = MttkrpSchedule::kAuto);

void mttkrp_csf_hybrid(const CsfTensor& csf, cspan<const Matrix> factors,
                       const HybridMatrix& leaf, Matrix& out,
                       MttkrpSchedule schedule = MttkrpSchedule::kAuto);

/// MTTKRP for a mode that is NOT the CSF root — the memory-efficient
/// one-tree strategy. Works for any order and any internal/leaf target
/// level. The scatter into shared output rows is atomic-free under the
/// kWeighted (privatized reduction) and kOwner (owner-computes + fixup)
/// policies; the per-element-atomic legacy kernel survives only behind the
/// explicit kDynamic policy.
void mttkrp_csf_nonroot(const CsfTensor& csf, cspan<const Matrix> factors,
                        std::size_t target_mode, Matrix& out,
                        MttkrpSchedule schedule = MttkrpSchedule::kAuto);

/// Dispatch on the tree: root-mode targets take the race-free root kernel,
/// anything else the non-root reduction kernel.
void mttkrp_dispatch(const CsfTensor& csf, cspan<const Matrix> factors,
                     std::size_t target_mode, Matrix& out,
                     MttkrpSchedule schedule = MttkrpSchedule::kAuto);

/// Kernel-aware dispatch used by the solver loops. kDimTree routes through
/// `dimtree` (required non-null then; the engine owns the cached partials),
/// kAlto through the tree's lazily built linearized index
/// (CsfTensor::alto_index()), everything else through the tree-shape
/// dispatch above. kTiled cannot be dispatched from a single tree and
/// throws.
void mttkrp_dispatch(const CsfTensor& csf, cspan<const Matrix> factors,
                     std::size_t target_mode, Matrix& out,
                     MttkrpSchedule schedule, MttkrpKernel kernel,
                     detail::DimTreeEngine* dimtree = nullptr);

/// Serial reference implementation straight from the definition.
void mttkrp_coo(const CooTensor& coo, cspan<const Matrix> factors,
                std::size_t mode, Matrix& out);

}  // namespace aoadmm
