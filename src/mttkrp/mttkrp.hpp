// MTTKRP — matricized tensor times Khatri-Rao product: K = X(m)·(⊙_{n≠m} Aₙ),
// the dominant kernel of AO-ADMM (Algorithm 2, paper Fig. 3).
//
// Kernels:
//  * mttkrp_csf        — CSF tensor, dense factors (Algorithm 3, any order).
//  * mttkrp_csf_csr    — leaf-level factor compressed to CSR (paper §IV.C).
//  * mttkrp_csf_hybrid — leaf factor in hybrid dense+CSR with prefetch.
//  * mttkrp_coo        — serial COO reference used as the test oracle.
//
// All CSF kernels compute the MTTKRP for the CSF's ROOT mode and parallelize
// over root slices (race-free). `factors` is indexed by ORIGINAL mode id and
// all matrices must share the same rank F.
#pragma once

#include "la/matrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/hybrid.hpp"
#include "tensor/coo.hpp"
#include "tensor/csf.hpp"

namespace aoadmm {

/// Storage format used for the leaf-level factor during MTTKRP; the
/// coarse-grained knob the Table II experiment sweeps. kAuto implements the
/// paper's future-work item (§VI): pick per factor, per iteration, from the
/// measured sparsity pattern (see auto_select_leaf_format).
enum class LeafFormat {
  kDense,
  kCsr,
  kHybrid,
  kAuto,
};

const char* to_string(LeafFormat f) noexcept;

/// Heuristic structure selection from a factor's measured pattern
/// (paper §VI, "automatically select the best data structure"):
///  * density >= threshold            → kDense (compression can't pay)
///  * few dense columns concentrating
///    most non-zeros                  → kHybrid (panel computes the bulk,
///                                      prefetch hides the CSR tail)
///  * otherwise                       → kCsr
/// `rows`/`cols` and the per-column counts come from DensityStats.
LeafFormat auto_select_leaf_format(offset_t nnz, std::size_t rows,
                                   std::size_t cols,
                                   cspan<offset_t> column_nnz,
                                   real_t threshold);

/// K = X(m)·KRP with all-dense factors, m = csf.level_mode(0). `out` is
/// resized to (I_m, F) and overwritten (or accumulated into when
/// `accumulate` is set — used by the tiled driver below).
void mttkrp_csf(const CsfTensor& csf, cspan<const Matrix> factors,
                Matrix& out, bool accumulate = false);

/// Leaf-mode cache tiling for the root-mode kernel (the blocking SPLATT
/// applies when the per-non-zero factor exceeds cache): non-zeros are
/// bucketed by leaf index range so each pass touches only `tile_rows` rows
/// of the leaf factor, which then stay cache resident for the whole pass.
class TiledCsf {
 public:
  /// Compile `coo` for root-mode MTTKRP of `root`, tiling the leaf mode in
  /// chunks of `tile_rows` (0 = one tile, i.e. no tiling). Empty tiles are
  /// dropped.
  TiledCsf(const CooTensor& coo, std::size_t root, index_t tile_rows);

  std::size_t num_tiles() const noexcept { return tiles_.size(); }
  const CsfTensor& tile(std::size_t t) const { return tiles_.at(t); }
  std::size_t root_mode() const noexcept { return root_; }
  index_t tile_rows() const noexcept { return tile_rows_; }
  offset_t nnz() const noexcept;
  std::size_t storage_bytes() const noexcept;

 private:
  std::size_t root_ = 0;
  index_t tile_rows_ = 0;
  std::vector<CsfTensor> tiles_;
};

/// Root-mode MTTKRP over a tiled compilation: tiles are processed in
/// sequence (each root-parallel internally), accumulating into `out`.
void mttkrp_tiled(const TiledCsf& tiled, cspan<const Matrix> factors,
                  Matrix& out);

/// Leaf factor (original mode csf.level_mode(order-1)) read from `leaf`
/// instead of `factors`; the other factors stay dense (paper: only C — the
/// per-non-zero factor — is worth compressing).
void mttkrp_csf_csr(const CsfTensor& csf, cspan<const Matrix> factors,
                    const CsrMatrix& leaf, Matrix& out);

void mttkrp_csf_hybrid(const CsfTensor& csf, cspan<const Matrix> factors,
                       const HybridMatrix& leaf, Matrix& out);

/// MTTKRP for a mode that is NOT the CSF root — the memory-efficient
/// one-tree strategy (SPLATT keeps a single CSF instead of one per mode and
/// pays atomic scatter into the output rows). Works for any order and any
/// internal/leaf target level.
void mttkrp_csf_nonroot(const CsfTensor& csf, cspan<const Matrix> factors,
                        std::size_t target_mode, Matrix& out);

/// Dispatch on the tree: root-mode targets take the race-free root kernel,
/// anything else the atomic non-root kernel.
void mttkrp_dispatch(const CsfTensor& csf, cspan<const Matrix> factors,
                     std::size_t target_mode, Matrix& out);

/// Serial reference implementation straight from the definition.
void mttkrp_coo(const CooTensor& coo, cspan<const Matrix> factors,
                std::size_t mode, Matrix& out);

}  // namespace aoadmm
