// Dimension-tree MTTKRP engine (Ballard/Hayashi/Kannan): the cyclic
// per-mode sweep of AO-ADMM/ALS recomputes, for every target mode, partial
// Khatri-Rao contractions that the previous modes' MTTKRPs already formed.
// This engine runs over ONE CSF tree (a kOneMode CsfSet) and caches two
// families of per-node partials in reusable per-solver scratch:
//
//   up[l][n]   — "exclusive below": the sum over node n's children c of
//                inclusive(c), where inclusive(c) = val·leaf_row at the
//                leaves and row(c) ∘ up[l+1][c] elsewhere. Depends on the
//                factors at CSF levels l+1 .. order-1.
//   down[l][n] — "inclusive above": the Hadamard product of the factor rows
//                along the root→n path, n's own row included. Depends on
//                the factors at CSF levels 0 .. l.
//
// MTTKRP for the mode at CSF level t is then a single pass over level t:
//   K(i_t) += down[t-1][parent(n)] ∘ up[t][n]
// (root and leaf targets specialize the obvious ends). After mode m's
// factor update, exactly the partials that read that factor are dropped:
// up[l] for l < s and down[l] for l >= s, where s is m's CSF level — so a
// full cyclic sweep touches the non-zeros ~2x instead of order() x.
//
// All cache arrays and partition scratch are grow-only members: after the
// first sweep, steady-state calls allocate nothing (PR 2's invariant).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "mttkrp/mttkrp.hpp"
#include "tensor/csf.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace aoadmm::detail {

/// Monotone per-engine counters: how many cached levels each mttkrp() call
/// had to (re)compute versus could reuse. The per-iteration deltas surface
/// in MetricsSnapshot as dimtree_levels_{computed,reused}.
struct DimTreeStats {
  std::uint64_t levels_computed = 0;
  std::uint64_t levels_reused = 0;
};

class DimTreeEngine {
 public:
  DimTreeEngine() = default;

  /// MTTKRP for original mode `target_mode` over `csf` (which must be a
  /// single untiled tree of order >= 3 containing every mode — i.e. the
  /// tree of a kOneMode CsfSet). Rebinding to a different tree or rank
  /// drops every cached partial. The scatter for non-root targets uses the
  /// privatized per-thread reduction (deterministic for a fixed thread
  /// count); `schedule` kDynamic/kOwner degrade to the same path.
  void mttkrp(const CsfTensor& csf, cspan<const Matrix> factors,
              std::size_t target_mode, Matrix& out,
              MttkrpSchedule schedule = MttkrpSchedule::kAuto);

  /// Drop the partials that read original mode `mode`'s factor. Call after
  /// every factor update; forgetting one silently serves stale MTTKRPs.
  void invalidate_mode(std::size_t mode) noexcept;

  /// Drop everything (new factors wholesale, e.g. at solve start).
  void invalidate_all() noexcept;

  const DimTreeStats& stats() const noexcept { return stats_; }

 private:
  void bind(const CsfTensor& csf, std::size_t rank);
  /// Chunk boundaries of the planned root partition composed down to
  /// `level` (written into bounds_buf_).
  void compose_bounds(std::size_t level, int planned);

  template <int R>
  void refresh_up(std::size_t level, cspan<const Matrix> factors,
                  int planned);
  template <int R>
  void refresh_down(std::size_t level, cspan<const Matrix> factors,
                    int planned);
  template <int R>
  void combine_root(cspan<const Matrix> factors, Matrix& out, int planned);
  template <int R>
  void combine_inner(std::size_t t, cspan<const Matrix> factors, Matrix& out,
                     int planned);
  template <int R>
  void combine_leaf(cspan<const Matrix> factors, Matrix& out, int planned);

  const CsfTensor* tree_ = nullptr;
  std::size_t rank_ = 0;
  std::size_t order_ = 0;
  std::vector<std::size_t> level_of_mode_;

  /// Cached partials, indexed by CSF level; only levels 1..order-2 are
  /// populated (size num_nodes(level) * rank each).
  std::vector<std::vector<real_t, AlignedAllocator<real_t>>> up_;
  std::vector<std::vector<real_t, AlignedAllocator<real_t>>> down_;
  std::vector<char> up_valid_;
  std::vector<char> down_valid_;

  /// Grow-only scratch for per-level chunk boundaries.
  std::vector<std::size_t> bounds_buf_;

  DimTreeStats stats_;
};

}  // namespace aoadmm::detail
