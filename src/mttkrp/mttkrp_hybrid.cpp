#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "util/error.hpp"

namespace aoadmm {

void mttkrp_csf_hybrid(const CsfTensor& csf, cspan<const Matrix> factors,
                       const HybridMatrix& leaf, Matrix& out,
                       MttkrpSchedule schedule) {
  AOADMM_MTTKRP_OBS("csf_hybrid");
  AOADMM_CHECK(factors.size() == csf.order());
  const std::size_t leaf_mode = csf.level_mode(csf.order() - 1);
  AOADMM_CHECK_MSG(leaf.rows() == csf.level_dim(csf.order() - 1),
                   "hybrid leaf factor row count mismatch");
  const std::size_t f = leaf.cols();
  for (std::size_t m = 0; m < factors.size(); ++m) {
    if (m != leaf_mode) {
      AOADMM_CHECK(factors[m].cols() == f);
    }
  }

  const auto dense_cols = leaf.dense_cols();
  const std::size_t ndense = dense_cols.size();

  detail::rank_dispatch(f, [&](auto rc) {
    constexpr int R = decltype(rc)::value;
    detail::mttkrp_csf_skeleton<R>(
        csf, factors, f,
        [&leaf, dense_cols, ndense](index_t idx, real_t v,
                                    real_t* __restrict z, std::size_t) {
          // Start the CSR tail's data movement, then overlap it with the
          // dense-panel arithmetic (paper §IV.C).
          leaf.prefetch_row(idx);
          const real_t* __restrict panel = leaf.dense_row(idx).data();
          for (std::size_t d = 0; d < ndense; ++d) {
            z[dense_cols[d]] += v * panel[d];
          }
          const auto [cols, vals] = leaf.csr_row(idx);
          const std::size_t n = cols.size();
          for (std::size_t k = 0; k < n; ++k) {
            z[cols[k]] += v * vals[k];
          }
        },
        out, /*accumulate=*/false, schedule);
  });
}

}  // namespace aoadmm
