#include "mttkrp/alto.hpp"

#include "mttkrp/alto_kernels.inl"
#include "mttkrp/mttkrp_obs.hpp"
#include "util/error.hpp"

namespace aoadmm {

void mttkrp_alto(const AltoTensor& alto, cspan<const Matrix> factors,
                 std::size_t target_mode, Matrix& out,
                 MttkrpSchedule schedule) {
  AOADMM_MTTKRP_OBS("alto");
  const std::size_t order = alto.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(factors.size() == order);
  AOADMM_CHECK(target_mode < order);
  const std::size_t f = factors[target_mode].cols();
  for (std::size_t m = 0; m < order; ++m) {
    AOADMM_CHECK(factors[m].cols() == f);
    AOADMM_CHECK(factors[m].rows() == alto.dims()[m]);
  }

  const index_t out_rows = alto.dims()[target_mode];
  if (out.rows() != out_rows || out.cols() != f) {
    out.resize(out_rows, f);
  } else {
    out.zero();
  }

  const int planned = std::max(max_threads(), 1);
  const MttkrpSchedule sched =
      detail::resolve_nonroot_schedule(schedule, out_rows, f, planned);

  if (detail::alto_bmi2_available()) {
    detail::mttkrp_alto_bmi2(alto, factors, target_mode, f, out, sched,
                             planned);
    return;
  }
  run_alto_kernels(alto, factors, target_mode, f, out, sched, planned,
                   RunDecode{alto});
}

}  // namespace aoadmm
