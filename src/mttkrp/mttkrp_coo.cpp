#include "mttkrp/mttkrp.hpp"
#include "util/error.hpp"

namespace aoadmm {

void mttkrp_coo(const CooTensor& coo, cspan<const Matrix> factors,
                std::size_t mode, Matrix& out) {
  AOADMM_CHECK(mode < coo.order());
  AOADMM_CHECK(factors.size() == coo.order());
  const std::size_t f = factors[mode].cols();
  for (std::size_t m = 0; m < coo.order(); ++m) {
    AOADMM_CHECK(factors[m].rows() == coo.dim(m));
    AOADMM_CHECK(factors[m].cols() == f);
  }

  if (out.rows() != coo.dim(mode) || out.cols() != f) {
    out.resize(coo.dim(mode), f);
  } else {
    out.zero();
  }

  // Straight from the definition: every non-zero scatters the elementwise
  // product of the other modes' factor rows into its output row. Serial —
  // this is the oracle, not a performance kernel.
  std::vector<real_t> prod(f);
  for (offset_t n = 0; n < coo.nnz(); ++n) {
    const real_t v = coo.value(n);
    for (std::size_t k = 0; k < f; ++k) {
      prod[k] = v;
    }
    for (std::size_t m = 0; m < coo.order(); ++m) {
      if (m == mode) {
        continue;
      }
      const real_t* __restrict row =
          factors[m].data() + static_cast<std::size_t>(coo.index(m, n)) * f;
      for (std::size_t k = 0; k < f; ++k) {
        prod[k] *= row[k];
      }
    }
    real_t* __restrict out_row =
        out.data() + static_cast<std::size_t>(coo.index(mode, n)) * f;
    for (std::size_t k = 0; k < f; ++k) {
      out_row[k] += prod[k];
    }
  }
}

}  // namespace aoadmm
