// BMI2 flavor of the ALTO MTTKRP kernels. CMake compiles this translation
// unit with -mbmi2 on x86-64 GCC/Clang, which turns each per-mode
// coordinate decode into a single inlined `pext` (the ALTO paper's
// de-linearization) instead of the portable shift/mask run loop. The entry
// points here are only called after a runtime CPU check; on other
// platforms they fall back to the portable decode and are never reached.
#include "mttkrp/alto.hpp"

#include "mttkrp/alto_kernels.inl"

#if defined(__BMI2__)
#include <immintrin.h>

namespace aoadmm {
namespace {

/// One parallel-bit-extract per mode: the LSB-first interleave keeps a
/// mode's bits in coordinate order inside the code, so packing the masked
/// bits low IS the coordinate.
struct PextDecode {
  const std::uint64_t* masks;  // AltoTensor::mode_masks()
  index_t operator()(std::uint64_t code, std::size_t m) const noexcept {
    return static_cast<index_t>(_pext_u64(code, masks[m]));
  }
};

}  // namespace

namespace detail {

bool alto_bmi2_available() noexcept {
  static const bool ok = __builtin_cpu_supports("bmi2");
  return ok;
}

void mttkrp_alto_bmi2(const AltoTensor& alto, cspan<const Matrix> factors,
                      std::size_t target_mode, std::size_t f, Matrix& out,
                      MttkrpSchedule sched, int planned) {
  run_alto_kernels(alto, factors, target_mode, f, out, sched, planned,
                   PextDecode{alto.mode_masks().data()});
}

}  // namespace detail
}  // namespace aoadmm

#else  // !__BMI2__: non-x86 target or a compiler without -mbmi2.

namespace aoadmm::detail {

bool alto_bmi2_available() noexcept { return false; }

void mttkrp_alto_bmi2(const AltoTensor& alto, cspan<const Matrix> factors,
                      std::size_t target_mode, std::size_t f, Matrix& out,
                      MttkrpSchedule sched, int planned) {
  // Unreachable (available() is false); keep a correct body regardless.
  run_alto_kernels(alto, factors, target_mode, f, out, sched, planned,
                   RunDecode{alto});
}

}  // namespace aoadmm::detail

#endif
