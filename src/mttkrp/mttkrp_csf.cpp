#include <vector>

#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "parallel/runtime.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace aoadmm {

const char* to_string(LeafFormat fmt) noexcept {
  switch (fmt) {
    case LeafFormat::kDense:
      return "DENSE";
    case LeafFormat::kCsr:
      return "CSR";
    case LeafFormat::kHybrid:
      return "CSR-H";
    case LeafFormat::kAuto:
      return "AUTO";
  }
  return "?";
}

const char* to_string(MttkrpSchedule s) noexcept {
  switch (s) {
    case MttkrpSchedule::kAuto:
      return "auto";
    case MttkrpSchedule::kDynamic:
      return "dynamic";
    case MttkrpSchedule::kWeighted:
      return "weighted";
    case MttkrpSchedule::kOwner:
      return "owner";
  }
  return "?";
}

const char* to_string(MttkrpKernel k) noexcept {
  switch (k) {
    case MttkrpKernel::kAuto:
      return "auto";
    case MttkrpKernel::kAllMode:
      return "allmode";
    case MttkrpKernel::kOneTree:
      return "onetree";
    case MttkrpKernel::kTiled:
      return "tiled";
    case MttkrpKernel::kDimTree:
      return "dimtree";
    case MttkrpKernel::kAlto:
      return "alto";
  }
  return "?";
}

namespace detail {

MttkrpSchedule resolve_nonroot_schedule(MttkrpSchedule s, index_t out_rows,
                                        std::size_t rank,
                                        int nthreads) noexcept {
  if (s != MttkrpSchedule::kAuto) {
    return s;
  }
  if (nthreads <= 1) {
    // A single thread scatters directly; the privatized kernel degenerates
    // to exactly that (its "copy" is the output itself).
    return MttkrpSchedule::kWeighted;
  }
  const std::size_t copy_bytes =
      static_cast<std::size_t>(out_rows) * rank * sizeof(real_t);
  return copy_bytes <= kPrivatizeMaxBytes ? MttkrpSchedule::kWeighted
                                          : MttkrpSchedule::kOwner;
}

MttkrpSchedule resolve_root_schedule(MttkrpSchedule s) noexcept {
  // The root kernel is owner-computes by construction (each output row is
  // written by exactly one root iteration), so kOwner and kAuto both mean
  // "weighted static chunks"; only kDynamic opts out.
  return s == MttkrpSchedule::kDynamic ? MttkrpSchedule::kDynamic
                                       : MttkrpSchedule::kWeighted;
}

}  // namespace detail

void mttkrp_csf(const CsfTensor& csf, cspan<const Matrix> factors,
                Matrix& out, bool accumulate, MttkrpSchedule schedule) {
  AOADMM_CHECK(factors.size() == csf.order());
  const Matrix& leaf = factors[csf.level_mode(csf.order() - 1)];
  const std::size_t f = leaf.cols();

  const auto run = [&] {
    detail::rank_dispatch(f, [&](auto rc) {
      constexpr int R = decltype(rc)::value;
      detail::mttkrp_csf_skeleton<R>(
          csf, factors, f,
          [&leaf](index_t idx, real_t v, real_t* __restrict z,
                  std::size_t ff) {
            const real_t* __restrict row =
                leaf.data() + static_cast<std::size_t>(idx) * ff;
            detail::RowOps<R>::axpy(z, v, row, ff);
          },
          out, accumulate, schedule);
    });
  };

  if (csf.order() == 3) {
    // Keep the historical kernel label: the skeleton's flat three-mode fast
    // path with the dense leaf op inlined IS the specialized kernel.
    AOADMM_MTTKRP_OBS("csf3_dense");
    run();
  } else {
    AOADMM_MTTKRP_OBS("csf_dense");
    run();
  }
}

}  // namespace aoadmm
