#include <vector>

#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace aoadmm {
namespace {

/// Hand-specialized three-mode kernel (Algorithm 3): the common case, with
/// the inner loops written flat so the compiler vectorizes over the rank.
void mttkrp_csf3_dense(const CsfTensor& csf, const Matrix& b_mid,
                       const Matrix& c_leaf, Matrix& out) {
  const std::size_t f = c_leaf.cols();
  const auto root_fids = csf.fids(0);
  const auto mid_fids = csf.fids(1);
  const auto leaf_fids = csf.fids(2);
  const auto fptr0 = csf.fptr(0);
  const auto fptr1 = csf.fptr(1);
  const auto vals = csf.vals();
  const auto nroots = static_cast<std::ptrdiff_t>(root_fids.size());

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    real_t* __restrict z = detail::mttkrp_thread_scratch(f);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16)
#endif
    for (std::ptrdiff_t r = 0; r < nroots; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      real_t* __restrict krow =
          out.data() + static_cast<std::size_t>(root_fids[rr]) * f;
      for (offset_t jn = fptr0[rr]; jn < fptr0[rr + 1]; ++jn) {
        for (std::size_t k = 0; k < f; ++k) {
          z[k] = 0;
        }
        for (offset_t c = fptr1[jn]; c < fptr1[jn + 1]; ++c) {
          const real_t v = vals[c];
          const real_t* __restrict crow =
              c_leaf.data() + static_cast<std::size_t>(leaf_fids[c]) * f;
          for (std::size_t k = 0; k < f; ++k) {
            z[k] += v * crow[k];
          }
        }
        const real_t* __restrict brow =
            b_mid.data() + static_cast<std::size_t>(mid_fids[jn]) * f;
        for (std::size_t k = 0; k < f; ++k) {
          krow[k] += z[k] * brow[k];
        }
      }
    }
  }
}

}  // namespace

const char* to_string(LeafFormat fmt) noexcept {
  switch (fmt) {
    case LeafFormat::kDense:
      return "DENSE";
    case LeafFormat::kCsr:
      return "CSR";
    case LeafFormat::kHybrid:
      return "CSR-H";
    case LeafFormat::kAuto:
      return "AUTO";
  }
  return "?";
}

void mttkrp_csf(const CsfTensor& csf, cspan<const Matrix> factors,
                Matrix& out, bool accumulate) {
  AOADMM_CHECK(factors.size() == csf.order());
  const std::size_t f = factors[csf.level_mode(csf.order() - 1)].cols();

  if (csf.order() == 3) {
    const Matrix& b = factors[csf.level_mode(1)];
    const Matrix& c = factors[csf.level_mode(2)];
    AOADMM_CHECK(b.cols() == f);
    const index_t out_rows = csf.level_dim(0);
    if (out.rows() != out_rows || out.cols() != f) {
      out.resize(out_rows, f);  // resize zero-initializes
    } else if (!accumulate) {
      out.zero();
    }
    AOADMM_MTTKRP_OBS("csf3_dense");
    mttkrp_csf3_dense(csf, b, c, out);
    return;
  }

  AOADMM_MTTKRP_OBS("csf_dense");
  const Matrix& leaf = factors[csf.level_mode(csf.order() - 1)];
  detail::mttkrp_csf_skeleton(
      csf, factors, f,
      [&leaf](index_t idx, real_t v, real_t* __restrict z, std::size_t ff) {
        const real_t* __restrict row =
            leaf.data() + static_cast<std::size_t>(idx) * ff;
        for (std::size_t k = 0; k < ff; ++k) {
          z[k] += v * row[k];
        }
      },
      out, accumulate);
}

}  // namespace aoadmm
