// Fixed-rank row microkernels shared by every MTTKRP variant. Internal.
//
// The innermost loops of all four kernels are rank-length elementwise ops
// (Hadamard down-products, value-scaled axpy, contribution scatter). With a
// runtime trip count the compiler emits a scalar prologue/epilogue and a
// length check per row; with a compile-time R it emits straight-line
// FMA/SIMD code. rank_dispatch() selects a specialization for the common
// power-of-two ranks (8/16/32/64) and falls back to a runtime-length
// generic (R = 0) for everything else — the tail ranks {1, 7, 33, ...} take
// the same code path they always did, just through RowOps<0>.
#pragma once

#include <cstddef>
#include <type_traits>

#include "util/types.hpp"

#if defined(AOADMM_HAVE_OPENMP)
#define AOADMM_SIMD _Pragma("omp simd")
#else
#define AOADMM_SIMD
#endif

namespace aoadmm::detail {

/// Rank-length row operations. R > 0: compile-time trip count (the runtime
/// `f` argument is ignored and must equal R). R == 0: runtime trip count.
template <int R>
struct RowOps {
  static constexpr bool kFixed = R > 0;

  static constexpr std::size_t len(std::size_t f) noexcept {
    return kFixed ? static_cast<std::size_t>(R) : f;
  }

  /// z[:] = 0
  static void zero(real_t* __restrict z, std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      z[k] = 0;
    }
  }

  /// dst[:] = src[:]
  static void copy(real_t* __restrict dst, const real_t* __restrict src,
                   std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] = src[k];
    }
  }

  /// dst[:] += src[:]
  static void add(real_t* __restrict dst, const real_t* __restrict src,
                  std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] += src[k];
    }
  }

  /// dst[:] += v * src[:]
  static void axpy(real_t* __restrict dst, real_t v,
                   const real_t* __restrict src, std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] += v * src[k];
    }
  }

  /// dst[:] = v * src[:]
  static void scale(real_t* __restrict dst, real_t v,
                    const real_t* __restrict src, std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] = v * src[k];
    }
  }

  /// dst[:] = a[:] * b[:]  (Hadamard)
  static void mul(real_t* __restrict dst, const real_t* __restrict a,
                  const real_t* __restrict b, std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] = a[k] * b[k];
    }
  }

  /// dst[:] = (v * a[:]) * b[:] — the fused order-3 contribution (same
  /// association as scale-then-mul_inplace, one pass instead of two).
  static void scale_mul(real_t* __restrict dst, real_t v,
                        const real_t* __restrict a,
                        const real_t* __restrict b, std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] = (v * a[k]) * b[k];
    }
  }

  /// dst[:] += a[:] * b[:]
  static void mul_add(real_t* __restrict dst, const real_t* __restrict a,
                      const real_t* __restrict b, std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] += a[k] * b[k];
    }
  }

  /// dst[:] *= src[:]
  static void mul_inplace(real_t* __restrict dst,
                          const real_t* __restrict src,
                          std::size_t f) noexcept {
    const std::size_t n = len(f);
    AOADMM_SIMD
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] *= src[k];
    }
  }
};

/// Calls body(std::integral_constant<int, R>{}) with R matched to `f`
/// (8/16/32/64) or R = 0 for the runtime-length generic path.
template <typename Body>
decltype(auto) rank_dispatch(std::size_t f, Body&& body) {
  switch (f) {
    case 8:
      return body(std::integral_constant<int, 8>{});
    case 16:
      return body(std::integral_constant<int, 16>{});
    case 32:
      return body(std::integral_constant<int, 32>{});
    case 64:
      return body(std::integral_constant<int, 64>{});
    default:
      return body(std::integral_constant<int, 0>{});
  }
}

}  // namespace aoadmm::detail
