// Non-root-mode MTTKRP over a single CSF tree (the one-tree / memory-
// efficient strategy). For a target at CSF level t:
//
//   K(i_t, :) += down(path above t) ∘ up(subtree below t)
//
// where `down` is the elementwise product of the factor rows along the
// root→node path (excluding level t itself) and `up` is the usual upward
// accumulation of value-scaled factor rows (excluding level t's row).
// Distinct root subtrees can touch the same target-mode row, so the scatter
// into K needs a reduction. Three strategies (MttkrpSchedule):
//
//  * kDynamic   — the legacy per-element-atomic scatter under a
//                 schedule(dynamic, 16) root loop. Ablation baseline only:
//                 a lock-prefixed RMW per double is several times the cost
//                 of a plain SIMD add even without contention.
//  * kWeighted  — privatized reduction: every thread accumulates into its
//                 own dense copy of the output (persistent thread scratch),
//                 walking nnz-weighted static root chunks; a partitioned
//                 parallel reduction then folds the copies into K row-wise.
//  * kOwner     — owner-computes: the weighted root chunks induce (via the
//                 monotone fptr composition) contiguous target-level node
//                 ranges per chunk. Rows touched by exactly one chunk are
//                 written directly by that chunk's thread — no
//                 synchronization, no copies. Rows shared between chunks
//                 (typically a small boundary set) go through compact
//                 per-thread slot buffers and a parallel fixup pass. The
//                 classification is precomputed once per (tree, target
//                 level, thread count) and cached (CsfTensor::owner_plan).
//
// kAuto picks kWeighted while the per-thread copy is small and kOwner for
// long target modes (detail::resolve_nonroot_schedule).
#include <algorithm>
#include <memory>
#include <vector>

#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "obs/parallel_stats.hpp"
#include "parallel/runtime.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace aoadmm {
namespace {

using detail::atomic_add_row;
using detail::BufferTable;

/// Depth-first walk of the root subtrees [lo, hi), delivering each target-
/// level contribution row through scatter(row_id, contrib). down_buf/up_buf/
/// contrib are rank-length scratch rows ((order+1)*f total, per thread).
template <int R, typename Scatter>
void walk_roots(const CsfTensor& csf, cspan<const Matrix> factors,
                std::size_t t, std::size_t f, std::size_t lo, std::size_t hi,
                real_t* __restrict down_buf, real_t* __restrict up_buf,
                real_t* __restrict contrib, const Scatter& scatter) {
  using Ops = detail::RowOps<R>;
  const std::size_t order = csf.order();
  const auto vals = csf.vals();
  const auto leaf_fids = csf.fids(order - 1);

  // Upward accumulation below the target level: identical to the root
  // kernel's subtree(), scaling by each node's own row EXCEPT at level t.
  const auto up_subtree = [&](auto&& self, std::size_t level,
                              offset_t node) -> real_t* {
    real_t* __restrict z = up_buf + (level - t) * f;
    Ops::zero(z, f);
    if (level == order - 1) {
      // Should not happen: leaves are handled by the caller.
      return z;
    }
    const auto fptr = csf.fptr(level);
    if (level + 1 == order - 1) {
      const Matrix& leaf_factor = factors[csf.level_mode(order - 1)];
      for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
        const real_t* __restrict row =
            leaf_factor.data() + static_cast<std::size_t>(leaf_fids[c]) * f;
        Ops::axpy(z, vals[c], row, f);
      }
    } else {
      const Matrix& child_factor = factors[csf.level_mode(level + 1)];
      const auto child_fids = csf.fids(level + 1);
      for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
        const real_t* __restrict zc = self(self, level + 1, c);
        const real_t* __restrict row =
            child_factor.data() +
            static_cast<std::size_t>(child_fids[c]) * f;
        Ops::mul_add(z, zc, row, f);
      }
    }
    return z;
  };

  // Downward walk: carries the `down` product; at level t, combines with
  // the upward accumulation and hands the contribution to the scatter.
  const auto walk = [&](auto&& self, std::size_t level, offset_t node,
                        const real_t* __restrict down) -> void {
    if (level == t) {
      const index_t row_id = csf.fids(level)[node];
      if (level == order - 1) {
        // Leaf target: contribution = val * down.
        Ops::scale(contrib, vals[node], down, f);
      } else {
        const real_t* __restrict up = up_subtree(up_subtree, level, node);
        Ops::mul(contrib, up, down, f);
      }
      scatter(row_id, contrib);
      return;
    }
    // Extend the down product with this level's own factor row.
    const Matrix& a = factors[csf.level_mode(level)];
    const real_t* __restrict own =
        a.data() + static_cast<std::size_t>(csf.fids(level)[node]) * f;
    real_t* __restrict next_down = down_buf + level * f;
    if (level == 0) {
      Ops::copy(next_down, own, f);
    } else {
      Ops::mul(next_down, down, own, f);
    }
    const auto fptr = csf.fptr(level);
    for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
      self(self, level + 1, c, next_down);
    }
  };

  for (std::size_t r = lo; r < hi; ++r) {
    walk(walk, 0, static_cast<offset_t>(r), nullptr);
  }
}

/// Legacy atomic-scatter kernel behind the explicit kDynamic policy.
template <int R>
void nonroot_atomic(const CsfTensor& csf, cspan<const Matrix> factors,
                    std::size_t t, std::size_t f, Matrix& out) {
  const std::size_t order = csf.order();
  const auto nroots = static_cast<std::ptrdiff_t>(csf.num_nodes(0));
  const int planned = std::max(max_threads(), 1);
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    real_t* const base = detail::mttkrp_thread_scratch((order + 1) * f);
    real_t* const down_buf = base;
    real_t* const up_buf = base + t * f;
    real_t* const contrib = base + order * f;
    const int tid = thread_id();
    const double t0 = detail::mttkrp_now();
    const auto scatter = [&](index_t row_id, const real_t* __restrict src) {
      atomic_add_row(out.data() + static_cast<std::size_t>(row_id) * f, src,
                     f);
    };
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16) nowait
#endif
    for (std::ptrdiff_t r = 0; r < nroots; ++r) {
      walk_roots<R>(csf, factors, t, f, static_cast<std::size_t>(r),
                    static_cast<std::size_t>(r) + 1, down_buf, up_buf,
                    contrib, scatter);
    }
    busy.add(tid, detail::mttkrp_now() - t0);
  }
}

/// Single-thread fast path: scatter directly, nothing to synchronize.
template <int R>
void nonroot_serial(const CsfTensor& csf, cspan<const Matrix> factors,
                    std::size_t t, std::size_t f, Matrix& out) {
  using Ops = detail::RowOps<R>;
  const std::size_t order = csf.order();
  obs::BusyTimes busy(1, obs::RegionDomain::kMttkrp);
  real_t* const base = detail::mttkrp_thread_scratch((order + 1) * f);
  const double t0 = detail::mttkrp_now();
  walk_roots<R>(csf, factors, t, f, 0, csf.num_nodes(0), base, base + t * f,
                base + order * f,
                [&](index_t row_id, const real_t* __restrict src) {
                  Ops::add(out.data() + static_cast<std::size_t>(row_id) * f,
                           src, f);
                });
  busy.add(0, detail::mttkrp_now() - t0);
}

/// Privatized reduction: per-thread dense output copies + partitioned
/// parallel reduction, over nnz-weighted static root chunks.
template <int R>
void nonroot_privatized(const CsfTensor& csf, cspan<const Matrix> factors,
                        std::size_t t, std::size_t f, Matrix& out,
                        int planned) {
  using Ops = detail::RowOps<R>;
  const std::size_t order = csf.order();
  const auto& bounds =
      csf.root_partition(static_cast<std::size_t>(planned));
  const std::size_t parts = bounds.size() - 1;
  const auto out_rows = static_cast<std::ptrdiff_t>(out.rows());
  const std::size_t copy_elems = static_cast<std::size_t>(out.rows()) * f;

  BufferTable table(planned);
  real_t** const bufs = table.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const int team = std::max(team_size(), 1);
    real_t* const base =
        detail::mttkrp_thread_scratch((order + 1) * f + copy_elems);
    const double t0 = detail::mttkrp_now();
    if (tid < planned) {
      real_t* const local = base + (order + 1) * f;
      std::fill(local, local + copy_elems, real_t{0});
      bufs[tid] = local;
      const auto scatter = [&](index_t row_id,
                               const real_t* __restrict src) {
        Ops::add(local + static_cast<std::size_t>(row_id) * f, src, f);
      };
      // Chunks beyond the team size are picked up round-robin, so a team
      // smaller than planned still covers every chunk.
      for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
           c += static_cast<std::size_t>(team)) {
        walk_roots<R>(csf, factors, t, f, bounds[c], bounds[c + 1], base,
                      base + t * f, base + order * f, scatter);
      }
    }
    busy.add(tid, detail::mttkrp_now() - t0);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp barrier
#endif

    // Row-partitioned reduction of the registered copies into the (zeroed)
    // output; each row is folded by exactly one thread.
    const double t1 = detail::mttkrp_now();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (std::ptrdiff_t row = 0; row < out_rows; ++row) {
      real_t* __restrict dst =
          out.data() + static_cast<std::size_t>(row) * f;
      for (int p = 0; p < planned; ++p) {
        if (bufs[p] != nullptr) {
          Ops::add(dst, bufs[p] + static_cast<std::size_t>(row) * f, f);
        }
      }
    }
    busy.add(tid, detail::mttkrp_now() - t1);
  }
}

/// Owner-computes: direct writes for chunk-private rows, slot buffers plus
/// a parallel fixup for the chunk-boundary rows.
template <int R>
void nonroot_owner(const CsfTensor& csf, cspan<const Matrix> factors,
                   std::size_t t, std::size_t f, Matrix& out, int planned) {
  using Ops = detail::RowOps<R>;
  const std::size_t order = csf.order();
  const MttkrpOwnerPlan& plan =
      csf.owner_plan(t, static_cast<std::size_t>(planned));
  const std::size_t parts = plan.parts;
  const auto nshared = static_cast<std::ptrdiff_t>(plan.shared_rows.size());
  const std::size_t slot_elems = static_cast<std::size_t>(nshared) * f;
  const std::int32_t* __restrict row_slot = plan.row_slot.data();

  BufferTable table(planned);
  real_t** const bufs = table.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const int team = std::max(team_size(), 1);
    real_t* const base =
        detail::mttkrp_thread_scratch((order + 1) * f + slot_elems);
    const double t0 = detail::mttkrp_now();
    if (tid < planned) {
      real_t* const slot_buf = base + (order + 1) * f;
      std::fill(slot_buf, slot_buf + slot_elems, real_t{0});
      bufs[tid] = slot_buf;
      const auto scatter = [&](index_t row_id,
                               const real_t* __restrict src) {
        const std::int32_t slot = row_slot[row_id];
        if (slot < 0) {
          // Row owned by this chunk alone: plain accumulate, single writer.
          Ops::add(out.data() + static_cast<std::size_t>(row_id) * f, src,
                   f);
        } else {
          Ops::add(slot_buf + static_cast<std::size_t>(slot) * f, src, f);
        }
      };
      for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
           c += static_cast<std::size_t>(team)) {
        walk_roots<R>(csf, factors, t, f, plan.root_bounds[c],
                      plan.root_bounds[c + 1], base, base + t * f,
                      base + order * f, scatter);
      }
    }
    busy.add(tid, detail::mttkrp_now() - t0);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp barrier
#endif

    // Fixup: fold the slot buffers into the shared rows, one slot per
    // iteration so each output row keeps a single writer.
    const double t1 = detail::mttkrp_now();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (std::ptrdiff_t s = 0; s < nshared; ++s) {
      real_t* __restrict dst =
          out.data() +
          static_cast<std::size_t>(plan.shared_rows[static_cast<std::size_t>(
              s)]) *
              f;
      for (int p = 0; p < planned; ++p) {
        if (bufs[p] != nullptr) {
          Ops::add(dst, bufs[p] + static_cast<std::size_t>(s) * f, f);
        }
      }
    }
    busy.add(tid, detail::mttkrp_now() - t1);
  }
}

}  // namespace

void mttkrp_csf_nonroot(const CsfTensor& csf, cspan<const Matrix> factors,
                        std::size_t target_mode, Matrix& out,
                        MttkrpSchedule schedule) {
  AOADMM_MTTKRP_OBS("csf_nonroot");
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(factors.size() == order);
  AOADMM_CHECK(target_mode < order);

  // Locate the CSF level holding the target mode.
  std::size_t t = order;
  for (std::size_t l = 0; l < order; ++l) {
    if (csf.level_mode(l) == target_mode) {
      t = l;
      break;
    }
  }
  AOADMM_CHECK_MSG(t < order, "target mode not present in CSF");
  AOADMM_CHECK_MSG(t > 0, "use mttkrp_csf for root-mode targets");

  const std::size_t f = factors[target_mode].cols();
  for (std::size_t m = 0; m < order; ++m) {
    AOADMM_CHECK(factors[m].cols() == f);
    AOADMM_CHECK(factors[m].rows() == csf.dims()[m]);
  }

  const index_t out_rows = csf.dims()[target_mode];
  if (out.rows() != out_rows || out.cols() != f) {
    out.resize(out_rows, f);
  } else {
    out.zero();
  }

  const int planned = std::max(max_threads(), 1);
  const MttkrpSchedule sched =
      detail::resolve_nonroot_schedule(schedule, out_rows, f, planned);

  detail::rank_dispatch(f, [&](auto rc) {
    constexpr int R = decltype(rc)::value;
    if (sched == MttkrpSchedule::kDynamic) {
      nonroot_atomic<R>(csf, factors, t, f, out);
    } else if (planned <= 1) {
      nonroot_serial<R>(csf, factors, t, f, out);
    } else if (sched == MttkrpSchedule::kOwner) {
      nonroot_owner<R>(csf, factors, t, f, out, planned);
    } else {
      nonroot_privatized<R>(csf, factors, t, f, out, planned);
    }
  });
}

void mttkrp_dispatch(const CsfTensor& csf, cspan<const Matrix> factors,
                     std::size_t target_mode, Matrix& out,
                     MttkrpSchedule schedule) {
  if (csf.level_mode(0) == target_mode) {
    mttkrp_csf(csf, factors, out, /*accumulate=*/false, schedule);
  } else {
    mttkrp_csf_nonroot(csf, factors, target_mode, out, schedule);
  }
}

}  // namespace aoadmm
