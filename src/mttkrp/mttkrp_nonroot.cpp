// Non-root-mode MTTKRP over a single CSF tree (the one-tree / memory-
// efficient strategy). For a target at CSF level t:
//
//   K(i_t, :) += down(path above t) ∘ up(subtree below t)
//
// where `down` is the elementwise product of the factor rows along the
// root→node path (excluding level t itself) and `up` is the usual upward
// accumulation of value-scaled factor rows (excluding level t's row).
// Distinct root subtrees can touch the same target-mode row, so the scatter
// into K uses atomic adds — exactly the trade-off that makes SPLATT's
// one-tree mode cheaper in memory but slower than ALLMODE.
#include <vector>

#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace aoadmm {
namespace {

inline void atomic_add_row(real_t* __restrict dst,
                           const real_t* __restrict src, std::size_t f) {
  for (std::size_t k = 0; k < f; ++k) {
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp atomic
#endif
    dst[k] += src[k];
  }
}

}  // namespace

void mttkrp_csf_nonroot(const CsfTensor& csf, cspan<const Matrix> factors,
                        std::size_t target_mode, Matrix& out) {
  AOADMM_MTTKRP_OBS("csf_nonroot");
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(factors.size() == order);
  AOADMM_CHECK(target_mode < order);

  // Locate the CSF level holding the target mode.
  std::size_t t = order;
  for (std::size_t l = 0; l < order; ++l) {
    if (csf.level_mode(l) == target_mode) {
      t = l;
      break;
    }
  }
  AOADMM_CHECK_MSG(t < order, "target mode not present in CSF");
  AOADMM_CHECK_MSG(t > 0, "use mttkrp_csf for root-mode targets");

  const std::size_t f = factors[target_mode].cols();
  for (std::size_t m = 0; m < order; ++m) {
    AOADMM_CHECK(factors[m].cols() == f);
    AOADMM_CHECK(factors[m].rows() == csf.dims()[m]);
  }

  const index_t out_rows = csf.dims()[target_mode];
  if (out.rows() != out_rows || out.cols() != f) {
    out.resize(out_rows, f);
  } else {
    out.zero();
  }

  const auto root_fids = csf.fids(0);
  const auto nroots = static_cast<std::ptrdiff_t>(root_fids.size());
  const auto vals = csf.vals();
  const auto leaf_fids = csf.fids(order - 1);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    // down[l]: product of factor rows along the current path, for levels
    // 0..t-1. up buffers for levels t..order-2, plus one contribution row —
    // all carved from the thread's persistent scratch.
    real_t* const base = detail::mttkrp_thread_scratch((order + 1) * f);
    real_t* const down_buf = base;
    real_t* const up_buf = base + t * f;
    real_t* const contrib = base + order * f;

    // Upward accumulation below the target level: identical to the root
    // kernel's subtree(), scaling by each node's own row EXCEPT at level t.
    const auto up_subtree = [&](auto&& self, std::size_t level,
                                offset_t node) -> real_t* {
      real_t* __restrict z = up_buf + (level - t) * f;
      for (std::size_t k = 0; k < f; ++k) {
        z[k] = 0;
      }
      if (level == order - 1) {
        // Should not happen: leaves are handled by the caller.
        return z;
      }
      const auto fptr = csf.fptr(level);
      if (level + 1 == order - 1) {
        const Matrix& leaf_factor = factors[csf.level_mode(order - 1)];
        for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
          const real_t v = vals[c];
          const real_t* __restrict row =
              leaf_factor.data() + static_cast<std::size_t>(leaf_fids[c]) * f;
          for (std::size_t k = 0; k < f; ++k) {
            z[k] += v * row[k];
          }
        }
      } else {
        for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
          const real_t* __restrict zc = self(self, level + 1, c);
          const Matrix& child_factor = factors[csf.level_mode(level + 1)];
          const real_t* __restrict row =
              child_factor.data() +
              static_cast<std::size_t>(csf.fids(level + 1)[c]) * f;
          for (std::size_t k = 0; k < f; ++k) {
            z[k] += zc[k] * row[k];
          }
        }
      }
      return z;
    };

    // Downward walk: carries the `down` product; at level t, combines with
    // the upward accumulation and scatters into the output.
    const auto walk = [&](auto&& self, std::size_t level, offset_t node,
                          const real_t* __restrict down) -> void {
      if (level == t) {
        const index_t row_id = csf.fids(level)[node];
        real_t* __restrict krow =
            out.data() + static_cast<std::size_t>(row_id) * f;
        if (level == order - 1) {
          // Leaf target: contribution = val * down.
          const real_t v = vals[node];
          for (std::size_t k = 0; k < f; ++k) {
            contrib[k] = v * down[k];
          }
        } else {
          const real_t* __restrict up = up_subtree(up_subtree, level, node);
          for (std::size_t k = 0; k < f; ++k) {
            contrib[k] = up[k] * down[k];
          }
        }
        atomic_add_row(krow, contrib, f);
        return;
      }
      // Extend the down product with this level's own factor row.
      const Matrix& a = factors[csf.level_mode(level)];
      const real_t* __restrict own =
          a.data() + static_cast<std::size_t>(csf.fids(level)[node]) * f;
      real_t* __restrict next_down = down_buf + level * f;
      if (level == 0) {
        for (std::size_t k = 0; k < f; ++k) {
          next_down[k] = own[k];
        }
      } else {
        for (std::size_t k = 0; k < f; ++k) {
          next_down[k] = down[k] * own[k];
        }
      }
      const auto fptr = csf.fptr(level);
      for (offset_t c = fptr[node]; c < fptr[node + 1]; ++c) {
        self(self, level + 1, c, next_down);
      }
    };

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16)
#endif
    for (std::ptrdiff_t r = 0; r < nroots; ++r) {
      walk(walk, 0, static_cast<offset_t>(r), nullptr);
    }
  }
}

void mttkrp_dispatch(const CsfTensor& csf, cspan<const Matrix> factors,
                     std::size_t target_mode, Matrix& out) {
  if (csf.level_mode(0) == target_mode) {
    mttkrp_csf(csf, factors, out);
  } else {
    mttkrp_csf_nonroot(csf, factors, target_mode, out);
  }
}

}  // namespace aoadmm
