// Persistent per-thread scratch for the MTTKRP kernels. Internal header.
//
// The kernels need a handful of rank-length accumulation rows per worker
// thread. Allocating them inside each parallel region puts a heap
// allocation on every MTTKRP call — invisible in a one-shot run, but a
// steady-state cost for a long-lived CpdSolver session (and the one thing
// that broke its zero-allocation guarantee). Instead each thread keeps one
// grow-only aligned buffer for its lifetime: OpenMP pools its workers, so
// after the first outer iteration every call is allocation-free.
#pragma once

#include <cstddef>
#include <vector>

#include "util/aligned.hpp"
#include "util/types.hpp"

namespace aoadmm::detail {

/// A pointer to at least `n` reals, private to the calling thread and valid
/// until the next call from the same thread with a larger `n`. Contents are
/// unspecified; callers must initialize what they use.
inline real_t* mttkrp_thread_scratch(std::size_t n) {
  thread_local std::vector<real_t, AlignedAllocator<real_t>> buf;
  if (buf.size() < n) {
    buf.resize(n);
  }
  return buf.data();
}

}  // namespace aoadmm::detail
