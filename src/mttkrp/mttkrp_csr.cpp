#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "util/error.hpp"

namespace aoadmm {

void mttkrp_csf_csr(const CsfTensor& csf, cspan<const Matrix> factors,
                    const CsrMatrix& leaf, Matrix& out,
                    MttkrpSchedule schedule) {
  AOADMM_MTTKRP_OBS("csf_csr");
  AOADMM_CHECK(factors.size() == csf.order());
  const std::size_t leaf_mode = csf.level_mode(csf.order() - 1);
  AOADMM_CHECK_MSG(leaf.rows() == csf.level_dim(csf.order() - 1),
                   "CSR leaf factor row count mismatch");
  const std::size_t f = leaf.cols();
  // The other factors must agree on rank; the dense copy of the leaf factor
  // in `factors` is ignored (it may be stale).
  for (std::size_t m = 0; m < factors.size(); ++m) {
    if (m != leaf_mode) {
      AOADMM_CHECK(factors[m].cols() == f);
    }
  }

  // The leaf op itself stays runtime-length (it walks the row's sparse
  // column list); the fixed-rank dispatch still pays off in the skeleton's
  // Hadamard/accumulate loops.
  detail::rank_dispatch(f, [&](auto rc) {
    constexpr int R = decltype(rc)::value;
    detail::mttkrp_csf_skeleton<R>(
        csf, factors, f,
        [&leaf](index_t idx, real_t v, real_t* __restrict z, std::size_t) {
          const auto [cols, vals] = leaf.row(idx);
          const std::size_t n = cols.size();
          for (std::size_t k = 0; k < n; ++k) {
            z[cols[k]] += v * vals[k];
          }
        },
        out, /*accumulate=*/false, schedule);
  });
}

}  // namespace aoadmm
