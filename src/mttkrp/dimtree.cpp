#include "mttkrp/dimtree.hpp"

#include <algorithm>

#include "mttkrp/alto.hpp"
#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/mttkrp_obs.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel_stats.hpp"
#include "parallel/runtime.hpp"
#include "tensor/alto.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace aoadmm::detail {

namespace {

/// Process-wide reuse counters mirroring the per-engine DimTreeStats.
struct DimTreeMetrics {
  obs::Counter computed;
  obs::Counter reused;
  static const DimTreeMetrics& get() {
    static const DimTreeMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return DimTreeMetrics{reg.counter("mttkrp/dimtree/levels_computed"),
                            reg.counter("mttkrp/dimtree/levels_reused")};
    }();
    return m;
  }
};

}  // namespace

void DimTreeEngine::bind(const CsfTensor& csf, std::size_t rank) {
  if (tree_ == &csf && rank_ == rank) {
    return;
  }
  AOADMM_CHECK_MSG(csf.order() >= 3,
                   "dimension-tree MTTKRP needs order >= 3");
  tree_ = &csf;
  rank_ = rank;
  order_ = csf.order();
  level_of_mode_.assign(order_, 0);
  for (std::size_t l = 0; l < order_; ++l) {
    level_of_mode_[csf.level_mode(l)] = l;
  }
  up_.resize(order_);
  down_.resize(order_);
  up_valid_.assign(order_, 0);
  down_valid_.assign(order_, 0);
  for (std::size_t l = 1; l + 1 < order_; ++l) {
    const std::size_t elems = csf.num_nodes(l) * rank_;
    up_[l].resize(elems);
    down_[l].resize(elems);
  }
}

void DimTreeEngine::invalidate_mode(std::size_t mode) noexcept {
  if (tree_ == nullptr || mode >= level_of_mode_.size()) {
    return;
  }
  const std::size_t s = level_of_mode_[mode];
  // up[l] reads the factors at levels l+1..order-1; down[l] reads levels
  // 0..l. Drop exactly the arrays whose inputs changed.
  for (std::size_t l = 1; l + 1 < order_; ++l) {
    if (l < s) {
      up_valid_[l] = 0;
    }
    if (l >= s) {
      down_valid_[l] = 0;
    }
  }
}

void DimTreeEngine::invalidate_all() noexcept {
  std::fill(up_valid_.begin(), up_valid_.end(), char{0});
  std::fill(down_valid_.begin(), down_valid_.end(), char{0});
}

void DimTreeEngine::compose_bounds(std::size_t level, int planned) {
  const auto& root_bounds =
      tree_->root_partition(static_cast<std::size_t>(planned));
  bounds_buf_.assign(root_bounds.begin(), root_bounds.end());
  for (std::size_t l = 0; l < level; ++l) {
    const auto fptr = tree_->fptr(l);
    for (std::size_t& b : bounds_buf_) {
      b = static_cast<std::size_t>(fptr[b]);
    }
  }
}

/// up[l][n] = sum over children c of inclusive(c). Disjoint writes per node,
/// parallel over the composed root chunks at level l.
template <int R>
void DimTreeEngine::refresh_up(std::size_t level, cspan<const Matrix> factors,
                               int planned) {
  using Ops = RowOps<R>;
  const std::size_t f = rank_;
  const bool child_is_leaf = (level + 1 == order_ - 1);
  const auto fptr = tree_->fptr(level);
  const auto child_fids = tree_->fids(level + 1);
  const auto vals = tree_->vals();
  const real_t* __restrict child_factor =
      factors[tree_->level_mode(level + 1)].data();
  const real_t* __restrict up_next =
      child_is_leaf ? nullptr : up_[level + 1].data();
  real_t* __restrict up = up_[level].data();

  compose_bounds(level, planned);
  const std::size_t parts = bounds_buf_.size() - 1;
  const std::size_t* __restrict bounds = bounds_buf_.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    const double t0 = mttkrp_now();
    for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
         c += team) {
      for (std::size_t n = bounds[c]; n < bounds[c + 1]; ++n) {
        real_t* __restrict z = up + n * f;
        Ops::zero(z, f);
        for (offset_t ch = fptr[n]; ch < fptr[n + 1]; ++ch) {
          const real_t* __restrict row =
              child_factor + static_cast<std::size_t>(child_fids[ch]) * f;
          if (child_is_leaf) {
            Ops::axpy(z, vals[ch], row, f);
          } else {
            Ops::mul_add(z, up_next + static_cast<std::size_t>(ch) * f, row,
                         f);
          }
        }
      }
    }
    busy.add(tid, mttkrp_now() - t0);
  }
}

/// down[l][c] = down[l-1][parent(c)] ∘ row(c). Iterates the parents at
/// level l-1 so each child is written exactly once.
template <int R>
void DimTreeEngine::refresh_down(std::size_t level,
                                 cspan<const Matrix> factors, int planned) {
  using Ops = RowOps<R>;
  const std::size_t f = rank_;
  const std::size_t pl = level - 1;
  const auto fptr = tree_->fptr(pl);
  const auto fids = tree_->fids(level);
  const auto root_fids = tree_->fids(0);
  const real_t* __restrict own_factor =
      factors[tree_->level_mode(level)].data();
  const real_t* __restrict root_factor =
      factors[tree_->level_mode(0)].data();
  const real_t* __restrict down_parent = pl >= 1 ? down_[pl].data() : nullptr;
  real_t* __restrict down = down_[level].data();

  compose_bounds(pl, planned);
  const std::size_t parts = bounds_buf_.size() - 1;
  const std::size_t* __restrict bounds = bounds_buf_.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    const double t0 = mttkrp_now();
    for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
         c += team) {
      for (std::size_t p = bounds[c]; p < bounds[c + 1]; ++p) {
        const real_t* __restrict base =
            pl == 0 ? root_factor + static_cast<std::size_t>(root_fids[p]) * f
                    : down_parent + p * f;
        for (offset_t ch = fptr[p]; ch < fptr[p + 1]; ++ch) {
          Ops::mul(down + static_cast<std::size_t>(ch) * f, base,
                   own_factor + static_cast<std::size_t>(fids[ch]) * f, f);
        }
      }
    }
    busy.add(tid, mttkrp_now() - t0);
  }
}

/// Root target: K(root_fid(r)) = sum over level-1 children of
/// row(c) ∘ up[1][c]. Root rows are distinct, so writes are race-free.
template <int R>
void DimTreeEngine::combine_root(cspan<const Matrix> factors, Matrix& out,
                                 int planned) {
  using Ops = RowOps<R>;
  const std::size_t f = rank_;
  const auto root_fids = tree_->fids(0);
  const auto fptr = tree_->fptr(0);
  const auto child_fids = tree_->fids(1);
  const real_t* __restrict child_factor =
      factors[tree_->level_mode(1)].data();
  const real_t* __restrict up1 = up_[1].data();

  const auto& bounds =
      tree_->root_partition(static_cast<std::size_t>(planned));
  const std::size_t parts = bounds.size() - 1;
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    const double t0 = mttkrp_now();
    for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
         c += team) {
      for (std::size_t r = bounds[c]; r < bounds[c + 1]; ++r) {
        real_t* __restrict krow =
            out.data() + static_cast<std::size_t>(root_fids[r]) * f;
        for (offset_t ch = fptr[r]; ch < fptr[r + 1]; ++ch) {
          Ops::mul_add(krow, up1 + static_cast<std::size_t>(ch) * f,
                       child_factor +
                           static_cast<std::size_t>(child_fids[ch]) * f,
                       f);
        }
      }
    }
    busy.add(tid, mttkrp_now() - t0);
  }
}

/// Internal target at level t: contribution of node n is
/// down[t-1][parent(n)] ∘ up[t][n], scattered into shared output rows via
/// the privatized per-thread reduction (serial fast path below one thread).
template <int R>
void DimTreeEngine::combine_inner(std::size_t t, cspan<const Matrix> factors,
                                  Matrix& out, int planned) {
  using Ops = RowOps<R>;
  const std::size_t f = rank_;
  const std::size_t pl = t - 1;
  const auto fptr = tree_->fptr(pl);
  const auto fids = tree_->fids(t);
  const auto root_fids = tree_->fids(0);
  const real_t* __restrict root_factor =
      factors[tree_->level_mode(0)].data();
  const real_t* __restrict down_parent = pl >= 1 ? down_[pl].data() : nullptr;
  const real_t* __restrict up = up_[t].data();

  compose_bounds(pl, planned);
  const std::size_t parts = bounds_buf_.size() - 1;
  const std::size_t* __restrict bounds = bounds_buf_.data();
  const std::size_t copy_elems = out.rows() * f;
  const auto out_rows = static_cast<std::ptrdiff_t>(out.rows());

  if (planned <= 1) {
    obs::BusyTimes busy(1, obs::RegionDomain::kMttkrp);
    real_t* const contrib = mttkrp_thread_scratch(f);
    const double t0 = mttkrp_now();
    for (std::size_t p = 0; p < static_cast<std::size_t>(tree_->num_nodes(pl));
         ++p) {
      const real_t* __restrict base =
          pl == 0 ? root_factor + static_cast<std::size_t>(root_fids[p]) * f
                  : down_parent + p * f;
      for (offset_t ch = fptr[p]; ch < fptr[p + 1]; ++ch) {
        Ops::mul(contrib, base, up + static_cast<std::size_t>(ch) * f, f);
        Ops::add(out.data() + static_cast<std::size_t>(fids[ch]) * f, contrib,
                 f);
      }
    }
    busy.add(0, mttkrp_now() - t0);
    return;
  }

  BufferTable table(planned);
  real_t** const bufs = table.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    real_t* const base_buf = mttkrp_thread_scratch(f + copy_elems);
    real_t* const contrib = base_buf;
    const double t0 = mttkrp_now();
    if (tid < planned) {
      real_t* const local = base_buf + f;
      std::fill(local, local + copy_elems, real_t{0});
      bufs[tid] = local;
      for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
           c += team) {
        for (std::size_t p = bounds[c]; p < bounds[c + 1]; ++p) {
          const real_t* __restrict dbase =
              pl == 0 ? root_factor +
                            static_cast<std::size_t>(root_fids[p]) * f
                      : down_parent + p * f;
          for (offset_t ch = fptr[p]; ch < fptr[p + 1]; ++ch) {
            Ops::mul(contrib, dbase, up + static_cast<std::size_t>(ch) * f,
                     f);
            Ops::add(local + static_cast<std::size_t>(fids[ch]) * f, contrib,
                     f);
          }
        }
      }
    }
    busy.add(tid, mttkrp_now() - t0);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp barrier
#endif

    const double t1 = mttkrp_now();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (std::ptrdiff_t row = 0; row < out_rows; ++row) {
      real_t* __restrict dst = out.data() + static_cast<std::size_t>(row) * f;
      for (int p = 0; p < planned; ++p) {
        if (bufs[p] != nullptr) {
          Ops::add(dst, bufs[p] + static_cast<std::size_t>(row) * f, f);
        }
      }
    }
    busy.add(tid, mttkrp_now() - t1);
  }
}

/// Leaf target: contribution of leaf n is val(n) · down[order-2][parent(n)].
template <int R>
void DimTreeEngine::combine_leaf(cspan<const Matrix> factors, Matrix& out,
                                 int planned) {
  using Ops = RowOps<R>;
  (void)factors;
  const std::size_t f = rank_;
  const std::size_t pl = order_ - 2;
  const auto fptr = tree_->fptr(pl);
  const auto leaf_fids = tree_->fids(order_ - 1);
  const auto vals = tree_->vals();
  const real_t* __restrict down_parent = down_[pl].data();

  compose_bounds(pl, planned);
  const std::size_t parts = bounds_buf_.size() - 1;
  const std::size_t* __restrict bounds = bounds_buf_.data();
  const std::size_t copy_elems = out.rows() * f;
  const auto out_rows = static_cast<std::ptrdiff_t>(out.rows());

  if (planned <= 1) {
    obs::BusyTimes busy(1, obs::RegionDomain::kMttkrp);
    const double t0 = mttkrp_now();
    for (std::size_t p = 0; p < static_cast<std::size_t>(tree_->num_nodes(pl));
         ++p) {
      const real_t* __restrict base = down_parent + p * f;
      for (offset_t ch = fptr[p]; ch < fptr[p + 1]; ++ch) {
        Ops::axpy(out.data() + static_cast<std::size_t>(leaf_fids[ch]) * f,
                  vals[ch], base, f);
      }
    }
    busy.add(0, mttkrp_now() - t0);
    return;
  }

  BufferTable table(planned);
  real_t** const bufs = table.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    real_t* const base_buf = mttkrp_thread_scratch(copy_elems);
    const double t0 = mttkrp_now();
    if (tid < planned) {
      real_t* const local = base_buf;
      std::fill(local, local + copy_elems, real_t{0});
      bufs[tid] = local;
      for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
           c += team) {
        for (std::size_t p = bounds[c]; p < bounds[c + 1]; ++p) {
          const real_t* __restrict base = down_parent + p * f;
          for (offset_t ch = fptr[p]; ch < fptr[p + 1]; ++ch) {
            Ops::axpy(local + static_cast<std::size_t>(leaf_fids[ch]) * f,
                      vals[ch], base, f);
          }
        }
      }
    }
    busy.add(tid, mttkrp_now() - t0);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp barrier
#endif

    const double t1 = mttkrp_now();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (std::ptrdiff_t row = 0; row < out_rows; ++row) {
      real_t* __restrict dst = out.data() + static_cast<std::size_t>(row) * f;
      for (int p = 0; p < planned; ++p) {
        if (bufs[p] != nullptr) {
          Ops::add(dst, bufs[p] + static_cast<std::size_t>(row) * f, f);
        }
      }
    }
    busy.add(tid, mttkrp_now() - t1);
  }
}

void DimTreeEngine::mttkrp(const CsfTensor& csf, cspan<const Matrix> factors,
                           std::size_t target_mode, Matrix& out,
                           MttkrpSchedule schedule) {
  AOADMM_MTTKRP_OBS("dimtree");
  (void)schedule;  // every policy maps to the privatized deterministic path
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 3);
  AOADMM_CHECK(factors.size() == order);
  AOADMM_CHECK(target_mode < order);
  const std::size_t f = factors[target_mode].cols();
  for (std::size_t m = 0; m < order; ++m) {
    AOADMM_CHECK(factors[m].cols() == f);
    AOADMM_CHECK(factors[m].rows() == csf.dims()[m]);
  }

  bind(csf, f);
  const std::size_t t = level_of_mode_[target_mode];

  const index_t rows = csf.dims()[target_mode];
  if (out.rows() != rows || out.cols() != f) {
    out.resize(rows, f);
  } else {
    out.zero();
  }

  const int planned = std::max(max_threads(), 1);
  const auto& metrics = DimTreeMetrics::get();

  rank_dispatch(f, [&](auto rc) {
    constexpr int R = decltype(rc)::value;
    const auto ensure_up = [&](auto&& self, std::size_t l) -> void {
      if (up_valid_[l]) {
        ++stats_.levels_reused;
        metrics.reused.add(1);
        return;
      }
      if (l + 2 < order_) {
        self(self, l + 1);
      }
      refresh_up<R>(l, factors, planned);
      up_valid_[l] = 1;
      ++stats_.levels_computed;
      metrics.computed.add(1);
    };
    const auto ensure_down = [&](auto&& self, std::size_t l) -> void {
      if (down_valid_[l]) {
        ++stats_.levels_reused;
        metrics.reused.add(1);
        return;
      }
      if (l >= 2) {
        self(self, l - 1);
      }
      refresh_down<R>(l, factors, planned);
      down_valid_[l] = 1;
      ++stats_.levels_computed;
      metrics.computed.add(1);
    };

    if (t == 0) {
      ensure_up(ensure_up, 1);
      combine_root<R>(factors, out, planned);
    } else if (t == order_ - 1) {
      ensure_down(ensure_down, order_ - 2);
      combine_leaf<R>(factors, out, planned);
    } else {
      if (t >= 2) {
        ensure_down(ensure_down, t - 1);
      }
      ensure_up(ensure_up, t);
      combine_inner<R>(t, factors, out, planned);
    }
  });
}

}  // namespace aoadmm::detail

namespace aoadmm {

MttkrpKernel resolve_auto_kernel(MttkrpKernel requested, CsfStrategy strategy,
                                 bool tiled, bool dense_leaf,
                                 std::size_t order, cspan<index_t> dims,
                                 offset_t nnz, rank_t rank) {
  if (requested != MttkrpKernel::kAuto) {
    return requested;
  }
  if (tiled) {
    return MttkrpKernel::kTiled;
  }
  if (strategy == CsfStrategy::kAllMode) {
    // One race-free root tree per mode: the per-mode root kernel is already
    // optimal and the dimension tree has no single tree to cache over.
    return MttkrpKernel::kAllMode;
  }
  if (!dense_leaf || order < 3) {
    return MttkrpKernel::kOneTree;
  }
  if (order >= 4) {
    // The cyclic sweep recomputes order() MTTKRPs per iteration; cached
    // partials amortize better the deeper the tree. The caches are
    // O(nnz x rank) per level though, so past kDimTreeMaxRank the extra
    // memory traffic eats the flop savings (measured crossover on
    // bench_mttkrp_kernels: wins up to rank 32, parity-to-loss at 64).
    if (rank == 0 || rank < kDimTreeMaxRank) {
      AOADMM_LOG_DEBUG << "mttkrp kAuto -> kDimTree (order=" << order
                       << " rank=" << rank << ")";
      return MttkrpKernel::kDimTree;
    }
    AOADMM_LOG_DEBUG << "mttkrp kAuto -> kOneTree (order=" << order
                     << " rank=" << rank << " >= " << kDimTreeMaxRank << ")";
    return MttkrpKernel::kOneTree;
  }
  // Order 3: the one-tree walk is already two-level. Prefer ALTO only for
  // the sparse, skewed tensors whose root slices defeat fiber splitting.
  index_t dmin = dims.empty() ? 1 : dims[0];
  index_t dmax = dmin;
  double cells = 1.0;
  for (index_t d : dims) {
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
    cells *= static_cast<double>(d);
  }
  const double density = cells > 0 ? static_cast<double>(nnz) / cells : 1.0;
  const double skew =
      dmin > 0 ? static_cast<double>(dmax) / static_cast<double>(dmin) : 1.0;
  if (skew > 4.0 && density < 1e-4 && alto_linearizable(dims)) {
    AOADMM_LOG_DEBUG << "mttkrp kAuto -> kAlto (skew=" << skew
                     << " density=" << density << ")";
    return MttkrpKernel::kAlto;
  }
  AOADMM_LOG_DEBUG << "mttkrp kAuto -> kOneTree (skew=" << skew
                   << " density=" << density << ")";
  return MttkrpKernel::kOneTree;
}

void mttkrp_dispatch(const CsfTensor& csf, cspan<const Matrix> factors,
                     std::size_t target_mode, Matrix& out,
                     MttkrpSchedule schedule, MttkrpKernel kernel,
                     detail::DimTreeEngine* dimtree) {
  switch (kernel) {
    case MttkrpKernel::kDimTree:
      AOADMM_CHECK_MSG(dimtree != nullptr,
                       "kDimTree dispatch needs a DimTreeEngine");
      dimtree->mttkrp(csf, factors, target_mode, out, schedule);
      return;
    case MttkrpKernel::kAlto:
      mttkrp_alto(csf.alto_index(), factors, target_mode, out, schedule);
      return;
    case MttkrpKernel::kTiled:
      throw InvalidArgument(
          "kTiled must dispatch through mttkrp_tiled on a tiled CsfSet");
    case MttkrpKernel::kAuto:
    case MttkrpKernel::kAllMode:
    case MttkrpKernel::kOneTree:
      break;
  }
  mttkrp_dispatch(csf, factors, target_mode, out, schedule);
}

}  // namespace aoadmm
