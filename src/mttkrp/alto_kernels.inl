// Templated ALTO MTTKRP kernel bodies, shared between the portable
// translation unit (mttkrp/alto.cpp) and the BMI2-specialized one
// (mttkrp/alto_bmi2.cpp, compiled with -mbmi2 on x86-64 so the pext
// decode inlines into every walk, including the OpenMP regions). All
// definitions are in an anonymous namespace: each TU instantiates its own
// copies under its own instruction-set flags, so there is no ODR overlap.
#include <algorithm>

#include "mttkrp/alto.hpp"
#include "mttkrp/microkernels.hpp"
#include "mttkrp/mttkrp_impl.hpp"
#include "mttkrp/thread_scratch.hpp"
#include "obs/parallel_stats.hpp"
#include "parallel/runtime.hpp"

namespace aoadmm {
namespace {

using detail::atomic_add_row;
using detail::BufferTable;

/// Portable decode: the per-mode shift/mask run loop.
struct RunDecode {
  const AltoTensor& alto;
  index_t operator()(std::uint64_t code, std::size_t m) const noexcept {
    return alto.decode_mode(code, m);
  }
};

/// Walk the non-zeros [lo, hi), delivering each target-mode row's summed
/// contribution through scatter(row_id, acc). Because the stream is sorted
/// by the interleaved code, runs of non-zeros sharing the target row are
/// common (whenever the target owns the low interleaved bits); the
/// accumulate-and-flush keeps those in a register-resident buffer instead
/// of re-touching the output row per non-zero.
template <int R, typename Decode, typename Scatter>
void alto_walk(const AltoTensor& alto, cspan<const Matrix> factors,
               std::size_t target, std::size_t f, std::size_t lo,
               std::size_t hi, real_t* __restrict contrib,
               real_t* __restrict acc, const Decode& decode,
               const Scatter& scatter) {
  using Ops = detail::RowOps<R>;
  const std::size_t order = alto.order();
  const std::uint64_t* __restrict codes = alto.codes().data();
  const real_t* __restrict vals = alto.vals().data();
  if (lo >= hi) {
    return;
  }

  // Order-3 fast path: both non-target rows are known up front, so the
  // contribution is one fused pass instead of a scale + Hadamard pair.
  const bool fused3 = order == 3;
  std::size_t ma = 0;
  std::size_t mb = 0;
  const real_t* fa = nullptr;
  const real_t* fb = nullptr;
  if (fused3) {
    ma = target == 0 ? 1 : 0;
    mb = target == 2 ? 1 : 2;
    fa = factors[ma].data();
    fb = factors[mb].data();
  }
  const auto compute = [&](std::size_t i, std::uint64_t code,
                           real_t* __restrict dst) {
    if (fused3) {
      Ops::scale_mul(dst, vals[i],
                     fa + static_cast<std::size_t>(decode(code, ma)) * f,
                     fb + static_cast<std::size_t>(decode(code, mb)) * f, f);
      return;
    }
    bool first = true;
    for (std::size_t m = 0; m < order; ++m) {
      if (m == target) {
        continue;
      }
      const real_t* __restrict arow =
          factors[m].data() +
          static_cast<std::size_t>(decode(code, m)) * f;
      if (first) {
        Ops::scale(dst, vals[i], arow, f);
        first = false;
      } else {
        Ops::mul_inplace(dst, arow, f);
      }
    }
  };

  // Peek one code ahead: a target row visited by a single non-zero is
  // scattered straight from `contrib` (no accumulator copy); only genuine
  // same-row runs touch `acc`. Summation order is unchanged.
  index_t row = decode(codes[lo], target);
  bool pending = false;
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint64_t code = codes[i];
    const bool last = i + 1 == hi;
    const index_t next = last ? row : decode(codes[i + 1], target);
    if (pending) {
      compute(i, code, contrib);
      Ops::add(acc, contrib, f);
      if (last || next != row) {
        scatter(row, acc);
        pending = false;
      }
    } else if (!last && next == row) {
      compute(i, code, acc);
      pending = true;
    } else {
      compute(i, code, contrib);
      scatter(row, contrib);
    }
    row = next;
  }
}

template <int R, typename Decode>
void alto_serial(const AltoTensor& alto, cspan<const Matrix> factors,
                 std::size_t target, std::size_t f, Matrix& out,
                 const Decode& decode) {
  using Ops = detail::RowOps<R>;
  obs::BusyTimes busy(1, obs::RegionDomain::kMttkrp);
  real_t* const base = detail::mttkrp_thread_scratch(2 * f);
  const double t0 = detail::mttkrp_now();
  alto_walk<R>(alto, factors, target, f, 0,
               static_cast<std::size_t>(alto.nnz()), base, base + f, decode,
               [&](index_t row, const real_t* __restrict src) {
                 Ops::add(out.data() + static_cast<std::size_t>(row) * f, src,
                          f);
               });
  busy.add(0, detail::mttkrp_now() - t0);
}

/// Legacy per-element-atomic scatter behind the explicit kDynamic policy.
template <int R, typename Decode>
void alto_atomic(const AltoTensor& alto, cspan<const Matrix> factors,
                 std::size_t target, std::size_t f, Matrix& out, int planned,
                 const Decode& decode) {
  const auto& bounds =
      alto.nnz_partition(static_cast<std::size_t>(planned));
  const std::size_t parts = bounds.size() - 1;
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    real_t* const base = detail::mttkrp_thread_scratch(2 * f);
    const double t0 = detail::mttkrp_now();
    const auto scatter = [&](index_t row, const real_t* __restrict src) {
      atomic_add_row(out.data() + static_cast<std::size_t>(row) * f, src, f);
    };
    for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
         c += team) {
      alto_walk<R>(alto, factors, target, f, bounds[c], bounds[c + 1], base,
                   base + f, decode, scatter);
    }
    busy.add(tid, detail::mttkrp_now() - t0);
  }
}

/// Privatized reduction: per-thread dense output copies folded row-wise.
template <int R, typename Decode>
void alto_privatized(const AltoTensor& alto, cspan<const Matrix> factors,
                     std::size_t target, std::size_t f, Matrix& out,
                     int planned, const Decode& decode) {
  using Ops = detail::RowOps<R>;
  const auto& bounds =
      alto.nnz_partition(static_cast<std::size_t>(planned));
  const std::size_t parts = bounds.size() - 1;
  const auto out_rows = static_cast<std::ptrdiff_t>(out.rows());
  const std::size_t copy_elems = out.rows() * f;

  BufferTable table(planned);
  real_t** const bufs = table.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    real_t* const base = detail::mttkrp_thread_scratch(2 * f + copy_elems);
    const double t0 = detail::mttkrp_now();
    if (tid < planned) {
      real_t* const local = base + 2 * f;
      std::fill(local, local + copy_elems, real_t{0});
      bufs[tid] = local;
      const auto scatter = [&](index_t row, const real_t* __restrict src) {
        Ops::add(local + static_cast<std::size_t>(row) * f, src, f);
      };
      for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
           c += team) {
        alto_walk<R>(alto, factors, target, f, bounds[c], bounds[c + 1],
                     base, base + f, decode, scatter);
      }
    }
    busy.add(tid, detail::mttkrp_now() - t0);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp barrier
#endif

    const double t1 = detail::mttkrp_now();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (std::ptrdiff_t row = 0; row < out_rows; ++row) {
      real_t* __restrict dst = out.data() + static_cast<std::size_t>(row) * f;
      for (int p = 0; p < planned; ++p) {
        if (bufs[p] != nullptr) {
          Ops::add(dst, bufs[p] + static_cast<std::size_t>(row) * f, f);
        }
      }
    }
    busy.add(tid, detail::mttkrp_now() - t1);
  }
}

/// Owner-computes: rows private to one nnz chunk are written directly,
/// chunk-boundary rows go through compact slot buffers plus a fixup pass.
template <int R, typename Decode>
void alto_owner(const AltoTensor& alto, cspan<const Matrix> factors,
                std::size_t target, std::size_t f, Matrix& out, int planned,
                const Decode& decode) {
  using Ops = detail::RowOps<R>;
  const MttkrpOwnerPlan& plan =
      alto.owner_plan(target, static_cast<std::size_t>(planned));
  const std::size_t parts = plan.parts;
  const auto nshared = static_cast<std::ptrdiff_t>(plan.shared_rows.size());
  const std::size_t slot_elems = static_cast<std::size_t>(nshared) * f;
  const std::int32_t* __restrict row_slot = plan.row_slot.data();

  BufferTable table(planned);
  real_t** const bufs = table.data();
  obs::BusyTimes busy(planned, obs::RegionDomain::kMttkrp);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    const int tid = thread_id();
    const auto team = static_cast<std::size_t>(std::max(team_size(), 1));
    real_t* const base = detail::mttkrp_thread_scratch(2 * f + slot_elems);
    const double t0 = detail::mttkrp_now();
    if (tid < planned) {
      real_t* const slot_buf = base + 2 * f;
      std::fill(slot_buf, slot_buf + slot_elems, real_t{0});
      bufs[tid] = slot_buf;
      const auto scatter = [&](index_t row, const real_t* __restrict src) {
        const std::int32_t slot = row_slot[row];
        if (slot < 0) {
          Ops::add(out.data() + static_cast<std::size_t>(row) * f, src, f);
        } else {
          Ops::add(slot_buf + static_cast<std::size_t>(slot) * f, src, f);
        }
      };
      for (std::size_t c = static_cast<std::size_t>(tid); c < parts;
           c += team) {
        alto_walk<R>(alto, factors, target, f, plan.root_bounds[c],
                     plan.root_bounds[c + 1], base, base + f, decode,
                     scatter);
      }
    }
    busy.add(tid, detail::mttkrp_now() - t0);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp barrier
#endif

    const double t1 = detail::mttkrp_now();
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (std::ptrdiff_t s = 0; s < nshared; ++s) {
      real_t* __restrict dst =
          out.data() +
          static_cast<std::size_t>(
              plan.shared_rows[static_cast<std::size_t>(s)]) *
              f;
      for (int p = 0; p < planned; ++p) {
        if (bufs[p] != nullptr) {
          Ops::add(dst, bufs[p] + static_cast<std::size_t>(s) * f, f);
        }
      }
    }
    busy.add(tid, detail::mttkrp_now() - t1);
  }
}

/// Schedule switch + rank dispatch shared by both decode flavors. `sched`
/// must already be resolved (never kAuto) and `planned` >= 1.
template <typename Decode>
void run_alto_kernels(const AltoTensor& alto, cspan<const Matrix> factors,
                      std::size_t target, std::size_t f, Matrix& out,
                      MttkrpSchedule sched, int planned,
                      const Decode& decode) {
  detail::rank_dispatch(f, [&](auto rc) {
    constexpr int R = decltype(rc)::value;
    if (planned <= 1) {
      alto_serial<R>(alto, factors, target, f, out, decode);
    } else if (sched == MttkrpSchedule::kDynamic) {
      alto_atomic<R>(alto, factors, target, f, out, planned, decode);
    } else if (sched == MttkrpSchedule::kOwner) {
      alto_owner<R>(alto, factors, target, f, out, planned, decode);
    } else {
      alto_privatized<R>(alto, factors, target, f, out, planned, decode);
    }
  });
}

}  // namespace
}  // namespace aoadmm
