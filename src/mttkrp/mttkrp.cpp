#include "mttkrp/mttkrp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aoadmm {

LeafFormat auto_select_leaf_format(offset_t nnz, std::size_t rows,
                                   std::size_t cols,
                                   cspan<offset_t> column_nnz,
                                   real_t threshold) {
  AOADMM_CHECK(column_nnz.size() == cols);
  const std::size_t total = rows * cols;
  if (total == 0) {
    return LeafFormat::kDense;
  }
  const real_t density =
      static_cast<real_t>(nnz) / static_cast<real_t>(total);
  if (density >= threshold) {
    return LeafFormat::kDense;
  }

  // Column concentration: how much of the non-zero mass lives in the
  // "dense" columns (those above the mean column count)? Strong
  // concentration is the pattern the hybrid panel exploits (paper §IV.C:
  // "C may have a few mostly-dense columns, with the remaining ones
  // containing only a few non-zeros").
  const real_t mean_col =
      static_cast<real_t>(nnz) / static_cast<real_t>(cols);
  offset_t dense_mass = 0;
  std::size_t dense_cols = 0;
  for (const offset_t c : column_nnz) {
    if (static_cast<real_t>(c) > mean_col) {
      dense_mass += c;
      ++dense_cols;
    }
  }
  const real_t concentration =
      nnz > 0 ? static_cast<real_t>(dense_mass) / static_cast<real_t>(nnz)
              : real_t{0};
  const real_t dense_col_frac =
      static_cast<real_t>(dense_cols) / static_cast<real_t>(cols);

  // Few columns holding most of the mass: hybrid. The 2/3-mass-in-1/3-of-
  // columns cut matches where the paper observed CSR-H to win (Reddit) vs
  // lose (Amazon, whose mass is spread thin over a very long mode).
  if (dense_cols > 0 && concentration > real_t{2} / 3 &&
      dense_col_frac < real_t{1} / 3) {
    return LeafFormat::kHybrid;
  }
  return LeafFormat::kCsr;
}

}  // namespace aoadmm
