// Write-ahead log for streaming ingest: every batch is appended to an
// on-disk segment BEFORE StreamingTensor::apply() folds it in, so a crash
// (kill -9 included) between ingest and the next refresh loses nothing —
// restart replays the log and reaches the same tensor state.
//
// On-disk layout, all little-endian raw POD (the same convention as
// core/checkpoint.cpp), rooted at a caller-chosen path prefix:
//
//   <prefix>.seg<N>   append-only segments, N monotonically increasing
//   <prefix>.ckpt     compaction checkpoint sidecar (atomic tmp+rename)
//
// Segment = header {magic "AOWALSG0", u32 version, u32 sizeof(real_t)}
// followed by length-prefixed records:
//
//   u64 payload_len | payload | u64 fnv1a(payload)
//   payload = u64 seq, u32 order, u64 nnz,
//             per-mode u32 index arrays, real_t values
//
// Torn tails are expected, not errors: a crash mid-append leaves a short or
// checksum-failing final record, and recovery stops the scan there and
// reports it in WalRecoveryReport. After recovery new appends go to a
// fresh segment (max N + 1) — recovered segments are never re-opened for
// writing, so a torn tail never needs in-place truncation.
//
// Checkpoint = {magic "AOWALCK0", u32 version, u32 sizeof(real_t),
// u64 covered_seq, u64 watermark, u32 order, u32 dims[], u64 nnz, index
// arrays, values, u64 checksum}. It snapshots the *compacted* live tensor,
// so once written every segment record with seq <= covered_seq is
// redundant and write_checkpoint() deletes all segments — the log stays
// bounded by the checkpoint cadence, not the stream length.
//
// Failure policy: by default append() degrades — a failed write (disk
// full, injected kWalWrite fault) counts robust/stream_wal_write_failures,
// journals kWalWriteFailed, and returns false while ingest continues
// unprotected. WalOptions::strict upgrades append failures to WalError for
// deployments that prefer to stop ingest over losing replayability.
// Corrupt *checkpoints* always throw WalError: unlike a torn segment tail,
// a bad checkpoint means silently recovering to a wrong state.
//
// Fsync policy: kNever (default) survives process death — the page cache
// belongs to the kernel, so kill -9 loses nothing — and keeps the append
// overhead in the noise. kEveryBatch/kEveryN additionally survive machine
// crashes at the documented throughput cost.
//
// Not thread-safe: the WAL belongs to the single ingest thread, like the
// StreamingTensor it protects.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace aoadmm {

class CooTensor;
class StreamingTensor;

enum class WalFsync {
  /// Never fsync: safe against process crashes, not machine crashes.
  kNever,
  /// fsync after every appended batch.
  kEveryBatch,
  /// fsync after every WalOptions::fsync_every_n batches.
  kEveryN,
};

const char* to_string(WalFsync f) noexcept;

struct WalOptions {
  WalFsync fsync = WalFsync::kNever;
  /// Batch period for WalFsync::kEveryN.
  std::uint64_t fsync_every_n = 64;
  /// Rotate to a new segment once the active one exceeds this many bytes.
  std::uint64_t segment_max_bytes = 64ull << 20;
  /// After this many appended batches checkpoint_due() turns true (the
  /// owner writes the checkpoint — the WAL cannot, it does not hold the
  /// compacted tensor). 0 = caller-driven checkpoints only.
  std::uint64_t checkpoint_every_batches = 0;
  /// Throw WalError on append failure instead of degrading.
  bool strict = false;
};

/// What recovery found and did. `detail` is empty for a clean recovery.
struct WalRecoveryReport {
  bool checkpoint_loaded = false;
  /// Scan stopped early at a short or checksum-failing record (expected
  /// after a crash mid-append).
  bool torn_tail = false;
  std::uint64_t segments_scanned = 0;
  /// Records replayed into the tensor.
  std::uint64_t records_recovered = 0;
  /// Records skipped because the checkpoint already covers their seq.
  std::uint64_t records_skipped = 0;
  std::uint64_t checkpoint_nnz = 0;
  std::uint64_t covered_seq = 0;
  /// Highest record seq seen (appends continue from here).
  std::uint64_t last_seq = 0;
  std::string detail;
};

class WriteAheadLog {
 public:
  /// Binds to `prefix` and scans for existing segments/checkpoint,
  /// creating the prefix directory when missing (throws WalError when it
  /// cannot be created). A WAL with on-disk state should be drained via
  /// recover_into() before the first append; appends always open a fresh
  /// segment either way.
  WriteAheadLog(std::string prefix, WalOptions opts);
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  const std::string& prefix() const noexcept { return prefix_; }
  const WalOptions& options() const noexcept { return opts_; }

  /// Append one batch record. Returns false (after counting and
  /// journaling) when the write fails and options().strict is off.
  bool append(const CooTensor& batch);

  /// True once checkpoint_every_batches appends have accumulated since the
  /// last checkpoint (always false when the cadence is 0).
  bool checkpoint_due() const noexcept;

  /// Atomically write the checkpoint sidecar covering everything appended
  /// so far, then delete all segments. `compacted` must be the live tensor
  /// contents (StreamingTensor::coo()) and `watermark` its watermark —
  /// recovery restores both exactly. Throws WalError on write failure
  /// (the previous checkpoint, if any, is left intact).
  void write_checkpoint(const CooTensor& compacted, index_t watermark);

  /// Replay checkpoint + segments into `tensor`, in order, skipping
  /// records the checkpoint covers. Call BEFORE StreamingTensor::attach_wal
  /// so replayed applies are not re-logged. Sets the stream/wal_replaying
  /// gauge for the duration and journals kWalRecovered. Throws WalError on
  /// a corrupt checkpoint; torn segment tails are reported, not thrown.
  WalRecoveryReport recover_into(StreamingTensor& tensor);

  /// Seq of the most recently appended (or recovered) record.
  std::uint64_t last_seq() const noexcept { return seq_; }
  std::uint64_t append_failures() const noexcept { return append_failures_; }
  std::uint64_t batches_since_checkpoint() const noexcept {
    return batches_since_checkpoint_;
  }
  std::uint64_t checkpoints_written() const noexcept { return checkpoints_; }

  /// Segment files currently on disk, ascending by segment number.
  std::vector<std::string> segment_files() const;
  std::string checkpoint_file() const { return prefix_ + ".ckpt"; }

 private:
  std::string segment_path(std::uint64_t n) const;
  bool open_segment_locked();
  void close_segment() noexcept;
  bool append_failed(const char* why);

  std::string prefix_;
  WalOptions opts_;
  std::string scratch_;  // reused record-payload buffer (append hot path)
  std::FILE* out_ = nullptr;
  std::uint64_t open_segment_ = 0;   // number of the segment out_ writes
  std::uint64_t next_segment_ = 1;   // next segment number to open
  std::uint64_t segment_bytes_ = 0;  // bytes written to the open segment
  std::uint64_t seq_ = 0;
  std::uint64_t unsynced_ = 0;  // batches since the last fsync
  std::uint64_t batches_since_checkpoint_ = 0;
  std::uint64_t append_failures_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace aoadmm
