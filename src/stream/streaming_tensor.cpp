#include "stream/streaming_tensor.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/telemetry/event_journal.hpp"
#include "obs/telemetry/trace_context.hpp"
#include "obs/telemetry/window_quantiles.hpp"
#include "stream/wal.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace aoadmm {
namespace {

/// Ingest-side registry handles, registered once per process (shared by
/// every StreamingTensor; per-instance numbers live in StreamingStats).
struct IngestMetrics {
  obs::Counter batches;
  obs::Counter ingest_nnz;
  obs::Counter ingest_seconds;
  obs::Counter appends;
  obs::Counter overwrites;
  obs::Counter evictions;
  obs::Counter late_drops;
  obs::Counter full_rebuilds;
  obs::Counter value_patches;
  obs::Counter compile_seconds;
  obs::Gauge nnz;
  obs::Gauge watermark;
  obs::Gauge ingest_nnz_per_sec;

  static const IngestMetrics& get() {
    static const IngestMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      IngestMetrics out;
      out.batches = reg.counter("stream/ingest_batches");
      out.ingest_nnz = reg.counter("stream/ingest_nnz");
      out.ingest_seconds = reg.counter("stream/ingest_seconds");
      out.appends = reg.counter("stream/appends");
      out.overwrites = reg.counter("stream/overwrites");
      out.evictions = reg.counter("stream/evictions");
      out.late_drops = reg.counter("stream/late_drops");
      out.full_rebuilds = reg.counter("stream/csf_full_rebuilds");
      out.value_patches = reg.counter("stream/csf_value_patches");
      out.compile_seconds = reg.counter("stream/compile_seconds");
      out.nnz = reg.gauge("stream/nnz");
      out.watermark = reg.gauge("stream/watermark");
      out.ingest_nnz_per_sec = reg.gauge("stream/ingest_nnz_per_sec");
      return out;
    }();
    return m;
  }
};

}  // namespace

StreamingTensor::StreamingTensor(std::vector<index_t> initial_dims,
                                 StreamingOptions opts)
    : opts_(opts), coo_(std::move(initial_dims)) {
  AOADMM_CHECK_MSG(coo_.order() >= 2, "streaming tensor order must be >= 2");
  if (opts_.time_mode == StreamingOptions::kLastMode) {
    opts_.time_mode = coo_.order() - 1;
  }
  AOADMM_CHECK_MSG(opts_.time_mode < coo_.order(),
                   "time_mode must name a mode of the tensor");
  AOADMM_CHECK_MSG(opts_.churn_threshold > 0,
                   "churn_threshold must be positive");
}

std::uint64_t StreamingTensor::hash_coord(const CooTensor& t,
                                          offset_t n) const {
  // FNV-1a over the coordinate tuple, 4 bytes per mode.
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t m = 0; m < t.order(); ++m) {
    std::uint32_t idx = t.index(m, n);
    for (int b = 0; b < 4; ++b) {
      h ^= (idx >> (8 * b)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

bool StreamingTensor::same_coord(offset_t a, const CooTensor& batch,
                                 offset_t b) const {
  for (std::size_t m = 0; m < coo_.order(); ++m) {
    if (coo_.index(m, a) != batch.index(m, b)) {
      return false;
    }
  }
  return true;
}

bool StreamingTensor::dead(offset_t n) const {
  return opts_.window > 0 &&
         coo_.index(opts_.time_mode, n) < evict_cutoff_;
}

void StreamingTensor::advance_watermark(index_t w) {
  watermark_ = std::max(watermark_, w);
  if (opts_.window > 0 && watermark_ >= opts_.window) {
    const index_t cutoff = watermark_ - opts_.window + 1;
    if (cutoff > evict_cutoff_) {
      offset_t newly_dead = 0;
      const std::size_t hi =
          std::min<std::size_t>(cutoff, live_per_tick_.size());
      for (std::size_t t = evict_cutoff_; t < hi; ++t) {
        newly_dead += live_per_tick_[t];
        live_per_tick_[t] = 0;
      }
      evict_cutoff_ = cutoff;
      if (newly_dead > 0) {
        dead_ += newly_dead;
        structural_dirty_ = true;
        stats_.evicted += newly_dead;
        IngestMetrics::get().evictions.add(static_cast<double>(newly_dead));
      }
    }
  }
}

std::uint64_t StreamingTensor::state_digest() const {
  // Per-entry FNV-1a hashes combined by wrapping addition: commutative, so
  // storage order (which recovery legitimately permutes) cannot matter.
  std::uint64_t digest = 0;
  for (offset_t n = 0; n < coo_.nnz(); ++n) {
    if (dead(n)) {
      continue;
    }
    std::uint64_t h = 1469598103934665603ULL;
    const auto fold = [&h](const void* data, std::size_t len) {
      const auto* p = static_cast<const unsigned char*>(data);
      for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
      }
    };
    for (std::size_t m = 0; m < order(); ++m) {
      const index_t idx = coo_.index(m, n);
      fold(&idx, sizeof(idx));
    }
    const real_t v = coo_.value(n);
    fold(&v, sizeof(v));
    digest += h;
  }
  return digest;
}

offset_t StreamingTensor::apply(const CooTensor& batch) {
  AOADMM_CHECK_MSG(batch.order() == order(),
                   "batch order does not match the streaming tensor");
  // Durability before mutation: the record must be on the log before any
  // state changes, or a crash mid-apply replays nothing.
  if (wal_ != nullptr) {
    wal_->append(batch);
  }
  const IngestMetrics& metrics = IngestMetrics::get();
  Timer timer;
  timer.start();

  const std::size_t tm = opts_.time_mode;

  // Advance the watermark over the whole batch first so eviction and
  // late-arrival drops see one consistent cutoff for the batch.
  index_t batch_max = 0;
  for (offset_t n = 0; n < batch.nnz(); ++n) {
    batch_max = std::max(batch_max, batch.index(tm, n));
  }
  if (batch.nnz() > 0) {
    advance_watermark(batch_max);
  }

  offset_t appended = 0;
  std::vector<index_t> coord(order());
  for (offset_t n = 0; n < batch.nnz(); ++n) {
    const index_t t = batch.index(tm, n);
    if (opts_.window > 0 && t < evict_cutoff_) {
      ++stats_.late_dropped;
      metrics.late_drops.add(1);
      continue;
    }

    const std::uint64_t h = hash_coord(batch, n);
    std::vector<offset_t>& bucket = coord_map_[h];
    offset_t pos = coo_.nnz();  // sentinel: not found
    for (const offset_t p : bucket) {
      if (same_coord(p, batch, n)) {
        pos = p;
        break;
      }
    }

    if (pos != coo_.nnz()) {
      // Overwrite-duplicate: a value-only change the compiled CSF can
      // absorb without a rebuild.
      if (coo_.value(pos) != batch.value(n)) {
        coo_.value(pos) = batch.value(n);
        if (!is_dirty_[pos]) {
          is_dirty_[pos] = 1;
          value_dirty_.push_back(pos);
        }
        ++stats_.overwritten;
        metrics.overwrites.add(1);
      }
      continue;
    }

    // Append: grow every mode to fit (overflow-checked) and store.
    for (std::size_t m = 0; m < order(); ++m) {
      coord[m] = batch.index(m, n);
      coo_.grow_to_fit(m, coord[m]);
    }
    coo_.add(coord, batch.value(n));
    bucket.push_back(pos);
    is_dirty_.push_back(0);
    if (live_per_tick_.size() <= t) {
      live_per_tick_.resize(static_cast<std::size_t>(t) + 1, 0);
    }
    ++live_per_tick_[t];
    structural_dirty_ = true;
    ++appended;
    ++stats_.appended;
    metrics.appends.add(1);
  }

  // Bound the structural garbage: past the churn threshold the deferred
  // eviction sweep stops being an amortization and starts being bloat.
  if (dead_ > 0 && nnz() > 0 &&
      static_cast<double>(dead_) >
          opts_.churn_threshold * static_cast<double>(nnz())) {
    compact();
  }

  ++stats_.batches;
  timer.stop();
  metrics.batches.add(1);
  metrics.ingest_nnz.add(static_cast<double>(batch.nnz()));
  metrics.ingest_seconds.add(timer.seconds());
  metrics.nnz.set(static_cast<double>(nnz()));
  metrics.watermark.set(static_cast<double>(watermark_));
  if (timer.seconds() > 0) {
    metrics.ingest_nnz_per_sec.set(static_cast<double>(batch.nnz()) /
                                   timer.seconds());
  }

  // Telemetry plane: mint this batch's trace id, record the batch size in
  // the trailing window, and journal the ingest.
  last_batch_id_ = obs::next_batch_id();
  static obs::WindowedHistogram& batch_window =
      obs::windowed_histogram(obs::kWindowIngestBatchSize);
  batch_window.observe(static_cast<double>(batch.nnz()));
  obs::TraceContext ctx = obs::current_trace();
  ctx.batch_id = last_batch_id_;
  obs::journal_event(obs::EventKind::kBatchIngested, ctx,
                     obs::EventJournal::Fields{}
                         .num("nnz", static_cast<std::uint64_t>(batch.nnz()))
                         .num("appended", static_cast<std::uint64_t>(appended))
                         .num("watermark",
                              static_cast<std::uint64_t>(watermark_))
                         .num("live_nnz", static_cast<std::uint64_t>(nnz())));

  // A due WAL checkpoint rides on the ingest thread: compact so the
  // snapshot holds exactly the live entries, then truncate the log. A
  // failed checkpoint degrades (the log just stays longer) — it must not
  // take ingest down with it.
  if (wal_ != nullptr && wal_->checkpoint_due()) {
    try {
      compact();
      wal_->write_checkpoint(coo_, watermark_);
    } catch (const Error& e) {
      AOADMM_LOG_WARN << "wal: checkpoint failed, log keeps growing: "
                      << e.what();
    }
  }
  return appended;
}

void StreamingTensor::compact() {
  if (dead_ == 0) {
    return;
  }
  CooTensor kept(coo_.dims());
  kept.reserve(nnz());
  std::vector<index_t> coord(order());
  for (offset_t n = 0; n < coo_.nnz(); ++n) {
    if (dead(n)) {
      continue;
    }
    for (std::size_t m = 0; m < order(); ++m) {
      coord[m] = coo_.index(m, n);
    }
    kept.add(coord, coo_.value(n));
  }
  coo_ = std::move(kept);
  dead_ = 0;

  // Positions moved: rebuild the coordinate map and drop stale dirty
  // tracking (the pending structural rebuild recompiles from coo_ anyway).
  coord_map_.clear();
  for (offset_t n = 0; n < coo_.nnz(); ++n) {
    coord_map_[hash_coord(coo_, n)].push_back(n);
  }
  value_dirty_.clear();
  is_dirty_.assign(coo_.nnz(), 0);
  structural_dirty_ = true;
  ++stats_.compactions;
}

const CooTensor& StreamingTensor::coo() {
  compact();
  return coo_;
}

const CsfSet& StreamingTensor::csf() {
  AOADMM_CHECK_MSG(nnz() > 0, "cannot compile an empty streaming tensor");
  const IngestMetrics& metrics = IngestMetrics::get();

  if (compiled_ != nullptr && !structural_dirty_ && dead_ == 0 &&
      value_dirty_.empty()) {
    ++stats_.cached_compiles;
    return *compiled_;
  }

  Timer timer;
  timer.start();
  if (value_patch_ready()) {
    // Value-only churn: patch the compiled leaves through the build-time
    // leaf maps. No tree is rebuilt.
    compiled_->patch_values(coo_, value_dirty_);
    for (const offset_t p : value_dirty_) {
      is_dirty_[p] = 0;
    }
    value_dirty_.clear();
    ++stats_.value_patches;
    metrics.value_patches.add(1);
  } else {
    compact();
    compiled_ = std::make_unique<CsfSet>(coo_, opts_.strategy, /*tile_rows=*/0,
                                         /*track_value_patching=*/true);
    structural_dirty_ = false;
    for (const offset_t p : value_dirty_) {
      is_dirty_[p] = 0;
    }
    value_dirty_.clear();
    ++stats_.full_rebuilds;
    metrics.full_rebuilds.add(1);
  }
  timer.stop();
  stats_.last_compile_seconds = timer.seconds();
  metrics.compile_seconds.add(timer.seconds());
  return *compiled_;
}

}  // namespace aoadmm
