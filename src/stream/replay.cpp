#include "stream/replay.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/telemetry/event_journal.hpp"
#include "obs/telemetry/exposition.hpp"
#include "stream/model_server.hpp"
#include "testing/fault_injection.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aoadmm {

std::vector<CooTensor> make_replay_batches(const CooTensor& events,
                                           std::size_t time_mode,
                                           std::size_t batches) {
  AOADMM_CHECK_MSG(time_mode < events.order(),
                   "replay time_mode must name a mode of the tensor");
  AOADMM_CHECK_MSG(batches > 0, "replay needs at least one batch");

  const offset_t n = events.nnz();
  std::vector<offset_t> order_idx(n);
  std::iota(order_idx.begin(), order_idx.end(), offset_t{0});
  std::stable_sort(order_idx.begin(), order_idx.end(),
                   [&](offset_t a, offset_t b) {
                     return events.index(time_mode, a) <
                            events.index(time_mode, b);
                   });

  std::vector<CooTensor> out;
  std::vector<index_t> coord(events.order());
  const offset_t per_batch = (n + batches - 1) / batches;
  offset_t p = 0;
  while (p < n) {
    offset_t end = std::min<offset_t>(p + per_batch, n);
    // A time tick is the atomic unit of arrival: extend the batch so the
    // boundary tick does not straddle two batches.
    while (end < n && events.index(time_mode, order_idx[end]) ==
                          events.index(time_mode, order_idx[end - 1])) {
      ++end;
    }
    CooTensor batch(events.dims());
    batch.reserve(end - p);
    for (; p < end; ++p) {
      const offset_t src = order_idx[p];
      for (std::size_t m = 0; m < events.order(); ++m) {
        coord[m] = events.index(m, src);
      }
      batch.add(coord, events.value(src));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

ReplayResult replay_stream(const CooTensor& events, const ReplayConfig& cfg) {
  AOADMM_CHECK_MSG(events.nnz() > 0, "replay needs a non-empty tensor");
  Timer timer;
  timer.start();

  StreamingOptions sopts = cfg.stream;
  if (sopts.time_mode == StreamingOptions::kLastMode) {
    sopts.time_mode = events.order() - 1;
  }
  std::vector<CooTensor> batches =
      make_replay_batches(events, sopts.time_mode, cfg.batches);

  // The journal outlives everything below that can emit into it.
  std::unique_ptr<obs::EventJournal> journal;
  if (!cfg.telemetry.event_log.empty()) {
    journal = std::make_unique<obs::EventJournal>(cfg.telemetry.event_log);
    obs::EventJournal::install_global(journal.get());
  }

  // Start from length-1 modes: replay exercises the growth path the same
  // way a live deployment would (every index is new when it first arrives).
  StreamingTensor tensor(std::vector<index_t>(events.order(), 1), sopts);
  ModelServer server;
  StreamingSolver solver(tensor, cfg.cpd, &server);

  ReplayResult result;

  // Fault-tolerance plane. WAL recovery runs BEFORE attach so replayed
  // applies are not re-logged; a killed previous run resumes from here.
  std::unique_ptr<WriteAheadLog> wal;
  if (!cfg.fault.wal_prefix.empty()) {
    wal = std::make_unique<WriteAheadLog>(cfg.fault.wal_prefix, cfg.fault.wal);
    result.wal = wal->recover_into(tensor);
    tensor.attach_wal(wal.get());
  }
  std::unique_ptr<BatchQuarantine> quarantine;
  if (!cfg.fault.quarantine_path.empty()) {
    quarantine = std::make_unique<BatchQuarantine>(
        cfg.fault.quarantine_path, cfg.fault.quarantine_max_records);
  }
  RefreshSupervisor supervisor(solver, cfg.fault.supervisor,
                               quarantine.get());

  // Exposition plane. Declared after `server` so it stops scraping before
  // the server dies; pre_scrape copies the live staleness into a gauge the
  // healthz/exposition layer (which cannot depend on stream/) can read.
  obs::ExpositionOptions eopts;
  eopts.stale_after_seconds = cfg.telemetry.stale_after_seconds;
  eopts.slo_query_p99_seconds = cfg.telemetry.slo_query_p99_seconds;
  eopts.pre_scrape = [&server,
                      staleness = obs::MetricsRegistry::global().gauge(
                          "stream/staleness_seconds")] {
    staleness.set(server.staleness_seconds());
  };
  std::unique_ptr<obs::ExpositionServer> endpoint;
  std::unique_ptr<obs::TelemetryFileWriter> file_writer;
  if (cfg.telemetry.port >= 0) {
    eopts.port = static_cast<std::uint16_t>(cfg.telemetry.port);
    endpoint = std::make_unique<obs::ExpositionServer>(eopts);
    endpoint->start();
    result.telemetry_port = endpoint->port();
    if (cfg.telemetry.on_ready) {
      cfg.telemetry.on_ready(endpoint->port());
    }
  }
  if (!cfg.telemetry.file.empty()) {
    file_writer = std::make_unique<obs::TelemetryFileWriter>(
        cfg.telemetry.file, cfg.telemetry.file_period_seconds, eopts);
    file_writer->start();
  }

  Rng rng(cfg.query_seed);
  std::vector<index_t> coord(events.order());
  const auto run_queries = [&](std::size_t count) {
    ModelServer::Reader reader = server.reader();
    // Degraded-safe: while the supervisor crash-loops toward its first
    // model there is nothing to query, and that must not be a crash.
    if (reader.try_acquire() == nullptr) {
      return;
    }
    for (std::size_t q = 0; q < count; ++q) {
      for (std::size_t m = 0; m < events.order(); ++m) {
        coord[m] = static_cast<index_t>(rng.uniform_index(tensor.dims()[m]));
      }
      (void)reader.predict(coord);
      ++result.queries;
    }
  };
  std::string why;
  for (CooTensor& batch : batches) {
    // kIngestCorrupt bites here — the point where a buggy producer would.
    testing::maybe_corrupt_ingest(batch);
    if (!validate_batch(batch, tensor.order(), &why)) {
      ++result.quarantined;
      if (quarantine != nullptr) {
        quarantine->quarantine(batch, "validation failed: " + why);
      }
      continue;  // the poison batch never reaches the tensor or the WAL
    }
    tensor.apply(batch);
    if (tensor.nnz() == 0) {
      continue;  // everything in this batch was already behind the window
    }
    const RefreshSupervisor::Attempt attempt = supervisor.try_refresh(&batch);
    switch (attempt.outcome) {
      case RefreshSupervisor::Attempt::Outcome::kRefreshed:
        result.refreshes.push_back(attempt.report);
        break;
      case RefreshSupervisor::Attempt::Outcome::kFailed:
        ++result.refresh_failures;
        if (result.first_refresh_error.empty()) {
          result.first_refresh_error = attempt.error;
        }
        break;
      case RefreshSupervisor::Attempt::Outcome::kSkippedBackoff:
      case RefreshSupervisor::Attempt::Outcome::kSkippedBreaker:
        ++result.refresh_skipped;
        break;
    }
    // Serve regardless of the attempt's fate: the last good snapshot stays
    // queryable while the refresh loop is down — degraded, not dead.
    run_queries(cfg.queries_per_refresh);
  }

  // Keep the endpoint live (queries still flowing) so an external scraper
  // can observe a running process, not a post-mortem.
  if (cfg.telemetry.serve_seconds > 0) {
    Timer serve_timer;
    serve_timer.start();
    do {
      run_queries(std::max<std::size_t>(cfg.queries_per_refresh, 16));
      // Trickle, don't spin: scrapers want a live process, not a hot loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } while (serve_timer.seconds() < cfg.telemetry.serve_seconds);
  }

  if (file_writer != nullptr) {
    file_writer->stop();
  }
  if (endpoint != nullptr) {
    endpoint->stop();
  }
  if (journal != nullptr) {
    result.journal_events = journal->events_written();
  }

  result.ingest = tensor.stats();
  result.final_dims = tensor.dims();
  result.final_nnz = tensor.nnz();
  result.final_epoch = server.epoch();
  result.quarantined += supervisor.stats().quarantined;
  result.breaker = supervisor.breaker();
  result.state_digest = tensor.state_digest();
  timer.stop();
  result.total_seconds = timer.seconds();
  return result;
}

}  // namespace aoadmm
