// Refresh driver of the streaming subsystem: turns StreamingTensor churn
// into published model versions.
//
// Each refresh():
//  1. compiles the current tensor (StreamingTensor::csf — cached, value-
//     patched, or rebuilt; the amortization is the ingest side's business),
//  2. grows the previous model to the current mode lengths when appends
//     introduced new indices — new factor rows are seeded from the running
//     column means of the existing rows, a neutral starting point that
//     keeps the warm start informative for the rows that DID exist before,
//  3. re-factorizes with CpdSolver::solve_warm from the grown model (cold
//     solve() on the first refresh, or when growth is impossible, e.g. a
//     rank change), and
//  4. publishes the result to the attached ModelServer (if any) and reports
//     per-refresh convergence and latency.
//
// A fresh CpdSolver is constructed per refresh on purpose: the session
// caches the tensor norm at construction, so a session cannot outlive a
// data change. The warm start — which is what actually buys convergence
// speed — lives in the model, not the session.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/kruskal.hpp"
#include "obs/telemetry/trace_context.hpp"
#include "stream/model_server.hpp"
#include "stream/streaming_tensor.hpp"

namespace aoadmm {

/// What one refresh() did, for logging and the replay driver.
struct RefreshReport {
  std::uint64_t refresh = 0;  // 1-based refresh ordinal
  bool warm = false;          // seeded from the previous model
  std::size_t grown_rows = 0; // new factor rows seeded across all modes
  unsigned outer_iterations = 0;
  real_t relative_error = 1;
  bool converged = false;
  /// Why the outer loop stopped. kCancelled/kDeadline refreshes still
  /// publish: the warm start makes a partially converged model strictly
  /// better than the stale one, and the next refresh resumes from it.
  StopReason stop_reason = StopReason::kMaxIterations;
  double compile_seconds = 0;  // CSF compile share (0 when cached)
  double solve_seconds = 0;
  std::uint64_t epoch = 0;     // published epoch; 0 when no server attached
  /// Trace context of this refresh: solve_id minted for it, batch_id of the
  /// last ingested batch it folded in, epoch it published (0 if none).
  obs::TraceContext trace;
};

class StreamingSolver {
 public:
  /// Binds the ingest tensor and the solve configuration; `server` (may be
  /// null) receives a published snapshot after every refresh. Both
  /// references must outlive the solver.
  StreamingSolver(StreamingTensor& tensor, CpdConfig config,
                  ModelServer* server = nullptr);

  /// Re-factorize the tensor's current contents and publish. Requires
  /// tensor.nnz() > 0.
  RefreshReport refresh();

  /// Install (or clear, with nullptr) the cancellation token handed to
  /// every subsequent refresh solve. The supervisor uses this to impose
  /// per-refresh deadlines; the token is checked once per outer iteration.
  void set_cancel(CancelTokenPtr token) { config_.cancel = std::move(token); }
  const CpdConfig& config() const noexcept { return config_; }

  bool has_model() const noexcept { return has_model_; }
  /// The latest refreshed model (valid once has_model()).
  const KruskalTensor& model() const noexcept { return model_; }
  const std::vector<RefreshReport>& reports() const noexcept {
    return reports_;
  }

 private:
  /// Grow `model_` to the tensor's current mode lengths, seeding each new
  /// row with the column means of the pre-existing rows. Returns the number
  /// of rows added.
  std::size_t grow_model();

  StreamingTensor& tensor_;
  CpdConfig config_;
  ModelServer* server_;
  KruskalTensor model_;
  bool has_model_ = false;
  std::vector<RefreshReport> reports_;
};

}  // namespace aoadmm
