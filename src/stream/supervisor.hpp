// Failure-containment layer of the streaming subsystem: keeps a crashing
// or hanging refresh loop from taking serving down with it.
//
// Three cooperating pieces:
//
//  * validate_batch — the ingest-side gate. A batch that is malformed
//    (wrong order, non-finite values) never reaches the tensor; the replay
//    driver diverts it to the quarantine instead.
//
//  * BatchQuarantine — a bounded JSONL sidecar of poison batches. Each
//    line carries the trace ids, the rejection reason, and the full batch
//    contents, so an operator can inspect and re-ingest after fixing the
//    producer. Bounded: past max_records further batches are counted as
//    dropped but not written (a poison flood must not fill the disk).
//
//  * RefreshSupervisor — wraps StreamingSolver::refresh() with exception
//    containment, bounded exponential backoff with deterministic seeded
//    jitter, a circuit breaker, and an optional per-refresh deadline
//    imposed through the solver's CancelToken. While the breaker is open
//    the attached ModelServer simply keeps serving the last published
//    snapshot — degraded, not down — and /healthz reports "degraded"
//    through the robust/stream_breaker_open gauge.
//
// Failure ladder: a refresh that throws counts one consecutive failure and
// schedules the next attempt after an exponentially growing backoff; at
// breaker_threshold consecutive failures the breaker opens and every
// attempt is skipped outright until the cooldown elapses; the first
// attempt after cooldown runs half-open — success closes the breaker and
// resets the ladder, failure re-opens it. A refresh stopped by its
// deadline is NOT a failure: the partially converged model still published
// (warm starts make it strictly newer information), so it resets the
// ladder like any success.
//
// Time is passed in explicitly (try_refresh_at) so tests drive the ladder
// deterministically; try_refresh() is the steady-clock convenience.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/cancel.hpp"
#include "stream/streaming_solver.hpp"
#include "util/rng.hpp"

namespace aoadmm {

class CooTensor;

/// Ingest-side validation: order must match the tensor, every value must
/// be finite. Returns false and fills `why` (when non-null) on rejection.
bool validate_batch(const CooTensor& batch, std::size_t expected_order,
                    std::string* why = nullptr);

/// Bounded JSONL sidecar for poison batches. Not thread-safe (owned by the
/// ingest thread, like everything on this path).
class BatchQuarantine {
 public:
  /// Opens `path` for appending. Throws IoError-style InvalidArgument via
  /// AOADMM_CHECK when the file cannot be opened.
  BatchQuarantine(std::string path, std::uint64_t max_records);
  ~BatchQuarantine();
  BatchQuarantine(const BatchQuarantine&) = delete;
  BatchQuarantine& operator=(const BatchQuarantine&) = delete;

  /// Divert one batch. Returns true when the record was written, false
  /// when the sidecar is full (the drop is still counted) or the write
  /// failed (telemetry-degradation semantics: never throws).
  bool quarantine(const CooTensor& batch, const std::string& reason);

  const std::string& path() const noexcept { return path_; }
  std::uint64_t records() const noexcept { return records_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::string path_;
  std::uint64_t max_records_;
  std::uint64_t records_ = 0;
  std::uint64_t dropped_ = 0;
  struct Impl;
  Impl* impl_;
};

enum class BreakerState {
  kClosed,    // refreshes flow (subject to backoff)
  kOpen,      // every attempt skipped until the cooldown elapses
  kHalfOpen,  // one trial attempt in flight after cooldown
};

const char* to_string(BreakerState s) noexcept;

struct SupervisorOptions {
  /// Consecutive failures that trip the breaker.
  unsigned breaker_threshold = 3;
  /// Seconds the breaker stays open before a half-open trial.
  double breaker_cooldown_seconds = 5.0;
  /// Backoff after the first failure; doubles (times multiplier) per
  /// consecutive failure, capped at backoff_max_seconds.
  double backoff_initial_seconds = 0.5;
  double backoff_max_seconds = 30.0;
  double backoff_multiplier = 2.0;
  /// Each delay is scaled by a factor uniform in [1-jitter, 1+jitter],
  /// drawn from a deterministic seeded stream.
  double backoff_jitter = 0.2;
  std::uint64_t jitter_seed = 42;
  /// Per-refresh deadline imposed through the solver's CancelToken
  /// (checked once per outer iteration). 0 = none.
  double refresh_deadline_seconds = 0;
};

/// Cumulative supervisor counters (also mirrored into the obs registry).
struct SupervisorStats {
  std::uint64_t attempts = 0;
  std::uint64_t refreshed = 0;
  std::uint64_t failures = 0;
  std::uint64_t backoff_skips = 0;
  std::uint64_t breaker_skips = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t deadline_hits = 0;
  std::uint64_t quarantined = 0;
};

class RefreshSupervisor {
 public:
  /// What one try_refresh attempt did.
  struct Attempt {
    enum class Outcome {
      kRefreshed,      // refresh ran and published (deadline stops included)
      kSkippedBackoff, // inside the post-failure backoff window
      kSkippedBreaker, // breaker open
      kFailed,         // refresh threw; contained here
    };
    Outcome outcome = Outcome::kRefreshed;
    /// Valid when outcome == kRefreshed.
    RefreshReport report;
    /// The contained exception's message when outcome == kFailed.
    std::string error;
    BreakerState breaker = BreakerState::kClosed;
    /// Earliest time (seconds, caller clock) the next attempt may run.
    double next_allowed_seconds = 0;
  };

  /// `quarantine` (may be null) receives batches implicated in refresh
  /// failures. Both references must outlive the supervisor.
  RefreshSupervisor(StreamingSolver& solver, SupervisorOptions opts,
                    BatchQuarantine* quarantine = nullptr);

  /// Attempt a supervised refresh at steady-clock now. `suspect` (may be
  /// null) is the most recently applied batch; on a contained failure it
  /// is diverted to the quarantine as the implicated batch.
  Attempt try_refresh(const CooTensor* suspect = nullptr);

  /// Deterministic-time entry: identical logic with the caller supplying
  /// the clock (monotone non-decreasing across calls).
  Attempt try_refresh_at(double now_seconds,
                         const CooTensor* suspect = nullptr);

  BreakerState breaker() const noexcept { return breaker_; }
  unsigned consecutive_failures() const noexcept {
    return consecutive_failures_;
  }
  const SupervisorStats& stats() const noexcept { return stats_; }
  const SupervisorOptions& options() const noexcept { return opts_; }

 private:
  void trip_breaker(double now);
  void note_success();

  StreamingSolver& solver_;
  SupervisorOptions opts_;
  BatchQuarantine* quarantine_;
  CancelTokenPtr deadline_token_;
  Rng jitter_;
  BreakerState breaker_ = BreakerState::kClosed;
  unsigned consecutive_failures_ = 0;
  double next_allowed_ = 0;  // backoff gate (caller clock)
  double open_until_ = 0;    // breaker cooldown gate (caller clock)
  SupervisorStats stats_;
};

}  // namespace aoadmm
