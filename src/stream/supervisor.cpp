#include "stream/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/event_journal.hpp"
#include "obs/telemetry/trace_context.hpp"
#include "tensor/coo.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace aoadmm {
namespace {

double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Supervisor/quarantine registry handles, registered once per process.
struct RobustStreamMetrics {
  obs::Counter refresh_failures;
  obs::Counter breaker_trips;
  obs::Counter backoff_skips;
  obs::Counter breaker_skips;
  obs::Counter deadline_hits;
  obs::Counter quarantined;
  obs::Gauge breaker_open;
  obs::Gauge quarantine_pending;

  static const RobustStreamMetrics& get() {
    static const RobustStreamMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      RobustStreamMetrics out;
      out.refresh_failures = reg.counter("robust/stream_refresh_failures");
      out.breaker_trips = reg.counter("robust/stream_breaker_trips");
      out.backoff_skips = reg.counter("robust/stream_backoff_skips");
      out.breaker_skips = reg.counter("robust/stream_breaker_skips");
      out.deadline_hits = reg.counter("robust/stream_refresh_deadline_hits");
      out.quarantined = reg.counter("robust/stream_quarantined_batches");
      out.breaker_open = reg.gauge("robust/stream_breaker_open");
      out.quarantine_pending = reg.gauge("stream/quarantine_pending");
      return out;
    }();
    return m;
  }
};

}  // namespace

bool validate_batch(const CooTensor& batch, std::size_t expected_order,
                    std::string* why) {
  if (batch.order() != expected_order) {
    if (why != nullptr) {
      *why = "order " + std::to_string(batch.order()) +
             " does not match the streaming tensor (expected " +
             std::to_string(expected_order) + ")";
    }
    return false;
  }
  for (offset_t n = 0; n < batch.nnz(); ++n) {
    if (!std::isfinite(batch.value(n))) {
      if (why != nullptr) {
        *why = "non-finite value at entry " + std::to_string(n);
      }
      return false;
    }
  }
  return true;
}

struct BatchQuarantine::Impl {
  std::ofstream out;
};

BatchQuarantine::BatchQuarantine(std::string path, std::uint64_t max_records)
    : path_(std::move(path)), max_records_(max_records), impl_(new Impl()) {
  impl_->out.open(path_, std::ios::out | std::ios::app);
  AOADMM_CHECK_MSG(static_cast<bool>(impl_->out),
                   "quarantine: cannot open " + path_);
}

BatchQuarantine::~BatchQuarantine() { delete impl_; }

bool BatchQuarantine::quarantine(const CooTensor& batch,
                                 const std::string& reason) {
  const RobustStreamMetrics& metrics = RobustStreamMetrics::get();
  const obs::TraceContext ctx = obs::current_trace();
  metrics.quarantined.add(1);
  obs::journal_event(obs::EventKind::kBatchQuarantined, ctx,
                     obs::EventJournal::Fields{}
                         .str("reason", reason)
                         .num("nnz",
                              static_cast<std::uint64_t>(batch.nnz()))
                         .boolean("stored", records_ < max_records_));
  if (records_ >= max_records_) {
    ++dropped_;
    AOADMM_LOG_WARN << "quarantine full (" << max_records_
                    << " records): dropping poison batch (" << reason << ")";
    return false;
  }

  // One self-contained JSONL record: trace linkage, the reason, and the
  // full batch so an operator can replay it after fixing the producer.
  std::string line;
  line.reserve(128 + batch.nnz() * 24);
  line += "{\"solve_id\": ";
  line += std::to_string(ctx.solve_id);
  line += ", \"batch_id\": ";
  line += std::to_string(ctx.batch_id);
  line += ", \"reason\": \"";
  line += obs::detail::json_escape(reason);
  line += "\", \"order\": ";
  line += std::to_string(batch.order());
  line += ", \"nnz\": ";
  line += std::to_string(batch.nnz());
  line += ", \"indices\": [";
  for (std::size_t m = 0; m < batch.order(); ++m) {
    line += m > 0 ? ", [" : "[";
    for (offset_t n = 0; n < batch.nnz(); ++n) {
      if (n > 0) {
        line += ", ";
      }
      line += std::to_string(batch.index(m, n));
    }
    line += "]";
  }
  line += "], \"values\": [";
  char buf[64];
  for (offset_t n = 0; n < batch.nnz(); ++n) {
    if (n > 0) {
      line += ", ";
    }
    std::snprintf(buf, sizeof(buf), "%.17g", batch.value(n));
    // JSON has no inf/nan literals; poison batches often carry them.
    if (std::isfinite(batch.value(n))) {
      line += buf;
    } else {
      line += "\"";
      line += buf;
      line += "\"";
    }
  }
  line += "]}\n";

  impl_->out << line;
  impl_->out.flush();
  if (!impl_->out) {
    // Telemetry-degradation semantics: a quarantine that cannot write
    // must not wedge ingest. The batch is still counted and journaled.
    impl_->out.clear();
    ++dropped_;
    AOADMM_LOG_WARN << "quarantine: write to " << path_ << " failed";
    return false;
  }
  ++records_;
  metrics.quarantine_pending.set(static_cast<double>(records_));
  return true;
}

const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

RefreshSupervisor::RefreshSupervisor(StreamingSolver& solver,
                                     SupervisorOptions opts,
                                     BatchQuarantine* quarantine)
    : solver_(solver), opts_(opts), quarantine_(quarantine),
      jitter_(opts.jitter_seed) {
  AOADMM_CHECK_MSG(opts_.breaker_threshold > 0,
                   "breaker_threshold must be positive");
  AOADMM_CHECK_MSG(opts_.backoff_multiplier >= 1,
                   "backoff_multiplier must be >= 1");
  AOADMM_CHECK_MSG(opts_.backoff_jitter >= 0 && opts_.backoff_jitter < 1,
                   "backoff_jitter must lie in [0, 1)");
  if (opts_.refresh_deadline_seconds > 0) {
    deadline_token_ = make_cancel_token();
    solver_.set_cancel(deadline_token_);
  }
}

void RefreshSupervisor::trip_breaker(double now) {
  breaker_ = BreakerState::kOpen;
  open_until_ = now + opts_.breaker_cooldown_seconds;
  ++stats_.breaker_trips;
  const RobustStreamMetrics& metrics = RobustStreamMetrics::get();
  metrics.breaker_trips.add(1);
  metrics.breaker_open.set(1);
  AOADMM_LOG_WARN << "supervisor: breaker OPEN after "
                  << consecutive_failures_
                  << " consecutive refresh failures; serving last good "
                  << "snapshot for " << opts_.breaker_cooldown_seconds << "s";
  obs::journal_event(obs::EventKind::kBreakerTripped, obs::current_trace(),
                     obs::EventJournal::Fields{}
                         .num("consecutive_failures",
                              static_cast<std::uint64_t>(
                                  consecutive_failures_))
                         .num("cooldown_seconds",
                              opts_.breaker_cooldown_seconds));
}

void RefreshSupervisor::note_success() {
  if (breaker_ != BreakerState::kClosed) {
    RobustStreamMetrics::get().breaker_open.set(0);
    AOADMM_LOG_INFO << "supervisor: breaker CLOSED (refresh recovered)";
    obs::journal_event(obs::EventKind::kBreakerReset, obs::current_trace(),
                       obs::EventJournal::Fields{});
  }
  breaker_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  next_allowed_ = 0;
  open_until_ = 0;
}

RefreshSupervisor::Attempt RefreshSupervisor::try_refresh(
    const CooTensor* suspect) {
  return try_refresh_at(steady_now_seconds(), suspect);
}

RefreshSupervisor::Attempt RefreshSupervisor::try_refresh_at(
    double now, const CooTensor* suspect) {
  const RobustStreamMetrics& metrics = RobustStreamMetrics::get();
  Attempt attempt;
  ++stats_.attempts;

  if (breaker_ == BreakerState::kOpen) {
    if (now < open_until_) {
      ++stats_.breaker_skips;
      metrics.breaker_skips.add(1);
      attempt.outcome = Attempt::Outcome::kSkippedBreaker;
      attempt.breaker = breaker_;
      attempt.next_allowed_seconds = open_until_;
      return attempt;
    }
    breaker_ = BreakerState::kHalfOpen;  // cooldown over: one trial flows
  }
  if (breaker_ == BreakerState::kClosed && now < next_allowed_) {
    ++stats_.backoff_skips;
    metrics.backoff_skips.add(1);
    attempt.outcome = Attempt::Outcome::kSkippedBackoff;
    attempt.breaker = breaker_;
    attempt.next_allowed_seconds = next_allowed_;
    return attempt;
  }

  if (deadline_token_ != nullptr) {
    deadline_token_->reset();
    deadline_token_->set_deadline_after(opts_.refresh_deadline_seconds);
  }

  try {
    attempt.report = solver_.refresh();
  } catch (const std::exception& e) {
    attempt.outcome = Attempt::Outcome::kFailed;
    attempt.error = e.what();
    ++stats_.failures;
    ++consecutive_failures_;
    metrics.refresh_failures.add(1);
    AOADMM_LOG_WARN << "supervisor: refresh failed ("
                    << consecutive_failures_ << "/"
                    << opts_.breaker_threshold << "): " << e.what();
    obs::journal_event(obs::EventKind::kRefreshFailed, obs::current_trace(),
                       obs::EventJournal::Fields{}
                           .str("error", attempt.error)
                           .num("consecutive_failures",
                                static_cast<std::uint64_t>(
                                    consecutive_failures_)));
    if (quarantine_ != nullptr && suspect != nullptr) {
      quarantine_->quarantine(*suspect,
                              "implicated in refresh failure: " +
                                  attempt.error);
      ++stats_.quarantined;
    }
    if (breaker_ == BreakerState::kHalfOpen ||
        consecutive_failures_ >= opts_.breaker_threshold) {
      trip_breaker(now);
      attempt.next_allowed_seconds = open_until_;
    } else {
      // Bounded exponential backoff with deterministic jitter: delay =
      // initial · multiplier^(failures-1), capped, scaled by a factor in
      // [1-jitter, 1+jitter].
      double delay = opts_.backoff_initial_seconds *
                     std::pow(opts_.backoff_multiplier,
                              static_cast<double>(consecutive_failures_ - 1));
      delay = std::min(delay, opts_.backoff_max_seconds);
      if (opts_.backoff_jitter > 0) {
        delay *= jitter_.uniform(1 - opts_.backoff_jitter,
                                 1 + opts_.backoff_jitter);
      }
      next_allowed_ = now + delay;
      attempt.next_allowed_seconds = next_allowed_;
    }
    attempt.breaker = breaker_;
    return attempt;
  }

  ++stats_.refreshed;
  if (attempt.report.stop_reason == StopReason::kDeadline ||
      attempt.report.stop_reason == StopReason::kCancelled) {
    // The deadline cut the solve short but the partially converged model
    // still published — progress, not failure. Counted so operators can
    // see a persistently over-budget refresh loop.
    ++stats_.deadline_hits;
    metrics.deadline_hits.add(1);
  }
  note_success();
  attempt.outcome = Attempt::Outcome::kRefreshed;
  attempt.breaker = breaker_;
  attempt.next_allowed_seconds = now;
  return attempt;
}

}  // namespace aoadmm
