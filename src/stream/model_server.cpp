#include "stream/model_server.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry/event_journal.hpp"
#include "obs/telemetry/window_quantiles.hpp"
#include "util/error.hpp"

namespace aoadmm {
namespace {

struct ServeMetrics {
  obs::Counter queries;
  obs::Counter swaps;
  obs::Counter reader_refreshes;
  obs::Histogram query_seconds;
  obs::Gauge snapshot_epoch;

  static const ServeMetrics& get() {
    static const ServeMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      ServeMetrics out;
      out.queries = reg.counter("stream/queries");
      out.swaps = reg.counter("stream/snapshot_swaps");
      out.reader_refreshes = reg.counter("stream/reader_refreshes");
      out.query_seconds = reg.histogram("stream/query_seconds");
      out.snapshot_epoch = reg.gauge("stream/snapshot_epoch");
      return out;
    }();
    return m;
  }
};

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Windowed query-latency histogram behind /metrics summaries and
/// /healthz. One relaxed fetch_add per query, reusing the timestamp the
/// latency measurement already took.
obs::WindowedHistogram& query_window() {
  static obs::WindowedHistogram& w =
      obs::windowed_histogram(obs::kWindowQuerySeconds);
  return w;
}

}  // namespace

ModelServer::ModelServer() { ServeMetrics::get(); }

std::uint64_t ModelServer::publish(KruskalTensor model,
                                   obs::TraceContext origin) {
  AOADMM_CHECK_MSG(model.order() >= 1 && model.rank() > 0,
                   "cannot publish an empty model");
  auto snap = std::make_shared<KruskalSnapshot>();
  snap->model = std::move(model);

  std::uint64_t new_epoch;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    new_epoch = epoch_.load(std::memory_order_relaxed) + 1;
    snap->epoch = new_epoch;
    origin.epoch = new_epoch;
    snap->origin = origin;
    current_ = std::move(snap);
    // Release-publish AFTER installing the snapshot: a reader that sees the
    // new epoch is guaranteed to find (at least) this snapshot under mu_.
    epoch_.store(new_epoch, std::memory_order_release);
  }
  publish_ns_.store(steady_now_ns(), std::memory_order_relaxed);

  const ServeMetrics& metrics = ServeMetrics::get();
  metrics.swaps.add(1);
  metrics.snapshot_epoch.set(static_cast<double>(new_epoch));
  {
    // Stamp the instant marker with the snapshot's full context (including
    // the epoch minted above), not whatever the thread happened to carry.
    const obs::ScopedTraceContext scoped(origin);
    obs::profile_instant("stream/snapshot_published");
  }
  obs::journal_event(obs::EventKind::kSnapshotPublished, origin,
                     obs::EventJournal::Fields{});
  return new_epoch;
}

double ModelServer::staleness_seconds() const noexcept {
  const std::int64_t at = publish_ns_.load(std::memory_order_relaxed);
  if (at < 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(steady_now_ns() - at) * 1e-9;
}

std::shared_ptr<const KruskalSnapshot> ModelServer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

const KruskalSnapshot& ModelServer::Reader::acquire() {
  // Fast path: one acquire-load of the epoch counter. While the model is
  // unchanged this is the whole synchronization cost of a query.
  const std::uint64_t e = server_->epoch_.load(std::memory_order_acquire);
  if (cached_ != nullptr && e == cached_epoch_) {
    return *cached_;
  }
  {
    const std::lock_guard<std::mutex> lock(server_->mu_);
    cached_ = server_->current_;
  }
  AOADMM_CHECK_MSG(cached_ != nullptr,
                   "ModelServer has no published snapshot yet");
  // Record the snapshot's own epoch, not `e`: a publish may have landed
  // between the load and the lock, and the snapshot we took is the newer one.
  cached_epoch_ = cached_->epoch;
  ServeMetrics::get().reader_refreshes.add(1);
  return *cached_;
}

const KruskalSnapshot* ModelServer::Reader::try_acquire() {
  const std::uint64_t e = server_->epoch_.load(std::memory_order_acquire);
  if (cached_ != nullptr && e == cached_epoch_) {
    return cached_.get();
  }
  if (e == 0) {
    return nullptr;  // nothing published yet
  }
  return &acquire();
}

real_t ModelServer::Reader::predict(cspan<index_t> coord) {
  const ServeMetrics& metrics = ServeMetrics::get();
  const std::int64_t t0 = steady_now_ns();
  const KruskalSnapshot& snap = acquire();
  const real_t value =
      kruskal_value_at(snap.model.factors(), snap.model.lambda(), coord);
  const std::int64_t t1 = steady_now_ns();
  metrics.query_seconds.observe(static_cast<double>(t1 - t0) * 1e-9);
  query_window().observe_at(static_cast<double>(t1 - t0) * 1e-9, t1);
  metrics.queries.add(1);
  return value;
}

std::vector<ScoredIndex> ModelServer::Reader::top_k(std::size_t anchor_mode,
                                                    index_t row,
                                                    std::size_t target_mode,
                                                    std::size_t k) {
  const ServeMetrics& metrics = ServeMetrics::get();
  const std::int64_t t0 = steady_now_ns();
  const KruskalSnapshot& snap = acquire();
  const std::vector<Matrix>& factors = snap.model.factors();
  AOADMM_CHECK_MSG(anchor_mode < factors.size() &&
                       target_mode < factors.size() &&
                       anchor_mode != target_mode,
                   "top_k modes must be two distinct modes of the model");
  const Matrix& anchor = factors[anchor_mode];
  const Matrix& target = factors[target_mode];
  AOADMM_CHECK_MSG(row < anchor.rows(), "top_k anchor row out of range");

  // Pre-fold λ into the anchor row once: score(j) = Σ_f w_f · T(j, f).
  const std::size_t rank = snap.rank();
  const std::vector<real_t>& lambda = snap.model.lambda();
  std::vector<real_t> w(rank);
  for (std::size_t f = 0; f < rank; ++f) {
    w[f] = (lambda.empty() ? real_t{1} : lambda[f]) * anchor(row, f);
  }

  k = std::min<std::size_t>(k, target.rows());
  // Bounded insertion into a sorted best-first window: O(rows · (rank + k)),
  // and k is small (a serving page) so this beats a full sort + truncate.
  std::vector<ScoredIndex> best;
  best.reserve(k);
  for (std::size_t j = 0; j < target.rows(); ++j) {
    real_t score = 0;
    for (std::size_t f = 0; f < rank; ++f) {
      score += w[f] * target(j, f);
    }
    if (best.size() == k && score <= best.back().score) {
      continue;
    }
    const ScoredIndex entry{static_cast<index_t>(j), score};
    auto it = std::upper_bound(best.begin(), best.end(), entry,
                               [](const ScoredIndex& a, const ScoredIndex& b) {
                                 return a.score > b.score;
                               });
    best.insert(it, entry);
    if (best.size() > k) {
      best.pop_back();
    }
  }

  const std::int64_t t1 = steady_now_ns();
  metrics.query_seconds.observe(static_cast<double>(t1 - t0) * 1e-9);
  query_window().observe_at(static_cast<double>(t1 - t0) * 1e-9, t1);
  metrics.queries.add(1);
  return best;
}

}  // namespace aoadmm
