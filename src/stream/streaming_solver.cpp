#include "stream/streaming_solver.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "core/solver.hpp"
#include "testing/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/event_journal.hpp"
#include "obs/telemetry/window_quantiles.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace aoadmm {
namespace {

struct RefreshMetrics {
  obs::Counter refreshes;
  obs::Counter warm_refreshes;
  obs::Counter outer_iterations;
  obs::Counter grown_rows;
  obs::Histogram refresh_seconds;
  obs::Gauge last_error;
  obs::Gauge last_outer;
  obs::Gauge last_converged;

  static const RefreshMetrics& get() {
    static const RefreshMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      RefreshMetrics out;
      out.refreshes = reg.counter("stream/refreshes");
      out.warm_refreshes = reg.counter("stream/warm_refreshes");
      out.outer_iterations = reg.counter("stream/refresh_outer_iterations");
      out.grown_rows = reg.counter("stream/grown_rows");
      out.refresh_seconds = reg.histogram("stream/refresh_seconds");
      out.last_error = reg.gauge("stream/last_refresh_error");
      out.last_outer = reg.gauge("stream/last_refresh_outer_iterations");
      out.last_converged = reg.gauge("stream/last_refresh_converged");
      return out;
    }();
    return m;
  }
};

}  // namespace

StreamingSolver::StreamingSolver(StreamingTensor& tensor, CpdConfig config,
                                 ModelServer* server)
    : tensor_(tensor), config_(std::move(config)), server_(server) {}

std::size_t StreamingSolver::grow_model() {
  std::size_t grown = 0;
  std::vector<Matrix>& factors = model_.factors();
  const std::vector<index_t>& dims = tensor_.dims();
  for (std::size_t m = 0; m < factors.size(); ++m) {
    Matrix& old = factors[m];
    const std::size_t rows = dims[m];
    if (old.rows() >= rows) {
      continue;
    }
    const std::size_t rank = old.cols();
    Matrix grown_factor(rows, rank);
    std::vector<real_t> mean(rank, 0);
    for (std::size_t i = 0; i < old.rows(); ++i) {
      for (std::size_t f = 0; f < rank; ++f) {
        grown_factor(i, f) = old(i, f);
        mean[f] += old(i, f);
      }
    }
    if (old.rows() > 0) {
      for (std::size_t f = 0; f < rank; ++f) {
        mean[f] /= static_cast<real_t>(old.rows());
      }
    }
    for (std::size_t i = old.rows(); i < rows; ++i) {
      for (std::size_t f = 0; f < rank; ++f) {
        grown_factor(i, f) = mean[f];
      }
    }
    grown += rows - old.rows();
    old = std::move(grown_factor);
  }
  return grown;
}

RefreshReport StreamingSolver::refresh() {
  const RefreshMetrics& metrics = RefreshMetrics::get();
  Timer timer;
  timer.start();

  RefreshReport report;
  report.refresh = reports_.size() + 1;

  // Mint this refresh's trace context and install it thread-locally for the
  // duration of the solve, so recovery events and journal lines recorded
  // underneath carry the linkage automatically.
  report.trace.solve_id = obs::next_solve_id();
  report.trace.batch_id = tensor_.last_batch_id();
  const obs::ScopedTraceContext scoped(report.trace);
  obs::journal_event(obs::EventKind::kRefreshStarted, report.trace,
                     obs::EventJournal::Fields{}
                         .num("refresh", report.refresh)
                         .num("nnz",
                              static_cast<std::uint64_t>(tensor_.nnz())));

  // Injected failure modes for the supervisor tests: a refresh that throws
  // (contained by RefreshSupervisor::try_refresh) and a refresh that hangs
  // until its deadline token fires (capped at ~200ms so an unsupervised
  // test cannot wedge).
  if (testing::maybe_throw_refresh()) {
    throw NumericalError("injected refresh failure (kRefreshThrow)");
  }
  if (testing::maybe_hang_refresh()) {
    const CancelTokenPtr& cancel = config_.cancel;
    for (int i = 0; i < 40 && !(cancel && cancel->should_stop()); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // Compile (amortized) first; the compile share is whatever the tensor
  // spent inside this call — zero when the cached compilation was reused.
  const StreamingStats& st = tensor_.stats();
  const std::uint64_t compiles_before = st.full_rebuilds + st.value_patches;
  const CsfSet& csf = tensor_.csf();
  if (st.full_rebuilds + st.value_patches > compiles_before) {
    report.compile_seconds = st.last_compile_seconds;
  }

  // The session caches the tensor norm at construction, so each refresh
  // gets a fresh solver; warm state travels in the model.
  CpdSolver solver(csf, config_);

  CpdResult result;
  const bool can_warm =
      has_model_ && model_.rank() == config_.rank &&
      model_.order() == tensor_.order();
  if (can_warm) {
    report.grown_rows = grow_model();
    result = solver.solve_warm(model_);
    report.warm = true;
  } else {
    result = solver.solve();
  }

  model_ = KruskalTensor(std::move(result.factors));
  has_model_ = true;

  report.outer_iterations = result.outer_iterations;
  report.relative_error = result.relative_error;
  report.converged = result.converged;
  report.stop_reason = result.stop_reason;

  if (server_ != nullptr) {
    report.epoch = server_->publish(model_, report.trace);
    report.trace.epoch = report.epoch;
  }

  timer.stop();
  report.solve_seconds = timer.seconds() - report.compile_seconds;

  metrics.refreshes.add(1);
  if (report.warm) {
    metrics.warm_refreshes.add(1);
  }
  metrics.outer_iterations.add(static_cast<double>(report.outer_iterations));
  metrics.grown_rows.add(static_cast<double>(report.grown_rows));
  metrics.refresh_seconds.observe(timer.seconds());
  metrics.last_error.set(static_cast<double>(report.relative_error));
  metrics.last_outer.set(static_cast<double>(report.outer_iterations));
  metrics.last_converged.set(report.converged ? 1 : 0);
  static obs::WindowedHistogram& refresh_window =
      obs::windowed_histogram(obs::kWindowRefreshSeconds);
  refresh_window.observe(timer.seconds());

  obs::journal_event(
      obs::EventKind::kRefreshFinished, report.trace,
      obs::EventJournal::Fields{}
          .num("refresh", report.refresh)
          .boolean("warm", report.warm)
          .boolean("converged", report.converged)
          .str("stop_reason", to_string(report.stop_reason))
          .num("outer_iterations",
               static_cast<std::uint64_t>(report.outer_iterations))
          .num("relative_error",
               static_cast<double>(report.relative_error))
          .num("recoveries",
               static_cast<std::uint64_t>(result.recovery.events.size()))
          .num("solve_seconds", report.solve_seconds));

  reports_.push_back(report);
  return report;
}

}  // namespace aoadmm
