// Ingest half of the streaming subsystem: a sparse tensor that grows as
// timestamped event batches arrive and hands out an amortized-rebuild CSF
// compilation for refresh solves.
//
// Update semantics per entry of an applied batch:
//  * unseen coordinate        -> append (mode lengths grow to fit, with
//                                overflow-checked index growth)
//  * already-stored coordinate-> overwrite the value in place
// and, when a sliding window is configured, every batch advances the
// watermark on the designated time mode and entries whose time index falls
// out of the window are evicted.
//
// CSF rebuilds are amortized, not per-batch. The tensor tracks the churn
// since the last compilation and csf() picks the cheapest valid path:
//  * nothing changed          -> return the cached compilation
//  * value-only churn         -> patch the compiled leaves in place through
//                                the build-time leaf maps (no tree is
//                                rebuilt; CsfSet::patch_values)
//  * structural churn         -> compact evicted entries out and rebuild.
//                                Every tree holds every non-zero, so a
//                                structural change is necessarily global —
//                                this is the CSF invariant, and the reason
//                                value-only churn is the only partial path.
// The churn threshold bounds how much structural garbage (evicted-but-not-
// compacted entries) may accumulate before apply() compacts eagerly instead
// of deferring the O(nnz) sweep to the next compilation.
//
// Not thread-safe: one ingest thread owns the tensor. Concurrency lives in
// the serve half (ModelServer), which reads published immutable snapshots.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/coo.hpp"
#include "tensor/csf.hpp"
#include "util/types.hpp"

namespace aoadmm {

class WriteAheadLog;

struct StreamingOptions {
  /// Mode carrying event time, used for watermarking and window eviction.
  /// kLastMode (the default) resolves to order-1 at construction.
  static constexpr std::size_t kLastMode = static_cast<std::size_t>(-1);
  std::size_t time_mode = kLastMode;

  /// Sliding window length in time-mode indices. After a batch raises the
  /// watermark to t, entries with time index <= t - window are evicted.
  /// 0 = unbounded (no eviction).
  index_t window = 0;

  /// Eagerly compact when evicted-but-uncompacted entries exceed this
  /// fraction of the live non-zeros; below it the sweep is deferred to the
  /// next structural rebuild. Bounds the memory overhead of lazy eviction.
  double churn_threshold = 0.25;

  /// CSF strategy for compilations (tiled compilations are unsupported:
  /// they cannot be value-patched).
  CsfStrategy strategy = CsfStrategy::kAllMode;
};

/// Ingest counters, cumulative since construction (also mirrored into the
/// process-wide obs registry under stream/*).
struct StreamingStats {
  std::uint64_t batches = 0;
  std::uint64_t appended = 0;
  std::uint64_t overwritten = 0;
  std::uint64_t evicted = 0;
  /// Batch entries already behind the window on arrival, dropped unstored.
  std::uint64_t late_dropped = 0;
  std::uint64_t full_rebuilds = 0;
  std::uint64_t value_patches = 0;
  std::uint64_t cached_compiles = 0;
  std::uint64_t compactions = 0;
  double last_compile_seconds = 0;
};

class StreamingTensor {
 public:
  /// Start from `initial_dims` (order = initial_dims.size() >= 2; modes may
  /// be declared length 1 and grow as data arrives). Throws InvalidArgument
  /// on a bad time_mode or churn threshold.
  StreamingTensor(std::vector<index_t> initial_dims, StreamingOptions opts);

  std::size_t order() const noexcept { return coo_.order(); }
  const std::vector<index_t>& dims() const noexcept { return coo_.dims(); }
  const StreamingOptions& options() const noexcept { return opts_; }
  const StreamingStats& stats() const noexcept { return stats_; }

  /// Live non-zeros (stored minus pending evictions).
  offset_t nnz() const noexcept { return coo_.nnz() - dead_; }

  /// Highest time-mode index ingested so far (the watermark); 0 before any
  /// data arrives.
  index_t watermark() const noexcept { return watermark_; }

  /// Trace id of the most recently applied batch (minted per apply() from
  /// the process-wide sequence); 0 before the first batch. A refresh solve
  /// records this as TraceContext::batch_id to link the model it publishes
  /// back to the last ingest it folded in.
  std::uint64_t last_batch_id() const noexcept { return last_batch_id_; }

  /// Apply one batch of events (a COO tensor of the same order; its dims
  /// are ignored — growth follows the indices actually present). Entries
  /// behind the current window are dropped on arrival. Returns the number
  /// of entries that were appends (vs overwrites). With a WAL attached the
  /// batch is logged before any state changes, and a due WAL checkpoint is
  /// written (compacting first) after the batch lands.
  offset_t apply(const CooTensor& batch);

  /// Attach a write-ahead log (not owned; pass nullptr to detach). Every
  /// subsequent apply() is logged before it mutates the tensor. When the
  /// WAL has on-disk state, drain it with WriteAheadLog::recover_into()
  /// BEFORE attaching — replayed applies must not be re-logged.
  void attach_wal(WriteAheadLog* wal) noexcept { wal_ = wal; }
  WriteAheadLog* wal() const noexcept { return wal_; }

  /// Raise the watermark to at least `w` and run window eviction against
  /// the new cutoff (no-op when w is behind the current watermark). apply()
  /// does this implicitly from batch contents; WAL recovery calls it
  /// directly to restore a watermark that outran the surviving entries.
  void advance_watermark(index_t w);

  /// Order-independent FNV-1a digest of the live (coordinate, value)
  /// multiset. Two tensors holding the same live entries digest equal no
  /// matter what ingest/recovery order produced them — the cheap bitwise
  /// state-equality probe the crash-recovery tests and the CLI use.
  std::uint64_t state_digest() const;

  /// The current tensor as COO with evicted entries compacted away. Forces
  /// the deferred eviction sweep.
  const CooTensor& coo();

  /// Compile (or cheaply refresh) the CSF set for the current contents.
  /// Amortization contract documented in the file header. The reference is
  /// invalidated by the next apply()/csf() call. Requires nnz() > 0.
  const CsfSet& csf();

  /// True when the next csf() call can take the value-patch fast path.
  bool value_patch_ready() const noexcept {
    return compiled_ != nullptr && !structural_dirty_ && dead_ == 0;
  }

 private:
  /// Coordinate -> position in coo_, for overwrite-duplicate detection.
  /// Keyed by an FNV-1a hash of the coordinate tuple; buckets hold all
  /// positions with that hash and are verified by exact coordinate compare
  /// (collisions are legal, just slow).
  using CoordMap = std::unordered_map<std::uint64_t, std::vector<offset_t>>;

  std::uint64_t hash_coord(const CooTensor& t, offset_t n) const;
  bool same_coord(offset_t a, const CooTensor& batch, offset_t b) const;
  bool dead(offset_t n) const;
  void compact();

  StreamingOptions opts_;
  CooTensor coo_;
  CoordMap coord_map_;
  WriteAheadLog* wal_ = nullptr;
  std::uint64_t last_batch_id_ = 0;
  index_t watermark_ = 0;
  index_t evict_cutoff_ = 0;  // time indices < cutoff are dead
  offset_t dead_ = 0;         // stored entries behind the cutoff
  /// Live entries per time-mode index; drained into dead_ as the window
  /// slides past them.
  std::vector<offset_t> live_per_tick_;

  std::unique_ptr<CsfSet> compiled_;
  bool structural_dirty_ = false;
  std::vector<offset_t> value_dirty_;   // COO positions with changed values
  std::vector<std::uint8_t> is_dirty_;  // per position, dedupes value_dirty_
  StreamingStats stats_;
};

}  // namespace aoadmm
