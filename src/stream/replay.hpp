// Replay driver: feed a static COO tensor through the streaming stack as a
// sequence of timestamp-ordered event batches, refreshing and serving after
// each one. This is both the `tensor_tool stream-replay` backend and the
// harness the streaming tests and benchmarks drive.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "stream/streaming_solver.hpp"
#include "stream/streaming_tensor.hpp"
#include "tensor/coo.hpp"

namespace aoadmm {

/// Split `events` into at most `batches` COO batches ordered by the time
/// mode: entries are sorted by time index and chunked near-evenly, with
/// chunk boundaries pushed forward so no time tick spans two batches (a
/// tick is the atomic unit of arrival). Fewer batches come back when the
/// tensor has fewer distinct ticks. Batches concatenate to a permutation of
/// `events`.
std::vector<CooTensor> make_replay_batches(const CooTensor& events,
                                           std::size_t time_mode,
                                           std::size_t batches);

struct ReplayConfig {
  /// Batching and windowing.
  std::size_t batches = 8;
  StreamingOptions stream;

  /// Solve configuration for every refresh.
  CpdConfig cpd;

  /// Random single-entry queries issued against the live server after each
  /// refresh (coordinates drawn uniformly within the current mode lengths).
  std::size_t queries_per_refresh = 0;
  std::uint64_t query_seed = 0x5eedULL;
};

struct ReplayResult {
  std::vector<RefreshReport> refreshes;
  StreamingStats ingest;
  std::vector<index_t> final_dims;
  offset_t final_nnz = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t queries = 0;
  double total_seconds = 0;
};

/// Run the full ingest -> refresh -> publish -> query lifecycle over
/// `events` and return what happened. Metrics accumulate in the global obs
/// registry under stream/* (including query p50/p99 gauges).
ReplayResult replay_stream(const CooTensor& events, const ReplayConfig& cfg);

}  // namespace aoadmm
