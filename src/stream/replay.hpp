// Replay driver: feed a static COO tensor through the streaming stack as a
// sequence of timestamp-ordered event batches, refreshing and serving after
// each one. This is both the `tensor_tool stream-replay` backend and the
// harness the streaming tests and benchmarks drive.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "stream/streaming_solver.hpp"
#include "stream/streaming_tensor.hpp"
#include "stream/supervisor.hpp"
#include "stream/wal.hpp"
#include "tensor/coo.hpp"

namespace aoadmm {

/// Split `events` into at most `batches` COO batches ordered by the time
/// mode: entries are sorted by time index and chunked near-evenly, with
/// chunk boundaries pushed forward so no time tick spans two batches (a
/// tick is the atomic unit of arrival). Fewer batches come back when the
/// tensor has fewer distinct ticks. Batches concatenate to a permutation of
/// `events`.
std::vector<CooTensor> make_replay_batches(const CooTensor& events,
                                           std::size_t time_mode,
                                           std::size_t batches);

/// Live-telemetry wiring for a replay run. Everything is off by default;
/// the replay then behaves exactly as before.
struct ReplayTelemetry {
  /// >= 0: serve /metrics and /healthz on 127.0.0.1:<port> for the whole
  /// run (0 picks an ephemeral port; read it via on_ready or the result).
  int port = -1;

  /// Non-empty: periodically rewrite this file with the Prometheus text
  /// (and <file>.health with the healthz JSON) every file_period_seconds.
  std::string file;
  double file_period_seconds = 1.0;

  /// Non-empty: install a structured event journal (JSONL) at this path
  /// for the duration of the replay.
  std::string event_log;

  /// Keep the endpoint up (serving live scrapes while background queries
  /// keep flowing) this many seconds after the last batch — how CI scrapes
  /// a live process.
  double serve_seconds = 0;

  /// Forwarded to ExpositionOptions (healthz staleness threshold and the
  /// windowed-query-p99 SLO target).
  double stale_after_seconds = 0;
  double slo_query_p99_seconds = 0;

  /// Called once the endpoint is listening, with the bound port.
  std::function<void(std::uint16_t)> on_ready;
};

/// Fault-tolerance wiring for a replay run. Everything is off by default;
/// refreshes are still supervised (exceptions land in ReplayResult instead
/// of escaping mid-replay) but with no WAL, no quarantine, and the default
/// breaker/backoff ladder that a fault-free run never touches.
struct ReplayFaultTolerance {
  /// Non-empty: write-ahead-log path prefix. Existing state at the prefix
  /// is recovered into the tensor BEFORE ingest starts, then every applied
  /// batch is logged first — kill -9 mid-run and rerun to resume.
  std::string wal_prefix;
  WalOptions wal;

  /// Non-empty: batches failing validation (or implicated in refresh
  /// failures) divert to this bounded JSONL sidecar instead of wedging the
  /// pipeline.
  std::string quarantine_path;
  std::uint64_t quarantine_max_records = 1024;

  /// Breaker/backoff/deadline knobs for the supervised refresh loop.
  SupervisorOptions supervisor;
};

struct ReplayConfig {
  /// Batching and windowing.
  std::size_t batches = 8;
  StreamingOptions stream;

  /// Solve configuration for every refresh.
  CpdConfig cpd;

  /// Fault-tolerance plane (WAL, quarantine, supervised refresh).
  ReplayFaultTolerance fault;

  /// Random single-entry queries issued against the live server after each
  /// refresh (coordinates drawn uniformly within the current mode lengths).
  std::size_t queries_per_refresh = 0;
  std::uint64_t query_seed = 0x5eedULL;

  /// Telemetry plane (endpoint, file mode, event journal).
  ReplayTelemetry telemetry;
};

struct ReplayResult {
  std::vector<RefreshReport> refreshes;
  StreamingStats ingest;
  std::vector<index_t> final_dims;
  offset_t final_nnz = 0;
  std::uint64_t final_epoch = 0;
  std::uint64_t queries = 0;
  double total_seconds = 0;
  /// Port the exposition endpoint served on (0 when none was requested).
  std::uint16_t telemetry_port = 0;
  /// Journal lines written (0 when no event log was requested).
  std::uint64_t journal_events = 0;

  /// Fault-tolerance outcomes. Contained per-batch refresh failures land
  /// here (count + first message) instead of escaping as exceptions.
  std::uint64_t refresh_failures = 0;
  /// Refreshes skipped by the supervisor (backoff window or open breaker).
  std::uint64_t refresh_skipped = 0;
  std::string first_refresh_error;
  /// Batches diverted to the quarantine (validation + implication).
  std::uint64_t quarantined = 0;
  /// Breaker state when the run ended.
  BreakerState breaker = BreakerState::kClosed;
  /// What WAL recovery found at startup (all-zero when no WAL configured).
  WalRecoveryReport wal;
  /// Order-independent digest of the final live tensor state — equal
  /// digests mean bitwise-equal CSF compilations (the crash-recovery
  /// contract the chaos CI job asserts).
  std::uint64_t state_digest = 0;
};

/// Run the full ingest -> refresh -> publish -> query lifecycle over
/// `events` and return what happened. Metrics accumulate in the global obs
/// registry under stream/* (exporters derive query quantiles from the
/// stream/query_seconds histogram and its trailing window).
ReplayResult replay_stream(const CooTensor& events, const ReplayConfig& cfg);

}  // namespace aoadmm
