// Serve half of the streaming subsystem: a live Kruskal model behind
// epoch-published immutable snapshots.
//
// Publication protocol (RCU-flavoured):
//  * publish() wraps the model in an immutable KruskalSnapshot, installs it
//    under the server mutex, then advances the epoch counter with release
//    ordering. Snapshots are never mutated after publication.
//  * Readers hold a Reader handle that caches a shared_ptr to the snapshot
//    it last saw plus that snapshot's epoch. The steady-state query path is
//    ONE relaxed-free atomic load (the epoch counter) compared against the
//    cached epoch — no lock, no shared_ptr refcount traffic, no contended
//    cache line. Only when the epoch moved does the reader take the mutex
//    to re-acquire the current snapshot.
//  * Old snapshots die when the last reader's cached shared_ptr drops them;
//    a refresh thread can therefore publish at any rate without
//    coordinating with queries.
//
// Each Reader is single-threaded (one handle per querying thread); the
// ModelServer itself may be shared freely between one publisher and any
// number of reader threads.
//
// Query latency and volume flow into the obs registry: stream/queries,
// stream/query_seconds (histogram — exporters derive p50/p95/p99/p999 via
// histogram_quantiles), the stream/query_seconds windowed histogram
// (trailing-window quantiles for /metrics summaries and /healthz),
// stream/snapshot_swaps, stream/snapshot_epoch, stream/reader_refreshes.
// Each publish stamps the snapshot with the TraceContext it came from,
// journals a snapshot_published event, and drops a profiler instant marker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/kruskal.hpp"
#include "obs/telemetry/trace_context.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// One published model version. Immutable after construction.
struct KruskalSnapshot {
  std::uint64_t epoch = 0;
  /// Trace context of the solve that produced this model: origin.solve_id
  /// links the snapshot to its refresh, origin.batch_id to the last ingest
  /// batch folded in. origin.epoch always equals `epoch`.
  obs::TraceContext origin;
  KruskalTensor model;

  std::size_t order() const noexcept { return model.order(); }
  rank_t rank() const noexcept { return model.rank(); }
};

/// A scored index returned by top-k queries, best first.
struct ScoredIndex {
  index_t index = 0;
  real_t score = 0;
};

class ModelServer {
 public:
  ModelServer();

  /// Atomically replace the served model. Safe to call concurrently with
  /// any number of readers; readers observe either the old or the new
  /// snapshot, never a mixture. `origin` is the trace context of the solve
  /// that produced the model (its .epoch is overwritten with the new
  /// epoch). Returns the new epoch.
  std::uint64_t publish(KruskalTensor model, obs::TraceContext origin = {});

  /// Epoch of the latest published snapshot (0 = nothing published yet).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Seconds since the last publish (infinity before the first).
  double staleness_seconds() const noexcept;

  /// The current snapshot, or nullptr before the first publish. Takes the
  /// server mutex — readers on the query path should go through a Reader.
  std::shared_ptr<const KruskalSnapshot> snapshot() const;

  /// Per-thread query handle. Create one per reader thread via reader().
  class Reader {
   public:
    /// The snapshot this reader currently sees, re-acquired from the server
    /// iff the epoch moved since the last call. Requires a published model.
    const KruskalSnapshot& acquire();

    /// Like acquire() but returns nullptr before the first publish instead
    /// of failing the contract check — the degraded-mode query path, where
    /// the supervisor may still be crash-looping toward its first model.
    const KruskalSnapshot* try_acquire();

    /// Single-entry reconstruction Σ_f λ_f ∏_m A_m(coord_m, f) against the
    /// current snapshot. `coord` must have order() entries in range.
    real_t predict(cspan<index_t> coord);

    /// Top-k indices of mode `target_mode` scored against row `row` of mode
    /// `anchor_mode` by the pairwise interaction
    ///   score(j) = Σ_f λ_f A_anchor(row, f) A_target(j, f)
    /// (remaining modes marginalized out of the score). Results are sorted
    /// best-first; k is clamped to the target mode length.
    std::vector<ScoredIndex> top_k(std::size_t anchor_mode, index_t row,
                                   std::size_t target_mode, std::size_t k);

    /// Epoch of the snapshot this reader last acquired.
    std::uint64_t cached_epoch() const noexcept { return cached_epoch_; }

   private:
    friend class ModelServer;
    explicit Reader(const ModelServer& server) : server_(&server) {}

    const ModelServer* server_;
    std::shared_ptr<const KruskalSnapshot> cached_;
    std::uint64_t cached_epoch_ = 0;
  };

  Reader reader() const { return Reader(*this); }

 private:
  friend class Reader;

  mutable std::mutex mu_;
  std::shared_ptr<const KruskalSnapshot> current_;  // guarded by mu_
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::int64_t> publish_ns_{-1};  // steady-clock ns of last publish
};

}  // namespace aoadmm
