#include "stream/wal.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/telemetry/event_journal.hpp"
#include "obs/telemetry/trace_context.hpp"
#include "stream/streaming_tensor.hpp"
#include "tensor/coo.hpp"
#include "testing/fault_injection.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace aoadmm {
namespace {

namespace fs = std::filesystem;

constexpr char kSegmentMagic[8] = {'A', 'O', 'W', 'A', 'L', 'S', 'G', '0'};
constexpr char kCheckpointMagic[8] = {'A', 'O', 'W', 'A', 'L', 'C', 'K', '0'};
constexpr std::uint32_t kWalVersion = 1;
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
/// A single batch record larger than this is treated as corruption, not
/// data — it bounds the allocation a mangled length prefix can demand.
constexpr std::uint64_t kMaxRecordBytes = 1ull << 30;

/// FNV-1a folded over 64-bit words with a byte-wise tail: 8x fewer
/// multiplies than the canonical byte loop, which keeps the per-append
/// checksum out of the ingest hot path. Not the canonical FNV value — the
/// format is private to this file and only has to agree with itself.
std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= kFnvPrime;
  }
  for (; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
void put_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_bytes(std::string& buf, const void* data, std::size_t n) {
  buf.append(static_cast<const char*>(data), n);
}

/// Cursor over an in-memory byte range; every get_* returns false on
/// truncation instead of throwing, because a short read is the expected
/// crash artifact the scanner must tolerate.
struct ByteReader {
  const char* p;
  const char* end;

  std::size_t remaining() const {
    return static_cast<std::size_t>(end - p);
  }

  template <typename T>
  bool get_pod(T& out) {
    if (remaining() < sizeof(T)) {
      return false;
    }
    std::memcpy(&out, p, sizeof(T));
    p += sizeof(T);
    return true;
  }

  bool get_bytes(void* out, std::size_t n) {
    if (remaining() < n) {
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    return true;
  }

  bool skip(std::size_t n) {
    if (remaining() < n) {
      return false;
    }
    p += n;
    return true;
  }
};

/// Serialize one batch record payload (everything between the length
/// prefix and the checksum trailer).
/// Render one record payload into `payload` (cleared first). The caller
/// owns the buffer so steady-state appends reuse one allocation instead of
/// mmap/munmap-ing a fresh half-megabyte string per batch.
void render_record(std::string& payload, std::uint64_t seq,
                   const CooTensor& batch) {
  payload.clear();
  const std::size_t order = batch.order();
  const std::uint64_t nnz = batch.nnz();
  payload.reserve(24 + order * nnz * sizeof(index_t) + nnz * sizeof(real_t));
  put_pod(payload, seq);
  put_pod(payload, static_cast<std::uint32_t>(order));
  put_pod(payload, nnz);
  for (std::size_t m = 0; m < order; ++m) {
    put_bytes(payload, batch.mode_indices(m).data(), nnz * sizeof(index_t));
  }
  put_bytes(payload, batch.values().data(), nnz * sizeof(real_t));
}

/// Parse one record payload. Returns false on truncation or nonsense
/// (order 0, beyond kMaxOrder-ish growth is fine — order is bounded only
/// by sanity here since checksum already passed).
bool parse_record(std::string_view payload, std::uint64_t& seq,
                  CooTensor& batch) {
  ByteReader r{payload.data(), payload.data() + payload.size()};
  std::uint32_t order = 0;
  std::uint64_t nnz = 0;
  if (!r.get_pod(seq) || !r.get_pod(order) || !r.get_pod(nnz)) {
    return false;
  }
  if (order == 0 ||
      r.remaining() != order * nnz * sizeof(index_t) + nnz * sizeof(real_t)) {
    return false;
  }
  std::vector<std::vector<index_t>> inds(order);
  for (std::uint32_t m = 0; m < order; ++m) {
    inds[m].resize(nnz);
    if (!r.get_bytes(inds[m].data(), nnz * sizeof(index_t))) {
      return false;
    }
  }
  std::vector<real_t> vals(nnz);
  if (!r.get_bytes(vals.data(), nnz * sizeof(real_t))) {
    return false;
  }

  // Rebuild the COO: dims follow the indices actually present, exactly as
  // StreamingTensor::apply() would grow them.
  std::vector<index_t> dims(order, 1);
  for (std::uint32_t m = 0; m < order; ++m) {
    for (std::uint64_t n = 0; n < nnz; ++n) {
      dims[m] = std::max<index_t>(dims[m], inds[m][n] + 1);
    }
  }
  batch = CooTensor(dims);
  batch.reserve(nnz);
  std::vector<index_t> coord(order);
  for (std::uint64_t n = 0; n < nnz; ++n) {
    for (std::uint32_t m = 0; m < order; ++m) {
      coord[m] = inds[m][n];
    }
    batch.add(coord, vals[n]);
  }
  return true;
}

std::string render_header(const char magic[8]) {
  std::string h;
  put_bytes(h, magic, 8);
  put_pod(h, kWalVersion);
  put_pod(h, static_cast<std::uint32_t>(sizeof(real_t)));
  return h;
}

bool check_header(ByteReader& r, const char magic[8], std::string& why) {
  char m[8];
  std::uint32_t version = 0;
  std::uint32_t real_size = 0;
  if (!r.get_bytes(m, 8) || !r.get_pod(version) || !r.get_pod(real_size)) {
    why = "truncated header";
    return false;
  }
  if (std::memcmp(m, magic, 8) != 0) {
    why = "bad magic";
    return false;
  }
  if (version != kWalVersion) {
    why = "unsupported version " + std::to_string(version);
    return false;
  }
  if (real_size != sizeof(real_t)) {
    why = "real_t size mismatch";
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return static_cast<bool>(in);
}

/// Registry handles for the WAL, registered once per process.
struct WalMetrics {
  obs::Counter records;
  obs::Counter bytes;
  obs::Counter write_failures;
  obs::Counter checkpoints;
  obs::Counter recovered_batches;
  obs::Counter truncated_segments;
  obs::Gauge replaying;

  static const WalMetrics& get() {
    static const WalMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      WalMetrics out;
      out.records = reg.counter("robust/stream_wal_records");
      out.bytes = reg.counter("robust/stream_wal_bytes");
      out.write_failures = reg.counter("robust/stream_wal_write_failures");
      out.checkpoints = reg.counter("robust/stream_wal_checkpoints");
      out.recovered_batches =
          reg.counter("robust/stream_wal_recovered_batches");
      out.truncated_segments =
          reg.counter("robust/stream_wal_truncated_segments");
      out.replaying = reg.gauge("stream/wal_replaying");
      return out;
    }();
    return m;
  }
};

/// Sets stream/wal_replaying for the duration of recovery so /healthz can
/// answer "degraded" while the log drains.
struct ReplayingGuard {
  ReplayingGuard() { WalMetrics::get().replaying.set(1); }
  ~ReplayingGuard() { WalMetrics::get().replaying.set(0); }
};

/// (segment number, path) for every on-disk segment of `prefix`, ascending.
std::vector<std::pair<std::uint64_t, std::string>> scan_segments(
    const std::string& prefix) {
  fs::path p(prefix);
  fs::path dir = p.parent_path();
  if (dir.empty()) {
    dir = ".";
  }
  const std::string stem = p.filename().string() + ".seg";
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= stem.size() || name.compare(0, stem.size(), stem) != 0) {
      continue;
    }
    const char* first = name.c_str() + stem.size();
    const char* last = name.c_str() + name.size();
    std::uint64_t n = 0;
    const auto [ptr, err] = std::from_chars(first, last, n);
    if (err == std::errc{} && ptr == last) {
      found.emplace_back(n, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

const char* to_string(WalFsync f) noexcept {
  switch (f) {
    case WalFsync::kNever:
      return "never";
    case WalFsync::kEveryBatch:
      return "every_batch";
    case WalFsync::kEveryN:
      return "every_n";
  }
  return "?";
}

WriteAheadLog::WriteAheadLog(std::string prefix, WalOptions opts)
    : prefix_(std::move(prefix)), opts_(opts) {
  AOADMM_CHECK_MSG(opts_.segment_max_bytes > 0,
                   "wal segment_max_bytes must be positive");
  AOADMM_CHECK_MSG(opts_.fsync != WalFsync::kEveryN || opts_.fsync_every_n > 0,
                   "wal fsync_every_n must be positive with kEveryN");
  fs::path dir = fs::path(prefix_).parent_path();
  if (dir.empty()) {
    dir = ".";
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!fs::is_directory(dir)) {
    throw WalError("wal: cannot create prefix directory " + dir.string());
  }
  // Appends must never touch pre-existing segments (their tails may be
  // torn); continue the numbering past whatever is on disk.
  const auto existing = scan_segments(prefix_);
  if (!existing.empty()) {
    next_segment_ = existing.back().first + 1;
  }
}

WriteAheadLog::~WriteAheadLog() { close_segment(); }

std::string WriteAheadLog::segment_path(std::uint64_t n) const {
  return prefix_ + ".seg" + std::to_string(n);
}

std::vector<std::string> WriteAheadLog::segment_files() const {
  std::vector<std::string> out;
  for (auto& [n, path] : scan_segments(prefix_)) {
    out.push_back(std::move(path));
  }
  return out;
}

void WriteAheadLog::close_segment() noexcept {
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  open_segment_ = 0;
  segment_bytes_ = 0;
  unsynced_ = 0;
}

bool WriteAheadLog::open_segment_locked() {
  const std::uint64_t n = next_segment_++;
  const std::string path = segment_path(n);
  out_ = std::fopen(path.c_str(), "wb");
  if (out_ == nullptr) {
    return false;
  }
  const std::string header = render_header(kSegmentMagic);
  if (std::fwrite(header.data(), 1, header.size(), out_) != header.size()) {
    std::fclose(out_);
    out_ = nullptr;
    return false;
  }
  open_segment_ = n;
  segment_bytes_ = header.size();
  unsynced_ = 0;
  return true;
}

bool WriteAheadLog::append_failed(const char* why) {
  ++append_failures_;
  WalMetrics::get().write_failures.add(1);
  AOADMM_LOG_WARN << "wal: append failed (" << why
                  << "); ingest continues unprotected";
  obs::journal_event(obs::EventKind::kWalWriteFailed, obs::current_trace(),
                     obs::EventJournal::Fields{}
                         .str("why", why)
                         .num("seq", seq_ + 1));
  // Abandon the open segment: a partial record must stay at a segment
  // *tail* (where the scanner tolerates it), so the next append starts a
  // fresh segment rather than writing after the tear.
  close_segment();
  if (opts_.strict) {
    throw WalError(std::string("wal: append failed: ") + why);
  }
  return false;
}

bool WriteAheadLog::append(const CooTensor& batch) {
  if (testing::maybe_fail_wal_write()) {
    return append_failed("injected fault");
  }
  if (out_ == nullptr && !open_segment_locked()) {
    return append_failed("cannot open segment");
  }

  render_record(scratch_, seq_ + 1, batch);
  const std::uint64_t len = scratch_.size();
  const std::uint64_t sum = fnv1a(scratch_.data(), scratch_.size());
  // Three writes, zero copies: the length prefix, the payload straight from
  // the scratch buffer, the checksum. A tear anywhere in between is exactly
  // the torn tail recovery tolerates.
  if (std::fwrite(&len, sizeof(len), 1, out_) != 1 ||
      std::fwrite(scratch_.data(), 1, scratch_.size(), out_) !=
          scratch_.size() ||
      std::fwrite(&sum, sizeof(sum), 1, out_) != 1 ||
      std::fflush(out_) != 0) {
    return append_failed("short write");
  }
  const std::uint64_t record_bytes = len + 2 * sizeof(std::uint64_t);

  ++seq_;
  segment_bytes_ += record_bytes;
  ++batches_since_checkpoint_;
  ++unsynced_;
  const WalMetrics& metrics = WalMetrics::get();
  metrics.records.add(1);
  metrics.bytes.add(static_cast<double>(record_bytes));

#ifndef _WIN32
  if (opts_.fsync == WalFsync::kEveryBatch ||
      (opts_.fsync == WalFsync::kEveryN && unsynced_ >= opts_.fsync_every_n)) {
    ::fsync(fileno(out_));
    unsynced_ = 0;
  }
#endif

  if (segment_bytes_ >= opts_.segment_max_bytes) {
    close_segment();
  }
  return true;
}

bool WriteAheadLog::checkpoint_due() const noexcept {
  return opts_.checkpoint_every_batches > 0 &&
         batches_since_checkpoint_ >= opts_.checkpoint_every_batches;
}

void WriteAheadLog::write_checkpoint(const CooTensor& compacted,
                                     index_t watermark) {
  std::string body = render_header(kCheckpointMagic);
  put_pod(body, seq_);
  put_pod(body, static_cast<std::uint64_t>(watermark));
  put_pod(body, static_cast<std::uint32_t>(compacted.order()));
  for (std::size_t m = 0; m < compacted.order(); ++m) {
    put_pod(body, compacted.dim(m));
  }
  const std::uint64_t nnz = compacted.nnz();
  put_pod(body, nnz);
  for (std::size_t m = 0; m < compacted.order(); ++m) {
    put_bytes(body, compacted.mode_indices(m).data(), nnz * sizeof(index_t));
  }
  put_bytes(body, compacted.values().data(), nnz * sizeof(real_t));
  put_pod(body, fnv1a(body.data(), body.size()));

  const std::string path = checkpoint_file();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw WalError("wal: cannot open checkpoint tmp " + tmp);
    }
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw WalError("wal: short checkpoint write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw WalError("wal: cannot rename checkpoint into place at " + path);
  }

  // The checkpoint covers every appended record; the segments are now
  // redundant and the log truncates to just the sidecar.
  close_segment();
  std::uint64_t removed = 0;
  for (const auto& seg : segment_files()) {
    if (std::remove(seg.c_str()) == 0) {
      ++removed;
    }
  }
  batches_since_checkpoint_ = 0;
  ++checkpoints_;
  const WalMetrics& metrics = WalMetrics::get();
  metrics.checkpoints.add(1);
  metrics.truncated_segments.add(static_cast<double>(removed));
  obs::journal_event(obs::EventKind::kWalCheckpoint, obs::current_trace(),
                     obs::EventJournal::Fields{}
                         .num("covered_seq", seq_)
                         .num("nnz", nnz)
                         .num("segments_removed", removed));
}

WalRecoveryReport WriteAheadLog::recover_into(StreamingTensor& tensor) {
  const ReplayingGuard replaying;
  WalRecoveryReport report;
  const auto note = [&report](const std::string& what) {
    if (!report.detail.empty()) {
      report.detail += "; ";
    }
    report.detail += what;
  };

  // Checkpoint first: it is the floor the segments build on.
  std::string blob;
  if (read_file(checkpoint_file(), blob)) {
    ByteReader r{blob.data(), blob.data() + blob.size()};
    std::string why;
    if (!check_header(r, kCheckpointMagic, why)) {
      throw WalError("wal: corrupt checkpoint (" + why + ") at " +
                     checkpoint_file());
    }
    if (blob.size() < sizeof(std::uint64_t) ||
        fnv1a(blob.data(), blob.size() - sizeof(std::uint64_t)) !=
            *reinterpret_cast<const std::uint64_t*>(
                blob.data() + blob.size() - sizeof(std::uint64_t))) {
      throw WalError("wal: corrupt checkpoint (bad checksum) at " +
                     checkpoint_file());
    }
    std::uint64_t covered = 0;
    std::uint64_t watermark = 0;
    std::uint32_t order = 0;
    if (!r.get_pod(covered) || !r.get_pod(watermark) || !r.get_pod(order) ||
        order != tensor.order()) {
      throw WalError("wal: corrupt checkpoint (bad preamble) at " +
                     checkpoint_file());
    }
    std::vector<index_t> dims(order);
    for (std::uint32_t m = 0; m < order; ++m) {
      if (!r.get_pod(dims[m])) {
        throw WalError("wal: corrupt checkpoint (truncated dims) at " +
                       checkpoint_file());
      }
    }
    std::uint64_t nnz = 0;
    if (!r.get_pod(nnz)) {
      throw WalError("wal: corrupt checkpoint (truncated nnz) at " +
                     checkpoint_file());
    }
    std::vector<std::vector<index_t>> inds(order);
    for (std::uint32_t m = 0; m < order; ++m) {
      inds[m].resize(nnz);
      if (!r.get_bytes(inds[m].data(), nnz * sizeof(index_t))) {
        throw WalError("wal: corrupt checkpoint (truncated indices) at " +
                       checkpoint_file());
      }
    }
    std::vector<real_t> vals(nnz);
    if (!r.get_bytes(vals.data(), nnz * sizeof(real_t))) {
      throw WalError("wal: corrupt checkpoint (truncated values) at " +
                     checkpoint_file());
    }
    CooTensor snapshot(dims);
    snapshot.reserve(nnz);
    std::vector<index_t> coord(order);
    for (std::uint64_t n = 0; n < nnz; ++n) {
      for (std::uint32_t m = 0; m < order; ++m) {
        coord[m] = inds[m][n];
      }
      snapshot.add(coord, vals[n]);
    }
    if (nnz > 0) {
      tensor.apply(snapshot);
    }
    // The stored watermark can exceed the snapshot's max time index (the
    // newest entries may have been overwritten or evicted); restore it
    // exactly so window eviction resumes where it left off.
    tensor.advance_watermark(static_cast<index_t>(watermark));
    report.checkpoint_loaded = true;
    report.checkpoint_nnz = nnz;
    report.covered_seq = covered;
    seq_ = std::max(seq_, covered);
  }

  // Replay the segments in order. Each record is independently
  // checksummed, so a torn region abandons the rest of its segment but
  // later segments (written after a degraded append moved on) still replay.
  for (const auto& [segno, path] : scan_segments(prefix_)) {
    ++report.segments_scanned;
    if (!read_file(path, blob)) {
      report.torn_tail = true;
      note("unreadable segment " + path);
      continue;
    }
    ByteReader r{blob.data(), blob.data() + blob.size()};
    std::string why;
    if (!check_header(r, kSegmentMagic, why)) {
      report.torn_tail = true;
      note("bad segment header (" + why + ") in " + path);
      continue;
    }
    CooTensor batch;
    while (r.remaining() > 0) {
      std::uint64_t len = 0;
      if (!r.get_pod(len) || len > kMaxRecordBytes ||
          r.remaining() < len + sizeof(std::uint64_t)) {
        report.torn_tail = true;
        note("torn record tail in " + path);
        break;
      }
      const std::string_view payload(r.p, len);
      r.skip(len);
      std::uint64_t checksum = 0;
      r.get_pod(checksum);
      std::uint64_t seq = 0;
      if (fnv1a(payload.data(), payload.size()) != checksum ||
          !parse_record(payload, seq, batch)) {
        report.torn_tail = true;
        note("corrupt record in " + path);
        break;
      }
      if (seq <= report.covered_seq) {
        ++report.records_skipped;
        continue;
      }
      tensor.apply(batch);
      ++report.records_recovered;
      seq_ = std::max(seq_, seq);
    }
  }

  report.last_seq = seq_;
  WalMetrics::get().recovered_batches.add(
      static_cast<double>(report.records_recovered));
  if (report.checkpoint_loaded || report.segments_scanned > 0) {
    AOADMM_LOG_INFO << "wal: recovered " << report.records_recovered
                    << " batch(es) from " << report.segments_scanned
                    << " segment(s)"
                    << (report.checkpoint_loaded ? " + checkpoint" : "")
                    << (report.torn_tail ? " (torn tail)" : "");
    obs::journal_event(obs::EventKind::kWalRecovered, obs::current_trace(),
                       obs::EventJournal::Fields{}
                           .boolean("checkpoint_loaded",
                                    report.checkpoint_loaded)
                           .num("records_recovered", report.records_recovered)
                           .num("records_skipped", report.records_skipped)
                           .num("last_seq", report.last_seq)
                           .boolean("torn_tail", report.torn_tail));
  }
  return report;
}

}  // namespace aoadmm
