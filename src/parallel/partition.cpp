#include "parallel/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aoadmm {

std::vector<std::size_t> even_partition(std::size_t n, std::size_t parts) {
  AOADMM_CHECK(parts > 0);
  std::vector<std::size_t> bounds(parts + 1);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t pos = 0;
  for (std::size_t p = 0; p <= parts; ++p) {
    bounds[p] = pos;
    if (p < parts) {
      pos += base + (p < extra ? 1 : 0);
    }
  }
  bounds[parts] = n;
  return bounds;
}

std::vector<std::size_t> weighted_partition(cspan<const offset_t> weights,
                                            std::size_t parts) {
  AOADMM_CHECK(parts > 0);
  const std::size_t n = weights.size();
  std::vector<offset_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + weights[i];
  }
  const offset_t total = prefix[n];
  std::vector<std::size_t> bounds(parts + 1, 0);
  bounds[parts] = n;
  for (std::size_t p = 1; p < parts; ++p) {
    // Ideal cumulative weight at the p-th boundary, rounded up so empty-weight
    // prefixes do not collapse every boundary to zero.
    const offset_t target =
        (total * static_cast<offset_t>(p) + parts - 1) /
        static_cast<offset_t>(parts);
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    std::size_t b = static_cast<std::size_t>(it - prefix.begin());
    b = std::min(b, n);
    bounds[p] = std::max(bounds[p - 1], b);
  }
  return bounds;
}

std::size_t num_blocks(std::size_t n, std::size_t block) noexcept {
  if (block == 0 || n == 0) {
    return n == 0 ? 0 : 1;
  }
  return (n + block - 1) / block;
}

BlockRange block_range(std::size_t n, std::size_t block,
                       std::size_t b) noexcept {
  if (block == 0) {
    return {0, n};
  }
  const std::size_t lo = b * block;
  const std::size_t hi = std::min(lo + block, n);
  return {lo, hi};
}

}  // namespace aoadmm
