// Thin shim over OpenMP so the library builds (serially) without it and so
// call sites stay testable. All parallelism in the library flows through
// these helpers or through explicit `#pragma omp` regions in the kernels.
#pragma once

#include <cstddef>
#include <functional>

namespace aoadmm {

/// Number of threads a parallel region will use (respects omp_set_num_threads
/// and OMP_NUM_THREADS). 1 when built without OpenMP.
int max_threads() noexcept;

/// Set the team size for subsequent parallel regions. No-op without OpenMP.
void set_num_threads(int n) noexcept;

/// Calling thread's id inside a parallel region (0 outside / without OpenMP).
int thread_id() noexcept;

/// Size of the current team when called inside a parallel region (1 outside
/// or without OpenMP). May be smaller than max_threads() was when the
/// region started — schedulers planned against max_threads() must tolerate
/// that (see mttkrp_root_loop's chunk striding).
int team_size() noexcept;

/// True when compiled with OpenMP support.
constexpr bool have_openmp() noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  return true;
#else
  return false;
#endif
}

/// Scheduling policy for parallel_for.
enum class Schedule {
  kStatic,   // contiguous even chunks — uniform work
  kDynamic,  // work-stealing-style chunks — irregular work (blocked ADMM)
};

/// Parallel loop over [begin, end). `body(i)` must be safe to run
/// concurrently for distinct i. `chunk` controls dynamic granularity.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  Schedule schedule = Schedule::kStatic,
                  std::size_t chunk = 1);

/// Parallel sum-reduction of `body(i)` over [begin, end).
double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& body);

}  // namespace aoadmm
