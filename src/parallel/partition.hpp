// 1-D partitioning utilities: even chunking for uniform work and weighted
// (prefix-sum) partitioning for irregular work such as distributing tensor
// slices with power-law non-zero counts across threads.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace aoadmm {

/// Boundaries of `parts` contiguous chunks covering [0, n): result has
/// parts+1 entries with result.front()==0 and result.back()==n. Chunk sizes
/// differ by at most one.
std::vector<std::size_t> even_partition(std::size_t n, std::size_t parts);

/// Partition [0, n) into `parts` contiguous chunks balancing the total
/// weight per chunk, where weights[i] >= 0 is the cost of item i. Uses the
/// prefix-sum + binary-search heuristic (each boundary placed at the ideal
/// cumulative weight). Result format matches even_partition.
std::vector<std::size_t> weighted_partition(cspan<const offset_t> weights,
                                            std::size_t parts);

/// Split [0, n) into fixed-size blocks of `block` items (last may be short).
/// Returns the number of blocks; block b covers
/// [b*block, min((b+1)*block, n)). Helper for blocked ADMM.
std::size_t num_blocks(std::size_t n, std::size_t block) noexcept;

/// The half-open row range of block `b`.
struct BlockRange {
  std::size_t begin;
  std::size_t end;
};
BlockRange block_range(std::size_t n, std::size_t block,
                       std::size_t b) noexcept;

}  // namespace aoadmm
