#include "parallel/runtime.hpp"

#if defined(AOADMM_HAVE_OPENMP)
#include <omp.h>
#endif

namespace aoadmm {

int max_threads() noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  if (n > 0) {
    omp_set_num_threads(n);
  }
#else
  (void)n;
#endif
}

int thread_id() noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  Schedule schedule, std::size_t chunk) {
  if (begin >= end) {
    return;
  }
#if defined(AOADMM_HAVE_OPENMP)
  const auto n = static_cast<std::ptrdiff_t>(end - begin);
  if (schedule == Schedule::kDynamic) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t c = 0; c < (n + static_cast<std::ptrdiff_t>(chunk) - 1) /
                                        static_cast<std::ptrdiff_t>(chunk);
         ++c) {
      const std::size_t lo = begin + static_cast<std::size_t>(c) * chunk;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) {
        body(i);
      }
    }
  } else {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      body(begin + static_cast<std::size_t>(i));
    }
  }
#else
  (void)schedule;
  (void)chunk;
  for (std::size_t i = begin; i < end; ++i) {
    body(i);
  }
#endif
}

double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& body) {
  double total = 0.0;
  if (begin >= end) {
    return total;
  }
#if defined(AOADMM_HAVE_OPENMP)
  const auto n = static_cast<std::ptrdiff_t>(end - begin);
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    total += body(begin + static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = begin; i < end; ++i) {
    total += body(i);
  }
#endif
  return total;
}

}  // namespace aoadmm
