#include "parallel/runtime.hpp"

#include <chrono>

#include "obs/parallel_stats.hpp"

#if defined(AOADMM_HAVE_OPENMP)
#include <omp.h>
#endif

namespace aoadmm {
namespace {

using obs_clock = std::chrono::steady_clock;

double seconds_since(obs_clock::time_point t0) noexcept {
  return std::chrono::duration<double>(obs_clock::now() - t0).count();
}

}  // namespace

int max_threads() noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  if (n > 0) {
    omp_set_num_threads(n);
  }
#else
  (void)n;
#endif
}

int thread_id() noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

int team_size() noexcept {
#if defined(AOADMM_HAVE_OPENMP)
  return omp_get_num_threads();
#else
  return 1;
#endif
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  Schedule schedule, std::size_t chunk) {
  if (begin >= end) {
    return;
  }
  // Every region reports its per-thread busy time (work only — the
  // `nowait` clauses keep barrier waits out of the measurement) so the
  // observability layer can derive thread imbalance.
  obs::BusyTimes busy(max_threads());
#if defined(AOADMM_HAVE_OPENMP)
  const auto n = static_cast<std::ptrdiff_t>(end - begin);
  if (schedule == Schedule::kDynamic) {
    const std::ptrdiff_t nchunks =
        (n + static_cast<std::ptrdiff_t>(chunk) - 1) /
        static_cast<std::ptrdiff_t>(chunk);
#pragma omp parallel
    {
      const auto t0 = obs_clock::now();
#pragma omp for schedule(dynamic, 1) nowait
      for (std::ptrdiff_t c = 0; c < nchunks; ++c) {
        const std::size_t lo = begin + static_cast<std::size_t>(c) * chunk;
        const std::size_t hi = lo + chunk < end ? lo + chunk : end;
        for (std::size_t i = lo; i < hi; ++i) {
          body(i);
        }
      }
      busy.add(thread_id(), seconds_since(t0));
    }
  } else {
#pragma omp parallel
    {
      const auto t0 = obs_clock::now();
#pragma omp for schedule(static) nowait
      for (std::ptrdiff_t i = 0; i < n; ++i) {
        body(begin + static_cast<std::size_t>(i));
      }
      busy.add(thread_id(), seconds_since(t0));
    }
  }
#else
  (void)schedule;
  (void)chunk;
  const auto t0 = obs_clock::now();
  for (std::size_t i = begin; i < end; ++i) {
    body(i);
  }
  busy.add(0, seconds_since(t0));
#endif
}

double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& body) {
  double total = 0.0;
  if (begin >= end) {
    return total;
  }
#if defined(AOADMM_HAVE_OPENMP)
  const auto n = static_cast<std::ptrdiff_t>(end - begin);
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    total += body(begin + static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = begin; i < end; ++i) {
    total += body(i);
  }
#endif
  return total;
}

}  // namespace aoadmm
