// Sharded AO-ADMM driver: the medium-grained grid decomposition of Liavas
// & Sidiropoulos layered over this library's constrained inner solves.
//
// The tensor is split into an N-D grid of CSF tiles (dist/shard_plan.hpp).
// One worker thread per shard computes that tile's MTTKRP partial against
// its local factor blocks; a transport-shaped Exchange (dist/exchange.hpp)
// carries the partials to the coordinator, which reduces them in fixed
// shard-id order into the global K, runs the exact same per-mode ADMM
// update the unsharded CpdSolver runs (core/mode_update.hpp), and
// broadcasts the updated factor rows back to the shards that intersect
// them. The AO-ADMM structure is untouched — constraints, robustness,
// adaptive rho, checkpointing, and convergence all compose per mode
// exactly as in the single-tensor solver; only the MTTKRP is distributed.
//
// Out-of-core mode (ShardOptions::spill_dir): tiles are serialized to the
// spill directory at construction and mmap-streamed back per sweep step
// under a TileResidency byte budget, so the tensor's compiled form never
// has to fit in RAM at once.
//
// Determinism: the plan's fixed reduction order makes repeated runs
// bitwise identical, and a 1x1x1 grid reproduces the unsharded
// kOneTree/kOneMode solve bitwise (same tree, same kernels, same sum
// order). Multi-shard grids change the floating-point reduction order of
// K, so factors agree with the unsharded run only to roundoff.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/cpd.hpp"
#include "core/prox.hpp"
#include "core/workspace.hpp"
#include "dist/exchange.hpp"
#include "dist/shard_plan.hpp"
#include "dist/tile_store.hpp"
#include "util/rng.hpp"

namespace aoadmm {

class ShardedCpdSolver {
 public:
  /// Partition `coo` per config.shards, compile (and in out-of-core mode
  /// spill) the tiles, and start one worker thread per shard. The COO
  /// tensor is only read during construction and need not outlive the
  /// solver. Throws InvalidArgument on validation errors.
  ShardedCpdSolver(const CooTensor& coo, CpdConfig config);
  ~ShardedCpdSolver();

  ShardedCpdSolver(const ShardedCpdSolver&) = delete;
  ShardedCpdSolver& operator=(const ShardedCpdSolver&) = delete;

  const CpdConfig& config() const noexcept { return config_; }
  const ValidationReport& validation() const noexcept { return validation_; }
  const ShardPlan& plan() const noexcept { return plan_; }

  /// Cold solve from config.seed — same init draw order as CpdSolver.
  CpdResult solve();

  /// Continue a checkpointed run (same file format as CpdSolver — a
  /// checkpoint written by either solver resumes on any grid).
  CpdResult resume(const std::string& checkpoint_path);

  /// Cumulative exchange traffic (wire bytes/messages).
  ExchangeStats exchange_stats() const { return exchange_->stats(); }
  /// Out-of-core residency counters; zeros when running in-RAM.
  TileResidency::Stats residency_stats() const;

 private:
  struct Worker;

  CpdResult run(unsigned start_outer, real_t prev_error, CpdResult result);
  void broadcast_mode(std::size_t mode, std::uint64_t epoch);
  /// Issue kTask to every worker for `mode` and reduce their partials in
  /// shard-id order into ws_.mttkrp_out. Returns the worst worker busy
  /// time minus the mean (imbalance inputs).
  void sweep_mode(std::size_t mode, std::uint64_t epoch, double& max_busy,
                  double& sum_busy);
  void worker_main(std::size_t shard);
  void stop_workers();

  CpdConfig config_;
  ValidationReport validation_;
  ShardPlan plan_;
  real_t x_norm_sq_ = 0;

  std::unique_ptr<TileStore> store_;          // out-of-core only
  std::unique_ptr<TileResidency> residency_;  // out-of-core only
  std::vector<std::shared_ptr<const CsfTensor>> tiles_;  // in-RAM only

  std::unique_ptr<InProcExchange> exchange_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  bool workers_stopped_ = false;

  std::vector<std::unique_ptr<ProxOperator>> prox_;
  std::vector<Matrix> factors_;
  std::vector<Matrix> duals_;
  CpdWorkspace ws_;
  Rng rng_;
  std::vector<double> mode_mttkrp_seconds_;
};

}  // namespace aoadmm
