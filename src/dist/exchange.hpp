// Transport-shaped message layer between the shard coordinator and its
// workers. The interface is deliberately a dumb endpoint/message queue —
// send() and recv() of self-describing Message frames — so the in-process
// implementation here can later be swapped for a shared-memory ring or a
// socket without touching the solver: nothing above this layer assumes
// shared address space beyond the payload vectors.
//
// Endpoint convention: endpoints 0..shards-1 are the worker inboxes;
// endpoint `shards` is the coordinator inbox. Workers only ever send to the
// coordinator; the coordinator sends to workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace aoadmm {

enum class MsgKind : std::uint8_t {
  kTask,     ///< coordinator -> worker: compute an MTTKRP partial for `mode`
  kPartial,  ///< worker -> coordinator: the local MTTKRP rows (payload)
  kFactor,   ///< coordinator -> worker: updated factor block for `mode`
  kStop,     ///< coordinator -> worker: shut down
};

/// One frame. `payload` is a row-major rows x cols block of reals; which
/// factor rows it covers is implied by (mode, shard) and the ShardPlan both
/// sides hold.
struct Message {
  MsgKind kind = MsgKind::kStop;
  std::size_t mode = 0;    ///< target mode of the sweep step
  std::size_t shard = 0;   ///< sending/receiving shard id
  std::uint64_t epoch = 0; ///< (outer, mode) sweep counter, for sanity checks
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<real_t> payload;
  double busy_seconds = 0; ///< worker compute time (imbalance metric)
  std::string error;       ///< non-empty when the worker failed
};

/// Wire size of a message (what a byte transport would ship): fixed header
/// plus payload plus error text. The in-process queue moves pointers, but
/// accounting wire bytes keeps the metric meaningful across transports.
std::size_t message_bytes(const Message& m) noexcept;

struct ExchangeStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Exchange {
 public:
  virtual ~Exchange() = default;

  /// Deliver `m` to `endpoint`'s inbox. Thread-safe.
  virtual void send(std::size_t endpoint, Message m) = 0;

  /// Block until `endpoint` has a message and pop it. Thread-safe per
  /// endpoint (the sharded solver has one consumer per inbox).
  virtual Message recv(std::size_t endpoint) = 0;

  /// Cumulative traffic over all endpoints.
  virtual ExchangeStats stats() const = 0;
};

/// In-process implementation: one mutex+condvar FIFO per endpoint.
class InProcExchange final : public Exchange {
 public:
  explicit InProcExchange(std::size_t endpoints);

  void send(std::size_t endpoint, Message m) override;
  Message recv(std::size_t endpoint) override;
  ExchangeStats stats() const override;

 private:
  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  mutable std::mutex stats_mu_;
  ExchangeStats stats_;
};

}  // namespace aoadmm
