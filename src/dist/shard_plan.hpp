// N-D grid decomposition of a sparse tensor into per-shard tiles (the
// medium-grained layout of Liavas & Sidiropoulos). Each mode is cut into
// contiguous row blocks at nnz-balanced boundaries; a shard is one cell of
// the Cartesian grid and owns exactly the non-zeros whose coordinates fall
// in its block on every mode. A shard's factor working set is therefore the
// block of rows [row_begin[m], row_end[m]) per mode — the local<->global row
// map is a plain offset, which keeps boundary exchange a contiguous-row
// broadcast.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/coo.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// One cell of the shard grid.
struct Shard {
  /// Grid coordinate, one entry per mode (coord[m] < grid[m]).
  std::vector<std::size_t> coord;
  /// Half-open global row range this shard intersects on each mode.
  std::vector<index_t> row_begin;
  std::vector<index_t> row_end;
  /// Non-zeros that fall in this cell (empty cells are kept: the
  /// coordinator still addresses them by id).
  offset_t nnz = 0;

  index_t rows(std::size_t mode) const {
    return row_end[mode] - row_begin[mode];
  }
};

/// Deterministic decomposition of a tensor's index space into a grid of
/// shards. Shard ids are the row-major linearization of the grid coordinate
/// (last mode fastest), which is also the fixed partial-reduction order the
/// coordinator uses — the plan fully determines the floating-point sum
/// order, so repeated runs are bitwise identical.
struct ShardPlan {
  std::vector<std::size_t> grid;       ///< cells per mode
  std::vector<index_t> dims;           ///< global mode lengths
  /// Per mode: grid[m]+1 cut points with cuts[m].front()==0 and
  /// cuts[m].back()==dims[m], chosen to balance nnz per block
  /// (weighted_partition over slice_nnz).
  std::vector<std::vector<index_t>> cuts;
  offset_t nnz = 0;                    ///< total non-zeros
  std::vector<Shard> shards;           ///< shard_count() entries, id order
  /// FNV-1a over grid+dims+cuts+nnz: two plans with equal signatures tile
  /// identically (used to pair spill directories with their tensor).
  std::uint64_t signature = 0;

  std::size_t order() const noexcept { return grid.size(); }
  std::size_t shard_count() const noexcept { return shards.size(); }

  /// Row-major linear shard id of a grid coordinate.
  std::size_t shard_id(cspan<std::size_t> coord) const;

  /// The grid cell along `mode` that global row `row` falls in.
  std::size_t cell_of(std::size_t mode, index_t row) const;
};

/// Build the nnz-balanced plan for `grid` over `coo`. `grid` must have one
/// entry per mode, each >= 1 and <= the mode length (a mode shorter than
/// its grid extent cannot produce non-empty cuts). Deterministic: depends
/// only on the tensor's non-zero structure and the grid.
ShardPlan make_shard_plan(const CooTensor& coo,
                          const std::vector<std::size_t>& grid);

/// Extract shard `id`'s tile as a localized COO tensor: coordinates are
/// shifted by -row_begin[m] and dims are the block extents. Modes with zero
/// extent (possible when grid[m] > number of occupied rows) are widened to
/// 1 so the tile stays a valid tensor; it simply holds no non-zeros.
CooTensor extract_tile(const CooTensor& coo, const ShardPlan& plan,
                       std::size_t id);

/// "AxBxC" rendering of a grid for logs and error messages.
std::string grid_to_string(const std::vector<std::size_t>& grid);

}  // namespace aoadmm
