#include "dist/tile_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace aoadmm {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

TileStore::TileStore(std::string dir, std::uint64_t signature)
    : dir_(std::move(dir)), signature_(signature) {
  AOADMM_CHECK_MSG(!dir_.empty(), "tile store directory must be non-empty");
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_errno("cannot create spill directory " + dir_);
  }
  const std::string header = dir_ + "/PLAN";
  std::ifstream in(header);
  if (in) {
    std::uint64_t existing = 0;
    in >> existing;
    if (!in || existing != signature_) {
      throw Error("spill directory " + dir_ +
                  " holds tiles for a different tensor/grid (plan signature " +
                  std::to_string(existing) + " != " +
                  std::to_string(signature_) + "); point --spill-dir at an " +
                  "empty directory");
    }
  } else {
    std::ofstream out(header);
    out << signature_ << "\n";
    if (!out) {
      throw Error("cannot write spill plan header " + header);
    }
  }
}

std::string TileStore::tile_path(std::size_t shard) const {
  return dir_ + "/tile_" + std::to_string(shard) + ".csf";
}

void TileStore::write_tile(std::size_t shard, const CsfTensor& tree) {
  const std::vector<char> blob = tree.serialize();
  const std::string path = tile_path(shard);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      throw Error("cannot write spill tile " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("cannot publish spill tile " + path);
  }
}

std::size_t TileStore::tile_bytes(std::size_t shard) const {
  struct stat st;
  if (::stat(tile_path(shard).c_str(), &st) != 0) {
    throw_errno("cannot stat spill tile " + tile_path(shard));
  }
  return static_cast<std::size_t>(st.st_size);
}

CsfTensor TileStore::load_tile(std::size_t shard) const {
  const std::string path = tile_path(shard);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw_errno("cannot open spill tile " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("cannot stat spill tile " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw ParseError("empty spill tile " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("cannot mmap spill tile " + path);
  }
  // The decode is one front-to-back pass; tell the kernel so it reads ahead
  // aggressively and drops pages behind the cursor.
  ::madvise(map, size, MADV_SEQUENTIAL);
  CsfTensor tree;
  try {
    tree = CsfTensor::deserialize(static_cast<const char*>(map), size);
  } catch (...) {
    ::madvise(map, size, MADV_DONTNEED);
    ::munmap(map, size);
    ::close(fd);
    throw;
  }
  ::madvise(map, size, MADV_DONTNEED);
  ::munmap(map, size);
  ::close(fd);
  return tree;
}

TileResidency::TileResidency(const TileStore& store, std::size_t max_bytes)
    : store_(store), max_bytes_(max_bytes) {}

std::shared_ptr<const CsfTensor> TileResidency::acquire(std::size_t shard) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(shard);
    if (it != entries_.end()) {
      Entry& e = it->second;
      if (e.in_lru) {
        lru_.erase(e.lru_it);
        e.in_lru = false;
      }
      e.pins += 1;
      stats_.hits += 1;
      return e.tree;
    }
  }
  // Decode outside the lock: loads dominate and must not serialize behind
  // each other. Two racing loads of the same shard both decode; the second
  // to insert wins and the loser's copy is dropped — correct, just wasteful,
  // and the coordinator never issues concurrent tasks for one shard anyway.
  auto tree = std::make_shared<const CsfTensor>(store_.load_tile(shard));
  const std::size_t bytes = tree->storage_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(shard);
  Entry& e = it->second;
  if (inserted || !e.tree) {
    e.tree = std::move(tree);
    e.bytes = bytes;
    stats_.loads += 1;
    stats_.resident_bytes += bytes;
  } else {
    stats_.hits += 1;
  }
  if (e.in_lru) {
    lru_.erase(e.lru_it);
    e.in_lru = false;
  }
  e.pins += 1;
  evict_over_budget_locked();
  return e.tree;
}

void TileResidency::release(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(shard);
  AOADMM_CHECK_MSG(it != entries_.end() && it->second.pins > 0,
                   "release of an unpinned tile");
  Entry& e = it->second;
  e.pins -= 1;
  if (e.pins == 0) {
    lru_.push_front(shard);
    e.lru_it = lru_.begin();
    e.in_lru = true;
    evict_over_budget_locked();
  }
}

void TileResidency::evict_over_budget_locked() {
  while (stats_.resident_bytes > max_bytes_ && !lru_.empty()) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.bytes;
    stats_.evictions += 1;
    entries_.erase(it);
  }
}

TileResidency::Stats TileResidency::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace aoadmm
