// Out-of-core CSF tile spill: serialized tiles live as files in a spill
// directory and are paged back through mmap with sequential-read madvise,
// so the OS streams a tile through the page cache instead of resident heap.
// TileResidency keeps the decoded trees under a byte budget with LRU
// eviction; acquire() pins a tile for the duration of one sweep step.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/csf.hpp"

namespace aoadmm {

/// Directory of spilled tiles, one file per shard id. The plan signature is
/// embedded in the header file so a stale spill directory from a different
/// tensor/grid is rejected instead of silently decoded.
class TileStore {
 public:
  /// Opens (creating if needed) `dir` for a tiling with `signature`. Throws
  /// Error when the directory holds tiles for a different signature.
  TileStore(std::string dir, std::uint64_t signature);

  /// Serialize `tree` to the shard's tile file (atomic tmp+rename).
  void write_tile(std::size_t shard, const CsfTensor& tree);

  /// mmap the shard's tile file with MADV_SEQUENTIAL, decode it, and drop
  /// the mapping (MADV_DONTNEED) — only the decoded tree stays resident.
  CsfTensor load_tile(std::size_t shard) const;

  /// On-disk size of the shard's tile file.
  std::size_t tile_bytes(std::size_t shard) const;

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::string tile_path(std::size_t shard) const;

  std::string dir_;
  std::uint64_t signature_;
};

/// Bounded cache of decoded tiles. acquire() returns a pinned tree
/// (shared_ptr keeps it alive for the caller); release() unpins. When the
/// decoded bytes of unpinned tiles exceed `max_bytes`, least-recently-used
/// unpinned tiles are evicted. The tile being acquired is always admitted,
/// even when it alone exceeds the budget — the solver cannot make progress
/// otherwise — so `max_bytes` bounds the steady state, not a single tile.
class TileResidency {
 public:
  struct Stats {
    std::uint64_t loads = 0;      ///< decodes from the store (cache misses)
    std::uint64_t hits = 0;       ///< acquisitions served resident
    std::uint64_t evictions = 0;
    std::size_t resident_bytes = 0;
  };

  TileResidency(const TileStore& store, std::size_t max_bytes);

  std::shared_ptr<const CsfTensor> acquire(std::size_t shard);
  void release(std::size_t shard);

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const CsfTensor> tree;
    std::size_t bytes = 0;
    std::size_t pins = 0;
    /// Position in lru_ when unpinned.
    std::list<std::size_t>::iterator lru_it;
    bool in_lru = false;
  };

  void evict_over_budget_locked();

  const TileStore& store_;
  std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, Entry> entries_;
  std::list<std::size_t> lru_;  ///< unpinned shards, most recent at front
  Stats stats_;
};

}  // namespace aoadmm
