#include "dist/shard_plan.hpp"

#include <algorithm>

#include "parallel/partition.hpp"
#include "util/error.hpp"
#include "util/overflow.hpp"

namespace aoadmm {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

}  // namespace

std::size_t ShardPlan::shard_id(cspan<std::size_t> coord) const {
  AOADMM_CHECK_MSG(coord.size() == grid.size(), "shard coordinate arity");
  std::size_t id = 0;
  for (std::size_t m = 0; m < grid.size(); ++m) {
    AOADMM_CHECK_MSG(coord[m] < grid[m], "shard coordinate out of grid");
    id = id * grid[m] + coord[m];
  }
  return id;
}

std::size_t ShardPlan::cell_of(std::size_t mode, index_t row) const {
  const auto& c = cuts.at(mode);
  // cuts are ascending with front()==0, back()==dims[mode]; the cell is the
  // last boundary <= row.
  auto it = std::upper_bound(c.begin(), c.end(), row);
  AOADMM_CHECK_MSG(it != c.begin() && it != c.end(), "row outside mode range");
  return static_cast<std::size_t>(it - c.begin()) - 1;
}

ShardPlan make_shard_plan(const CooTensor& coo,
                          const std::vector<std::size_t>& grid) {
  const std::size_t order = coo.order();
  if (grid.size() != order) {
    throw InvalidArgument("shard grid has " + std::to_string(grid.size()) +
                          " extents for an order-" + std::to_string(order) +
                          " tensor");
  }
  ShardPlan plan;
  plan.grid = grid;
  plan.dims.assign(coo.dims().begin(), coo.dims().end());
  plan.nnz = coo.nnz();

  std::size_t count = 1;
  for (std::size_t m = 0; m < order; ++m) {
    if (grid[m] < 1) {
      throw InvalidArgument("shard grid extent for mode " + std::to_string(m) +
                            " must be >= 1");
    }
    if (grid[m] > coo.dim(m)) {
      throw InvalidArgument("shard grid extent " + std::to_string(grid[m]) +
                            " exceeds mode " + std::to_string(m) +
                            " length " + std::to_string(coo.dim(m)));
    }
    count = checked_mul(count, grid[m], "shard count");
  }

  // nnz-balanced cut points per mode, independent across modes (the
  // medium-grained heuristic: balancing each mode's marginal balances the
  // grid well for non-adversarial distributions).
  plan.cuts.resize(order);
  for (std::size_t m = 0; m < order; ++m) {
    const std::vector<offset_t> weights = coo.slice_nnz(m);
    const std::vector<std::size_t> b = weighted_partition(weights, grid[m]);
    plan.cuts[m].resize(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
      plan.cuts[m][i] = checked_cast<index_t>(
          static_cast<std::uint64_t>(b[i]), "shard cut point");
    }
  }

  // Materialize every cell (row-major id order) and count its non-zeros.
  plan.shards.resize(count);
  std::vector<std::size_t> coord(order, 0);
  for (std::size_t id = 0; id < count; ++id) {
    Shard& s = plan.shards[id];
    s.coord = coord;
    s.row_begin.resize(order);
    s.row_end.resize(order);
    for (std::size_t m = 0; m < order; ++m) {
      s.row_begin[m] = plan.cuts[m][coord[m]];
      s.row_end[m] = plan.cuts[m][coord[m] + 1];
    }
    // Advance the row-major counter (last mode fastest).
    for (std::size_t m = order; m-- > 0;) {
      if (++coord[m] < grid[m]) break;
      coord[m] = 0;
    }
  }

  const offset_t n = coo.nnz();
  for (offset_t i = 0; i < n; ++i) {
    std::size_t id = 0;
    for (std::size_t m = 0; m < order; ++m) {
      id = id * grid[m] + plan.cell_of(m, coo.index(m, i));
    }
    plan.shards[id].nnz += 1;
  }

  std::uint64_t sig = kFnvOffset;
  fnv_u64(sig, order);
  fnv_u64(sig, plan.nnz);
  for (std::size_t m = 0; m < order; ++m) {
    fnv_u64(sig, grid[m]);
    fnv_u64(sig, plan.dims[m]);
    for (index_t c : plan.cuts[m]) fnv_u64(sig, c);
  }
  plan.signature = sig;
  return plan;
}

CooTensor extract_tile(const CooTensor& coo, const ShardPlan& plan,
                       std::size_t id) {
  AOADMM_CHECK_MSG(id < plan.shard_count(), "shard id out of range");
  const Shard& s = plan.shards[id];
  const std::size_t order = plan.order();

  std::vector<index_t> dims(order);
  for (std::size_t m = 0; m < order; ++m) {
    dims[m] = std::max<index_t>(s.rows(m), 1);
  }
  CooTensor tile(std::move(dims));
  tile.reserve(s.nnz);

  std::vector<index_t> local(order);
  const offset_t n = coo.nnz();
  for (offset_t i = 0; i < n; ++i) {
    bool inside = true;
    for (std::size_t m = 0; m < order; ++m) {
      const index_t g = coo.index(m, i);
      if (g < s.row_begin[m] || g >= s.row_end[m]) {
        inside = false;
        break;
      }
      local[m] = g - s.row_begin[m];
    }
    if (inside) {
      tile.add(local, coo.value(i));
    }
  }
  AOADMM_CHECK_MSG(tile.nnz() == s.nnz, "tile extraction nnz mismatch");
  return tile;
}

std::string grid_to_string(const std::vector<std::size_t>& grid) {
  std::string out;
  for (std::size_t m = 0; m < grid.size(); ++m) {
    if (m) out += 'x';
    out += std::to_string(grid[m]);
  }
  return out;
}

}  // namespace aoadmm
