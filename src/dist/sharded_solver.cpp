#include "dist/sharded_solver.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "core/cpd_impl.hpp"
#include "core/mode_update.hpp"
#include "mttkrp/mttkrp.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "sparse/density.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/overflow.hpp"
#include "util/timer.hpp"

namespace aoadmm {

namespace {

struct DistMetrics {
  obs::Counter runs;
  obs::Counter outer_iterations;
  obs::Counter mttkrp_calls;
  obs::Counter checkpoints_written;
  obs::Counter robust_mttkrp_retries;
  obs::Gauge exchange_bytes;
  obs::Gauge exchange_messages;
  obs::Gauge shard_imbalance;
  obs::Gauge tile_loads;
  obs::Gauge tile_evictions;
  obs::Gauge tile_resident_bytes;
  obs::Histogram iteration_seconds;
  obs::Histogram shard_busy_seconds;

  static const DistMetrics& get() {
    static const DistMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      DistMetrics out;
      out.runs = reg.counter("dist/runs");
      out.outer_iterations = reg.counter("dist/outer_iterations");
      out.mttkrp_calls = reg.counter("dist/mttkrp_calls");
      out.checkpoints_written = reg.counter("cpd/checkpoints_written");
      out.robust_mttkrp_retries = reg.counter("robust/mttkrp_retries");
      out.exchange_bytes = reg.gauge("dist/exchange_bytes");
      out.exchange_messages = reg.gauge("dist/exchange_messages");
      out.shard_imbalance = reg.gauge("dist/shard_imbalance");
      out.tile_loads = reg.gauge("dist/tile_loads");
      out.tile_evictions = reg.gauge("dist/tile_evictions");
      out.tile_resident_bytes = reg.gauge("dist/tile_resident_bytes");
      out.iteration_seconds = reg.histogram("dist/iteration_seconds");
      out.shard_busy_seconds = reg.histogram("dist/shard_busy_seconds");
      return out;
    }();
    return m;
  }
};

/// Root selection for a tile tree: shortest local mode, ties to the lowest
/// id — the same rule CsfSet's kOneMode strategy applies globally, so a
/// 1x1x1 grid compiles the exact tree the unsharded solver would.
std::size_t tile_root(const CooTensor& tile) {
  std::size_t root = 0;
  for (std::size_t m = 1; m < tile.order(); ++m) {
    if (tile.dim(m) < tile.dim(root)) {
      root = m;
    }
  }
  return root;
}

}  // namespace

/// Per-shard worker state. The worker owns a local mirror of the factor
/// blocks its tile intersects; kFactor messages keep them current.
struct ShardedCpdSolver::Worker {
  std::size_t shard = 0;
  bool has_tile = false;  ///< false for empty cells (no tree was built)
  std::vector<Matrix> local_factors;  ///< per mode, rows(m) x rank
  Matrix out;                         ///< MTTKRP partial scratch
};

ShardedCpdSolver::ShardedCpdSolver(const CooTensor& coo, CpdConfig config)
    : config_(std::move(config)), ws_(coo.order()), rng_(config_.seed),
      mode_mttkrp_seconds_(coo.order(), 0) {
  const std::size_t order = coo.order();
  AOADMM_CHECK(order >= 2);

  validation_ = config_.validate(order);
  if (!validation_.ok()) {
    throw InvalidArgument("invalid CpdConfig:\n" + validation_.to_string());
  }
  if (!config_.shards.enabled()) {
    throw InvalidArgument(
        "ShardedCpdSolver needs shards configured (set shards.grid and/or "
        "shards.spill_dir); for unsharded solves use CpdSolver");
  }

  // A spill_dir with no grid means "out-of-core, single tile".
  std::vector<std::size_t> grid = config_.shards.grid;
  if (grid.empty()) {
    grid.assign(order, 1);
  }
  plan_ = make_shard_plan(coo, grid);
  const std::size_t shard_count = plan_.shard_count();

  // Same serial accumulation order as CsfSet's constructor, so a 1x1x1
  // grid reproduces the unsharded x_norm_sq bit for bit.
  x_norm_sq_ = 0;
  for (const real_t v : coo.values()) {
    x_norm_sq_ += v * v;
  }

  prox_.resize(order);
  for (std::size_t m = 0; m < order; ++m) {
    prox_[m] = make_prox(config_.constraints.for_mode(m));
  }

  const bool out_of_core = config_.shards.out_of_core();
  if (out_of_core) {
    store_ = std::make_unique<TileStore>(config_.shards.spill_dir,
                                         plan_.signature);
    const std::size_t budget = config_.shards.max_resident_bytes > 0
                                   ? config_.shards.max_resident_bytes
                                   : std::numeric_limits<std::size_t>::max();
    residency_ = std::make_unique<TileResidency>(*store_, budget);
  } else {
    tiles_.resize(shard_count);
  }

  // Compile (and in out-of-core mode spill) every non-empty tile. One tile
  // is materialized at a time, so peak construction memory in out-of-core
  // mode is the COO tensor plus the largest single tile.
  workers_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto w = std::make_unique<Worker>();
    w->shard = s;
    w->has_tile = plan_.shards[s].nnz > 0;
    w->local_factors.resize(order);
    if (w->has_tile) {
      const CooTensor tile_coo = extract_tile(coo, plan_, s);
      CsfTensor tree = CsfTensor::build_for_mode(tile_coo, tile_root(tile_coo));
      if (out_of_core) {
        store_->write_tile(s, tree);
      } else {
        tiles_[s] = std::make_shared<const CsfTensor>(std::move(tree));
      }
    }
    workers_.push_back(std::move(w));
  }

  exchange_ = std::make_unique<InProcExchange>(shard_count + 1);
  threads_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    threads_.emplace_back([this, s] { worker_main(s); });
  }
}

ShardedCpdSolver::~ShardedCpdSolver() { stop_workers(); }

void ShardedCpdSolver::stop_workers() {
  if (workers_stopped_) {
    return;
  }
  workers_stopped_ = true;
  for (std::size_t s = 0; s < threads_.size(); ++s) {
    Message stop;
    stop.kind = MsgKind::kStop;
    exchange_->send(s, std::move(stop));
  }
  for (std::thread& t : threads_) {
    t.join();
  }
}

TileResidency::Stats ShardedCpdSolver::residency_stats() const {
  return residency_ ? residency_->stats() : TileResidency::Stats{};
}

void ShardedCpdSolver::worker_main(std::size_t shard) {
  Worker& w = *workers_[shard];
  const std::size_t order = plan_.order();
  for (;;) {
    Message m = exchange_->recv(shard);
    if (m.kind == MsgKind::kStop) {
      return;
    }
    if (m.kind == MsgKind::kFactor) {
      const std::size_t rows = plan_.shards[shard].rows(m.mode);
      Matrix& f = w.local_factors[m.mode];
      if (f.rows() != rows || f.cols() != m.cols) {
        f.resize(rows, m.cols);
      }
      if (rows > 0) {
        std::memcpy(f.data(), m.payload.data(),
                    rows * m.cols * sizeof(real_t));
      }
      continue;
    }
    // kTask: this shard's MTTKRP partial for m.mode against the local
    // factor blocks. Workers never throw across the thread boundary — a
    // failure travels back as Message::error.
    Message reply;
    reply.kind = MsgKind::kPartial;
    reply.mode = m.mode;
    reply.shard = shard;
    reply.epoch = m.epoch;
    try {
      Timer busy;
      busy.start();
      if (w.has_tile) {
        std::shared_ptr<const CsfTensor> tile;
        if (residency_) {
          tile = residency_->acquire(shard);
        } else {
          tile = tiles_[shard];
        }
        // Every mode is served from the single tile tree (root or scatter
        // kernels) — the sharded equivalent of mttkrp_kernel=onetree.
        mttkrp_dispatch(*tile, w.local_factors, m.mode, w.out,
                        config_.mttkrp_schedule);
        if (residency_) {
          residency_->release(shard);
        }
        reply.rows = w.out.rows();
        reply.cols = w.out.cols();
        reply.payload.assign(w.out.data(),
                             w.out.data() + w.out.rows() * w.out.cols());
      }
      busy.stop();
      reply.busy_seconds = busy.seconds();
    } catch (const std::exception& e) {
      reply.error = e.what();
      reply.rows = 0;
      reply.cols = 0;
      reply.payload.clear();
    }
    exchange_->send(plan_.shard_count(), std::move(reply));
  }
}

void ShardedCpdSolver::broadcast_mode(std::size_t mode, std::uint64_t epoch) {
  const Matrix& f = factors_[mode];
  for (std::size_t s = 0; s < plan_.shard_count(); ++s) {
    const Shard& shard = plan_.shards[s];
    Message m;
    m.kind = MsgKind::kFactor;
    m.mode = mode;
    m.shard = s;
    m.epoch = epoch;
    m.rows = shard.rows(mode);
    m.cols = f.cols();
    if (m.rows > 0) {
      const real_t* begin = f.data() + shard.row_begin[mode] * f.cols();
      m.payload.assign(begin, begin + m.rows * f.cols());
    }
    exchange_->send(s, std::move(m));
  }
}

void ShardedCpdSolver::sweep_mode(std::size_t mode, std::uint64_t epoch,
                                  double& max_busy, double& sum_busy) {
  const std::size_t shard_count = plan_.shard_count();
  const DistMetrics& metrics = DistMetrics::get();
  for (std::size_t s = 0; s < shard_count; ++s) {
    Message task;
    task.kind = MsgKind::kTask;
    task.mode = mode;
    task.shard = s;
    task.epoch = epoch;
    exchange_->send(s, std::move(task));
  }

  // Collect all partials (completion order is nondeterministic), then
  // reduce in shard-id order — the fixed reduction order that makes
  // repeated runs bitwise identical.
  std::vector<Message> partials(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    Message p = exchange_->recv(shard_count);
    AOADMM_CHECK_MSG(p.kind == MsgKind::kPartial && p.epoch == epoch &&
                         p.mode == mode,
                     "unexpected message in shard reduction");
    const std::size_t from = p.shard;
    partials[from] = std::move(p);
  }

  Matrix& k = ws_.mttkrp_out;
  const std::size_t rows = plan_.dims[mode];
  const std::size_t cols = config_.rank;
  if (k.rows() != rows || k.cols() != cols) {
    k.resize(rows, cols);
  }
  k.zero();
  max_busy = 0;
  sum_busy = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const Message& p = partials[s];
    if (!p.error.empty()) {
      throw Error("shard " + std::to_string(s) + " failed on mode " +
                  std::to_string(mode) + ": " + p.error);
    }
    max_busy = std::max(max_busy, p.busy_seconds);
    sum_busy += p.busy_seconds;
    metrics.shard_busy_seconds.observe(p.busy_seconds);
    if (p.rows == 0) {
      continue;
    }
    AOADMM_CHECK_MSG(p.cols == cols &&
                         p.rows == plan_.shards[s].rows(mode) &&
                         p.payload.size() == p.rows * cols,
                     "shard partial has wrong shape");
    const index_t row0 = plan_.shards[s].row_begin[mode];
    for (std::size_t r = 0; r < p.rows; ++r) {
      real_t* __restrict dst = k.data() + (row0 + r) * cols;
      const real_t* __restrict src = p.payload.data() + r * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        dst[c] += src[c];
      }
    }
  }
}

CpdResult ShardedCpdSolver::solve() {
  rng_ = Rng(config_.seed);
  detail::init_factors_into(plan_.dims, config_.rank, rng_, x_norm_sq_,
                            factors_);
  duals_.resize(plan_.order());
  for (std::size_t m = 0; m < plan_.order(); ++m) {
    duals_[m].resize(plan_.dims[m], config_.rank);
  }
  return run(1, std::numeric_limits<real_t>::infinity(), CpdResult{});
}

CpdResult ShardedCpdSolver::resume(const std::string& checkpoint_path) {
  CpdCheckpoint ck = read_checkpoint_file(checkpoint_path);
  if (ck.dims != plan_.dims) {
    throw InvalidArgument("resume: checkpoint tensor shape does not match "
                          "this session's tensor");
  }
  if (ck.rank != config_.rank) {
    throw InvalidArgument("resume: checkpoint rank " +
                          std::to_string(ck.rank) +
                          " does not match configured rank " +
                          std::to_string(config_.rank));
  }
  factors_ = std::move(ck.factors);
  duals_ = std::move(ck.duals);
  rng_.set_state(ck.rng_state);

  CpdResult result;
  result.total_inner_iterations = ck.total_inner_iterations;
  result.total_row_iterations = ck.total_row_iterations;
  result.mttkrp_count = ck.mttkrp_count;
  result.sparse_mttkrp_count = ck.sparse_mttkrp_count;
  result.trace = std::move(ck.trace);
  result.relative_error = ck.prev_error;
  result.outer_iterations = ck.outer_iteration;
  return run(ck.outer_iteration + 1, ck.prev_error, std::move(result));
}

CpdResult ShardedCpdSolver::run(unsigned start_outer, real_t prev_error,
                                CpdResult result) {
  const std::size_t order = plan_.order();
  const CpdConfig& opts = config_;
  const RobustnessOptions& rb = opts.admm.robustness;
  const DistMetrics& metrics = DistMetrics::get();
  metrics.runs.add(1);

  Timer wall;
  wall.start();
  Timer admm_timer;
  double mttkrp_seconds = 0;

  {
    for (std::size_t m = 0; m < order; ++m) {
      gram(factors_[m], ws_.grams[m]);
    }
  }
  // Seed every worker's local factor mirrors with the starting iterate.
  for (std::size_t m = 0; m < order; ++m) {
    broadcast_mode(m, 0);
  }

  const ExchangeStats exchange_start = exchange_->stats();
  std::uint64_t epoch = 0;

  for (unsigned outer = start_outer; outer <= opts.max_outer_iterations;
       ++outer) {
    if (opts.cancel && opts.cancel->should_stop()) {
      result.stop_reason = opts.cancel->cancelled() ? StopReason::kCancelled
                                                    : StopReason::kDeadline;
      AOADMM_LOG_WARN << "outer " << outer << ": stopping ("
                      << to_string(result.stop_reason) << ")";
      break;
    }
    const double iter_start_seconds = wall.seconds();
    const ExchangeStats exchange_before = exchange_->stats();
    std::fill(mode_mttkrp_seconds_.begin(), mode_mttkrp_seconds_.end(), 0.0);
    std::uint64_t iter_inner_iterations = 0;
    real_t worst_primal = 0;
    real_t worst_dual = 0;
    real_t sum_primal = 0;
    real_t sum_dual = 0;
    double iter_max_busy = 0;
    double iter_sum_busy = 0;

    for (std::size_t m = 0; m < order; ++m) {
      detail::gram_product_excluding(ws_.grams, m, ws_.gram_prod);

      ++result.mttkrp_count;
      metrics.mttkrp_calls.add(1);
      double max_busy = 0;
      double sum_busy = 0;
      sweep_mode(m, ++epoch, max_busy, sum_busy);
      if (rb.enabled && rb.check_finite && !all_finite(ws_.mttkrp_out)) {
        unsigned attempts = 0;
        while (attempts < rb.max_recoveries &&
               !all_finite(ws_.mttkrp_out)) {
          ++attempts;
          double rb_max = 0;
          double rb_sum = 0;
          sweep_mode(m, ++epoch, rb_max, rb_sum);
          max_busy += rb_max;
          sum_busy += rb_sum;
        }
        result.recovery.add({RecoveryKind::kMttkrpRetry, outer, m, attempts,
                             0, std::string(), {}});
        metrics.robust_mttkrp_retries.add(1);
        AOADMM_LOG_WARN << "outer " << outer << " mode " << m
                        << ": non-finite sharded MTTKRP, recomputed ("
                        << attempts << " retries)";
        if (!all_finite(ws_.mttkrp_out)) {
          throw NumericalError(
              "sharded MTTKRP for mode " + std::to_string(m) +
              " is non-finite even after " + std::to_string(attempts) +
              " recomputes");
        }
      }
      // The sweep's critical path is the slowest shard of each step.
      mode_mttkrp_seconds_[m] = max_busy;
      mttkrp_seconds += max_busy;
      iter_max_busy += max_busy;
      iter_sum_busy += sum_busy;

      {
        admm_timer.start();
        const detail::ModeUpdateStats ms = detail::admm_mode_update(
            opts.variant, factors_[m], duals_[m], ws_.mttkrp_out,
            ws_.gram_prod, *prox_[m], opts.admm, ws_.admm, outer, m, result);
        admm_timer.stop();
        iter_inner_iterations += ms.inner_iterations;
        worst_primal = std::max(worst_primal, ms.primal_residual);
        worst_dual = std::max(worst_dual, ms.dual_residual);
        sum_primal += ms.primal_residual;
        sum_dual += ms.dual_residual;
      }

      gram(factors_[m], ws_.grams[m]);
      broadcast_mode(m, epoch);
    }

    const real_t err = detail::fit_relative_error(
        x_norm_sq_, ws_.mttkrp_out, factors_[order - 1], ws_.grams,
        ws_.fit_acc);
    result.relative_error = err;
    result.outer_iterations = outer;
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), err);
    }
    AOADMM_LOG_DEBUG << "outer " << outer << " relative_error " << err;

    const double iter_seconds = wall.seconds() - iter_start_seconds;
    metrics.outer_iterations.add(1);
    metrics.iteration_seconds.observe(iter_seconds);

    // Shard imbalance over this iteration: 1 - mean/max of per-step worker
    // busy time, 0 = perfectly balanced (same shape as thread_imbalance).
    const double mean_busy =
        iter_sum_busy / static_cast<double>(plan_.shard_count() * order);
    const double shard_imbalance =
        iter_max_busy > 0
            ? 1.0 - mean_busy / (iter_max_busy / static_cast<double>(order))
            : 0.0;
    const ExchangeStats exchange_now = exchange_->stats();
    metrics.shard_imbalance.set(shard_imbalance);
    metrics.exchange_bytes.set(static_cast<double>(exchange_now.bytes));
    metrics.exchange_messages.set(static_cast<double>(exchange_now.messages));
    if (residency_) {
      const TileResidency::Stats rs = residency_->stats();
      metrics.tile_loads.set(static_cast<double>(rs.loads));
      metrics.tile_evictions.set(static_cast<double>(rs.evictions));
      metrics.tile_resident_bytes.set(static_cast<double>(rs.resident_bytes));
    }

    if (opts.on_iteration) {
      obs::MetricsSnapshot snap;
      snap.outer_iteration = outer;
      snap.seconds = wall.seconds();
      snap.iteration_seconds = iter_seconds;
      snap.relative_error = err;
      snap.mode_mttkrp_seconds = mode_mttkrp_seconds_;
      snap.admm_inner_iterations = iter_inner_iterations;
      snap.worst_primal_residual = worst_primal;
      snap.mean_primal_residual = sum_primal / static_cast<real_t>(order);
      snap.worst_dual_residual = worst_dual;
      snap.mean_dual_residual = sum_dual / static_cast<real_t>(order);
      snap.shard_imbalance = shard_imbalance;
      snap.exchange_bytes = exchange_now.bytes - exchange_before.bytes;
      snap.factor_density.reserve(order);
      for (std::size_t m = 0; m < order; ++m) {
        snap.factor_density.push_back(measure_density(factors_[m]).density);
      }
      snap.mttkrp_count = result.mttkrp_count;
      opts.on_iteration(snap);
    }

    const bool converged_now = prev_error - err < opts.tolerance && outer > 1;
    prev_error = err;

    if (!converged_now && config_.checkpoint_every > 0 &&
        outer % config_.checkpoint_every == 0) {
      CpdCheckpoint ck;
      ck.dims = plan_.dims;
      ck.rank = opts.rank;
      ck.seed = opts.seed;
      ck.rng_state = rng_.state();
      ck.outer_iteration = outer;
      ck.prev_error = prev_error;
      ck.total_inner_iterations = result.total_inner_iterations;
      ck.total_row_iterations = result.total_row_iterations;
      ck.mttkrp_count = result.mttkrp_count;
      ck.sparse_mttkrp_count = result.sparse_mttkrp_count;
      ck.factors = factors_;
      ck.duals = duals_;
      ck.trace = result.trace;
      try {
        write_checkpoint_file(ck, config_.checkpoint_path);
        metrics.checkpoints_written.add(1);
      } catch (const CheckpointError& e) {
        if (!rb.enabled) {
          throw;
        }
        result.recovery.add({RecoveryKind::kCheckpointWriteFailure, outer, 0,
                             0, 0, e.what(), {}});
        AOADMM_LOG_WARN << "outer " << outer
                        << ": checkpoint write failed (continuing): "
                        << e.what();
      }
    }

    if (converged_now) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  wall.stop();
  result.times.total_seconds = wall.seconds();
  result.times.mttkrp_seconds = mttkrp_seconds;
  result.times.admm_seconds = admm_timer.seconds();
  result.times.other_seconds = result.times.total_seconds -
                               result.times.mttkrp_seconds -
                               result.times.admm_seconds;

  const ExchangeStats exchange_end = exchange_->stats();
  AOADMM_LOG_DEBUG << "sharded run exchanged "
                   << (exchange_end.bytes - exchange_start.bytes)
                   << " bytes in "
                   << (exchange_end.messages - exchange_start.messages)
                   << " messages across " << plan_.shard_count()
                   << " shards";

  result.factors = factors_;
  result.factor_density.clear();
  result.factor_density.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    result.factor_density.push_back(measure_density(factors_[m]).density);
  }
  return result;
}

}  // namespace aoadmm
