#include "dist/exchange.hpp"

#include <memory>

#include "util/error.hpp"

namespace aoadmm {

std::size_t message_bytes(const Message& m) noexcept {
  // Header: kind + mode + shard + epoch + rows + cols + busy_seconds.
  std::size_t bytes = 1 + 5 * sizeof(std::uint64_t) + sizeof(double);
  bytes += m.payload.size() * sizeof(real_t);
  bytes += m.error.size();
  return bytes;
}

InProcExchange::InProcExchange(std::size_t endpoints) {
  AOADMM_CHECK_MSG(endpoints > 0, "exchange needs at least one endpoint");
  inboxes_.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void InProcExchange::send(std::size_t endpoint, Message m) {
  AOADMM_CHECK_MSG(endpoint < inboxes_.size(), "exchange endpoint out of range");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.messages += 1;
    stats_.bytes += message_bytes(m);
  }
  Inbox& box = *inboxes_[endpoint];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(m));
  }
  box.cv.notify_one();
}

Message InProcExchange::recv(std::size_t endpoint) {
  AOADMM_CHECK_MSG(endpoint < inboxes_.size(), "exchange endpoint out of range");
  Inbox& box = *inboxes_[endpoint];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait(lock, [&] { return !box.queue.empty(); });
  Message m = std::move(box.queue.front());
  box.queue.pop_front();
  return m;
}

ExchangeStats InProcExchange::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace aoadmm
