// Minimal leveled logging to stderr. Quiet by default so benchmark output
// stays clean; examples and the CLI raise the level. The environment
// variable AOADMM_LOG_LEVEL (error|warn|info|debug, or 0-3) sets the
// initial threshold without touching code. When the threshold is kDebug,
// every line carries a relative timestamp and the emitting thread's id.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace aoadmm {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Global log threshold. Messages above the threshold are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parses "error"/"warn"/"warning"/"info"/"debug" (any case) or a numeric
/// "0".."3"; nullopt on anything else. This is the AOADMM_LOG_LEVEL parser,
/// exposed for tests.
std::optional<LogLevel> log_level_from_string(const std::string& s);

/// Emit one line at `level` (thread-safe; one write per message).
void log_message(LogLevel level, const std::string& msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace aoadmm

#define AOADMM_LOG(level)                                   \
  if (static_cast<int>(level) <= static_cast<int>(::aoadmm::log_level())) \
  ::aoadmm::detail::LogLine(level)

#define AOADMM_LOG_ERROR AOADMM_LOG(::aoadmm::LogLevel::kError)
#define AOADMM_LOG_WARN AOADMM_LOG(::aoadmm::LogLevel::kWarn)
#define AOADMM_LOG_INFO AOADMM_LOG(::aoadmm::LogLevel::kInfo)
#define AOADMM_LOG_DEBUG AOADMM_LOG(::aoadmm::LogLevel::kDebug)
