// Error handling: contract checks that throw structured exceptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aoadmm {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an input file cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Raised when a numerical routine cannot complete (e.g. an indefinite
/// matrix handed to the Cholesky factorization).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Raised when writing or reading solver checkpoints fails (short write,
/// failed close/rename, corrupt payload). A failed write never disturbs a
/// previously written checkpoint at the same path.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Raised when the streaming write-ahead log cannot complete an operation
/// that must not be silently degraded (opening a log, reading a corrupt
/// recovery checkpoint, strict-mode append failure). Torn tails from a
/// crash are NOT errors — recovery reports them in WalRecovery instead.
class WalError : public Error {
 public:
  explicit WalError(const std::string& what) : Error(what) {}
};

/// Raised when a growth path would overflow an index or count type (e.g. a
/// streaming append pushing a mode length past the index_t range). The
/// operation that would have overflowed leaves the container unchanged.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace aoadmm

/// Precondition check that survives in release builds. Use for API-boundary
/// validation; hot inner loops should validate once outside the loop.
#define AOADMM_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::aoadmm::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                       \
  } while (false)

#define AOADMM_CHECK_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::aoadmm::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                            (msg));                         \
    }                                                                       \
  } while (false)
