#include "util/timer.hpp"

namespace aoadmm {

double TimerSet::seconds(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.seconds();
}

double TimerSet::total_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [name, timer] : timers_) {
    total += timer.seconds();
  }
  return total;
}

void TimerSet::reset_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, timer] : timers_) {
    timer.reset();
  }
}

}  // namespace aoadmm
