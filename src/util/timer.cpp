#include "util/timer.hpp"

namespace aoadmm {

double TimerSet::seconds(const std::string& name) const {
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.seconds();
}

double TimerSet::total_seconds() const {
  double total = 0.0;
  for (const auto& [name, timer] : timers_) {
    total += timer.seconds();
  }
  return total;
}

void TimerSet::reset_all() {
  for (auto& [name, timer] : timers_) {
    timer.reset();
  }
}

}  // namespace aoadmm
