#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace aoadmm {

Summary summarize(cspan<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (const double v : sorted) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (const double v : sorted) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.stddev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count - 1))
                         : 0.0;
  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double percentile(cspan<const double> values, double p) {
  AOADMM_CHECK(!values.empty());
  AOADMM_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double geometric_mean(cspan<const double> values) {
  AOADMM_CHECK(!values.empty());
  double log_sum = 0.0;
  for (const double v : values) {
    AOADMM_CHECK_MSG(v > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace aoadmm
