// Summary statistics for benchmark reporting.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace aoadmm {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double median = 0.0;
};

/// Compute summary statistics of a sample. Empty input yields a
/// zero-initialized Summary.
Summary summarize(cspan<const double> values);

/// p-th percentile (p in [0,100]) with linear interpolation. Requires a
/// non-empty sample.
double percentile(cspan<const double> values, double p);

/// Geometric mean; requires all values > 0.
double geometric_mean(cspan<const double> values);

}  // namespace aoadmm
