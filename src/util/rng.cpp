#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace aoadmm {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

real_t Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<real_t>(next() >> 11) * 0x1.0p-53;
}

real_t Rng::uniform(real_t lo, real_t hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's method: unbiased without division in the common case.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

real_t Rng::normal() noexcept {
  // Box–Muller; discards the second variate to keep the generator stateless
  // beyond its 256-bit core (simplifies split()/replay semantics).
  real_t u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const real_t u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi_v<real_t> * u2);
}

Rng Rng::split() noexcept { return Rng(next()); }

ZipfSampler::ZipfSampler(index_t n, real_t alpha) : n_(n), alpha_(alpha) {
  AOADMM_CHECK_MSG(n > 0, "ZipfSampler requires a non-empty support");
  AOADMM_CHECK_MSG(alpha >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  real_t sum = 0.0;
  for (index_t i = 0; i < n; ++i) {
    sum += std::pow(static_cast<real_t>(i + 1), -alpha);
    cdf_[i] = sum;
  }
  const real_t inv = 1.0 / sum;
  for (auto& c : cdf_) {
    c *= inv;
  }
  cdf_.back() = 1.0;  // guard against round-off at the tail
}

index_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const real_t u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<index_t>(it - cdf_.begin());
}

}  // namespace aoadmm
