// Overflow-checked integer arithmetic for index/offset computations.
//
// The partitioner and tile-offset paths multiply mode lengths and non-zero
// counts that are individually fine in 32/64 bits but whose products are
// not (a 2B-nnz tensor's byte sizes, a grid's shard count x tile bytes).
// These helpers make every such product/sum explicit: they throw
// OverflowError naming the computation instead of silently wrapping.
#pragma once

#include <limits>
#include <string>
#include <type_traits>

#include "util/error.hpp"

namespace aoadmm {

/// a + b, or OverflowError("<what> overflows ...").
template <typename T>
T checked_add(T a, T b, const char* what = "sum") {
  static_assert(std::is_unsigned_v<T>, "checked_add is for unsigned counts");
  T out;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError(std::string(what) + " overflows the " +
                        std::to_string(8 * sizeof(T)) + "-bit count type (" +
                        std::to_string(a) + " + " + std::to_string(b) + ")");
  }
  return out;
}

/// a * b, or OverflowError("<what> overflows ...").
template <typename T>
T checked_mul(T a, T b, const char* what = "product") {
  static_assert(std::is_unsigned_v<T>, "checked_mul is for unsigned counts");
  T out;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw OverflowError(std::string(what) + " overflows the " +
                        std::to_string(8 * sizeof(T)) + "-bit count type (" +
                        std::to_string(a) + " * " + std::to_string(b) + ")");
  }
  return out;
}

/// Narrowing cast that throws instead of truncating. `From` and `To` must
/// both be unsigned integer types.
template <typename To, typename From>
To checked_cast(From v, const char* what = "value") {
  static_assert(std::is_unsigned_v<To> && std::is_unsigned_v<From>,
                "checked_cast is for unsigned counts");
  if (v > static_cast<From>(std::numeric_limits<To>::max())) {
    throw OverflowError(std::string(what) + " (" + std::to_string(v) +
                        ") does not fit the " +
                        std::to_string(8 * sizeof(To)) + "-bit target type");
  }
  return static_cast<To>(v);
}

}  // namespace aoadmm
