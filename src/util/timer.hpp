// Wall-clock timers and a named-timer registry used by the CPD driver to
// report per-kernel breakdowns (MTTKRP vs ADMM vs other — paper Fig. 3).
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace aoadmm {

/// Monotonic wall-clock stopwatch. start()/stop() accumulate; supports
/// repeated intervals.
class Timer {
 public:
  void start() noexcept { begin_ = clock::now(); running_ = true; }

  void stop() noexcept {
    if (running_) {
      accum_ += clock::now() - begin_;
      running_ = false;
    }
  }

  void reset() noexcept {
    accum_ = duration::zero();
    running_ = false;
  }

  /// Accumulated seconds (includes the in-flight interval if running).
  double seconds() const noexcept {
    duration d = accum_;
    if (running_) {
      d += clock::now() - begin_;
    }
    return std::chrono::duration<double>(d).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  using duration = clock::duration;
  duration accum_{duration::zero()};
  clock::time_point begin_{};
  bool running_ = false;
};

/// RAII guard that accumulates the lifetime of a scope into a Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& t) noexcept : t_(t) { t_.start(); }
  ~ScopedTimer() { t_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& t_;
};

/// A set of named timers, e.g. {"mttkrp", "admm", "fit"}.
///
/// Name lookup (and the map insertion it may trigger) is guarded by an
/// internal mutex, so concurrent first-touches of different names are
/// safe. The returned Timer& itself is NOT synchronized: as with any
/// Timer, start/stop on one timer must stay within one thread.
class TimerSet {
 public:
  /// Timer registered under `name`, inserting it on first use.
  /// Thread-safe; the reference stays valid for the TimerSet's lifetime
  /// (map nodes are stable under insertion).
  Timer& operator[](const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return timers_[name];
  }

  /// Seconds accumulated under `name` (0 if never started). Thread-safe
  /// against concurrent operator[] insertions.
  double seconds(const std::string& name) const;

  /// Sum of all timers.
  double total_seconds() const;

  void reset_all();

  /// Snapshot of the registered timers. Copies under the lock — safe to
  /// iterate while other threads keep inserting.
  std::map<std::string, Timer> timers() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return timers_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Timer> timers_;
};

}  // namespace aoadmm
