#include "util/options.hpp"

#include <charconv>
#include <cstdlib>

#include "util/error.hpp"

namespace aoadmm {

Options::Options(int argc, const char* const* argv) {
  AOADMM_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    AOADMM_CHECK_MSG(!name.empty(), "empty option name: " + arg);
    values_[name] = value;
  }
}

bool Options::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::optional<std::string> Options::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Options::get_string(const std::string& name,
                                const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) {
    return fallback;
  }
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  AOADMM_CHECK_MSG(ec == std::errc() && ptr == v->data() + v->size(),
                   "option --" + name + " expects an integer, got '" + *v +
                       "'");
  return out;
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) {
    return fallback;
  }
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  AOADMM_CHECK_MSG(end == v->c_str() + v->size(),
                   "option --" + name + " expects a number, got '" + *v + "'");
  return out;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  throw InvalidArgument("option --" + name + " expects a boolean, got '" + v +
                        "'");
}

std::vector<std::string> Options::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!queried_.count(name)) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace aoadmm
