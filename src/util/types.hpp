// Fundamental scalar and index types shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aoadmm {

/// Floating-point type used for tensor values and factor matrices.
using real_t = double;

/// Index within a single tensor mode (mode lengths fit in 32 bits for all
/// workloads this library targets; nnz counts use offset_t).
using index_t = std::uint32_t;

/// Offset into the non-zero stream of a sparse tensor (can exceed 2^32).
using offset_t = std::uint64_t;

/// Rank (number of CPD components). Small by construction.
using rank_t = std::uint32_t;

/// Maximum tensor order supported by the static-order kernels. Higher-order
/// tensors are handled by the generic recursive kernels.
inline constexpr std::size_t kMaxOrder = 8;

template <typename T>
using span = std::span<T>;

template <typename T>
using cspan = std::span<const T>;

}  // namespace aoadmm
