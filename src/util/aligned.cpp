#include "util/aligned.hpp"

#include <atomic>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace aoadmm {
namespace {

// Relaxed atomics: the counters are diagnostics, not synchronization.
std::atomic<std::uint64_t> g_alloc_calls{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

// obs handles, registered on first allocation. The registry itself never
// allocates through aligned_alloc_bytes, so there is no recursion.
struct AllocMetrics {
  obs::Counter calls;
  obs::Counter bytes;

  static const AllocMetrics& get() {
    static const AllocMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      AllocMetrics out;
      out.calls = reg.counter("alloc/aligned_calls");
      out.bytes = reg.counter("alloc/aligned_bytes");
      return out;
    }();
    return m;
  }
};

}  // namespace

void* aligned_alloc_bytes(std::size_t bytes) {
  if (bytes == 0) {
    bytes = kCacheLineBytes;
  }
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded =
      (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  void* p = std::aligned_alloc(kCacheLineBytes, rounded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(rounded, std::memory_order_relaxed);
  const AllocMetrics& m = AllocMetrics::get();
  m.calls.add(1);
  m.bytes.add(static_cast<double>(rounded));
  return p;
}

AlignedAllocStats aligned_alloc_stats() noexcept {
  return {g_alloc_calls.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

void aligned_free(void* p) noexcept { std::free(p); }

}  // namespace aoadmm
