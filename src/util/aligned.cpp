#include "util/aligned.hpp"

#include <cstdlib>

namespace aoadmm {

void* aligned_alloc_bytes(std::size_t bytes) {
  if (bytes == 0) {
    bytes = kCacheLineBytes;
  }
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded =
      (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  void* p = std::aligned_alloc(kCacheLineBytes, rounded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void aligned_free(void* p) noexcept { std::free(p); }

}  // namespace aoadmm
