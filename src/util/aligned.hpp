// Cache-line/SIMD aligned storage for hot numeric arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>

namespace aoadmm {

/// Alignment used for all numeric buffers: one x86 cache line, which is also
/// sufficient for any SIMD width up to AVX-512.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Allocate `bytes` of kCacheLineBytes-aligned memory. Throws std::bad_alloc
/// on failure. Pair with aligned_free().
///
/// Every call is counted: process-wide totals are readable via
/// aligned_alloc_stats() and mirrored into the obs metrics registry as the
/// counters "alloc/aligned_calls" and "alloc/aligned_bytes". Because every
/// hot numeric buffer in the library (Matrix, MTTKRP scratch, sparse
/// mirrors) goes through this function, the counters are the ground truth
/// for the CpdSolver zero-steady-state-allocation guarantee.
void* aligned_alloc_bytes(std::size_t bytes);

/// Monotone process-wide allocation totals (never reset).
struct AlignedAllocStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;
};
AlignedAllocStats aligned_alloc_stats() noexcept;

/// Release memory obtained from aligned_alloc_bytes().
void aligned_free(void* p) noexcept;

/// Minimal std::allocator-compatible aligned allocator so std::vector can be
/// used for hot buffers without giving up alignment guarantees.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(aligned_alloc_bytes(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept { aligned_free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace aoadmm
