// Deterministic, seedable pseudo-random number generation.
//
// The library never uses std::rand or global state: every component that
// needs randomness takes an Rng by reference so experiments are exactly
// reproducible from a seed. The core generator is xoshiro256**, seeded via
// SplitMix64 (the initialization recommended by its authors).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace aoadmm {

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform real in [0, 1).
  real_t uniform() noexcept;

  /// Uniform real in [lo, hi).
  real_t uniform(real_t lo, real_t hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (stateless variant; one value per call).
  real_t normal() noexcept;

  /// Split off an independent stream (jump-free: reseeds via SplitMix64 of a
  /// fresh draw). Suitable for giving each thread its own generator.
  Rng split() noexcept;

  /// The full 256-bit generator state, for checkpointing. Restoring the
  /// state with set_state() resumes the exact draw sequence.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (std::size_t i = 0; i < 4; ++i) {
      s_[i] = s[i];
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Samples from a Zipf (power-law) distribution over {0, ..., n-1} with
/// exponent `alpha` >= 0 (alpha == 0 is uniform). Uses the inverse-CDF over a
/// precomputed cumulative table: O(n) setup, O(log n) per sample. Real-world
/// sparse tensors exhibit power-law slice popularity (paper §IV.B), which is
/// exactly what this reproduces in the synthetic workloads.
class ZipfSampler {
 public:
  ZipfSampler(index_t n, real_t alpha);

  index_t operator()(Rng& rng) const noexcept;

  index_t size() const noexcept { return n_; }
  real_t alpha() const noexcept { return alpha_; }

 private:
  index_t n_;
  real_t alpha_;
  std::vector<real_t> cdf_;
};

}  // namespace aoadmm
