// Small command-line option parser used by the examples and benchmark
// harnesses: `--key value`, `--key=value`, and `--flag` forms, plus
// positional arguments. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aoadmm {

class Options {
 public:
  /// Parse argv. Throws InvalidArgument on malformed input (e.g. `--=x`).
  Options(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// Value of --name, if given with a value.
  std::optional<std::string> get(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Names of all options that were passed but never queried; lets tools
  /// reject typos (`--ranks` vs `--rank`).
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace aoadmm
