#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>

namespace aoadmm {
namespace {

LogLevel initial_level() noexcept {
  const char* v = std::getenv("AOADMM_LOG_LEVEL");
  if (v != nullptr && *v != '\0') {
    if (const auto parsed = log_level_from_string(v)) {
      return *parsed;
    }
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

double seconds_since_start() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// Short stable id for the calling thread (hash of the std id, mod 1e4).
unsigned short_thread_id() noexcept {
  return static_cast<unsigned>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 10000u);
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

std::optional<LogLevel> log_level_from_string(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (const char c : s) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "error" || lower == "0") {
    return LogLevel::kError;
  }
  if (lower == "warn" || lower == "warning" || lower == "1") {
    return LogLevel::kWarn;
  }
  if (lower == "info" || lower == "2") {
    return LogLevel::kInfo;
  }
  if (lower == "debug" || lower == "3") {
    return LogLevel::kDebug;
  }
  return std::nullopt;
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (log_level() >= LogLevel::kDebug) {
    std::fprintf(stderr, "[aoadmm %s %9.3fs t%04u] %s\n", level_tag(level),
                 seconds_since_start(), short_thread_id(), msg.c_str());
  } else {
    std::fprintf(stderr, "[aoadmm %s] %s\n", level_tag(level), msg.c_str());
  }
}

}  // namespace aoadmm
