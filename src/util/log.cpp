#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace aoadmm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[aoadmm %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace aoadmm
