#include "la/blas.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "parallel/runtime.hpp"
#include "util/error.hpp"

#if defined(AOADMM_HAVE_OPENMP)
#include <omp.h>
#endif

namespace aoadmm {

void gram_accumulate(const Matrix& a, std::size_t row_begin,
                     std::size_t row_end, Matrix& g) {
  const std::size_t f = a.cols();
  AOADMM_CHECK(g.rows() == f && g.cols() == f);
  AOADMM_CHECK(row_end <= a.rows() && row_begin <= row_end);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const real_t* __restrict row = a.data() + i * f;
    for (std::size_t p = 0; p < f; ++p) {
      const real_t rp = row[p];
      real_t* __restrict gp = g.data() + p * f;
      // Upper triangle only; mirrored by the caller (gram()).
      for (std::size_t q = p; q < f; ++q) {
        gp[q] += rp * row[q];
      }
    }
  }
}

void gram(const Matrix& a, Matrix& g) {
  const std::size_t f = a.cols();
  const std::size_t n = a.rows();
  if (g.rows() != f || g.cols() != f) {
    g.resize(f, f);
  } else {
    g.zero();
  }

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
  {
    // Grow-only per-thread accumulator: solver sessions call gram() every
    // outer iteration, and their steady state must not touch the allocator.
    static thread_local Matrix local;
    local.resize(f, f);  // zero-fills; reuses capacity once warmed
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      const auto ii = static_cast<std::size_t>(i);
      gram_accumulate(a, ii, ii + 1, local);
    }
#pragma omp critical(aoadmm_gram_merge)
    {
      for (std::size_t k = 0; k < f * f; ++k) {
        g.data()[k] += local.data()[k];
      }
    }
  }
#else
  gram_accumulate(a, 0, n, g);
#endif

  // Mirror the upper triangle into the lower one.
  for (std::size_t p = 0; p < f; ++p) {
    for (std::size_t q = p + 1; q < f; ++q) {
      g(q, p) = g(p, q);
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  AOADMM_CHECK_MSG(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  parallel_for(0, m, [&](std::size_t i) {
    real_t* __restrict ci = c.data() + i * n;
    const real_t* __restrict ai = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const real_t aip = ai[p];
      const real_t* __restrict bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aip * bp[j];
      }
    }
  });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  AOADMM_CHECK_MSG(a.rows() == b.rows(), "matmul_tn: row dimension mismatch");
  Matrix c(a.cols(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t ka = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    const real_t* __restrict ai = a.data() + i * ka;
    const real_t* __restrict bi = b.data() + i * n;
    for (std::size_t p = 0; p < ka; ++p) {
      const real_t aip = ai[p];
      real_t* __restrict cp = c.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        cp[j] += aip * bi[j];
      }
    }
  }
  return c;
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
  AOADMM_CHECK_MSG(a.same_shape(b), "hadamard: shape mismatch");
  real_t* __restrict pa = a.data();
  const real_t* __restrict pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    pa[i] *= pb[i];
  }
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  hadamard_inplace(out, b);
  return out;
}

void axpy(real_t alpha, cspan<real_t> x, span<real_t> y) noexcept {
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void scale(span<real_t> x, real_t alpha) noexcept {
  for (auto& v : x) {
    v *= alpha;
  }
}

real_t dot(const Matrix& a, const Matrix& b) {
  AOADMM_CHECK_MSG(a.same_shape(b), "dot: shape mismatch");
  const std::size_t f = a.cols();
  return parallel_reduce_sum(0, a.rows(), [&](std::size_t i) {
    const real_t* __restrict pa = a.data() + i * f;
    const real_t* __restrict pb = b.data() + i * f;
    real_t s = 0;
    for (std::size_t j = 0; j < f; ++j) {
      s += pa[j] * pb[j];
    }
    return s;
  });
}

real_t fro_norm_sq(const Matrix& a) {
  const std::size_t f = a.cols();
  return parallel_reduce_sum(0, a.rows(), [&](std::size_t i) {
    const real_t* __restrict pa = a.data() + i * f;
    real_t s = 0;
    for (std::size_t j = 0; j < f; ++j) {
      s += pa[j] * pa[j];
    }
    return s;
  });
}

real_t sum_all(const Matrix& a) noexcept {
  real_t s = 0;
  for (const real_t v : a.flat()) {
    s += v;
  }
  return s;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

real_t max_abs_diff(const Matrix& a, const Matrix& b) {
  AOADMM_CHECK_MSG(a.same_shape(b), "max_abs_diff: shape mismatch");
  real_t m = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    m = std::max(m, std::abs(a.data()[k] - b.data()[k]));
  }
  return m;
}

}  // namespace aoadmm
