#include "la/cholesky.hpp"

#include <cmath>

#include "parallel/runtime.hpp"
#include "util/error.hpp"

namespace aoadmm {

void Cholesky::factor(const Matrix& spd) {
  AOADMM_CHECK_MSG(spd.rows() == spd.cols(), "Cholesky requires square input");
  const std::size_t n = spd.rows();
  l_.resize(n, n);  // no-op reallocation-wise when the size is unchanged

  // Left-looking scalar Cholesky: fine for the small F x F systems AO-ADMM
  // produces (F is the CPD rank, 10..200).
  for (std::size_t j = 0; j < n; ++j) {
    real_t diag = spd(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l_(j, k) * l_(j, k);
    }
    if (!(diag > real_t{0})) {
      throw NumericalError("Cholesky: matrix is not positive definite at pivot " +
                           std::to_string(j));
    }
    const real_t ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    const real_t inv = real_t{1} / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      real_t v = spd(i, j);
      const real_t* __restrict li = l_.data() + i * n;
      const real_t* __restrict lj = l_.data() + j * n;
      for (std::size_t k = 0; k < j; ++k) {
        v -= li[k] * lj[k];
      }
      l_(i, j) = v * inv;
    }
  }
}

void Cholesky::solve_inplace(span<real_t> b) const noexcept {
  const std::size_t n = dim();
  const real_t* __restrict l = l_.data();
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    real_t v = b[i];
    const real_t* __restrict li = l + i * n;
    for (std::size_t k = 0; k < i; ++k) {
      v -= li[k] * b[k];
    }
    b[i] = v / li[i];
  }
  // Backward substitution: Lᵀ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    real_t v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      v -= l[k * n + ii] * b[k];
    }
    b[ii] = v / l[ii * n + ii];
  }
}

void Cholesky::solve_rows_inplace(Matrix& b) const noexcept {
  solve_rows_inplace(b, 0, b.rows());
}

void Cholesky::solve_rows_inplace(Matrix& b, std::size_t row_begin,
                                  std::size_t row_end) const noexcept {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    solve_inplace(b.row(i));
  }
}

void solve_normal_equations(const Matrix& gram_matrix, Matrix& rhs_inout) {
  AOADMM_CHECK(gram_matrix.rows() == rhs_inout.cols());
  const Cholesky chol(gram_matrix);
  parallel_for(0, rhs_inout.rows(), [&](std::size_t i) {
    chol.solve_inplace(rhs_inout.row(i));
  });
}

}  // namespace aoadmm
