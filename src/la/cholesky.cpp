#include "la/cholesky.hpp"

#include <cmath>

#include "parallel/runtime.hpp"
#include "util/error.hpp"

namespace aoadmm {

std::size_t Cholesky::try_factor(const Matrix& spd, real_t jitter) noexcept {
  const std::size_t n = spd.rows();
  l_.resize(n, n);  // no-op reallocation-wise when the size is unchanged

  // Left-looking scalar Cholesky: fine for the small F x F systems AO-ADMM
  // produces (F is the CPD rank, 10..200).
  for (std::size_t j = 0; j < n; ++j) {
    real_t diag = spd(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l_(j, k) * l_(j, k);
    }
    if (!(diag > real_t{0})) {
      return j;
    }
    const real_t ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    const real_t inv = real_t{1} / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      real_t v = spd(i, j);
      const real_t* __restrict li = l_.data() + i * n;
      const real_t* __restrict lj = l_.data() + j * n;
      for (std::size_t k = 0; k < j; ++k) {
        v -= li[k] * lj[k];
      }
      l_(i, j) = v * inv;
    }
  }
  return kFactorOk;
}

void Cholesky::factor(const Matrix& spd) {
  AOADMM_CHECK_MSG(spd.rows() == spd.cols(), "Cholesky requires square input");
  const std::size_t pivot = try_factor(spd, 0);
  if (pivot != kFactorOk) {
    throw NumericalError("Cholesky: matrix is not positive definite at pivot " +
                         std::to_string(pivot));
  }
}

CholeskyReport Cholesky::factor_guarded(const Matrix& spd,
                                        const CholeskyGuard& guard) {
  AOADMM_CHECK_MSG(spd.rows() == spd.cols(), "Cholesky requires square input");
  CholeskyReport report;
  std::size_t pivot = try_factor(spd, 0);
  if (pivot == kFactorOk) {
    return report;
  }

  // Scale the jitter to the matrix so the guard is unit-free: a ridge of
  // initial_jitter * max|diag| is negligible relative to the spectrum, and
  // the geometric escalation reaches O(max|diag|) within a handful of
  // attempts — enough to overwhelm any negative eigenvalue a corrupted or
  // indefinite input can hide (|λmin| <= n·max|A_ij| <= n·max|diag| for a
  // symmetric matrix with a dominant diagonal; the escalation overshoots
  // far past that anyway).
  const std::size_t n = spd.rows();
  real_t scale = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const real_t d = std::abs(spd(i, i));
    if (std::isfinite(d) && d > scale) {
      scale = d;
    }
  }
  if (!(scale > real_t{0})) {
    scale = 1;
  }

  real_t jitter = guard.initial_jitter * scale;
  for (unsigned attempt = 1; attempt <= guard.max_attempts;
       ++attempt, jitter *= guard.growth) {
    if (!std::isfinite(jitter)) {
      break;
    }
    pivot = try_factor(spd, jitter);
    if (pivot == kFactorOk) {
      report.attempts = attempt;
      report.jitter = jitter;
      return report;
    }
  }
  throw NumericalError(
      "Cholesky: matrix is not positive definite at pivot " +
      std::to_string(pivot) + " even after " +
      std::to_string(guard.max_attempts) + " jitter attempts (final ridge " +
      std::to_string(jitter) + "); input is likely NaN-contaminated");
}

void Cholesky::solve_inplace(span<real_t> b) const noexcept {
  const std::size_t n = dim();
  const real_t* __restrict l = l_.data();
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    real_t v = b[i];
    const real_t* __restrict li = l + i * n;
    for (std::size_t k = 0; k < i; ++k) {
      v -= li[k] * b[k];
    }
    b[i] = v / li[i];
  }
  // Backward substitution: Lᵀ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    real_t v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      v -= l[k * n + ii] * b[k];
    }
    b[ii] = v / l[ii * n + ii];
  }
}

void Cholesky::solve_rows_inplace(Matrix& b) const noexcept {
  solve_rows_inplace(b, 0, b.rows());
}

void Cholesky::solve_rows_inplace(Matrix& b, std::size_t row_begin,
                                  std::size_t row_end) const noexcept {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    solve_inplace(b.row(i));
  }
}

void solve_normal_equations(const Matrix& gram_matrix, Matrix& rhs_inout) {
  AOADMM_CHECK(gram_matrix.rows() == rhs_inout.cols());
  const Cholesky chol(gram_matrix);
  parallel_for(0, rhs_inout.rows(), [&](std::size_t i) {
    chol.solve_inplace(rhs_inout.row(i));
  });
}

CholeskyReport solve_normal_equations_guarded(const Matrix& gram_matrix,
                                              Matrix& rhs_inout,
                                              const CholeskyGuard& guard) {
  AOADMM_CHECK(gram_matrix.rows() == rhs_inout.cols());
  Cholesky chol;
  const CholeskyReport report = chol.factor_guarded(gram_matrix, guard);
  parallel_for(0, rhs_inout.rows(), [&](std::size_t i) {
    chol.solve_inplace(rhs_inout.row(i));
  });
  return report;
}

}  // namespace aoadmm
