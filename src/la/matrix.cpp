#include "la/matrix.hpp"

namespace aoadmm {

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                              real_t lo, real_t hi) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) {
    x = rng.uniform(lo, hi);
  }
  return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) {
    x = rng.normal();
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = real_t{1};
  }
  return m;
}

}  // namespace aoadmm
