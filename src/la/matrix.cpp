#include "la/matrix.hpp"

#include <cmath>

namespace aoadmm {

bool all_finite(cspan<real_t> v) noexcept {
  const real_t* __restrict p = v.data();
  const std::size_t n = v.size();
  std::size_t i = 0;
  // x * 0 is exactly 0 for every finite x and NaN for NaN/±Inf, so a chunk
  // is clean iff its multiply-by-zero sum compares equal to zero. This
  // keeps the sweep branch-free and vectorizable per chunk.
  for (; i + 16 <= n; i += 16) {
    real_t acc = 0;
    for (std::size_t k = 0; k < 16; ++k) {
      acc += p[i + k] * real_t{0};
    }
    if (!(acc == real_t{0})) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      return false;
    }
  }
  return true;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                              real_t lo, real_t hi) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) {
    x = rng.uniform(lo, hi);
  }
  return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) {
    x = rng.normal();
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = real_t{1};
  }
  return m;
}

}  // namespace aoadmm
