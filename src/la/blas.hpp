// Mini-BLAS for the kernels AO-ADMM needs. The matrices of interest are
// tall-and-skinny (I x F with small F), so the level-3 routines parallelize
// over the long row dimension with per-thread accumulators — the same
// strategy MKL would apply at these shapes (paper §IV.A).
#pragma once

#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// G = Aᵀ A  (F x F, symmetric). Parallel over rows of A.
void gram(const Matrix& a, Matrix& g);

/// G += Aᵀ A for the rows [row_begin, row_end) only (serial; used by tests
/// and by per-block updates).
void gram_accumulate(const Matrix& a, std::size_t row_begin,
                     std::size_t row_end, Matrix& g);

/// C = A * B (general, serial-friendly sizes; used for F x F products and
/// reference computations).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = Aᵀ * B.
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// A *= B elementwise (Hadamard). Shapes must match.
void hadamard_inplace(Matrix& a, const Matrix& b);

/// out = A * B elementwise.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// y += alpha * x (vector spans of equal length).
void axpy(real_t alpha, cspan<real_t> x, span<real_t> y) noexcept;

/// x *= alpha.
void scale(span<real_t> x, real_t alpha) noexcept;

/// Elementwise dot product of two equal-shape matrices: Σᵢⱼ A(i,j)·B(i,j).
/// Parallel over rows.
real_t dot(const Matrix& a, const Matrix& b);

/// Squared Frobenius norm. Parallel over rows.
real_t fro_norm_sq(const Matrix& a);

/// Sum of all entries (used for 1ᵀ G 1 in the CPD fit trick).
real_t sum_all(const Matrix& a) noexcept;

/// Bᵀ as a new matrix.
Matrix transpose(const Matrix& a);

/// max |A(i,j) - B(i,j)| — testing helper.
real_t max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace aoadmm
