#include "la/khatri_rao.hpp"

#include "util/error.hpp"

namespace aoadmm {

Matrix khatri_rao(const Matrix& p, const Matrix& q) {
  AOADMM_CHECK_MSG(p.cols() == q.cols(), "khatri_rao: rank mismatch");
  const std::size_t f = p.cols();
  Matrix out(p.rows() * q.rows(), f);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    for (std::size_t j = 0; j < q.rows(); ++j) {
      real_t* __restrict o = out.data() + (i * q.rows() + j) * f;
      const real_t* __restrict pi = p.data() + i * f;
      const real_t* __restrict qj = q.data() + j * f;
      for (std::size_t c = 0; c < f; ++c) {
        o[c] = pi[c] * qj[c];
      }
    }
  }
  return out;
}

Matrix khatri_rao_excluding(cspan<const Matrix> factors,
                            std::size_t skip_mode) {
  AOADMM_CHECK(skip_mode < factors.size());
  AOADMM_CHECK(factors.size() >= 2);
  // Compose from the highest mode down so the lowest mode varies fastest:
  // result = A_{N-1} ⊙ ... ⊙ A_{skip+1} ⊙ A_{skip-1} ⊙ ... ⊙ A_0.
  Matrix acc;
  bool first = true;
  for (std::size_t m = factors.size(); m-- > 0;) {
    if (m == skip_mode) {
      continue;
    }
    if (first) {
      acc = factors[m];
      first = false;
    } else {
      acc = khatri_rao(acc, factors[m]);
    }
  }
  return acc;
}

}  // namespace aoadmm
