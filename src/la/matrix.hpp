// Row-major dense matrix with cache-line aligned storage. This is the
// workhorse container for factor matrices (tall-and-skinny, I x F) and for
// the small F x F Gram/Cholesky matrices.
#pragma once

#include <cstddef>
#include <vector>

#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace aoadmm {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, real_t{0}) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }

  real_t* data() noexcept { return data_.data(); }
  const real_t* data() const noexcept { return data_.data(); }

  real_t& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  real_t operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  span<real_t> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  cspan<real_t> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }

  span<real_t> flat() noexcept { return {data_.data(), size()}; }
  cspan<real_t> flat() const noexcept { return {data_.data(), size()}; }

  void fill(real_t v) noexcept {
    for (auto& x : data_) {
      x = v;
    }
  }
  void zero() noexcept { fill(real_t{0}); }

  /// Reshape in place; total size must be preserved.
  void reshape(std::size_t rows, std::size_t cols) {
    AOADMM_CHECK(rows * cols == size());
    rows_ = rows;
    cols_ = cols;
  }

  /// Resize, discarding contents (new entries zero-initialized).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, real_t{0});
  }

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Entries drawn i.i.d. uniform from [lo, hi).
  static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                               real_t lo = 0.0, real_t hi = 1.0);

  /// Entries drawn i.i.d. standard normal.
  static Matrix random_normal(std::size_t rows, std::size_t cols, Rng& rng);

  /// F x F identity.
  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<real_t, AlignedAllocator<real_t>> data_;
};

/// True when every entry is finite (no NaN/Inf). The common clean case is a
/// vectorizable multiply-by-zero sweep, cheap enough to run as a sentinel
/// on every MTTKRP output and factor update.
bool all_finite(cspan<real_t> v) noexcept;
inline bool all_finite(const Matrix& a) noexcept { return all_finite(a.flat()); }

}  // namespace aoadmm
