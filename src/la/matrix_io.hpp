// Factor-matrix serialization: plain text (one row per line, space
// separated — easy to load into numpy/MATLAB for downstream analysis, the
// format SPLATT emits) and a binary container for exact round-trips.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace aoadmm {

/// Write a matrix as text: one row per line, full precision.
void write_matrix(const Matrix& a, std::ostream& out);
void write_matrix_file(const Matrix& a, const std::string& path);

/// Parse a text matrix (column count inferred from the first line). Throws
/// ParseError on ragged rows or non-numeric fields.
Matrix read_matrix(std::istream& in);
Matrix read_matrix_file(const std::string& path);

/// Write/read all factors of a model as "<prefix>.mode<N>.mat".
void write_factors(cspan<const Matrix> factors, const std::string& prefix);
std::vector<Matrix> read_factors(const std::string& prefix,
                                 std::size_t order);

}  // namespace aoadmm
