// Cholesky factorization of the F x F normal-equations matrix (G + rho*I)
// and the forward/backward substitutions that dominate each ADMM iteration
// (Algorithm 1, lines 4 and 6). This replaces the paper's use of Intel MKL.
#pragma once

#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// Policy for Cholesky::factor_guarded(): when a pivot is non-positive,
/// retry with a diagonal ridge ("jitter") escalated geometrically from
/// `initial_jitter` (relative to the largest diagonal magnitude) by
/// `growth` per attempt, up to `max_attempts` retries.
struct CholeskyGuard {
  unsigned max_attempts = 8;
  real_t initial_jitter = 1e-10;
  real_t growth = 100;
};

/// What a guarded factorization had to do. attempts == 0 means the plain
/// factorization succeeded and no jitter was added.
struct CholeskyReport {
  unsigned attempts = 0;
  /// Absolute ridge added to every diagonal entry (0 when attempts == 0).
  real_t jitter = 0;
};

/// Lower-triangular Cholesky factor L of a symmetric positive-definite
/// matrix A = L Lᵀ. One factorization is shared by every row update in an
/// ADMM sweep, so this object is immutable and safe to use concurrently
/// from many threads.
class Cholesky {
 public:
  /// Empty factorization; call factor() before solving. Lets long-lived
  /// solver sessions hoist the object and refactor in place every sweep
  /// without reallocating the F x F storage.
  Cholesky() = default;

  /// Factor `spd` (must be square, symmetric, positive definite).
  /// Throws NumericalError if a non-positive pivot is encountered.
  explicit Cholesky(const Matrix& spd) { factor(spd); }

  /// (Re)factor into the existing storage. Reuses the allocation when the
  /// dimension is unchanged.
  void factor(const Matrix& spd);

  /// Guarded (re)factorization: factor `spd`, and on a non-positive pivot
  /// retry with a geometrically escalated diagonal ridge instead of
  /// throwing. Factorizing A + jitter·I biases the subsequent solves toward
  /// the ridge-regularized system — the price of surviving a rank-deficient
  /// or corrupted input. Throws NumericalError only when even the largest
  /// permitted jitter fails (e.g. NaN-contaminated input).
  CholeskyReport factor_guarded(const Matrix& spd,
                                const CholeskyGuard& guard = {});

  std::size_t dim() const noexcept { return l_.rows(); }
  const Matrix& lower() const noexcept { return l_; }

  /// Solve A x = b in place (b becomes x). Thread-safe (const).
  void solve_inplace(span<real_t> b) const noexcept;

  /// Solve A Xᵀ = Bᵀ row-by-row in place: each row of `b` is treated as an
  /// independent right-hand side. Serial; callers parallelize over rows or
  /// blocks of rows themselves.
  void solve_rows_inplace(Matrix& b) const noexcept;

  /// Solve for the subset of rows [row_begin, row_end).
  void solve_rows_inplace(Matrix& b, std::size_t row_begin,
                          std::size_t row_end) const noexcept;

 private:
  /// One factorization attempt with `jitter` added to every diagonal entry.
  /// Returns the pivot index of the first non-positive pivot, or
  /// `kFactorOk` on success.
  std::size_t try_factor(const Matrix& spd, real_t jitter) noexcept;
  static constexpr std::size_t kFactorOk = static_cast<std::size_t>(-1);

  Matrix l_;  // lower triangle holds L; strict upper triangle is zero
};

/// Symmetric rank-F linear solve helper for the *unconstrained* ALS update:
/// solves X * G = K for X (i.e. Gᵀ xᵀ = kᵀ per row) reusing one Cholesky.
void solve_normal_equations(const Matrix& gram_matrix, Matrix& rhs_inout);

/// Guarded variant: survives a rank-deficient Gram matrix by escalating a
/// diagonal ridge (see Cholesky::factor_guarded). Returns what the guard
/// had to do so callers can report the intervention.
CholeskyReport solve_normal_equations_guarded(const Matrix& gram_matrix,
                                              Matrix& rhs_inout,
                                              const CholeskyGuard& guard = {});

}  // namespace aoadmm
