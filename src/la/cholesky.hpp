// Cholesky factorization of the F x F normal-equations matrix (G + rho*I)
// and the forward/backward substitutions that dominate each ADMM iteration
// (Algorithm 1, lines 4 and 6). This replaces the paper's use of Intel MKL.
#pragma once

#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// Lower-triangular Cholesky factor L of a symmetric positive-definite
/// matrix A = L Lᵀ. One factorization is shared by every row update in an
/// ADMM sweep, so this object is immutable and safe to use concurrently
/// from many threads.
class Cholesky {
 public:
  /// Empty factorization; call factor() before solving. Lets long-lived
  /// solver sessions hoist the object and refactor in place every sweep
  /// without reallocating the F x F storage.
  Cholesky() = default;

  /// Factor `spd` (must be square, symmetric, positive definite).
  /// Throws NumericalError if a non-positive pivot is encountered.
  explicit Cholesky(const Matrix& spd) { factor(spd); }

  /// (Re)factor into the existing storage. Reuses the allocation when the
  /// dimension is unchanged.
  void factor(const Matrix& spd);

  std::size_t dim() const noexcept { return l_.rows(); }
  const Matrix& lower() const noexcept { return l_; }

  /// Solve A x = b in place (b becomes x). Thread-safe (const).
  void solve_inplace(span<real_t> b) const noexcept;

  /// Solve A Xᵀ = Bᵀ row-by-row in place: each row of `b` is treated as an
  /// independent right-hand side. Serial; callers parallelize over rows or
  /// blocks of rows themselves.
  void solve_rows_inplace(Matrix& b) const noexcept;

  /// Solve for the subset of rows [row_begin, row_end).
  void solve_rows_inplace(Matrix& b, std::size_t row_begin,
                          std::size_t row_end) const noexcept;

 private:
  Matrix l_;  // lower triangle holds L; strict upper triangle is zero
};

/// Symmetric rank-F linear solve helper for the *unconstrained* ALS update:
/// solves X * G = K for X (i.e. Gᵀ xᵀ = kᵀ per row) reusing one Cholesky.
void solve_normal_equations(const Matrix& gram_matrix, Matrix& rhs_inout);

}  // namespace aoadmm
