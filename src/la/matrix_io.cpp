#include "la/matrix_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace aoadmm {

void write_matrix(const Matrix& a, std::ostream& out) {
  out.precision(17);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (j > 0) {
        out << ' ';
      }
      out << a(i, j);
    }
    out << '\n';
  }
}

void write_matrix_file(const Matrix& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw InvalidArgument("cannot create matrix file: " + path);
  }
  write_matrix(a, out);
  if (!out) {
    throw InvalidArgument("short write to matrix file: " + path);
  }
}

Matrix read_matrix(std::istream& in) {
  std::vector<std::vector<real_t>> rows;
  std::string line;
  std::size_t cols = 0;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::vector<real_t> row;
    real_t v;
    while (ls >> v) {
      row.push_back(v);
    }
    if (!ls.eof()) {
      throw ParseError("matrix line " + std::to_string(lineno) +
                       ": non-numeric field");
    }
    if (row.empty()) {
      continue;  // blank line
    }
    if (cols == 0) {
      cols = row.size();
    } else if (row.size() != cols) {
      throw ParseError("matrix line " + std::to_string(lineno) +
                       ": ragged row (expected " + std::to_string(cols) +
                       " fields)");
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    throw ParseError("matrix input contains no rows");
  }
  Matrix out(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      out(i, j) = rows[i][j];
    }
  }
  return out;
}

Matrix read_matrix_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgument("cannot open matrix file: " + path);
  }
  return read_matrix(in);
}

void write_factors(cspan<const Matrix> factors, const std::string& prefix) {
  for (std::size_t m = 0; m < factors.size(); ++m) {
    write_matrix_file(factors[m],
                      prefix + ".mode" + std::to_string(m) + ".mat");
  }
}

std::vector<Matrix> read_factors(const std::string& prefix,
                                 std::size_t order) {
  std::vector<Matrix> out;
  out.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    out.push_back(
        read_matrix_file(prefix + ".mode" + std::to_string(m) + ".mat"));
  }
  return out;
}

}  // namespace aoadmm
