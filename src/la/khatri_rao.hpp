// Explicit Khatri–Rao products. These materialize the (∏ dims) x F matrix
// and exist as the *reference* path: unit tests validate the CSF MTTKRP
// kernels against  K = X(m) · KRP  computed explicitly.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace aoadmm {

/// Columnwise Kronecker product: rows(result) = rows(P)·rows(Q), and
/// result(p·rows(Q) + q, f) = P(p,f) · Q(q,f). The *first* argument's row
/// index varies slowest, matching the Kolda matricization convention used by
/// matricize().
Matrix khatri_rao(const Matrix& p, const Matrix& q);

/// Khatri–Rao product of all factors except `skip_mode`, composed so that
/// lower mode indices vary fastest — exactly the operand of the mode-m
/// MTTKRP: K = X(m) · khatri_rao_excluding(factors, m).
Matrix khatri_rao_excluding(cspan<const Matrix> factors,
                            std::size_t skip_mode);

}  // namespace aoadmm
