#include "obs/profile.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/json_util.hpp"
#include "obs/telemetry/trace_context.hpp"

namespace aoadmm::obs {
namespace detail {

struct ProfNode {
  const char* name = "";
  ProfNode* parent = nullptr;
  std::vector<std::unique_ptr<ProfNode>> children;
  std::uint64_t count = 0;
  std::chrono::steady_clock::duration total{};
};

namespace {

using clock = std::chrono::steady_clock;

/// A finished span (or, with dur_us < 0, an instant marker), buffered for
/// the Chrome exporter. Instant markers carry the trace context that was
/// current when they fired.
struct Event {
  const char* name;
  double ts_us;
  double dur_us;
  int tid;
  std::uint64_t solve_id = 0;
  std::uint64_t batch_id = 0;
  std::uint64_t epoch = 0;
};

constexpr std::size_t kMaxEventsPerThread = 1 << 20;

struct ThreadProfile {
  ProfNode root;
  ProfNode* current = &root;
  std::vector<Event> events;
  int tid = 0;
};

std::atomic<bool> g_active{false};

std::mutex& profiles_mutex() {
  static std::mutex m;
  return m;
}

/// All thread profiles ever created. Leaked (and never shrunk) so reports
/// can read spans from threads that already exited — profiling is a
/// diagnostic mode, and the per-thread footprint is the tree + event
/// buffer.
std::vector<ThreadProfile*>& profiles() {
  static auto* v = new std::vector<ThreadProfile*>();
  return *v;
}

clock::time_point process_epoch() {
  static const clock::time_point epoch = clock::now();
  return epoch;
}

ThreadProfile& thread_profile() {
  thread_local ThreadProfile* tp = nullptr;
  if (tp == nullptr) {
    tp = new ThreadProfile();
    const std::lock_guard<std::mutex> lock(profiles_mutex());
    tp->tid = static_cast<int>(profiles().size());
    profiles().push_back(tp);
  }
  return *tp;
}

double to_us(clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

double to_seconds(clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

ProfNode* profile_begin(const char* name) noexcept {
  ThreadProfile& tp = thread_profile();
  ProfNode* parent = tp.current;
  // Scope names are string literals, so pointer equality hits almost
  // always; strcmp covers the same text from different translation units.
  for (const auto& child : parent->children) {
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      tp.current = child.get();
      return child.get();
    }
  }
  auto node = std::make_unique<ProfNode>();
  node->name = name;
  node->parent = parent;
  ProfNode* raw = node.get();
  parent->children.push_back(std::move(node));
  tp.current = raw;
  return raw;
}

void profile_end(ProfNode* node, clock::time_point start) noexcept {
  const clock::time_point end = clock::now();
  node->total += end - start;
  ++node->count;
  ThreadProfile& tp = thread_profile();
  tp.current = node->parent;
  if (tp.events.size() < kMaxEventsPerThread) {
    tp.events.push_back({node->name, to_us(start - process_epoch()),
                         to_us(end - start), tp.tid});
  }
}

}  // namespace detail

void profile_instant(const char* name) noexcept {
  if (!profiling_active()) {
    return;
  }
  detail::ThreadProfile& tp = detail::thread_profile();
  if (tp.events.size() >= detail::kMaxEventsPerThread) {
    return;
  }
  const TraceContext& ctx = current_trace();
  tp.events.push_back(
      {name, detail::to_us(detail::clock::now() - detail::process_epoch()),
       -1.0, tp.tid, ctx.solve_id, ctx.batch_id, ctx.epoch});
}

void profiling_start() noexcept {
  if (profiling_compiled()) {
    detail::process_epoch();  // pin the trace epoch before the first span
    detail::g_active.store(true, std::memory_order_relaxed);
  }
}

void profiling_stop() noexcept {
  detail::g_active.store(false, std::memory_order_relaxed);
}

bool profiling_active() noexcept {
  return detail::g_active.load(std::memory_order_relaxed);
}

namespace {

void reset_node(detail::ProfNode& node) {
  node.count = 0;
  node.total = {};
  for (const auto& child : node.children) {
    reset_node(*child);
  }
}

/// Name-path-merged view of every thread's tree.
struct MergedNode {
  const char* name = "";
  std::uint64_t count = 0;
  std::chrono::steady_clock::duration total{};
  std::map<std::string, MergedNode> children;  // ordered => stable reports
};

void merge_into(MergedNode& dst, const detail::ProfNode& src) {
  for (const auto& child : src.children) {
    MergedNode& m = dst.children[child->name];
    m.name = child->name;
    m.count += child->count;
    m.total += child->total;
    merge_into(m, *child);
  }
}

void flatten(const MergedNode& node, const std::string& prefix,
             unsigned depth, std::vector<SpanStats>& out) {
  for (const auto& [name, child] : node.children) {
    if (child.count == 0 && child.children.empty()) {
      continue;
    }
    SpanStats s;
    s.path = prefix.empty() ? name : prefix + " > " + name;
    s.name = child.name;
    s.depth = depth;
    s.count = child.count;
    s.seconds = detail::to_seconds(child.total);
    double child_seconds = 0;
    for (const auto& [cname, grand] : child.children) {
      child_seconds += detail::to_seconds(grand.total);
    }
    s.self_seconds = std::max(0.0, s.seconds - child_seconds);
    out.push_back(s);
    // Recurse with the local copy of the path: a reference into `out` would
    // dangle as soon as the recursion grows the vector.
    flatten(child, s.path, depth + 1, out);
  }
}

}  // namespace

std::vector<SpanStats> profile_report() {
  std::vector<SpanStats> out;
  MergedNode root;
  {
    const std::lock_guard<std::mutex> lock(detail::profiles_mutex());
    for (const detail::ThreadProfile* tp : detail::profiles()) {
      merge_into(root, tp->root);
    }
  }
  flatten(root, "", 0, out);
  return out;
}

void write_profile_report(std::ostream& out) {
  const std::vector<SpanStats> spans = profile_report();
  if (spans.empty()) {
    out << "profile: no spans recorded"
        << (profiling_compiled()
                ? "\n"
                : " (library compiled without AOADMM_ENABLE_PROFILING)\n");
    return;
  }
  out << "profile (inclusive seconds | self | count):\n";
  char buf[160];
  for (const SpanStats& s : spans) {
    std::snprintf(buf, sizeof(buf), "%*s%-*s %10.6f %10.6f %10llu\n",
                  static_cast<int>(2 * s.depth), "",
                  static_cast<int>(40 - 2 * s.depth), s.name, s.seconds,
                  s.self_seconds,
                  static_cast<unsigned long long>(s.count));
    out << buf;
  }
}

void write_chrome_trace(std::ostream& out) {
  out << "{\"traceEvents\": [";
  bool first = true;
  {
    const std::lock_guard<std::mutex> lock(detail::profiles_mutex());
    for (const detail::ThreadProfile* tp : detail::profiles()) {
      for (const auto& e : tp->events) {
        out << (first ? "\n" : ",\n") << "  {\"name\": \""
            << detail::json_escape(e.name) << "\", \"cat\": \"aoadmm\", ";
        if (e.dur_us < 0) {
          // Instant marker ("s":"g" = global scope line in the viewer),
          // annotated with the trace context it fired under.
          out << "\"ph\": \"i\", \"s\": \"g\", \"ts\": ";
          detail::json_number(out, e.ts_us);
          out << ", \"pid\": 0, \"tid\": " << e.tid
              << ", \"args\": {\"solve_id\": " << e.solve_id
              << ", \"batch_id\": " << e.batch_id
              << ", \"epoch\": " << e.epoch << "}}";
        } else {
          out << "\"ph\": \"X\", \"ts\": ";
          detail::json_number(out, e.ts_us);
          out << ", \"dur\": ";
          detail::json_number(out, e.dur_us);
          out << ", \"pid\": 0, \"tid\": " << e.tid << "}";
        }
        first = false;
      }
    }
  }
  out << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

void profiling_reset() {
  profiling_stop();
  const std::lock_guard<std::mutex> lock(detail::profiles_mutex());
  for (detail::ThreadProfile* tp : detail::profiles()) {
    // Node structure is kept (open scopes may still hold node pointers);
    // only the accumulated stats and the event buffer are dropped.
    reset_node(tp->root);
    tp->events.clear();
  }
}

}  // namespace aoadmm::obs
