// Structured runtime metrics: named counters, gauges, and fixed-bucket
// log-scale histograms, collected process-wide and exported as JSON or CSV.
//
// Design (hot-path first):
//  * Each thread writes to its own shard — a flat array of cells indexed by
//    metric slot. A cell has exactly one writer (its thread), so updates are
//    relaxed atomic load/store pairs: no locks, no contended cache lines.
//  * Scrapes (value queries, exporters) take the registry mutex only for
//    the O(metrics) copy into a RegistrySnapshot — formatting always
//    happens outside the lock, so a slow scrape consumer never blocks
//    registration. Scraping may race benignly with in-flight updates (a
//    scrape sees a slightly stale value, never a torn one), and hot-path
//    writers are lock-free regardless.
//  * Shards are recycled through a free list when threads exit, so thread
//    churn does not grow memory and no accumulated value is ever lost.
//  * Registration (MetricsRegistry::counter("name")) takes the mutex once;
//    call sites cache the returned handle (typically in a function-local
//    static) so the hot path never touches the name map.
//
// Histograms use fixed base-2 log buckets chosen for kernel timings:
//   bucket 0          : v <= 0 (also NaN)
//   bucket 1          : 0 < v < 2^-20 (~1 us) — underflow
//   buckets 2..35     : [2^e, 2^(e+1)) for e in [-20, 13]
//   bucket 36         : v >= 2^14 or +inf — overflow
// plus count / sum / min / max of every observation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace aoadmm::obs {

namespace detail {
struct RegistryImpl;
void scalar_add(RegistryImpl* impl, std::uint64_t gen, std::uint32_t slot,
                double v) noexcept;
void gauge_store(RegistryImpl* impl, std::uint32_t slot, double v,
                 bool accumulate) noexcept;
void histogram_observe(RegistryImpl* impl, std::uint64_t gen,
                       std::uint32_t slot, double v) noexcept;
}  // namespace detail

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind k) noexcept;

/// Histogram bucket layout (see file header).
inline constexpr int kHistogramMinExp = -20;
inline constexpr int kHistogramMaxExp = 13;
inline constexpr std::size_t kHistogramBuckets =
    static_cast<std::size_t>(kHistogramMaxExp - kHistogramMinExp + 1) + 3;

/// Bucket index an observation falls into (pure function; exposed for
/// tests).
std::size_t histogram_bucket(double v) noexcept;

/// Exclusive upper bound of bucket `b` (0 for the non-positive bucket,
/// +inf for the overflow bucket).
double histogram_bucket_upper(std::size_t b) noexcept;

/// Merged view of one histogram at scrape time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  // 0 when count == 0
  double max = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};

  double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0;
  }
};

/// Approximate quantile (q in [0, 1]) of the observations behind a
/// histogram snapshot: locates the bucket holding the q-th ranked
/// observation and interpolates linearly inside it, clamped to the observed
/// [min, max]. Resolution is the base-2 bucket width (within 2x of the true
/// value), which is plenty for latency p50/p99 reporting. Returns 0 for an
/// empty histogram.
double histogram_quantile(const HistogramSnapshot& h, double q) noexcept;

/// The standard latency quantile set, interpolated in one bucket walk.
/// This is the shared estimator behind every exporter (JSON, CSV,
/// Prometheus, /healthz) — compute it from a snapshot instead of plumbing
/// per-quantile gauges.
struct HistogramQuantiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
};

HistogramQuantiles histogram_quantiles(const HistogramSnapshot& h) noexcept;

/// Point-in-time copy of every registered metric, taken under ONE registry
/// lock acquisition. Exporters snapshot first and format outside the lock,
/// so a slow consumer (a network scrape, a large JSON dump) can never
/// stall registration or shard recycling.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, double>> counters;    // sorted by name
  std::vector<std::pair<std::string, double>> gauges;      // sorted by name
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;  // sorted
};

/// Cheap copyable handle to a registered counter. add() is lock-free; a
/// default-constructed handle drops updates. Handles must not outlive their
/// registry (the global registry lives forever).
class Counter {
 public:
  Counter() = default;
  void add(double v = 1.0) const noexcept {
    if (impl_ != nullptr) {
      detail::scalar_add(impl_, gen_, slot_, v);
    }
  }

 private:
  friend class MetricsRegistry;
  Counter(detail::RegistryImpl* impl, std::uint64_t gen, std::uint32_t slot)
      : impl_(impl), gen_(gen), slot_(slot) {}
  detail::RegistryImpl* impl_ = nullptr;
  std::uint64_t gen_ = 0;
  std::uint32_t slot_ = 0;
};

/// Gauge: last-set value wins, process-wide (gauges are not sharded — they
/// are set occasionally, not accumulated on the hot path).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept {
    if (impl_ != nullptr) {
      detail::gauge_store(impl_, slot_, v, false);
    }
  }
  void add(double v) const noexcept {
    if (impl_ != nullptr) {
      detail::gauge_store(impl_, slot_, v, true);
    }
  }

 private:
  friend class MetricsRegistry;
  Gauge(detail::RegistryImpl* impl, std::uint32_t slot)
      : impl_(impl), slot_(slot) {}
  detail::RegistryImpl* impl_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Histogram handle. observe() is lock-free.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept {
    if (impl_ != nullptr) {
      detail::histogram_observe(impl_, gen_, slot_, v);
    }
  }

 private:
  friend class MetricsRegistry;
  Histogram(detail::RegistryImpl* impl, std::uint64_t gen, std::uint32_t slot)
      : impl_(impl), gen_(gen), slot_(slot) {}
  detail::RegistryImpl* impl_ = nullptr;
  std::uint64_t gen_ = 0;
  std::uint32_t slot_ = 0;
};

class MetricsRegistry {
 public:
  /// The process-wide registry the library instruments into. Never
  /// destroyed (threads may outlive main), so handles stay valid forever.
  static MetricsRegistry& global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric. Idempotent per name; registering the
  /// same name under a different kind throws.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// Merged values across all shards. Unknown names read as zero/empty.
  double counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  HistogramSnapshot histogram_snapshot(const std::string& name) const;

  /// Registered names of one kind, sorted.
  std::vector<std::string> names(MetricKind kind) const;

  /// Copy every metric's merged value in a single lock acquisition. This
  /// is what the exporters (and any scrape endpoint) should use: hot-path
  /// writers stay lock-free throughout, and the registry mutex is held
  /// only for the O(metrics) copy, never while formatting.
  RegistrySnapshot snapshot() const;

  /// Zero every cell (all shards, all kinds). Intended for tests and
  /// between-run isolation; not safe concurrently with hot-path writers.
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}
  void write_json(std::ostream& out) const;

  /// One row per scalar / histogram field: kind,name,field,value.
  void write_csv(std::ostream& out) const;

 private:
  detail::RegistryImpl* impl_;
};

}  // namespace aoadmm::obs
