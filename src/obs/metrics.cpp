#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/json_util.hpp"
#include "util/error.hpp"

namespace aoadmm::obs {
namespace detail {
namespace {

constexpr std::size_t kMaxCounters = 1024;
constexpr std::size_t kMaxGauges = 256;
constexpr std::size_t kMaxHistograms = 256;

/// One scalar slot. Single writer (the owning thread); concurrent scrapes
/// read relaxed — never torn, possibly one update stale.
struct alignas(8) ScalarCell {
  std::atomic<double> v{0};
};

struct HistCell {
  std::atomic<std::uint64_t> buckets[kHistogramBuckets]{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};

  void zero() noexcept {
    for (auto& b : buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    min.store(std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    max.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
  }
};

/// Per-thread storage: fixed-capacity arrays so the hot path indexes
/// without any growth/synchronization concern. ~8 KiB of counters plus the
/// histogram block per thread.
struct Shard {
  std::vector<ScalarCell> counters{kMaxCounters};
  std::vector<HistCell> hists{kMaxHistograms};

  void zero() noexcept {
    for (auto& c : counters) {
      c.v.store(0, std::memory_order_relaxed);
    }
    for (auto& h : hists) {
      h.zero();
    }
  }
};

}  // namespace

struct RegistryImpl {
  std::uint64_t gen;  // unique per impl; guards against pointer reuse

  mutable std::mutex mutex;
  std::unordered_map<std::string, std::pair<MetricKind, std::uint32_t>> byname;
  std::uint32_t n_counters = 0;
  std::uint32_t n_gauges = 0;
  std::uint32_t n_hists = 0;

  std::vector<std::unique_ptr<Shard>> shards;  // every shard ever created
  std::vector<Shard*> free_shards;             // recycled, values preserved
  std::vector<ScalarCell> gauges{kMaxGauges};

  Shard* acquire_shard() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!free_shards.empty()) {
      Shard* s = free_shards.back();
      free_shards.pop_back();
      return s;
    }
    shards.push_back(std::make_unique<Shard>());
    return shards.back().get();
  }

  void release_shard(Shard* s) {
    const std::lock_guard<std::mutex> lock(mutex);
    free_shards.push_back(s);
  }
};

namespace {

std::mutex& live_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<RegistryImpl*>& live_impls() {
  static auto* set = new std::unordered_set<RegistryImpl*>();
  return *set;
}

std::uint64_t next_gen() {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local (impl, shard) bindings. On thread exit every shard is
/// handed back to its registry's free list — if that registry is still
/// alive (the generation check defends against a recycled address).
struct ThreadShards {
  struct Entry {
    RegistryImpl* impl;
    std::uint64_t gen;
    Shard* shard;
  };
  std::vector<Entry> entries;

  ~ThreadShards() {
    const std::lock_guard<std::mutex> lock(live_mutex());
    for (const Entry& e : entries) {
      if (live_impls().count(e.impl) != 0 && e.impl->gen == e.gen) {
        e.impl->release_shard(e.shard);
      }
    }
  }
};

Shard& shard_for(RegistryImpl* impl, std::uint64_t gen) {
  thread_local ThreadShards shards;
  for (const auto& e : shards.entries) {
    if (e.impl == impl && e.gen == gen) {
      return *e.shard;
    }
  }
  Shard* s = impl->acquire_shard();
  shards.entries.push_back({impl, gen, s});
  return *s;
}

}  // namespace

void scalar_add(RegistryImpl* impl, std::uint64_t gen, std::uint32_t slot,
                double v) noexcept {
  auto& cell = shard_for(impl, gen).counters[slot].v;
  cell.store(cell.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

void gauge_store(RegistryImpl* impl, std::uint32_t slot, double v,
                 bool accumulate) noexcept {
  auto& cell = impl->gauges[slot].v;
  if (accumulate) {
    double cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  } else {
    cell.store(v, std::memory_order_relaxed);
  }
}

void histogram_observe(RegistryImpl* impl, std::uint64_t gen,
                       std::uint32_t slot, double v) noexcept {
  HistCell& h = shard_for(impl, gen).hists[slot];
  const std::size_t b = histogram_bucket(v);
  auto bump = [](std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  };
  bump(h.buckets[b]);
  bump(h.count);
  if (!std::isnan(v)) {
    h.sum.store(h.sum.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
    if (v < h.min.load(std::memory_order_relaxed)) {
      h.min.store(v, std::memory_order_relaxed);
    }
    if (v > h.max.load(std::memory_order_relaxed)) {
      h.max.store(v, std::memory_order_relaxed);
    }
  }
}

}  // namespace detail

const char* to_string(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::size_t histogram_bucket(double v) noexcept {
  if (!(v > 0)) {  // catches <= 0 and NaN
    return 0;
  }
  if (std::isinf(v)) {
    return kHistogramBuckets - 1;
  }
  const int e = std::ilogb(v);
  if (e < kHistogramMinExp) {
    return 1;
  }
  if (e > kHistogramMaxExp) {
    return kHistogramBuckets - 1;
  }
  return static_cast<std::size_t>(e - kHistogramMinExp) + 2;
}

double histogram_bucket_upper(std::size_t b) noexcept {
  if (b == 0) {
    return 0;
  }
  if (b >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  // Bucket 1 is the underflow (0, 2^min); bucket b >= 2 covers
  // [2^(min + b - 2), 2^(min + b - 1)).
  const int exp = kHistogramMinExp + static_cast<int>(b) - 1;
  return std::ldexp(1.0, exp);
}

double histogram_quantile(const HistogramSnapshot& h, double q) noexcept {
  if (h.count == 0) {
    return 0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] == 0) {
      continue;
    }
    const double prev = static_cast<double>(cum);
    cum += h.buckets[b];
    if (static_cast<double>(cum) < target) {
      continue;
    }
    // The q-th observation lands in bucket b. Interpolate linearly between
    // the bucket bounds, clamping the open-ended ones to the observed
    // extremes.
    const double lo =
        b == 0 ? h.min
               : std::max(h.min, b == 1 ? 0.0 : histogram_bucket_upper(b - 1));
    const double hi = std::min(
        h.max, b == kHistogramBuckets - 1
                   ? std::numeric_limits<double>::infinity()
                   : histogram_bucket_upper(b));
    if (!(hi > lo)) {
      return lo;
    }
    const double frac =
        (target - prev) / static_cast<double>(h.buckets[b]);
    return lo + frac * (hi - lo);
  }
  return h.max;
}

HistogramQuantiles histogram_quantiles(const HistogramSnapshot& h) noexcept {
  HistogramQuantiles q;
  q.p50 = histogram_quantile(h, 0.50);
  q.p95 = histogram_quantile(h, 0.95);
  q.p99 = histogram_quantile(h, 0.99);
  q.p999 = histogram_quantile(h, 0.999);
  return q;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: worker threads may record metrics during their (post-main)
  // teardown, so the registry must never be destroyed.
  static auto* r = new MetricsRegistry();
  return *r;
}

MetricsRegistry::MetricsRegistry() : impl_(new detail::RegistryImpl()) {
  impl_->gen = detail::next_gen();
  const std::lock_guard<std::mutex> lock(detail::live_mutex());
  detail::live_impls().insert(impl_);
}

MetricsRegistry::~MetricsRegistry() {
  {
    const std::lock_guard<std::mutex> lock(detail::live_mutex());
    detail::live_impls().erase(impl_);
  }
  delete impl_;
}

Counter MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->byname.find(name);
  if (it == impl_->byname.end()) {
    AOADMM_CHECK_MSG(impl_->n_counters < detail::kMaxCounters,
                     "metrics: counter capacity exhausted");
    it = impl_->byname
             .emplace(name, std::make_pair(MetricKind::kCounter,
                                           impl_->n_counters++))
             .first;
  }
  AOADMM_CHECK_MSG(it->second.first == MetricKind::kCounter,
                   "metrics: '" + name + "' already registered as " +
                       to_string(it->second.first));
  return Counter(impl_, impl_->gen, it->second.second);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->byname.find(name);
  if (it == impl_->byname.end()) {
    AOADMM_CHECK_MSG(impl_->n_gauges < detail::kMaxGauges,
                     "metrics: gauge capacity exhausted");
    it = impl_->byname
             .emplace(name,
                      std::make_pair(MetricKind::kGauge, impl_->n_gauges++))
             .first;
  }
  AOADMM_CHECK_MSG(it->second.first == MetricKind::kGauge,
                   "metrics: '" + name + "' already registered as " +
                       to_string(it->second.first));
  return Gauge(impl_, it->second.second);
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->byname.find(name);
  if (it == impl_->byname.end()) {
    AOADMM_CHECK_MSG(impl_->n_hists < detail::kMaxHistograms,
                     "metrics: histogram capacity exhausted");
    it = impl_->byname
             .emplace(name, std::make_pair(MetricKind::kHistogram,
                                           impl_->n_hists++))
             .first;
  }
  AOADMM_CHECK_MSG(it->second.first == MetricKind::kHistogram,
                   "metrics: '" + name + "' already registered as " +
                       to_string(it->second.first));
  return Histogram(impl_, impl_->gen, it->second.second);
}

double MetricsRegistry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->byname.find(name);
  if (it == impl_->byname.end() ||
      it->second.first != MetricKind::kCounter) {
    return 0;
  }
  double total = 0;
  for (const auto& shard : impl_->shards) {
    total += shard->counters[it->second.second].v.load(
        std::memory_order_relaxed);
  }
  return total;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->byname.find(name);
  if (it == impl_->byname.end() || it->second.first != MetricKind::kGauge) {
    return 0;
  }
  return impl_->gauges[it->second.second].v.load(std::memory_order_relaxed);
}

HistogramSnapshot MetricsRegistry::histogram_snapshot(
    const std::string& name) const {
  HistogramSnapshot out;
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->byname.find(name);
  if (it == impl_->byname.end() ||
      it->second.first != MetricKind::kHistogram) {
    return out;
  }
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const auto& shard : impl_->shards) {
    const detail::HistCell& h = shard->hists[it->second.second];
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
    }
    out.count += h.count.load(std::memory_order_relaxed);
    out.sum += h.sum.load(std::memory_order_relaxed);
    mn = std::min(mn, h.min.load(std::memory_order_relaxed));
    mx = std::max(mx, h.max.load(std::memory_order_relaxed));
  }
  out.min = std::isinf(mn) && mn > 0 ? 0 : mn;
  out.max = std::isinf(mx) && mx < 0 ? 0 : mx;
  return out;
}

std::vector<std::string> MetricsRegistry::names(MetricKind kind) const {
  std::vector<std::string> out;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& [name, meta] : impl_->byname) {
      if (meta.first == kind) {
        out.push_back(name);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot out;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& [name, meta] : impl_->byname) {
      const std::uint32_t slot = meta.second;
      switch (meta.first) {
        case MetricKind::kCounter: {
          double total = 0;
          for (const auto& shard : impl_->shards) {
            total += shard->counters[slot].v.load(std::memory_order_relaxed);
          }
          out.counters.emplace_back(name, total);
          break;
        }
        case MetricKind::kGauge:
          out.gauges.emplace_back(
              name, impl_->gauges[slot].v.load(std::memory_order_relaxed));
          break;
        case MetricKind::kHistogram: {
          HistogramSnapshot h;
          double mn = std::numeric_limits<double>::infinity();
          double mx = -std::numeric_limits<double>::infinity();
          for (const auto& shard : impl_->shards) {
            const detail::HistCell& cell = shard->hists[slot];
            for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
              h.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
            }
            h.count += cell.count.load(std::memory_order_relaxed);
            h.sum += cell.sum.load(std::memory_order_relaxed);
            mn = std::min(mn, cell.min.load(std::memory_order_relaxed));
            mx = std::max(mx, cell.max.load(std::memory_order_relaxed));
          }
          h.min = std::isinf(mn) && mn > 0 ? 0 : mn;
          h.max = std::isinf(mx) && mx < 0 ? 0 : mx;
          out.histograms.emplace_back(name, h);
          break;
        }
      }
    }
  }
  const auto byname = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), byname);
  std::sort(out.gauges.begin(), out.gauges.end(), byname);
  std::sort(out.histograms.begin(), out.histograms.end(), byname);
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& shard : impl_->shards) {
    shard->zero();
  }
  for (auto& g : impl_->gauges) {
    g.v.store(0, std::memory_order_relaxed);
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  using detail::json_escape;
  using detail::json_number;
  // Snapshot under one lock acquisition; everything below formats from the
  // copy, so stream back-pressure cannot hold the registry mutex.
  const RegistrySnapshot snap = snapshot();
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": ";
    json_number(out, value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": ";
    json_number(out, value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    const HistogramQuantiles q = histogram_quantiles(h);
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << h.count << ", \"sum\": ";
    json_number(out, h.sum);
    out << ", \"min\": ";
    json_number(out, h.min);
    out << ", \"max\": ";
    json_number(out, h.max);
    out << ", \"mean\": ";
    json_number(out, h.mean());
    out << ", \"p50\": ";
    json_number(out, q.p50);
    out << ", \"p95\": ";
    json_number(out, q.p95);
    out << ", \"p99\": ";
    json_number(out, q.p99);
    out << ", \"p999\": ";
    json_number(out, q.p999);
    out << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) {
        continue;
      }
      out << (bfirst ? "" : ", ") << "{\"le\": ";
      json_number(out, histogram_bucket_upper(b));
      out << ", \"count\": " << h.buckets[b] << "}";
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const RegistrySnapshot snap = snapshot();
  out << "kind,name,field,value\n";
  char buf[64];
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << "counter," << name << ",value," << buf << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << "gauge," << name << ",value," << buf << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    const HistogramQuantiles q = histogram_quantiles(h);
    out << "histogram," << name << ",count," << h.count << '\n';
    std::snprintf(buf, sizeof(buf), "%.17g", h.sum);
    out << "histogram," << name << ",sum," << buf << '\n';
    std::snprintf(buf, sizeof(buf), "%.17g", h.min);
    out << "histogram," << name << ",min," << buf << '\n';
    std::snprintf(buf, sizeof(buf), "%.17g", h.max);
    out << "histogram," << name << ",max," << buf << '\n';
    const std::pair<const char*, double> quants[] = {
        {"p50", q.p50}, {"p95", q.p95}, {"p99", q.p99}, {"p999", q.p999}};
    for (const auto& [field, value] : quants) {
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      out << "histogram," << name << ',' << field << ',' << buf << '\n';
    }
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "%g", histogram_bucket_upper(b));
      out << "histogram," << name << ",bucket_le_" << buf << ','
          << h.buckets[b] << '\n';
    }
  }
}

}  // namespace aoadmm::obs
