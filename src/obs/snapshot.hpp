// Per-outer-iteration metrics delivered to CpdOptions::on_iteration. One
// snapshot is produced at the end of every outer iteration, covering that
// iteration (plus a few cumulative run totals, marked below).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "util/types.hpp"

namespace aoadmm::obs {

struct MetricsSnapshot {
  unsigned outer_iteration = 0;
  /// Wall-clock seconds since the run started.
  double seconds = 0;
  /// Wall-clock seconds of this outer iteration alone.
  double iteration_seconds = 0;
  real_t relative_error = 0;

  /// MTTKRP seconds per mode, this iteration (size = tensor order).
  std::vector<double> mode_mttkrp_seconds;
  /// ADMM (or ALS-solve) seconds, this iteration.
  double admm_seconds = 0;
  /// ADMM inner iterations summed over modes, this iteration.
  std::uint64_t admm_inner_iterations = 0;

  /// Final ADMM residuals across this iteration's mode updates: the worst
  /// (max) and mean over modes. Zero for cpd_als (no ADMM ran).
  real_t worst_primal_residual = 0;
  real_t mean_primal_residual = 0;
  real_t worst_dual_residual = 0;
  real_t mean_dual_residual = 0;

  /// Thread busy-time imbalance of the parallel regions that ran in this
  /// iteration: 1 - mean/max in [0, 1]; 0 = perfectly balanced or serial.
  double thread_imbalance = 0;

  /// Same imbalance measure restricted to the MTTKRP kernels' parallel
  /// regions this iteration (the load-balance signal the nnz-weighted
  /// schedules exist to drive down), plus the raw busy-time extremes
  /// behind it.
  double mttkrp_imbalance = 0;
  double mttkrp_max_busy_seconds = 0;
  double mttkrp_mean_busy_seconds = 0;

  /// Factor density (nnz / (I*F)) per mode at the end of this iteration.
  std::vector<real_t> factor_density;

  /// Cumulative over the run so far.
  std::uint64_t mttkrp_count = 0;
  std::uint64_t sparse_mttkrp_count = 0;

  /// Dimension-tree kernel reuse, this iteration: partial-contraction
  /// levels recomputed vs. served from cache. Zero unless kDimTree ran.
  std::uint64_t dimtree_levels_computed = 0;
  std::uint64_t dimtree_levels_reused = 0;

  /// Sharded solves only (dist/sharded_solver.hpp): per-shard busy-time
  /// imbalance this iteration (1 - mean/max, like thread_imbalance) and
  /// exchange wire bytes moved this iteration. Zero for unsharded runs.
  double shard_imbalance = 0;
  std::uint64_t exchange_bytes = 0;

  /// Single-line JSON object (suitable for JSON-lines progress streams).
  void write_json(std::ostream& out) const;
};

}  // namespace aoadmm::obs
