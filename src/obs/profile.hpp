// Hierarchical scoped profiler with per-thread span accumulation and a
// Chrome trace_event exporter (load the JSON in chrome://tracing or
// https://ui.perfetto.dev).
//
//   void update_mode(...) {
//     AOADMM_PROFILE_SCOPE("cpd/mode");
//     { AOADMM_PROFILE_SCOPE("mttkrp"); ... }   // nests under cpd/mode
//     { AOADMM_PROFILE_SCOPE("admm");   ... }
//   }
//
// Cost model:
//  * Compiled with -DAOADMM_ENABLE_PROFILING=OFF (the default), the macro
//    expands to nothing — a true zero-cost no-op. The control/report
//    functions below still exist so tools link in either configuration
//    (reports are simply empty).
//  * Compiled ON, scopes are inert until profiling_start(): the constructor
//    is one relaxed atomic load and a branch. Once started, a scope costs
//    two steady_clock reads plus a thread-local child lookup — tens of
//    nanoseconds, intended for kernel-level spans, not per-row loops.
//
// Each thread owns a span tree (nodes keyed by the scope-name literal) and
// a bounded buffer of complete ("ph":"X") trace events. Trees are merged by
// name-path at report time; the event buffer cap keeps long runs from
// exhausting memory (accumulation continues after the cap, only event
// recording stops).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aoadmm::obs {

/// True when the library was compiled with profiling support.
constexpr bool profiling_compiled() noexcept {
#if defined(AOADMM_ENABLE_PROFILING)
  return true;
#else
  return false;
#endif
}

/// Runtime gate. start() begins collection (idempotent); stop() halts it.
/// Both are no-ops when profiling is compiled out.
void profiling_start() noexcept;
void profiling_stop() noexcept;
bool profiling_active() noexcept;

/// Zero all accumulated spans and drop buffered trace events. Call only
/// while profiling is stopped and no scope is open.
void profiling_reset();

/// One merged span in depth-first order.
struct SpanStats {
  std::string path;      // "cpd/aoadmm > cpd/mode > mttkrp"
  const char* name = ""; // leaf name
  unsigned depth = 0;
  std::uint64_t count = 0;
  double seconds = 0;        // inclusive
  double self_seconds = 0;   // exclusive of profiled children
};

/// Merge every thread's tree by name-path. Empty when compiled out or
/// nothing was recorded.
std::vector<SpanStats> profile_report();

/// Human-readable indented tree of profile_report().
void write_profile_report(std::ostream& out);

/// Chrome trace_event JSON ({"traceEvents": [...]}). Valid JSON in every
/// configuration; events are present only when compiled + started.
void write_chrome_trace(std::ostream& out);

/// Record a point-in-time marker (Chrome "instant" event, ph:"i") stamped
/// with the calling thread's current TraceContext — used for snapshot
/// publishes, recovery firings, checkpoint writes. No-op unless profiling
/// is compiled in and active. `name` must be a string literal (it is
/// stored, not copied).
void profile_instant(const char* name) noexcept;

namespace detail {
struct ProfNode;
ProfNode* profile_begin(const char* name) noexcept;
void profile_end(ProfNode* node,
                 std::chrono::steady_clock::time_point start) noexcept;
}  // namespace detail

/// RAII span. Use through AOADMM_PROFILE_SCOPE, not directly — the macro is
/// what the no-profiling configuration compiles away.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) noexcept {
    if (profiling_active()) {
      start_ = std::chrono::steady_clock::now();
      node_ = detail::profile_begin(name);
    }
  }
  ~ProfileScope() {
    if (node_ != nullptr) {
      detail::profile_end(node_, start_);
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  detail::ProfNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace aoadmm::obs

#if defined(AOADMM_ENABLE_PROFILING)
#define AOADMM_PROFILE_CONCAT_INNER(a, b) a##b
#define AOADMM_PROFILE_CONCAT(a, b) AOADMM_PROFILE_CONCAT_INNER(a, b)
#define AOADMM_PROFILE_SCOPE(name)                  \
  const ::aoadmm::obs::ProfileScope AOADMM_PROFILE_CONCAT( \
      aoadmm_profile_scope_, __LINE__)(name)
#else
#define AOADMM_PROFILE_SCOPE(name) static_cast<void>(0)
#endif
