// Internal JSON emission helpers shared by the obs exporters. This is a
// writer only — the library never parses JSON (tests carry their own
// minimal parser to validate exporter output).
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace aoadmm::obs::detail {

/// Escape a string for inclusion inside a JSON string literal.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Write a double as a JSON number. JSON has no inf/nan literals, so those
/// are emitted as strings ("inf", "-inf", "nan") to keep documents valid.
inline void json_number(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "\"nan\"";
  } else if (std::isinf(v)) {
    out << (v > 0 ? "\"inf\"" : "\"-inf\"");
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

}  // namespace aoadmm::obs::detail
