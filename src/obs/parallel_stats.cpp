#include "obs/parallel_stats.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"

namespace aoadmm::obs {
namespace {

// Cumulative totals; relaxed read-modify-write under the recorders' data
// race is acceptable only because records are serialized — a region is
// recorded once, by the thread that owns the BusyTimes (regions never
// overlap in this library's call graph). CAS keeps it correct anyway if
// two independent regions ever finish concurrently.
std::atomic<double> g_max_busy{0};
std::atomic<double> g_mean_busy{0};
std::atomic<std::uint64_t> g_regions{0};

// Dedicated MTTKRP-domain channel (in addition to the totals above).
std::atomic<double> g_mttkrp_max_busy{0};
std::atomic<double> g_mttkrp_mean_busy{0};
std::atomic<std::uint64_t> g_mttkrp_regions{0};

void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

ParallelTotals parallel_totals() noexcept {
  ParallelTotals t;
  t.max_busy_seconds = g_max_busy.load(std::memory_order_relaxed);
  t.mean_busy_seconds = g_mean_busy.load(std::memory_order_relaxed);
  t.regions = g_regions.load(std::memory_order_relaxed);
  return t;
}

void reset_parallel_totals() noexcept {
  g_max_busy.store(0, std::memory_order_relaxed);
  g_mean_busy.store(0, std::memory_order_relaxed);
  g_regions.store(0, std::memory_order_relaxed);
}

ParallelTotals mttkrp_totals() noexcept {
  ParallelTotals t;
  t.max_busy_seconds = g_mttkrp_max_busy.load(std::memory_order_relaxed);
  t.mean_busy_seconds = g_mttkrp_mean_busy.load(std::memory_order_relaxed);
  t.regions = g_mttkrp_regions.load(std::memory_order_relaxed);
  return t;
}

namespace {

double imbalance_delta(const ParallelTotals& before,
                       const ParallelTotals& now) noexcept {
  const double dmax = now.max_busy_seconds - before.max_busy_seconds;
  const double dmean = now.mean_busy_seconds - before.mean_busy_seconds;
  if (dmax <= 0) {
    return 0;
  }
  return std::clamp(1.0 - dmean / dmax, 0.0, 1.0);
}

}  // namespace

double imbalance_since(const ParallelTotals& before) noexcept {
  return imbalance_delta(before, parallel_totals());
}

double mttkrp_imbalance_since(const ParallelTotals& before) noexcept {
  return imbalance_delta(before, mttkrp_totals());
}

void record_parallel_region(const double* busy_seconds, int nthreads,
                            RegionDomain domain) {
  if (nthreads <= 0) {
    return;
  }
  double mx = 0;
  double sum = 0;
  for (int t = 0; t < nthreads; ++t) {
    mx = std::max(mx, busy_seconds[t]);
    sum += busy_seconds[t];
  }
  if (mx <= 0) {
    return;  // region did no measurable work
  }
  const double mean = sum / nthreads;
  atomic_add(g_max_busy, mx);
  atomic_add(g_mean_busy, mean);
  g_regions.fetch_add(1, std::memory_order_relaxed);

  const double imbalance = 1.0 - mean / mx;
  static const Histogram h =
      MetricsRegistry::global().histogram("parallel/region_imbalance");
  h.observe(imbalance);

  if (domain == RegionDomain::kMttkrp) {
    atomic_add(g_mttkrp_max_busy, mx);
    atomic_add(g_mttkrp_mean_busy, mean);
    g_mttkrp_regions.fetch_add(1, std::memory_order_relaxed);

    struct MttkrpChannel {
      Histogram imbalance_hist;
      Gauge last_imbalance;
      Gauge last_max_busy;
      Gauge last_mean_busy;
    };
    static const MttkrpChannel ch = [] {
      auto& reg = MetricsRegistry::global();
      MttkrpChannel c;
      c.imbalance_hist = reg.histogram("mttkrp/region_imbalance");
      c.last_imbalance = reg.gauge("mttkrp/last_imbalance");
      c.last_max_busy = reg.gauge("mttkrp/last_max_busy_seconds");
      c.last_mean_busy = reg.gauge("mttkrp/last_mean_busy_seconds");
      return c;
    }();
    ch.imbalance_hist.observe(imbalance);
    ch.last_imbalance.set(imbalance);
    ch.last_max_busy.set(mx);
    ch.last_mean_busy.set(mean);
  }
}

BusyTimes::BusyTimes(int nthreads, RegionDomain domain)
    : nthreads_(nthreads), domain_(domain) {
  if (nthreads_ > kInlineThreads) {
    cells_ = new Cell[static_cast<std::size_t>(nthreads_)];
  }
}

BusyTimes::~BusyTimes() {
  double stack[kInlineThreads];
  double* busy = stack;
  if (nthreads_ > kInlineThreads) {
    busy = new double[static_cast<std::size_t>(nthreads_)];
  }
  for (int t = 0; t < nthreads_; ++t) {
    busy[t] = cells_[t].v;
  }
  record_parallel_region(busy, nthreads_, domain_);
  if (busy != stack) {
    delete[] busy;
  }
  if (cells_ != inline_cells_) {
    delete[] cells_;
  }
}

}  // namespace aoadmm::obs
