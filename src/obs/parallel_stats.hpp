// Per-region busy-time accounting for parallel regions: each instrumented
// region measures every thread's working time (excluding barrier waits),
// and the region's load imbalance
//
//   imbalance = 1 - mean(busy) / max(busy)   in [0, 1]
//
// is accumulated process-wide. 0 means perfectly balanced, 1 means one
// thread did all the work while the team idled — the quantity ALTO-style
// runtime tuning watches. The CPD driver diffs cumulative totals around an
// outer iteration to report per-iteration imbalance in MetricsSnapshot.
//
// The cost is two steady_clock reads per thread per region, so this is
// always on (no compile gate): regions are kernel-sized, never row-sized.
#pragma once

#include <cstddef>
#include <cstdint>

namespace aoadmm::obs {

/// Cumulative totals over all instrumented regions since process start
/// (or the last reset_parallel_totals()).
struct ParallelTotals {
  double max_busy_seconds = 0;   // sum over regions of max-thread busy time
  double mean_busy_seconds = 0;  // sum over regions of mean-thread busy time
  std::uint64_t regions = 0;

  /// Aggregate imbalance of the regions covered by these totals.
  double imbalance() const noexcept {
    return max_busy_seconds > 0
               ? 1.0 - mean_busy_seconds / max_busy_seconds
               : 0.0;
  }
};

ParallelTotals parallel_totals() noexcept;
void reset_parallel_totals() noexcept;

/// Which accounting channel a region reports into. Every region feeds the
/// process-wide totals; kMttkrp regions additionally feed a dedicated
/// MTTKRP channel (mttkrp_totals) plus per-invocation gauges
/// ("mttkrp/last_imbalance", "mttkrp/last_max_busy_seconds",
/// "mttkrp/last_mean_busy_seconds") and the "mttkrp/region_imbalance"
/// histogram, so scaling runs can see where the kernel's remaining
/// imbalance lives without it being diluted by the other regions.
enum class RegionDomain {
  kGeneral,
  kMttkrp,
};

/// Cumulative totals over the MTTKRP-domain regions only.
ParallelTotals mttkrp_totals() noexcept;

/// Imbalance of the regions that ran since `before` was captured —
/// clamped to [0, 1]; 0 when nothing ran.
double imbalance_since(const ParallelTotals& before) noexcept;

/// Same, for the MTTKRP channel (`before` from mttkrp_totals()).
double mttkrp_imbalance_since(const ParallelTotals& before) noexcept;

/// Feed one region's per-thread busy seconds (array of `nthreads` entries;
/// threads that did no work contribute their 0). Also observes the
/// region's imbalance into the "parallel/region_imbalance" histogram.
void record_parallel_region(const double* busy_seconds, int nthreads,
                            RegionDomain domain = RegionDomain::kGeneral);

/// Stack helper collecting per-thread busy times for one region without
/// false sharing; reports to record_parallel_region() on destruction.
///
///   { obs::BusyTimes busy(max_threads());
///     #pragma omp parallel
///     { auto t0 = ...; work(); busy.add(thread_id(), elapsed(t0)); } }
class BusyTimes {
 public:
  explicit BusyTimes(int nthreads,
                     RegionDomain domain = RegionDomain::kGeneral);
  ~BusyTimes();
  BusyTimes(const BusyTimes&) = delete;
  BusyTimes& operator=(const BusyTimes&) = delete;

  void add(int tid, double seconds) noexcept {
    if (tid >= 0 && tid < nthreads_) {
      cells_[tid].v += seconds;
    }
  }

 private:
  struct alignas(64) Cell {
    double v = 0;
  };
  static constexpr int kInlineThreads = 64;
  Cell inline_cells_[kInlineThreads];
  Cell* cells_ = inline_cells_;
  int nthreads_ = 0;
  RegionDomain domain_ = RegionDomain::kGeneral;
};

}  // namespace aoadmm::obs
