#include "obs/snapshot.hpp"

#include <ostream>

#include "obs/json_util.hpp"

namespace aoadmm::obs {

void MetricsSnapshot::write_json(std::ostream& out) const {
  using detail::json_number;
  const auto num = [&out](const char* key, double v, bool comma = true) {
    out << '"' << key << "\": ";
    json_number(out, v);
    if (comma) {
      out << ", ";
    }
  };
  out << "{\"outer_iteration\": " << outer_iteration << ", ";
  num("seconds", seconds);
  num("iteration_seconds", iteration_seconds);
  num("relative_error", static_cast<double>(relative_error));
  out << "\"mode_mttkrp_seconds\": [";
  for (std::size_t m = 0; m < mode_mttkrp_seconds.size(); ++m) {
    if (m > 0) {
      out << ", ";
    }
    json_number(out, mode_mttkrp_seconds[m]);
  }
  out << "], ";
  num("admm_seconds", admm_seconds);
  out << "\"admm_inner_iterations\": " << admm_inner_iterations << ", ";
  num("worst_primal_residual", static_cast<double>(worst_primal_residual));
  num("mean_primal_residual", static_cast<double>(mean_primal_residual));
  num("worst_dual_residual", static_cast<double>(worst_dual_residual));
  num("mean_dual_residual", static_cast<double>(mean_dual_residual));
  num("thread_imbalance", thread_imbalance);
  num("mttkrp_imbalance", mttkrp_imbalance);
  num("mttkrp_max_busy_seconds", mttkrp_max_busy_seconds);
  num("mttkrp_mean_busy_seconds", mttkrp_mean_busy_seconds);
  out << "\"factor_density\": [";
  for (std::size_t m = 0; m < factor_density.size(); ++m) {
    if (m > 0) {
      out << ", ";
    }
    json_number(out, static_cast<double>(factor_density[m]));
  }
  out << "], \"mttkrp_count\": " << mttkrp_count
      << ", \"sparse_mttkrp_count\": " << sparse_mttkrp_count
      << ", \"dimtree_levels_computed\": " << dimtree_levels_computed
      << ", \"dimtree_levels_reused\": " << dimtree_levels_reused << ", ";
  num("shard_imbalance", shard_imbalance);
  out << "\"exchange_bytes\": " << exchange_bytes << "}";
}

}  // namespace aoadmm::obs
