// Sliding-window latency quantiles for the live telemetry plane.
//
// The static registry histograms (obs/metrics.hpp) accumulate forever —
// right for run totals, wrong for "what is query p99 RIGHT NOW" on a
// long-running serve process. A WindowedHistogram is a ring of time
// slices, each holding the familiar base-2 log bucket array; observations
// land in the slice covering the current wall of time, stale slices are
// lazily re-tagged and zeroed as the window slides past them, and a
// snapshot merges only the slices inside the trailing window.
//
// Hot path: locate the time slice (integer divide on a caller-supplied or
// freshly read steady-clock timestamp), then ONE relaxed fetch_add on the
// value's log2 bucket. No locks, no CAS in steady state; the only extra
// work is on the first observation of a new time slice, where the writer
// that notices the stale tag re-tags and zeroes it (racing writers from
// the dying slice can smear a handful of counts — monitoring-grade
// accuracy, deliberately traded for the one-atomic hot path).
//
// Count, sum, min, and max in snapshots are derived from the buckets
// (geometric-midpoint sum, bucket-bound extremes), so quantiles keep the
// same within-one-binade resolution as the static histograms.
//
// set_telemetry_enabled(false) turns every observe into a single relaxed
// load + branch, for measuring the plane's own overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace aoadmm::obs {

/// Process-wide gate over windowed recording (default on). Reads are a
/// relaxed atomic load on the observe path.
void set_telemetry_enabled(bool enabled) noexcept;
bool telemetry_enabled() noexcept;

class WindowedHistogram {
 public:
  static constexpr std::size_t kSlices = 16;

  /// Observations older than `window_seconds` fall out of snapshots. The
  /// window is divided into kSlices rotation slices, so expiry granularity
  /// is window_seconds / kSlices.
  explicit WindowedHistogram(double window_seconds = 60.0);

  double window_seconds() const noexcept { return window_seconds_; }

  /// Record `v` now. Honors the telemetry_enabled gate.
  void observe(double v) noexcept;

  /// Record `v` at an explicit steady-clock timestamp — the hot-path entry
  /// when the caller already read the clock (latency measurement code
  /// has), and the deterministic entry for tests.
  void observe_at(double v, std::int64_t now_ns) noexcept;

  /// Merge the slices inside the trailing window ending now.
  HistogramSnapshot snapshot() const;
  /// Same, with an explicit "now" (tests).
  HistogramSnapshot snapshot_at(std::int64_t now_ns) const;

 private:
  struct Slice {
    /// Which time slice (now_ns / slice_ns) this data belongs to; ~0 when
    /// never written.
    std::atomic<std::uint64_t> tag{~std::uint64_t{0}};
    std::atomic<std::uint64_t> buckets[kHistogramBuckets]{};
  };

  double window_seconds_;
  std::int64_t slice_ns_;
  Slice slices_[kSlices];
};

/// The process-wide named windowed-histogram registry (leaked, like the
/// metrics registry, so handles stay valid forever). Registration is
/// idempotent per name; the first registration fixes the window length.
/// Call sites cache the returned reference in a static.
WindowedHistogram& windowed_histogram(const std::string& name,
                                      double window_seconds = 60.0);

/// All registered windowed histograms, sorted by name (for exporters).
std::vector<std::pair<std::string, WindowedHistogram*>> windowed_list();

/// Canonical windowed metric names recorded by the streaming stack.
inline constexpr const char* kWindowQuerySeconds = "stream/query_seconds";
inline constexpr const char* kWindowRefreshSeconds = "stream/refresh_seconds";
inline constexpr const char* kWindowIngestBatchSize =
    "stream/ingest_batch_size";

}  // namespace aoadmm::obs
