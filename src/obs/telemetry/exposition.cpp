#include "obs/telemetry/exposition.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/window_quantiles.hpp"
#include "testing/fault_injection.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

#if defined(_WIN32)
#define AOADMM_HAVE_SOCKETS 0
#else
#define AOADMM_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace aoadmm::obs {
namespace {

struct TelemetryMetrics {
  Counter scrapes;
  Counter slo_breaches;
  Counter file_write_failures;

  static const TelemetryMetrics& get() {
    static const TelemetryMetrics m = [] {
      auto& reg = MetricsRegistry::global();
      TelemetryMetrics out;
      out.scrapes = reg.counter("telemetry/scrapes");
      out.slo_breaches = reg.counter("telemetry/slo_query_p99_breaches");
      out.file_write_failures = reg.counter("telemetry/file_write_failures");
      return out;
    }();
    return m;
  }
};

void write_prom_value(std::ostream& out, double v) {
  if (std::isnan(v)) {
    out << "NaN";
  } else if (std::isinf(v)) {
    out << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

double snapshot_gauge(const RegistrySnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

double snapshot_counter(const RegistrySnapshot& snap,
                        const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

/// Run the pre-scrape hook and the SLO check that precede every rendered
/// exposition (HTTP scrape or file rewrite).
void pre_render(const ExpositionOptions& opts) {
  if (opts.pre_scrape) {
    opts.pre_scrape();
  }
  TelemetryMetrics::get().scrapes.add(1);
  if (opts.slo_query_p99_seconds > 0) {
    const HistogramSnapshot w =
        windowed_histogram(kWindowQuerySeconds).snapshot();
    if (w.count > 0 &&
        histogram_quantile(w, 0.99) > opts.slo_query_p99_seconds) {
      TelemetryMetrics::get().slo_breaches.add(1);
    }
  }
}

}  // namespace

std::string prometheus_name(const std::string& name, const char* prefix) {
  std::string out = prefix;
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void write_prometheus(std::ostream& out) {
  const RegistrySnapshot snap = MetricsRegistry::global().snapshot();

  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_name(name) + "_total";
    out << "# TYPE " << p << " counter\n" << p << " ";
    write_prom_value(out, value);
    out << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " ";
    write_prom_value(out, value);
    out << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) {
        continue;  // elide empty buckets; `le` is cumulative so this is valid
      }
      cum += h.buckets[b];
      out << p << "_bucket{le=\"";
      write_prom_value(out, histogram_bucket_upper(b));
      out << "\"} " << cum << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << p << "_sum ";
    write_prom_value(out, h.sum);
    out << "\n" << p << "_count " << h.count << "\n";
    // The interpolated quantile set every exporter shares, as gauges
    // (Prometheus forbids mixing histogram and summary under one name).
    const HistogramQuantiles q = histogram_quantiles(h);
    const std::pair<const char*, double> quants[] = {
        {"p50", q.p50}, {"p95", q.p95}, {"p99", q.p99}, {"p999", q.p999}};
    for (const auto& [suffix, value] : quants) {
      out << "# TYPE " << p << "_" << suffix << " gauge\n"
          << p << "_" << suffix << " ";
      write_prom_value(out, value);
      out << "\n";
    }
  }

  // Windowed histograms: trailing-window quantiles as a summary family.
  for (const auto& [name, hist] : windowed_list()) {
    const HistogramSnapshot w = hist->snapshot();
    const HistogramQuantiles q = histogram_quantiles(w);
    const std::string p = prometheus_name(name, "aoadmm_window_");
    out << "# TYPE " << p << " summary\n";
    const std::pair<const char*, double> quants[] = {
        {"0.5", q.p50}, {"0.95", q.p95}, {"0.99", q.p99}, {"0.999", q.p999}};
    for (const auto& [label, value] : quants) {
      out << p << "{quantile=\"" << label << "\"} ";
      write_prom_value(out, value);
      out << "\n";
    }
    out << p << "_sum ";
    write_prom_value(out, w.sum);
    out << "\n" << p << "_count " << w.count << "\n";
  }
}

bool write_healthz(std::ostream& out, const ExpositionOptions& opts) {
  using detail::json_number;
  const RegistrySnapshot snap = MetricsRegistry::global().snapshot();
  const double epoch = snapshot_gauge(snap, "stream/snapshot_epoch");
  const double staleness = snapshot_gauge(snap, "stream/staleness_seconds");
  const bool has_model = epoch > 0;
  const bool stale = opts.stale_after_seconds > 0 &&
                     (!has_model || !(staleness <= opts.stale_after_seconds));

  // Degraded is distinct from stale: the pipeline is still serving its last
  // good snapshot but something upstream needs attention (supervisor
  // breaker open, WAL replay in progress, quarantined batches pending).
  // Stale answers 503 — the model is too old to trust; degraded answers 200
  // — by design the last good model keeps serving while the supervisor
  // backs off. The signals arrive as gauges because this layer reads only
  // the registry and cannot depend on stream/.
  const std::pair<const char*, const char*> degraded_signals[] = {
      {"breaker_open", "robust/stream_breaker_open"},
      {"wal_replaying", "stream/wal_replaying"},
      {"quarantine_pending", "stream/quarantine_pending"}};
  std::string degraded_reasons;
  for (const auto& [reason, gauge] : degraded_signals) {
    if (snapshot_gauge(snap, gauge) > 0) {
      if (!degraded_reasons.empty()) {
        degraded_reasons += ", ";
      }
      degraded_reasons += '"';
      degraded_reasons += reason;
      degraded_reasons += '"';
    }
  }
  const bool degraded = !degraded_reasons.empty();
  const bool healthy = !stale;

  out << "{\"status\": \""
      << (!healthy ? "stale"
                   : (degraded ? "degraded"
                               : (has_model ? "ok" : "no_model")))
      << "\", \"degraded_reasons\": [" << degraded_reasons
      << "], \"model_staleness_seconds\": ";
  json_number(out, has_model ? staleness
                             : std::numeric_limits<double>::infinity());
  out << ", \"snapshot_epoch\": " << static_cast<std::uint64_t>(epoch);

  out << ", \"last_refresh\": {\"converged\": "
      << (snapshot_gauge(snap, "stream/last_refresh_converged") > 0 ? "true"
                                                                    : "false")
      << ", \"relative_error\": ";
  json_number(out, snapshot_gauge(snap, "stream/last_refresh_error"));
  out << ", \"outer_iterations\": "
      << static_cast<std::uint64_t>(
             snapshot_gauge(snap, "stream/last_refresh_outer_iterations"))
      << "}";

  const std::pair<const char*, const char*> recovery_counters[] = {
      {"cholesky_jitter", "robust/cholesky_jitter"},
      {"admm_restarts", "robust/admm_restarts"},
      {"admm_abandoned", "robust/admm_abandoned"},
      {"mttkrp_retries", "robust/mttkrp_retries"},
      {"factor_rollbacks", "robust/factor_rollbacks"},
      {"checkpoint_write_failures", "robust/checkpoint_write_failures"},
      {"stream_refresh_failures", "robust/stream_refresh_failures"},
      {"stream_breaker_trips", "robust/stream_breaker_trips"},
      {"stream_quarantined_batches", "robust/stream_quarantined_batches"},
      {"stream_wal_write_failures", "robust/stream_wal_write_failures"}};
  out << ", \"recoveries\": {";
  double total_recoveries = 0;
  for (const auto& [key, counter] : recovery_counters) {
    const double v = snapshot_counter(snap, counter);
    total_recoveries += v;
    out << "\"" << key << "\": " << static_cast<std::uint64_t>(v) << ", ";
  }
  out << "\"total\": " << static_cast<std::uint64_t>(total_recoveries) << "}";

  const HistogramSnapshot w =
      windowed_histogram(kWindowQuerySeconds).snapshot();
  const HistogramQuantiles q = histogram_quantiles(w);
  out << ", \"window\": {\"query_count\": " << w.count
      << ", \"query_p50_seconds\": ";
  json_number(out, q.p50);
  out << ", \"query_p95_seconds\": ";
  json_number(out, q.p95);
  out << ", \"query_p99_seconds\": ";
  json_number(out, q.p99);
  out << ", \"query_p999_seconds\": ";
  json_number(out, q.p999);
  out << "}";

  out << ", \"slo\": {\"query_p99_target_seconds\": ";
  json_number(out, opts.slo_query_p99_seconds);
  out << ", \"query_p99_breaches\": "
      << static_cast<std::uint64_t>(
             snapshot_counter(snap, "telemetry/slo_query_p99_breaches"))
      << "}";

  out << ", \"scrapes\": "
      << static_cast<std::uint64_t>(
             snapshot_counter(snap, "telemetry/scrapes"))
      << "}\n";
  return healthy;
}

// ---------------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------------

struct ExpositionServer::Impl {
  ExpositionOptions opts;
  std::atomic<bool> running{false};
  std::atomic<std::uint16_t> port{0};
  std::atomic<std::uint64_t> requests{0};
  int listen_fd = -1;
  std::thread thread;
};

ExpositionServer::ExpositionServer(ExpositionOptions opts) : impl_(new Impl()) {
  impl_->opts = std::move(opts);
}

ExpositionServer::~ExpositionServer() {
  stop();
  delete impl_;
}

bool ExpositionServer::running() const noexcept {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t ExpositionServer::port() const noexcept {
  return impl_->port.load(std::memory_order_acquire);
}

std::uint64_t ExpositionServer::requests() const noexcept {
  return impl_->requests.load(std::memory_order_relaxed);
}

#if AOADMM_HAVE_SOCKETS

void ExpositionServer::start() {
  AOADMM_CHECK_MSG(!running(), "exposition server already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  AOADMM_CHECK_MSG(fd >= 0, "exposition server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed off-host
  addr.sin_port = htons(impl_->opts.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw Error("exposition server: cannot bind 127.0.0.1:" +
                std::to_string(impl_->opts.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  impl_->port.store(ntohs(bound.sin_port), std::memory_order_release);
  impl_->listen_fd = fd;
  impl_->running.store(true, std::memory_order_release);
  impl_->thread = std::thread([this] { serve_loop(); });
  AOADMM_LOG_INFO << "telemetry: serving /metrics and /healthz on 127.0.0.1:"
                  << port();
}

void ExpositionServer::stop() {
  if (!impl_->running.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  // Unblock accept(): shutdown + close the listening socket.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  if (impl_->thread.joinable()) {
    impl_->thread.join();
  }
}

void ExpositionServer::serve_loop() {
  const int listen_fd = impl_->listen_fd;
  while (impl_->running.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      continue;  // stop() closed the socket, or a transient accept error
    }
    // Read the request head (we only need the request line).
    char buf[2048];
    std::string req;
    while (req.find("\r\n") == std::string::npos && req.size() < 16384) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      req.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t sp1 = req.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? "" : req.substr(0, sp1);
    const std::string path =
        sp2 == std::string::npos ? "" : req.substr(sp1 + 1, sp2 - sp1 - 1);

    std::string status = "200 OK";
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::ostringstream body;
    if (method != "GET") {
      status = "405 Method Not Allowed";
      body << "only GET is supported\n";
    } else if (path == "/metrics" || path == "/") {
      pre_render(impl_->opts);
      write_prometheus(body);
    } else if (path == "/healthz") {
      pre_render(impl_->opts);
      content_type = "application/json";
      if (!write_healthz(body, impl_->opts)) {
        status = "503 Service Unavailable";
      }
    } else {
      status = "404 Not Found";
      body << "routes: /metrics /healthz\n";
    }

    const std::string payload = body.str();
    std::ostringstream resp;
    resp << "HTTP/1.1 " << status << "\r\nContent-Type: " << content_type
         << "\r\nContent-Length: " << payload.size()
         << "\r\nConnection: close\r\n\r\n"
         << payload;
    const std::string wire = resp.str();
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::send(client, wire.data() + off, wire.size() - off,
#if defined(MSG_NOSIGNAL)
                               MSG_NOSIGNAL
#else
                               0
#endif
      );
      if (n <= 0) {
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    ::close(client);
    impl_->requests.fetch_add(1, std::memory_order_relaxed);
  }
}

#else  // !AOADMM_HAVE_SOCKETS

void ExpositionServer::start() {
  throw Error(
      "exposition server: sockets unavailable on this platform; use "
      "--telemetry-file");
}
void ExpositionServer::stop() {}
void ExpositionServer::serve_loop() {}

#endif

// ---------------------------------------------------------------------------
// File writer
// ---------------------------------------------------------------------------

struct TelemetryFileWriter::Impl {
  std::string path;
  double period_seconds;
  ExpositionOptions opts;
  std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  std::thread thread;
};

TelemetryFileWriter::TelemetryFileWriter(std::string path,
                                         double period_seconds,
                                         ExpositionOptions opts)
    : impl_(new Impl()) {
  AOADMM_CHECK_MSG(period_seconds > 0,
                   "telemetry file writer needs a positive period");
  impl_->path = std::move(path);
  impl_->period_seconds = period_seconds;
  impl_->opts = std::move(opts);
}

TelemetryFileWriter::~TelemetryFileWriter() {
  stop();
  delete impl_;
}

const std::string& TelemetryFileWriter::path() const noexcept {
  return impl_->path;
}

void TelemetryFileWriter::write_now() {
  pre_render(impl_->opts);
  // Every failure mode — unwritable tmp, short write (disk full), failed
  // rename, injected kTelemetryWrite fault — degrades to a counted skip.
  // The previous generation of the file stays intact and the writer thread
  // keeps its cadence; telemetry must never wedge the pipeline it observes.
  const auto atomically = [](const std::string& path,
                             const std::string& content) {
    const auto fail = [&path](const char* why) {
      TelemetryMetrics::get().file_write_failures.add(1);
      AOADMM_LOG_WARN << "telemetry: " << why << " for " << path
                      << " (keeping previous file)";
    };
    const std::string tmp = path + ".tmp";
    if (testing::maybe_fail_telemetry_write()) {
      std::remove(tmp.c_str());
      fail("injected write failure");
      return;
    }
    {
      std::ofstream out(tmp, std::ios::out | std::ios::trunc);
      if (!out) {
        fail("cannot open tmp file");
        return;
      }
      out << content;
      out.flush();
      if (!out) {
        out.close();
        std::remove(tmp.c_str());
        fail("short write");
        return;
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      fail("rename failed");
      return;
    }
  };
  std::ostringstream prom;
  write_prometheus(prom);
  atomically(impl_->path, prom.str());
  std::ostringstream health;
  write_healthz(health, impl_->opts);
  atomically(impl_->path + ".health", health.str());
}

void TelemetryFileWriter::start() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  if (impl_->running) {
    return;
  }
  impl_->running = true;
  impl_->thread = std::thread([this] {
    std::unique_lock<std::mutex> lk(impl_->mutex);
    while (impl_->running) {
      lk.unlock();
      write_now();
      lk.lock();
      impl_->cv.wait_for(
          lk, std::chrono::duration<double>(impl_->period_seconds),
          [this] { return !impl_->running; });
    }
  });
}

void TelemetryFileWriter::stop() {
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    if (!impl_->running && !impl_->thread.joinable()) {
      return;
    }
    impl_->running = false;
    impl_->cv.notify_all();
  }
  if (impl_->thread.joinable()) {
    impl_->thread.join();
  }
  write_now();  // leave fresh files behind even for sub-period runs
}

}  // namespace aoadmm::obs
