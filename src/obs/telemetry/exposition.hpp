// Runtime exposition endpoint: a dependency-free embedded HTTP server (and
// an equivalent periodic file writer for socketless environments) serving
// the process's metrics in Prometheus text format plus a /healthz JSON
// view.
//
// Routes:
//   GET /metrics  -> Prometheus text exposition (version 0.0.4): every
//                    registry counter (`aoadmm_<name>_total`), gauge, and
//                    histogram (`_bucket{le=}`/`_sum`/`_count` plus
//                    interpolated p50/p95/p99/p999 gauges), and every
//                    windowed histogram as a summary with quantile labels
//                    (`aoadmm_window_<name>{quantile="0.99"}`) over its
//                    trailing window.
//   GET /healthz  -> one JSON object: model staleness, last-refresh
//                    convergence, recovery counts, SLO breach counters.
//                    HTTP 200 while healthy, 503 once the model is staler
//                    than `stale_after_seconds`.
//
// The server binds loopback only, handles one request per connection on a
// single background thread, and reads the registry exclusively through
// RegistrySnapshot — a slow or hostile scraper can never block hot-path
// writers. Scrapes are counted under telemetry/scrapes.
//
// `--telemetry-file` mode (TelemetryFileWriter) rewrites <path> with the
// same Prometheus text and <path>.health with the same healthz JSON every
// period, atomically (write to <path>.tmp, rename).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace aoadmm::obs {

struct ExpositionOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with ExpositionServer::port()).
  std::uint16_t port = 0;

  /// healthz reports "degraded" (and HTTP 503) when the served model is
  /// staler than this many seconds. 0 disables the check.
  double stale_after_seconds = 0;

  /// SLO target for the windowed query p99. When > 0, every scrape that
  /// observes a trailing-window p99 above it bumps the
  /// telemetry/slo_query_p99_breaches counter. 0 disables.
  double slo_query_p99_seconds = 0;

  /// Invoked before rendering each scrape or file rewrite — the hook the
  /// embedder uses to refresh gauges that must be read live (e.g. copy
  /// ModelServer::staleness_seconds into stream/staleness_seconds).
  std::function<void()> pre_scrape;
};

/// Render the full Prometheus exposition (registry + windowed summaries)
/// to `out`. Also usable standalone (tests, file mode).
void write_prometheus(std::ostream& out);

/// Render the healthz JSON object. Returns true when healthy per `opts`.
bool write_healthz(std::ostream& out, const ExpositionOptions& opts);

/// Sanitize a registry metric name into a Prometheus metric name:
/// `stream/query_seconds` -> `aoadmm_stream_query_seconds` (with `prefix`
/// prepended; every non-[a-zA-Z0-9_] byte becomes '_').
std::string prometheus_name(const std::string& name,
                            const char* prefix = "aoadmm_");

class ExpositionServer {
 public:
  explicit ExpositionServer(ExpositionOptions opts = {});
  ~ExpositionServer();  // stops and joins
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Bind, listen, and spawn the serving thread. Throws on bind failure.
  void start();
  /// Stop serving and join the thread. Idempotent.
  void stop();

  bool running() const noexcept;
  /// The actually bound port (resolves port 0); valid after start().
  std::uint16_t port() const noexcept;
  /// Requests answered so far (any route).
  std::uint64_t requests() const noexcept;

 private:
  void serve_loop();
  struct Impl;
  Impl* impl_;
};

/// Socketless twin of the server: a background thread that rewrites
/// `path` (Prometheus text) and `path + ".health"` (healthz JSON) every
/// `period_seconds`, atomically via a .tmp + rename. One final rewrite
/// happens on stop, so short runs always leave fresh files behind.
class TelemetryFileWriter {
 public:
  TelemetryFileWriter(std::string path, double period_seconds,
                      ExpositionOptions opts = {});
  ~TelemetryFileWriter();
  TelemetryFileWriter(const TelemetryFileWriter&) = delete;
  TelemetryFileWriter& operator=(const TelemetryFileWriter&) = delete;

  void start();
  void stop();
  /// Rewrite both files once, immediately (also what the thread calls).
  void write_now();
  const std::string& path() const noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace aoadmm::obs
