#include "obs/telemetry/window_quantiles.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "util/error.hpp"

namespace aoadmm::obs {
namespace {

std::atomic<bool> g_telemetry_enabled{true};

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Representative value of one bucket for the derived sum: the geometric
/// midpoint of its bounds, degrading gracefully at the open ends.
double bucket_midpoint(std::size_t b) noexcept {
  if (b == 0) {
    return 0;  // <= 0 observations contribute nothing to the sum
  }
  const double hi = histogram_bucket_upper(b);
  if (b == 1) {
    return hi / 2;
  }
  const double lo = histogram_bucket_upper(b - 1);
  if (b >= kHistogramBuckets - 1) {
    return lo;  // overflow: clamp to the finite lower bound
  }
  return lo * 1.5;  // midpoint of [lo, 2*lo)
}

}  // namespace

void set_telemetry_enabled(bool enabled) noexcept {
  g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

bool telemetry_enabled() noexcept {
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(double window_seconds)
    : window_seconds_(window_seconds) {
  AOADMM_CHECK_MSG(window_seconds > 0,
                   "windowed histogram needs a positive window");
  slice_ns_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(window_seconds * 1e9 /
                                   static_cast<double>(kSlices)));
}

void WindowedHistogram::observe(double v) noexcept {
  if (!telemetry_enabled()) {
    return;
  }
  observe_at(v, steady_now_ns());
}

void WindowedHistogram::observe_at(double v, std::int64_t now_ns) noexcept {
  if (!telemetry_enabled()) {
    return;
  }
  const auto tick = static_cast<std::uint64_t>(now_ns / slice_ns_);
  Slice& s = slices_[tick % kSlices];
  std::uint64_t tag = s.tag.load(std::memory_order_relaxed);
  if (tag != tick) {
    // The slice still holds data from kSlices ticks ago (or is virgin).
    // One writer re-tags it and zeroes the counters; stragglers from the
    // dying tick may smear a few counts into the new one — acceptable for
    // monitoring, and the price of a lock-free hot path.
    if (s.tag.compare_exchange_strong(tag, tick, std::memory_order_relaxed)) {
      for (auto& b : s.buckets) {
        b.store(0, std::memory_order_relaxed);
      }
    }
  }
  s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot WindowedHistogram::snapshot() const {
  return snapshot_at(steady_now_ns());
}

HistogramSnapshot WindowedHistogram::snapshot_at(std::int64_t now_ns) const {
  HistogramSnapshot out;
  const auto tick = static_cast<std::uint64_t>(now_ns / slice_ns_);
  const std::uint64_t oldest = tick >= kSlices - 1 ? tick - (kSlices - 1) : 0;
  for (const Slice& s : slices_) {
    const std::uint64_t tag = s.tag.load(std::memory_order_relaxed);
    if (tag == ~std::uint64_t{0} || tag < oldest || tag > tick) {
      continue;  // never written, expired, or (clock skew) future
    }
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  // Derive the scalar fields from the buckets: the hot path writes exactly
  // one counter, so count/sum/min/max are reconstructions at bucket
  // resolution, which is all the quantile math needs.
  double min = 0;
  double max = 0;
  bool any = false;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (out.buckets[b] == 0) {
      continue;
    }
    out.count += out.buckets[b];
    out.sum += static_cast<double>(out.buckets[b]) * bucket_midpoint(b);
    if (!any) {
      min = b <= 1 ? 0 : histogram_bucket_upper(b - 1);
      any = true;
    }
    max = b >= kHistogramBuckets - 1 ? histogram_bucket_upper(b - 1)
                                     : histogram_bucket_upper(b);
  }
  out.min = min;
  out.max = max;
  return out;
}

namespace {

struct WindowRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> byname;
};

WindowRegistry& window_registry() {
  // Leaked for the same reason as MetricsRegistry::global(): worker
  // threads may observe during post-main teardown.
  static auto* r = new WindowRegistry();
  return *r;
}

}  // namespace

WindowedHistogram& windowed_histogram(const std::string& name,
                                      double window_seconds) {
  WindowRegistry& reg = window_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.byname.find(name);
  if (it == reg.byname.end()) {
    it = reg.byname
             .emplace(name, std::make_unique<WindowedHistogram>(window_seconds))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, WindowedHistogram*>> windowed_list() {
  WindowRegistry& reg = window_registry();
  std::vector<std::pair<std::string, WindowedHistogram*>> out;
  const std::lock_guard<std::mutex> lock(reg.mutex);
  out.reserve(reg.byname.size());
  for (const auto& [name, hist] : reg.byname) {
    out.emplace_back(name, hist.get());
  }
  return out;
}

}  // namespace aoadmm::obs
