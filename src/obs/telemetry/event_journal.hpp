// Structured lifecycle event journal: an append-only, size-bounded,
// rotating JSONL sink for the streaming stack's lifecycle events.
//
// One line per event:
//
//   {"seq": 12, "ts": 1723180000.123456, "event": "refresh_finished",
//    "solve_id": 3, "batch_id": 7, "epoch": 3,
//    "outer_iterations": 14, "converged": true, ...}
//
// `seq` is a process-wide monotonic ordinal (survives rotation, so a
// consumer can detect gaps), `ts` is wall-clock seconds since the Unix
// epoch, and the three trace fields carry the event's TraceContext (zero
// when a stage has no linkage — e.g. batch_ingested has no solve yet).
// Event-specific fields follow, built with the Fields fluent helper.
//
// Rotation: when the active file would exceed max_bytes, it is renamed to
// <path>.1 (shifting older generations up, dropping the one past
// max_files) and a fresh file is opened. Appends are serialized by a
// mutex — events are per-batch/per-refresh, not per-query, so the journal
// is nowhere near any hot path.
//
// Wiring: the library emits through the process-global sink when one is
// installed (install_global); with none installed every emit is a single
// relaxed atomic load. Tools own the journal object and install/uninstall
// it around their run.
#pragma once

#include <cstdint>
#include <string>

#include "obs/telemetry/trace_context.hpp"

namespace aoadmm::obs {

enum class EventKind {
  kBatchIngested,
  kRefreshStarted,
  kRefreshFinished,
  kSnapshotPublished,
  kRecovery,
  kCheckpointWritten,
  // Fault-tolerance lifecycle (stream/wal.hpp, stream/supervisor.hpp).
  kRefreshFailed,
  kBreakerTripped,
  kBreakerReset,
  kBatchQuarantined,
  kWalRecovered,
  kWalCheckpoint,
  kWalWriteFailed,
};

const char* to_string(EventKind k) noexcept;

class EventJournal {
 public:
  struct Options {
    /// Rotate the active file before an append would push it past this.
    std::uint64_t max_bytes = 8u << 20;
    /// Rotated generations kept (<path>.1 .. <path>.N). 0 = no rotation:
    /// the active file is truncated and restarted when full.
    unsigned max_files = 2;
  };

  /// Extra key/value payload of one event, pre-rendered as JSON fragments.
  class Fields {
   public:
    Fields& num(const char* key, double v);
    Fields& num(const char* key, std::uint64_t v);
    Fields& str(const char* key, const std::string& v);
    Fields& boolean(const char* key, bool v);

   private:
    friend class EventJournal;
    std::string rendered_;  // ', "key": value' repeated
  };

  /// Opens `path` for appending (created if missing). Throws IoError when
  /// the file cannot be opened. (Two overloads rather than a default
  /// argument: GCC cannot brace-default a nested NSDMI class in-class.)
  explicit EventJournal(std::string path);
  EventJournal(std::string path, Options opts);
  ~EventJournal();
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Append one event line (thread-safe).
  void emit(EventKind kind, const TraceContext& ctx,
            const Fields& fields = {});

  const std::string& path() const noexcept { return path_; }
  std::uint64_t events_written() const noexcept;
  std::uint64_t rotations() const noexcept;
  /// Lines dropped because the sink could not take them (disk full,
  /// rotation reopen failure, injected kTelemetryWrite fault). A non-zero
  /// count means telemetry degraded; the pipeline itself never stops — the
  /// stream error state is cleared after every failed append so a recovered
  /// disk resumes journaling. Mirrored into telemetry/journal_write_failures.
  std::uint64_t write_failures() const noexcept;

  /// Process-global sink. install_global does NOT take ownership; pass
  /// nullptr to detach. The installer must keep the journal alive until
  /// detached.
  static EventJournal* global() noexcept;
  static void install_global(EventJournal* journal) noexcept;

 private:
  void rotate_locked();

  std::string path_;
  Options opts_;
  struct Impl;
  Impl* impl_;
};

/// Emit through the global sink iff one is installed (the library's
/// fire-and-forget entry point).
void journal_event(EventKind kind, const TraceContext& ctx,
                   const EventJournal::Fields& fields = {});

}  // namespace aoadmm::obs
