// Solve-scoped trace contexts for the live telemetry plane.
//
// A TraceContext causally links the three stages of the streaming
// lifecycle: the ingest batch that changed the tensor (batch_id, minted by
// StreamingTensor::apply), the refresh solve that consumed it (solve_id,
// minted by StreamingSolver::refresh), and the published model version a
// query is answered from (epoch, assigned by ModelServer::publish). The
// context is stamped on every RefreshReport, KruskalSnapshot,
// RecoveryEvent, and event-journal line, so "which ingest batch produced
// the model this query hit?" is answerable from the journal alone.
//
// Propagation is thread-local: StreamingSolver::refresh installs its
// context with a ScopedTraceContext before running the solver, and
// anything recorded underneath (recovery events, journal lines) picks it
// up via current_trace(). Code running outside any scope sees the
// all-zero (invalid) context and its records simply carry no linkage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace aoadmm::obs {

struct TraceContext {
  /// Refresh/solve that produced (or is producing) the model. 0 = none.
  std::uint64_t solve_id = 0;
  /// Last ingest batch applied before the solve started. 0 = none.
  std::uint64_t batch_id = 0;
  /// Published model version the solve resulted in. 0 = not published.
  std::uint64_t epoch = 0;

  bool valid() const noexcept {
    return solve_id != 0 || batch_id != 0 || epoch != 0;
  }
};

/// Process-wide monotonic id mints (first returned value is 1). Lock-free.
std::uint64_t next_solve_id() noexcept;
std::uint64_t next_batch_id() noexcept;

/// The calling thread's active context (all-zero outside any scope).
const TraceContext& current_trace() noexcept;

/// RAII installer for the thread-local context; restores the previous
/// context on destruction, so scopes nest.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) noexcept;
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Append `"solve_id": N, "batch_id": N, "epoch": N` (no braces, no
/// leading/trailing comma) — the shared spelling every exporter uses.
void write_trace_json_fields(std::ostream& out, const TraceContext& ctx);

/// `solve=N batch=N epoch=N` for logs.
std::string to_string(const TraceContext& ctx);

}  // namespace aoadmm::obs
