#include "obs/telemetry/event_journal.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"
#include "testing/fault_injection.hpp"
#include "util/error.hpp"

namespace aoadmm::obs {
namespace {

std::atomic<EventJournal*> g_journal{nullptr};
std::atomic<std::uint64_t> g_seq{1};

double wall_seconds_now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kBatchIngested:
      return "batch_ingested";
    case EventKind::kRefreshStarted:
      return "refresh_started";
    case EventKind::kRefreshFinished:
      return "refresh_finished";
    case EventKind::kSnapshotPublished:
      return "snapshot_published";
    case EventKind::kRecovery:
      return "recovery";
    case EventKind::kCheckpointWritten:
      return "checkpoint_written";
    case EventKind::kRefreshFailed:
      return "refresh_failed";
    case EventKind::kBreakerTripped:
      return "breaker_tripped";
    case EventKind::kBreakerReset:
      return "breaker_reset";
    case EventKind::kBatchQuarantined:
      return "batch_quarantined";
    case EventKind::kWalRecovered:
      return "wal_recovered";
    case EventKind::kWalCheckpoint:
      return "wal_checkpoint";
    case EventKind::kWalWriteFailed:
      return "wal_write_failed";
  }
  return "?";
}

EventJournal::Fields& EventJournal::Fields::num(const char* key, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  rendered_ += ", \"";
  rendered_ += detail::json_escape(key);
  rendered_ += "\": ";
  // JSON has no inf/nan literals; quote them like json_number does.
  if (std::isnan(v)) {
    rendered_ += "\"nan\"";
  } else if (std::isinf(v)) {
    rendered_ += v > 0 ? "\"inf\"" : "\"-inf\"";
  } else {
    rendered_ += buf;
  }
  return *this;
}

EventJournal::Fields& EventJournal::Fields::num(const char* key,
                                                std::uint64_t v) {
  rendered_ += ", \"";
  rendered_ += detail::json_escape(key);
  rendered_ += "\": ";
  rendered_ += std::to_string(v);
  return *this;
}

EventJournal::Fields& EventJournal::Fields::str(const char* key,
                                                const std::string& v) {
  rendered_ += ", \"";
  rendered_ += detail::json_escape(key);
  rendered_ += "\": \"";
  rendered_ += detail::json_escape(v);
  rendered_ += "\"";
  return *this;
}

EventJournal::Fields& EventJournal::Fields::boolean(const char* key, bool v) {
  rendered_ += ", \"";
  rendered_ += detail::json_escape(key);
  rendered_ += "\": ";
  rendered_ += v ? "true" : "false";
  return *this;
}

struct EventJournal::Impl {
  std::mutex mutex;
  std::ofstream out;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
  std::uint64_t rotations = 0;
  std::uint64_t write_failures = 0;
};

namespace {

/// Registered lazily so merely linking the journal does not touch the
/// registry; bumped on every dropped line.
Counter journal_failure_counter() {
  static const Counter c =
      MetricsRegistry::global().counter("telemetry/journal_write_failures");
  return c;
}

}  // namespace

EventJournal::EventJournal(std::string path)
    : EventJournal(std::move(path), Options{}) {}

EventJournal::EventJournal(std::string path, Options opts)
    : path_(std::move(path)), opts_(opts), impl_(new Impl()) {
  impl_->out.open(path_, std::ios::out | std::ios::app);
  AOADMM_CHECK_MSG(static_cast<bool>(impl_->out),
                   "event journal: cannot open " + path_);
  const auto pos = impl_->out.tellp();
  impl_->bytes = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
}

EventJournal::~EventJournal() {
  // Detach first so a concurrent emit cannot race the teardown.
  if (global() == this) {
    install_global(nullptr);
  }
  delete impl_;
}

std::uint64_t EventJournal::events_written() const noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->events;
}

std::uint64_t EventJournal::rotations() const noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->rotations;
}

std::uint64_t EventJournal::write_failures() const noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->write_failures;
}

void EventJournal::rotate_locked() {
  impl_->out.close();
  if (opts_.max_files == 0) {
    // No rotated generations: truncate in place.
    impl_->out.open(path_, std::ios::out | std::ios::trunc);
  } else {
    // Shift <path>.(N-1) -> <path>.N, ..., <path> -> <path>.1. Failures
    // (e.g. a generation that never existed) are benign.
    std::remove((path_ + "." + std::to_string(opts_.max_files)).c_str());
    for (unsigned g = opts_.max_files; g > 1; --g) {
      std::rename((path_ + "." + std::to_string(g - 1)).c_str(),
                  (path_ + "." + std::to_string(g)).c_str());
    }
    std::rename(path_.c_str(), (path_ + ".1").c_str());
    impl_->out.open(path_, std::ios::out | std::ios::trunc);
  }
  impl_->bytes = 0;
  ++impl_->rotations;
}

void EventJournal::emit(EventKind kind, const TraceContext& ctx,
                        const Fields& fields) {
  std::string line;
  line.reserve(128 + fields.rendered_.size());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", wall_seconds_now());
  line += "{\"seq\": ";
  line += std::to_string(g_seq.fetch_add(1, std::memory_order_relaxed));
  line += ", \"ts\": ";
  line += buf;
  line += ", \"event\": \"";
  line += to_string(kind);
  line += "\", \"solve_id\": ";
  line += std::to_string(ctx.solve_id);
  line += ", \"batch_id\": ";
  line += std::to_string(ctx.batch_id);
  line += ", \"epoch\": ";
  line += std::to_string(ctx.epoch);
  line += fields.rendered_;
  line += "}\n";

  const std::lock_guard<std::mutex> lock(impl_->mutex);
  // Telemetry must degrade, never wedge: any failure below — an injected
  // fault, a disk-full stream error, a failed rotation reopen — counts the
  // drop and clears the stream state so a recovered disk resumes. Nothing
  // here throws into the solver.
  const auto drop = [this] {
    ++impl_->write_failures;
    journal_failure_counter().add(1);
    impl_->out.clear();  // let the next emit try again
  };
  if (testing::maybe_fail_telemetry_write()) {
    drop();
    return;
  }
  if (impl_->bytes > 0 && impl_->bytes + line.size() > opts_.max_bytes) {
    rotate_locked();
  }
  if (!impl_->out) {
    drop();
    return;
  }
  impl_->out << line;
  impl_->out.flush();
  if (!impl_->out) {
    drop();
    return;
  }
  impl_->bytes += line.size();
  ++impl_->events;
}

EventJournal* EventJournal::global() noexcept {
  return g_journal.load(std::memory_order_acquire);
}

void EventJournal::install_global(EventJournal* journal) noexcept {
  g_journal.store(journal, std::memory_order_release);
}

void journal_event(EventKind kind, const TraceContext& ctx,
                   const EventJournal::Fields& fields) {
  EventJournal* j = EventJournal::global();
  if (j != nullptr) {
    j->emit(kind, ctx, fields);
  }
}

}  // namespace aoadmm::obs
