#include "obs/telemetry/trace_context.hpp"

#include <atomic>
#include <cstdio>
#include <ostream>

namespace aoadmm::obs {
namespace {

std::atomic<std::uint64_t> g_next_solve{1};
std::atomic<std::uint64_t> g_next_batch{1};

TraceContext& thread_trace() noexcept {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace

std::uint64_t next_solve_id() noexcept {
  return g_next_solve.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_batch_id() noexcept {
  return g_next_batch.fetch_add(1, std::memory_order_relaxed);
}

const TraceContext& current_trace() noexcept { return thread_trace(); }

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) noexcept
    : saved_(thread_trace()) {
  thread_trace() = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { thread_trace() = saved_; }

void write_trace_json_fields(std::ostream& out, const TraceContext& ctx) {
  out << "\"solve_id\": " << ctx.solve_id << ", \"batch_id\": " << ctx.batch_id
      << ", \"epoch\": " << ctx.epoch;
}

std::string to_string(const TraceContext& ctx) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "solve=%llu batch=%llu epoch=%llu",
                static_cast<unsigned long long>(ctx.solve_id),
                static_cast<unsigned long long>(ctx.batch_id),
                static_cast<unsigned long long>(ctx.epoch));
  return buf;
}

}  // namespace aoadmm::obs
