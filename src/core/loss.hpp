// Pluggable data-fidelity losses for the generalized AO-ADMM of the
// framework paper (Huang/Sidiropoulos/Liavas, PAPERS.md): the factorization
// objective is  Σ_j g(x_j, m_j) + Σ_m r_m(A_m)  where g is any scalar loss
// with a cheap proximal operator. The classical Frobenius CPD is the
// special case g(x, t) = ½(t − x)² over ALL cells, which the solver serves
// through the normal-equations fast path (MTTKRP + one Cholesky per mode,
// Algorithm 1). Every other loss — and Frobenius restricted to the observed
// entries (the missing-value mask) — takes the extra ADMM split t = Bh of
// the framework paper: the row subproblem solves a ρ-independent system
// (BᵀB + I) once and applies g's prox elementwise per iteration
// (core/loss_solve.cpp).
//
// Unobserved (implicit-zero) cells: Frobenius counts them quadratically
// (fast path). KL counts them exactly through a linear term — for x = 0 the
// loss t − x·log t degenerates to t, so the unobserved part of the
// objective is slope·Σ_unobs m, handled in closed form from factor column
// sums (zero_fill_slope). Huber and ℓ1 are defined over the observed
// entries only (they exist to absorb outliers in the data you actually
// have; an implicit zero is not an observation).
#pragma once

#include <memory>
#include <string>

#include "util/types.hpp"

namespace aoadmm {

/// The loss menu. Mirrors the framework paper's examples (§ "losses other
/// than least squares"): least squares, Kullback–Leibler divergence for
/// count data, Huber and ℓ1 for outlier-contaminated data.
enum class LossKind {
  kFrobenius,
  /// Generalized KL divergence g(x, t) = t − x·log t (+ const), the Poisson
  /// maximum-likelihood loss for count tensors. Requires x ≥ 0, t ≥ 0.
  kKL,
  /// Huber: quadratic within δ of the data, linear beyond — robust to
  /// outliers while staying smooth.
  kHuber,
  /// ℓ1: g(x, t) = |t − x|, maximally outlier-robust.
  kL1,
};

/// Parse "frobenius" | "kl" | "huber" | "l1" (throws InvalidArgument
/// otherwise).
LossKind parse_loss_kind(const std::string& s);
const char* to_string(LossKind k) noexcept;

struct LossSpec {
  LossKind kind = LossKind::kFrobenius;
  /// Transition point of the Huber loss (ignored by the other kinds).
  real_t huber_delta = 1;
  /// Missing-value mask: restrict the data-fidelity term to the stored
  /// non-zeros, treating absent cells as unobserved rather than zero.
  /// Frobenius/KL honor it; Huber and ℓ1 are observed-only by definition
  /// (see make_loss).
  bool masked = false;
};

/// Parse a full CLI loss spelling: KIND[:PARAM][:masked], e.g. "frobenius",
/// "kl:masked", "huber:0.5", "l1". PARAM is huber_delta and only valid for
/// huber. Round-trips with to_cli_string. Throws InvalidArgument on any
/// other spelling.
LossSpec parse_loss_spec(const std::string& s);
/// Canonical spelling of `spec`, parseable by parse_loss_spec.
std::string to_cli_string(const LossSpec& spec);

/// One scalar data-fidelity term g(x, ·). Stateless and shared across
/// threads; all methods must be safe to call concurrently.
class Loss {
 public:
  virtual ~Loss() = default;

  /// True when the objective is ½‖X − M‖² over every cell of the tensor:
  /// the solver then runs the Frobenius normal-equations fast path and none
  /// of the other methods are consulted on the hot path.
  virtual bool quadratic() const { return false; }

  /// True when unobserved cells contribute nothing to the objective.
  virtual bool masked() const { return true; }

  /// Slope of g(0, t) in t when the loss is linear there — the coefficient
  /// of the closed-form unobserved-cell term (KL: 1). Only consulted when
  /// !masked().
  virtual real_t zero_fill_slope() const { return 0; }

  /// prox_{g(x,·)/ρ}(v) = argmin_t g(x, t) + ρ/2 (t − v)².
  virtual real_t prox(real_t x, real_t v, real_t rho) const = 0;

  /// g(x, t), for objective reporting. Implementations clamp t into the
  /// loss's domain (KL: t ≥ 0) so a transient infeasible model value cannot
  /// poison the report with NaN.
  virtual real_t value(real_t x, real_t t) const = 0;

  /// Throws InvalidArgument when a data value is outside the loss's domain
  /// (KL: negative counts).
  virtual void check_datum(real_t x) const;

  virtual std::string name() const = 0;
};

/// Factory. Enforces per-kind parameter validity (huber_delta > 0) and the
/// observed-only semantics of Huber/ℓ1 (their masked flag is forced on).
std::unique_ptr<Loss> make_loss(const LossSpec& spec);

}  // namespace aoadmm
