#include "core/prox.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace aoadmm {

real_t ProxOperator::penalty(const Matrix&) const { return 0; }

namespace {

/// Uniform non-finite sanitization: a NaN/Inf input has no meaningful prox
/// image and would propagate through the dual update into every later
/// iterate, so all operators map it to 0 (the same policy simplex/l2ball
/// have always applied) before their own projection.
inline real_t sanitize(real_t v) noexcept {
  return std::isfinite(v) ? v : real_t{0};
}

class NoConstraint final : public ProxOperator {
 public:
  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t) const override {
    const std::size_t f = h.cols();
    real_t* __restrict p = h.data() + row_begin * f;
    const std::size_t n = (row_end - row_begin) * f;
    for (std::size_t k = 0; k < n; ++k) {
      p[k] = sanitize(p[k]);
    }
  }
  std::string name() const override { return "none"; }
};

class NonNegative final : public ProxOperator {
 public:
  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t) const override {
    const std::size_t f = h.cols();
    real_t* __restrict p = h.data() + row_begin * f;
    const std::size_t n = (row_end - row_begin) * f;
    for (std::size_t k = 0; k < n; ++k) {
      const real_t v = sanitize(p[k]);
      p[k] = v > 0 ? v : 0;
    }
  }
  std::string name() const override { return "nonneg"; }
  bool induces_sparsity() const override { return true; }
};

/// prox of λ‖·‖₁ at penalty ρ: soft threshold by λ/ρ.
class L1 final : public ProxOperator {
 public:
  explicit L1(real_t lambda) : lambda_(lambda) {}

  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t rho) const override {
    const real_t t = lambda_ / rho;
    const std::size_t f = h.cols();
    real_t* __restrict p = h.data() + row_begin * f;
    const std::size_t n = (row_end - row_begin) * f;
    for (std::size_t k = 0; k < n; ++k) {
      const real_t v = sanitize(p[k]);
      p[k] = v > t ? v - t : (v < -t ? v + t : 0);
    }
  }

  real_t penalty(const Matrix& h) const override {
    real_t s = 0;
    for (const real_t v : h.flat()) {
      s += std::abs(v);
    }
    return lambda_ * s;
  }

  std::string name() const override {
    return "l1(" + std::to_string(lambda_) + ")";
  }
  bool induces_sparsity() const override { return true; }

 private:
  real_t lambda_;
};

/// Non-negative soft threshold: max(v - λ/ρ, 0).
class NonNegativeL1 final : public ProxOperator {
 public:
  explicit NonNegativeL1(real_t lambda) : lambda_(lambda) {}

  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t rho) const override {
    const real_t t = lambda_ / rho;
    const std::size_t f = h.cols();
    real_t* __restrict p = h.data() + row_begin * f;
    const std::size_t n = (row_end - row_begin) * f;
    for (std::size_t k = 0; k < n; ++k) {
      const real_t v = sanitize(p[k]) - t;
      p[k] = v > 0 ? v : 0;
    }
  }

  real_t penalty(const Matrix& h) const override {
    real_t s = 0;
    for (const real_t v : h.flat()) {
      s += std::abs(v);
    }
    return lambda_ * s;
  }

  std::string name() const override {
    return "nnl1(" + std::to_string(lambda_) + ")";
  }
  bool induces_sparsity() const override { return true; }

 private:
  real_t lambda_;
};

/// prox of (λ/2)‖·‖²: shrink by 1/(1 + λ/ρ).
class Ridge final : public ProxOperator {
 public:
  explicit Ridge(real_t lambda) : lambda_(lambda) {}

  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t rho) const override {
    const real_t scale = real_t{1} / (real_t{1} + lambda_ / rho);
    const std::size_t f = h.cols();
    real_t* __restrict p = h.data() + row_begin * f;
    const std::size_t n = (row_end - row_begin) * f;
    for (std::size_t k = 0; k < n; ++k) {
      p[k] = sanitize(p[k]) * scale;
    }
  }

  real_t penalty(const Matrix& h) const override {
    real_t s = 0;
    for (const real_t v : h.flat()) {
      s += v * v;
    }
    return real_t{0.5} * lambda_ * s;
  }

  std::string name() const override {
    return "ridge(" + std::to_string(lambda_) + ")";
  }

 private:
  real_t lambda_;
};

/// Euclidean projection of each row onto the probability simplex
/// {x : x ≥ 0, Σx = 1} — the sort-based algorithm of Duchi et al. (2008).
class Simplex final : public ProxOperator {
 public:
  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t) const override {
    const std::size_t f = h.cols();
    std::vector<real_t> sorted(f);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      real_t* __restrict row = h.data() + i * f;
      for (std::size_t k = 0; k < f; ++k) {
        // Non-finite entries have no meaningful projection and would poison
        // the threshold; treat them as 0 so the output is always feasible.
        if (!std::isfinite(row[k])) {
          row[k] = 0;
        }
        sorted[k] = row[k];
      }
      std::sort(sorted.begin(), sorted.end(), std::greater<real_t>());
      real_t cumsum = 0;
      real_t theta = 0;
      std::size_t support = 0;
      for (std::size_t k = 0; k < f; ++k) {
        cumsum += sorted[k];
        const real_t candidate =
            (cumsum - real_t{1}) / static_cast<real_t>(k + 1);
        if (sorted[k] - candidate > 0) {
          theta = candidate;
          support = k + 1;
        }
      }
      (void)support;
      for (std::size_t k = 0; k < f; ++k) {
        const real_t v = row[k] - theta;
        row[k] = v > 0 ? v : 0;
      }
    }
  }

  std::string name() const override { return "simplex"; }
  bool induces_sparsity() const override { return true; }
};

/// Euclidean projection of each row onto the l2 ball of radius r: scale
/// rows whose norm exceeds r back to the sphere.
class L2Ball final : public ProxOperator {
 public:
  explicit L2Ball(real_t radius) : radius_(radius) {}

  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t) const override {
    const std::size_t f = h.cols();
    for (std::size_t i = row_begin; i < row_end; ++i) {
      real_t* __restrict row = h.data() + i * f;
      real_t norm_sq = 0;
      for (std::size_t k = 0; k < f; ++k) {
        // Zero out non-finite entries so the norm (and with it the whole
        // row) cannot be poisoned; the projection stays feasible.
        if (!std::isfinite(row[k])) {
          row[k] = 0;
        }
        norm_sq += row[k] * row[k];
      }
      if (norm_sq > radius_ * radius_) {
        const real_t scale = radius_ / std::sqrt(norm_sq);
        for (std::size_t k = 0; k < f; ++k) {
          row[k] *= scale;
        }
      }
    }
  }

  std::string name() const override {
    return "l2ball(" + std::to_string(radius_) + ")";
  }

 private:
  real_t radius_;
};

class Box final : public ProxOperator {
 public:
  Box(real_t lo, real_t hi) : lo_(lo), hi_(hi) {}

  void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
             real_t) const override {
    const std::size_t f = h.cols();
    real_t* __restrict p = h.data() + row_begin * f;
    const std::size_t n = (row_end - row_begin) * f;
    for (std::size_t k = 0; k < n; ++k) {
      // clamp propagates NaN (comparisons are false), so sanitize first.
      p[k] = std::clamp(sanitize(p[k]), lo_, hi_);
    }
  }

  std::string name() const override {
    return "box[" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
  }
  bool induces_sparsity() const override { return lo_ <= 0 && 0 <= hi_; }

 private:
  real_t lo_;
  real_t hi_;
};

}  // namespace

ConstraintKind parse_constraint_kind(const std::string& s) {
  if (s == "none") return ConstraintKind::kNone;
  if (s == "nonneg") return ConstraintKind::kNonNegative;
  if (s == "l1") return ConstraintKind::kL1;
  if (s == "nnl1") return ConstraintKind::kNonNegativeL1;
  if (s == "ridge") return ConstraintKind::kRidge;
  if (s == "simplex") return ConstraintKind::kSimplex;
  if (s == "box") return ConstraintKind::kBox;
  if (s == "l2ball") return ConstraintKind::kL2Ball;
  throw InvalidArgument("unknown constraint kind: " + s);
}

const char* to_string(ConstraintKind k) noexcept {
  switch (k) {
    case ConstraintKind::kNone:
      return "none";
    case ConstraintKind::kNonNegative:
      return "nonneg";
    case ConstraintKind::kL1:
      return "l1";
    case ConstraintKind::kNonNegativeL1:
      return "nnl1";
    case ConstraintKind::kRidge:
      return "ridge";
    case ConstraintKind::kSimplex:
      return "simplex";
    case ConstraintKind::kBox:
      return "box";
    case ConstraintKind::kL2Ball:
      return "l2ball";
  }
  return "?";
}

namespace {

std::vector<std::string> split_colons(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = s.find(':', start);
    parts.push_back(s.substr(start, colon - start));
    if (colon == std::string::npos) {
      break;
    }
    start = colon + 1;
  }
  return parts;
}

real_t parse_real(const std::string& token, const std::string& spec,
                  const char* what) {
  try {
    std::size_t consumed = 0;
    const real_t v = static_cast<real_t>(std::stod(token, &consumed));
    if (consumed != token.size()) {
      throw std::invalid_argument(token);
    }
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("constraint spec \"" + spec + "\": cannot parse \"" +
                          token + "\" as the " + what);
  }
}

}  // namespace

ConstraintSpec parse_constraint_spec(const std::string& s) {
  const std::vector<std::string> parts = split_colons(s);
  ConstraintSpec spec;
  spec.kind = parse_constraint_kind(parts[0]);
  const std::size_t nparams = parts.size() - 1;

  switch (spec.kind) {
    case ConstraintKind::kNone:
    case ConstraintKind::kNonNegative:
    case ConstraintKind::kSimplex:
      if (nparams != 0) {
        throw InvalidArgument("constraint spec \"" + s + "\": " + parts[0] +
                              " takes no parameters");
      }
      break;
    case ConstraintKind::kL1:
    case ConstraintKind::kNonNegativeL1:
    case ConstraintKind::kRidge:
      if (nparams > 1) {
        throw InvalidArgument("constraint spec \"" + s + "\": " + parts[0] +
                              " takes at most one parameter (the lambda)");
      }
      if (nparams == 1) {
        spec.lambda = parse_real(parts[1], s, "lambda");
      }
      break;
    case ConstraintKind::kBox:
      if (nparams != 0 && nparams != 2) {
        throw InvalidArgument("constraint spec \"" + s +
                              "\": box takes LO:HI or nothing");
      }
      if (nparams == 2) {
        spec.lo = parse_real(parts[1], s, "box lower bound");
        spec.hi = parse_real(parts[2], s, "box upper bound");
      }
      break;
    case ConstraintKind::kL2Ball:
      if (nparams > 1) {
        throw InvalidArgument("constraint spec \"" + s +
                              "\": l2ball takes at most one parameter (the "
                              "radius)");
      }
      if (nparams == 1) {
        spec.hi = parse_real(parts[1], s, "l2ball radius");
      }
      break;
  }
  return spec;
}

std::string to_cli_string(const ConstraintSpec& spec) {
  std::ostringstream os;
  os.precision(std::numeric_limits<real_t>::max_digits10);
  os << to_string(spec.kind);
  switch (spec.kind) {
    case ConstraintKind::kL1:
    case ConstraintKind::kNonNegativeL1:
    case ConstraintKind::kRidge:
      os << ':' << spec.lambda;
      break;
    case ConstraintKind::kBox:
      os << ':' << spec.lo << ':' << spec.hi;
      break;
    case ConstraintKind::kL2Ball:
      os << ':' << spec.hi;
      break;
    default:
      break;
  }
  return os.str();
}

std::unique_ptr<ProxOperator> make_prox(const ConstraintSpec& spec) {
  switch (spec.kind) {
    case ConstraintKind::kNone:
      return std::make_unique<NoConstraint>();
    case ConstraintKind::kNonNegative:
      return std::make_unique<NonNegative>();
    case ConstraintKind::kL1:
      AOADMM_CHECK_MSG(spec.lambda >= 0, "l1 lambda must be >= 0");
      return std::make_unique<L1>(spec.lambda);
    case ConstraintKind::kNonNegativeL1:
      AOADMM_CHECK_MSG(spec.lambda >= 0, "nnl1 lambda must be >= 0");
      return std::make_unique<NonNegativeL1>(spec.lambda);
    case ConstraintKind::kRidge:
      AOADMM_CHECK_MSG(spec.lambda >= 0, "ridge lambda must be >= 0");
      return std::make_unique<Ridge>(spec.lambda);
    case ConstraintKind::kSimplex:
      return std::make_unique<Simplex>();
    case ConstraintKind::kBox:
      AOADMM_CHECK_MSG(spec.lo <= spec.hi, "box bounds inverted");
      return std::make_unique<Box>(spec.lo, spec.hi);
    case ConstraintKind::kL2Ball:
      AOADMM_CHECK_MSG(spec.hi > 0, "l2ball radius must be positive");
      return std::make_unique<L2Ball>(spec.hi);
  }
  throw InvalidArgument("unhandled constraint kind");
}

}  // namespace aoadmm
