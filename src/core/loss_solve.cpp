#include "core/loss_solve.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

#include "la/cholesky.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace aoadmm {
namespace {

/// Per-thread scratch for one row's two-split subproblem. The per-entry
/// buffers (w/xs/nodes) grow to the largest row seen and are reused.
struct RowScratch {
  Matrix g;                                             // BᵀB, then BᵀB + I
  std::vector<real_t, AlignedAllocator<real_t>> rhs;    // h-system rhs / h
  std::vector<real_t, AlignedAllocator<real_t>> c;      // zero-fill linear term
  std::vector<real_t, AlignedAllocator<real_t>> hbar_old;
  std::vector<real_t, AlignedAllocator<real_t>> path;   // per-level products
  std::vector<real_t, AlignedAllocator<real_t>> w;      // nnz_i x F KRP rows
  std::vector<real_t> xs;                               // nnz_i data values
  std::vector<offset_t> nodes;                          // leaf node ids

  RowScratch(std::size_t f, std::size_t order)
      : g(f, f), rhs(f), c(f), hbar_old(f), path(order * f) {}
};

/// One DFS over root `r`'s subtree: collect the Khatri-Rao row w_j, the
/// datum x_j, and the leaf node id for every observed entry, and build
/// G = Σ w wᵀ (upper triangle) plus the column sums Σ_j w_j needed by the
/// zero-fill term. Identical path-product structure to core/wcpd.cpp.
void assemble_row(const CsfTensor& tree, cspan<const Matrix> factors,
                  std::size_t r, cspan<const real_t> zero_fill_s,
                  RowScratch& s) {
  const std::size_t order = tree.order();
  const std::size_t f = s.rhs.size();
  s.g.zero();
  s.w.clear();
  s.xs.clear();
  s.nodes.clear();
  std::fill(s.c.begin(), s.c.end(), real_t{0});

  const auto vals = tree.vals();
  const auto leaf_fids = tree.fids(order - 1);
  const Matrix& leaf_factor = factors[tree.level_mode(order - 1)];

  const auto visit = [&](auto&& self, std::size_t level, offset_t node,
                         const real_t* __restrict partial) -> void {
    if (level == order - 1) {
      const real_t* __restrict lrow =
          leaf_factor.data() + static_cast<std::size_t>(leaf_fids[node]) * f;
      const std::size_t at = s.w.size();
      s.w.resize(at + f);
      real_t* __restrict w = s.w.data() + at;
      for (std::size_t col = 0; col < f; ++col) {
        w[col] = partial == nullptr ? lrow[col] : partial[col] * lrow[col];
      }
      s.xs.push_back(vals[node]);
      s.nodes.push_back(node);
      for (std::size_t p = 0; p < f; ++p) {
        const real_t wp = w[p];
        real_t* __restrict gp = s.g.data() + p * f;
        for (std::size_t q = p; q < f; ++q) {
          gp[q] += wp * w[q];
        }
        s.c[p] += wp;  // observed column mass, reused for zero-fill below
      }
      return;
    }
    const real_t* next_partial = partial;
    if (level > 0) {
      const Matrix& a = factors[tree.level_mode(level)];
      const real_t* __restrict row =
          a.data() + static_cast<std::size_t>(tree.fids(level)[node]) * f;
      real_t* __restrict buf = s.path.data() + level * f;
      for (std::size_t col = 0; col < f; ++col) {
        buf[col] = partial == nullptr ? row[col] : partial[col] * row[col];
      }
      next_partial = buf;
    }
    const auto fptr = tree.fptr(level);
    for (offset_t child = fptr[node]; child < fptr[node + 1]; ++child) {
      self(self, level + 1, child, next_partial);
    }
  };
  visit(visit, 0, static_cast<offset_t>(r), nullptr);

  for (std::size_t p = 0; p < f; ++p) {
    for (std::size_t q = p + 1; q < f; ++q) {
      s.g(q, p) = s.g(p, q);
    }
  }
  // c currently holds s_obs = Σ_j w_j; turn it into the zero-fill linear
  // coefficient s − s_obs, or zero it for masked losses.
  if (zero_fill_s.empty()) {
    std::fill(s.c.begin(), s.c.end(), real_t{0});
  } else {
    for (std::size_t col = 0; col < f; ++col) {
      s.c[col] = zero_fill_s[col] - s.c[col];
    }
  }
}

struct RowOutcome {
  unsigned iterations = 0;
  real_t primal = 0;
  real_t dual = 0;
  unsigned rebalances = 0;
};

/// Two-split ADMM on one assembled row. h̄ lives in h_mat's row (through
/// the parent matrix so the prox sees a proper row), u_h in u_mat's row,
/// and (t, u_t) in the mode's warm state indexed by leaf node id.
RowOutcome solve_row(Matrix& h_mat, Matrix& u_mat, std::size_t row,
                     const Loss& loss, const ProxOperator& prox,
                     const AdmmOptions& opts, real_t slope,
                     LossModeState& state, RowScratch& s) {
  const std::size_t f = s.rhs.size();
  const std::size_t nnz = s.xs.size();
  real_t trace = 0;
  for (std::size_t col = 0; col < f; ++col) {
    trace += s.g(col, col);
  }
  real_t rho = trace / static_cast<real_t>(f);
  if (!(rho > real_t{1e-12})) {
    rho = real_t{1e-12};
  }
  // The h-system (G + I) is rho-independent: factor once, rebalance freely.
  for (std::size_t col = 0; col < f; ++col) {
    s.g(col, col) += real_t{1};
  }
  const Cholesky chol(s.g);

  real_t* __restrict hbar = h_mat.data() + row * f;
  real_t* __restrict uh = u_mat.data() + row * f;
  real_t* __restrict h = s.rhs.data();
  const real_t* __restrict w = s.w.data();
  const real_t* __restrict xs = s.xs.data();
  real_t* __restrict t = state.t.data();
  real_t* __restrict ut = state.u_t.data();
  const AdaptiveRhoOptions& ad = opts.adaptive;
  const unsigned check_every = ad.check_every > 0 ? ad.check_every : 1;

  RowOutcome out;
  for (unsigned iter = 0; iter < opts.max_iterations; ++iter) {
    // h-update: (G + I) h = Bᵀ(t − u_t) + (h̄ − u_h) − c/ρ.
    for (std::size_t col = 0; col < f; ++col) {
      h[col] = hbar[col] - uh[col] - slope * s.c[col] / rho;
    }
    for (std::size_t j = 0; j < nnz; ++j) {
      const std::size_t n = s.nodes[j];
      const real_t coef = t[n] - ut[n];
      const real_t* __restrict wj = w + j * f;
      for (std::size_t col = 0; col < f; ++col) {
        h[col] += coef * wj[col];
      }
    }
    chol.solve_inplace({h, f});

    real_t pr_num = 0;
    real_t pr_den = 0;
    real_t du_num = 0;
    real_t du_den = 0;

    // t-update: elementwise loss prox at the fresh model values.
    for (std::size_t j = 0; j < nnz; ++j) {
      const std::size_t n = s.nodes[j];
      const real_t* __restrict wj = w + j * f;
      real_t m = 0;
      for (std::size_t col = 0; col < f; ++col) {
        m += wj[col] * h[col];
      }
      const real_t tn = loss.prox(xs[j], m + ut[n], rho);
      const real_t step = tn - t[n];
      du_num += step * step;
      t[n] = tn;
      const real_t diff = m - tn;
      ut[n] += diff;
      pr_num += diff * diff;
      pr_den += tn * tn;
      du_den += ut[n] * ut[n];
    }

    // h̄-update through the mode's constraint prox, then the h-split dual.
    for (std::size_t col = 0; col < f; ++col) {
      s.hbar_old[col] = hbar[col];
      hbar[col] = h[col] + uh[col];
    }
    prox.apply(h_mat, row, row + 1, rho);
    for (std::size_t col = 0; col < f; ++col) {
      const real_t diff = h[col] - hbar[col];
      uh[col] += diff;
      pr_num += diff * diff;
      pr_den += hbar[col] * hbar[col];
      const real_t step = hbar[col] - s.hbar_old[col];
      du_num += step * step;
      du_den += uh[col] * uh[col];
    }

    const real_t pr = pr_num / (pr_den > 0 ? pr_den : real_t{1});
    const real_t du_floor = real_t{1e-12} * pr_den + real_t{1e-300};
    const real_t du = du_num / (du_den > du_floor ? du_den : du_floor);
    out.primal = pr;
    out.dual = du;
    ++out.iterations;
    if (pr < opts.tolerance && du < opts.tolerance) {
      break;
    }

    // Residual-balancing adaptive rho: no refactor needed here, just the
    // penalty and the scaled duals of both splits.
    if (ad.enabled && out.rebalances < ad.max_rescales &&
        (iter + 1) % check_every == 0 && std::isfinite(pr) &&
        std::isfinite(du)) {
      real_t scale = 0;
      if (pr > ad.ratio * du) {
        scale = ad.rescale;
      } else if (du > ad.ratio * pr) {
        scale = real_t{1} / ad.rescale;
      }
      if (scale != 0) {
        rho *= scale;
        const real_t inv = real_t{1} / scale;
        for (std::size_t j = 0; j < nnz; ++j) {
          ut[s.nodes[j]] *= inv;
        }
        for (std::size_t col = 0; col < f; ++col) {
          uh[col] *= inv;
        }
        ++out.rebalances;
      }
    }
  }
  return out;
}

}  // namespace

void LossWorkspace::reset(const CsfSet& csf) {
  modes.resize(csf.order());
  for (std::size_t m = 0; m < csf.order(); ++m) {
    const std::size_t nnz = csf.for_mode(m).vals().size();
    modes[m].t.assign(nnz, real_t{0});
    modes[m].u_t.assign(nnz, real_t{0});
    modes[m].warm = false;
  }
}

LossUpdateResult loss_mode_update(const CsfTensor& tree,
                                  std::vector<Matrix>& factors,
                                  Matrix& u_h, std::size_t mode,
                                  const Loss& loss, const ProxOperator& prox,
                                  const AdmmOptions& opts,
                                  cspan<const real_t> zero_fill_s,
                                  LossModeState& state) {
  AOADMM_CHECK(tree.level_mode(0) == mode);
  const std::size_t order = tree.order();
  const std::size_t f = factors[mode].cols();
  const auto root_fids = tree.fids(0);
  const auto nroots = static_cast<std::ptrdiff_t>(root_fids.size());
  Matrix& h = factors[mode];
  const real_t slope = zero_fill_s.empty() ? 0 : loss.zero_fill_slope();

  if (!state.warm) {
    const auto vals = tree.vals();
    for (std::size_t n = 0; n < vals.size(); ++n) {
      state.t[n] = vals[n];
      state.u_t[n] = 0;
    }
    state.warm = true;
  }

  LossUpdateResult result;
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    RowScratch scratch(f, order);
    LossUpdateResult local;
    using clock = std::chrono::steady_clock;
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 8) nowait
#endif
    for (std::ptrdiff_t r = 0; r < nroots; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      const clock::time_point a0 = clock::now();
      assemble_row(tree, factors, rr, zero_fill_s, scratch);
      local.assemble_seconds +=
          std::chrono::duration<double>(clock::now() - a0).count();
      const RowOutcome row = solve_row(h, u_h, root_fids[rr], loss, prox,
                                       opts, slope, state, scratch);
      local.iterations = std::max<std::uint64_t>(local.iterations,
                                                 row.iterations);
      local.row_iterations += row.iterations;
      local.primal_residual = std::max(local.primal_residual, row.primal);
      local.dual_residual = std::max(local.dual_residual, row.dual);
      local.rho_rebalances += row.rebalances;
    }
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp critical(aoadmm_loss_mode_update)
#endif
    {
      result.iterations = std::max(result.iterations, local.iterations);
      result.row_iterations += local.row_iterations;
      result.primal_residual =
          std::max(result.primal_residual, local.primal_residual);
      result.dual_residual =
          std::max(result.dual_residual, local.dual_residual);
      result.rho_rebalances += local.rho_rebalances;
      // Max over threads: the assembly phases overlap, so the busiest
      // thread's total is the wall-clock share assembly is responsible for.
      result.assemble_seconds =
          std::max(result.assemble_seconds, local.assemble_seconds);
    }
  }
  return result;
}

LossObjective loss_objective(const CsfTensor& tree,
                             cspan<const Matrix> factors, const Loss& loss,
                             real_t value_norm_sq) {
  const std::size_t order = tree.order();
  const std::size_t f = factors[0].cols();
  const auto vals = tree.vals();
  const auto nroots = static_cast<std::ptrdiff_t>(tree.num_nodes(0));

  double obj = 0;
  double resid_sq = 0;
  double observed_mass = 0;
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    std::vector<real_t> path(order * f);
    double local_obj = 0;
    double local_resid = 0;
    double local_mass = 0;
    const auto visit = [&](auto&& self, std::size_t level, offset_t node,
                           const real_t* partial) -> void {
      const Matrix& a = factors[tree.level_mode(level)];
      const real_t* row =
          a.data() + static_cast<std::size_t>(tree.fids(level)[node]) * f;
      if (level == order - 1) {
        real_t model = 0;
        for (std::size_t col = 0; col < f; ++col) {
          model += partial[col] * row[col];
        }
        const real_t x = vals[node];
        local_obj += static_cast<double>(loss.value(x, model));
        const real_t d = x - model;
        local_resid += static_cast<double>(d * d);
        local_mass += static_cast<double>(model);
        return;
      }
      real_t* buf = path.data() + level * f;
      for (std::size_t col = 0; col < f; ++col) {
        buf[col] = partial == nullptr ? row[col] : partial[col] * row[col];
      }
      const auto fptr = tree.fptr(level);
      for (offset_t child = fptr[node]; child < fptr[node + 1]; ++child) {
        self(self, level + 1, child, buf);
      }
    };
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 8) nowait
#endif
    for (std::ptrdiff_t r = 0; r < nroots; ++r) {
      visit(visit, 0, static_cast<offset_t>(r), nullptr);
    }
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp critical(aoadmm_loss_objective)
#endif
    {
      obj += local_obj;
      resid_sq += local_resid;
      observed_mass += local_mass;
    }
  }

  // Zero-fill: an unmasked loss charges slope · m over every unobserved
  // cell. Σ_all m for a Kruskal model is Σ_f Π_n colsum_n[f].
  const real_t slope = loss.masked() ? real_t{0} : loss.zero_fill_slope();
  if (slope != 0) {
    std::vector<double> colsum_prod(f, 1.0);
    std::vector<double> colsum(f);
    for (std::size_t n = 0; n < factors.size(); ++n) {
      std::fill(colsum.begin(), colsum.end(), 0.0);
      const Matrix& a = factors[n];
      for (std::size_t i = 0; i < a.rows(); ++i) {
        const real_t* row = a.data() + i * f;
        for (std::size_t col = 0; col < f; ++col) {
          colsum[col] += static_cast<double>(row[col]);
        }
      }
      for (std::size_t col = 0; col < f; ++col) {
        colsum_prod[col] *= colsum[col];
      }
    }
    double total_mass = 0;
    for (std::size_t col = 0; col < f; ++col) {
      total_mass += colsum_prod[col];
    }
    obj += static_cast<double>(slope) * (total_mass - observed_mass);
  }

  LossObjective out;
  out.objective = obj;
  out.observed_relative_error =
      value_norm_sq > 0
          ? static_cast<real_t>(
                std::sqrt(resid_sq / static_cast<double>(value_norm_sq)))
          : static_cast<real_t>(std::sqrt(resid_sq));
  return out;
}

}  // namespace aoadmm
