// Proximity operators for the constraints/regularizations r(·) of
// Equation (1). AO-ADMM's flexibility comes from this being the ONLY piece
// that changes per constraint (Algorithm 1, line 8). All operators shipped
// here are row separable, the property both the kernel-parallel baseline
// and the blocked reformulation rely on (paper §IV.A–B).
//
// Convention: apply() receives the matrix holding  (H̃ − U)  and overwrites
// the selected rows with  prox_{r/ρ}(H̃ − U) = argmin_H r(H) + ρ/2‖H−(H̃−U)‖².
#pragma once

#include <memory>
#include <string>

#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

class ProxOperator {
 public:
  virtual ~ProxOperator() = default;

  /// Apply the operator in place to rows [row_begin, row_end) of `h`, with
  /// ADMM penalty `rho`. Must be safe to call concurrently on disjoint row
  /// ranges (row separability).
  virtual void apply(Matrix& h, std::size_t row_begin, std::size_t row_end,
                     real_t rho) const = 0;

  /// r(H) evaluated at the given matrix (∞-valued indicator constraints
  /// return 0 when satisfied; callers use this for objective reporting).
  virtual real_t penalty(const Matrix& h) const;

  /// Human-readable description, e.g. "nonneg" or "l1(0.1)".
  virtual std::string name() const = 0;

  /// True when prox output can contain exact zeros, i.e. the constraint can
  /// produce factor sparsity worth exploiting in MTTKRP (paper §IV.C).
  virtual bool induces_sparsity() const { return false; }
};

/// The constraint menu. Mirrors the paper's examples: unconstrained,
/// non-negativity, ℓ1 (sparsity), non-negative ℓ1, ℓ2 ridge, row simplex,
/// and box constraints.
enum class ConstraintKind {
  kNone,
  kNonNegative,
  kL1,
  kNonNegativeL1,
  kRidge,
  kSimplex,
  kBox,
  /// Each row projected onto the Euclidean ball of radius `hi` — bounds
  /// factor-row energy without forcing signs (useful against the scale
  /// ambiguity of the CPD).
  kL2Ball,
};

struct ConstraintSpec {
  ConstraintKind kind = ConstraintKind::kNonNegative;
  /// Regularization strength for kL1 / kNonNegativeL1 / kRidge.
  real_t lambda = 0;
  /// Bounds for kBox; kL2Ball uses `hi` as the ball radius.
  real_t lo = 0;
  real_t hi = 1;
};

/// Parse "none" | "nonneg" | "l1" | "nnl1" | "ridge" | "simplex" | "box" |
/// "l2ball" (throws InvalidArgument otherwise).
ConstraintKind parse_constraint_kind(const std::string& s);
const char* to_string(ConstraintKind k) noexcept;

/// Parse a full CLI constraint spelling — the one shared round-trip every
/// surface (library, tensor_tool flags, docs) goes through:
///
///   none | nonneg | simplex          (no parameters)
///   l1[:LAMBDA] | nnl1[:LAMBDA] | ridge[:LAMBDA]
///   box[:LO:HI]                      (defaults 0:1)
///   l2ball[:RADIUS]                  (default 1)
///
/// Omitted parameters keep the ConstraintSpec defaults. Throws
/// InvalidArgument on unknown kinds, malformed numbers, or parameters a
/// kind does not take. Round-trips with to_cli_string by value.
ConstraintSpec parse_constraint_spec(const std::string& s);
/// Canonical spelling of `spec` (parameters always written, full precision),
/// parseable by parse_constraint_spec.
std::string to_cli_string(const ConstraintSpec& spec);

/// Factory. Throws InvalidArgument for invalid parameters (e.g. negative
/// lambda, inverted box bounds).
std::unique_ptr<ProxOperator> make_prox(const ConstraintSpec& spec);

}  // namespace aoadmm
