#include "core/eval.hpp"

#include <cmath>

#include "core/kruskal.hpp"
#include "parallel/runtime.hpp"
#include "util/error.hpp"

namespace aoadmm {

PredictionMetrics evaluate_predictions(const CooTensor& observed,
                                       cspan<const Matrix> factors) {
  AOADMM_CHECK(factors.size() == observed.order());
  const std::size_t order = observed.order();
  const std::size_t f = factors[0].cols();
  for (std::size_t m = 0; m < order; ++m) {
    AOADMM_CHECK(factors[m].rows() == observed.dim(m));
    AOADMM_CHECK(factors[m].cols() == f);
  }

  PredictionMetrics metrics;
  metrics.count = observed.nnz();
  if (metrics.count == 0) {
    return metrics;
  }

  const double sq_sum = parallel_reduce_sum(
      0, observed.nnz(), [&](std::size_t n) {
        const real_t d =
            observed.value(n) - kruskal_value_at(factors, {}, observed, n);
        return static_cast<double>(d * d);
      });
  const double abs_sum = parallel_reduce_sum(
      0, observed.nnz(), [&](std::size_t n) {
        const real_t d =
            observed.value(n) - kruskal_value_at(factors, {}, observed, n);
        return static_cast<double>(std::abs(d));
      });
  double value_sum = 0;
  for (const real_t v : observed.values()) {
    value_sum += v;
  }

  const auto count = static_cast<double>(metrics.count);
  metrics.rmse = static_cast<real_t>(std::sqrt(sq_sum / count));
  metrics.mae = static_cast<real_t>(abs_sum / count);
  metrics.mean_value = static_cast<real_t>(value_sum / count);
  return metrics;
}

}  // namespace aoadmm
