#include "core/admm.hpp"

#include <algorithm>
#include <chrono>

#include "core/admm_impl.hpp"
#include "la/cholesky.hpp"
#include "obs/parallel_stats.hpp"
#include "obs/profile.hpp"
#include "parallel/runtime.hpp"
#include "util/error.hpp"

#if defined(AOADMM_HAVE_OPENMP)
#include <omp.h>
#endif

namespace aoadmm {

AdmmResult admm_update(Matrix& h, Matrix& u, const Matrix& k, const Matrix& g,
                       const ProxOperator& prox, const AdmmOptions& opts,
                       AdmmScratch& scratch) {
  AOADMM_PROFILE_SCOPE("admm/base");
  const std::size_t rows = h.rows();
  const std::size_t f = h.cols();
  AOADMM_CHECK(u.rows() == rows && u.cols() == f);
  AOADMM_CHECK(k.rows() == rows && k.cols() == f);
  AOADMM_CHECK(g.rows() == f && g.cols() == f);
  AOADMM_CHECK_MSG(opts.relaxation > 0 && opts.relaxation < 2,
                   "relaxation must lie in (0, 2)");
  scratch.ensure(rows, f);
  Matrix& aux = scratch.aux;
  Matrix& h_old = scratch.h_old;

  const RobustnessOptions& rb = opts.robustness;
  real_t rho = detail::admm_penalty(g);
  if (rb.enabled) {
    // Entry snapshot: divergence restarts and the final abandon path roll
    // the primal back to it. The copy reuses h_entry's capacity after the
    // first call, so the steady state stays allocation-free.
    scratch.h_entry = h;
  }

  AdmmResult result;
  detail::ResidualAccum acc;
  unsigned restarts = 0;
  bool abandoned = false;

  // Divergence-recovery attempts: the entire inner loop runs under a
  // monitor, and a blow-up restarts it from the entry iterate with a
  // rescaled penalty and reset duals, a bounded number of times.
  for (;;) {
    detail::regularized_gram_into(g, rho, scratch.sys);
    if (rb.enabled) {
      const CholeskyReport cr =
          scratch.chol.factor_guarded(scratch.sys, detail::to_guard(rb));
      result.cholesky_attempts += cr.attempts;
      if (cr.jitter > result.cholesky_jitter) {
        result.cholesky_jitter = cr.jitter;
      }
    } else {
      scratch.chol.factor(scratch.sys);
    }
    const Cholesky& chol = scratch.chol;

    detail::DivergenceMonitor monitor;
    bool diverged = false;

    for (unsigned iter = 0; iter < opts.max_iterations; ++iter) {
      acc = detail::ResidualAccum{};

      // Each kernel runs over a static row partition with a barrier after
      // it — the §IV.A baseline decomposition. The partition is explicit
      // (rather than `omp for`) so each thread can time its own work,
      // excluding barrier waits, for the busy-time imbalance report.
#if defined(AOADMM_HAVE_OPENMP)
      obs::BusyTimes busy(max_threads());
#pragma omp parallel
      {
        const int nt = omp_get_num_threads();
        const std::size_t chunk = (rows + static_cast<std::size_t>(nt) - 1) /
                                  static_cast<std::size_t>(nt);
        const std::size_t lo =
            std::min(rows, chunk * static_cast<std::size_t>(thread_id()));
        const std::size_t hi = std::min(rows, lo + chunk);

        using clock = std::chrono::steady_clock;
        double busy_seconds = 0;
        const auto timed = [&busy_seconds](const auto& work) {
          const auto t0 = clock::now();
          work();
          busy_seconds += std::chrono::duration<double>(clock::now() - t0)
                              .count();
        };

        detail::ResidualAccum local;
        timed([&] {
          detail::admm_solve_rows(h, u, k, rho, chol, aux, lo, hi);
        });
#pragma omp barrier
        timed([&] {
          detail::admm_primal_prep_rows(h, u, aux, h_old, opts.relaxation, lo,
                                        hi);
        });
#pragma omp barrier
        timed([&] { prox.apply(h, lo, hi, rho); });
#pragma omp barrier
        timed([&] {
          local.merge(detail::admm_dual_rows(h, u, aux, h_old, lo, hi));
        });
        busy.add(thread_id(), busy_seconds);
#pragma omp critical(aoadmm_admm_residuals)
        acc.merge(local);
      }
#else
      obs::BusyTimes busy(1);
      const auto t0 = std::chrono::steady_clock::now();
      detail::admm_solve_rows(h, u, k, rho, chol, aux, 0, rows);
      detail::admm_primal_prep_rows(h, u, aux, h_old, opts.relaxation, 0, rows);
      prox.apply(h, 0, rows, rho);
      acc = detail::admm_dual_rows(h, u, aux, h_old, 0, rows);
      busy.add(0, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
#endif

      ++result.iterations;
      result.row_iterations += rows;
      if (rb.enabled && monitor.diverged(acc, rb.divergence_factor)) {
        diverged = true;
        break;
      }
      if (acc.converged(opts.tolerance)) {
        break;
      }

      // Residual-balancing adaptive ρ: rescale the penalty and duals when
      // the residuals drift more than `ratio` apart, then refactor the
      // system (it depends on ρ). Entirely skipped when disabled.
      const AdaptiveRhoOptions& ad = opts.adaptive;
      if (ad.enabled && result.rho_rebalances < ad.max_rescales &&
          (iter + 1) % (ad.check_every > 0 ? ad.check_every : 1) == 0) {
        const real_t scale = detail::rebalance_scale(acc, ad);
        if (scale != 0) {
          rho *= scale;
          detail::rescale_duals(u, scale);
          detail::regularized_gram_into(g, rho, scratch.sys);
          if (rb.enabled) {
            const CholeskyReport cr = scratch.chol.factor_guarded(
                scratch.sys, detail::to_guard(rb));
            result.cholesky_attempts += cr.attempts;
            if (cr.jitter > result.cholesky_jitter) {
              result.cholesky_jitter = cr.jitter;
            }
          } else {
            scratch.chol.factor(scratch.sys);
          }
          ++result.rho_rebalances;
        }
      }
    }

    if (!diverged) {
      break;
    }
    if (restarts >= rb.max_recoveries) {
      // Out of retries: roll the primal back to the entry iterate and reset
      // the duals so the caller keeps a sane (if stale) factor.
      h = scratch.h_entry;
      u.zero();
      acc = detail::ResidualAccum{};
      abandoned = true;
      break;
    }
    ++restarts;
    rho *= rb.rho_rescale;
    h = scratch.h_entry;
    u.zero();
  }

  result.restarts = restarts;
  result.abandoned = abandoned;
  result.rho = rho;
  result.primal_residual = acc.primal();
  result.dual_residual = acc.dual();
  return result;
}

}  // namespace aoadmm
