#include "core/admm.hpp"

#include "core/admm_impl.hpp"
#include "la/cholesky.hpp"
#include "util/error.hpp"

namespace aoadmm {

AdmmResult admm_update(Matrix& h, Matrix& u, const Matrix& k, const Matrix& g,
                       const ProxOperator& prox, const AdmmOptions& opts,
                       AdmmScratch& scratch) {
  const std::size_t rows = h.rows();
  const std::size_t f = h.cols();
  AOADMM_CHECK(u.rows() == rows && u.cols() == f);
  AOADMM_CHECK(k.rows() == rows && k.cols() == f);
  AOADMM_CHECK(g.rows() == f && g.cols() == f);
  AOADMM_CHECK_MSG(opts.relaxation > 0 && opts.relaxation < 2,
                   "relaxation must lie in (0, 2)");
  scratch.ensure(rows, f);
  Matrix& aux = scratch.aux;
  Matrix& h_old = scratch.h_old;

  const real_t rho = detail::admm_penalty(g);
  const Cholesky chol(detail::regularized_gram(g, rho));

  AdmmResult result;
  detail::ResidualAccum acc;

  for (unsigned iter = 0; iter < opts.max_iterations; ++iter) {
    acc = detail::ResidualAccum{};

    // Each kernel is parallelized over rows with an implicit barrier after
    // it — the §IV.A baseline decomposition.
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
    {
      detail::ResidualAccum local;
#pragma omp for schedule(static)
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(rows); ++i) {
        const auto ii = static_cast<std::size_t>(i);
        detail::admm_solve_rows(h, u, k, rho, chol, aux, ii, ii + 1);
      }
#pragma omp for schedule(static)
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(rows); ++i) {
        const auto ii = static_cast<std::size_t>(i);
        detail::admm_primal_prep_rows(h, u, aux, h_old, opts.relaxation, ii,
                                      ii + 1);
      }
#pragma omp for schedule(static)
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(rows); ++i) {
        const auto ii = static_cast<std::size_t>(i);
        prox.apply(h, ii, ii + 1, rho);
      }
#pragma omp for schedule(static)
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(rows); ++i) {
        const auto ii = static_cast<std::size_t>(i);
        local.merge(detail::admm_dual_rows(h, u, aux, h_old, ii, ii + 1));
      }
#pragma omp critical(aoadmm_admm_residuals)
      acc.merge(local);
    }
#else
    detail::admm_solve_rows(h, u, k, rho, chol, aux, 0, rows);
    detail::admm_primal_prep_rows(h, u, aux, h_old, opts.relaxation, 0, rows);
    prox.apply(h, 0, rows, rho);
    acc = detail::admm_dual_rows(h, u, aux, h_old, 0, rows);
#endif

    ++result.iterations;
    result.row_iterations += rows;
    if (acc.converged(opts.tolerance)) {
      break;
    }
  }

  result.primal_residual = acc.primal();
  result.dual_residual = acc.dual();
  return result;
}

}  // namespace aoadmm
