// Internal helpers shared by the AO-ADMM driver (cpd.cpp) and the ALS
// baseline (als.cpp).
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "core/cpd.hpp"
#include "la/blas.hpp"
#include "parallel/runtime.hpp"
#include "util/rng.hpp"

namespace aoadmm::detail {

inline real_t tensor_norm_sq(const CsfTensor& csf) {
  const auto vals = csf.vals();
  return parallel_reduce_sum(0, vals.size(), [&](std::size_t i) {
    return vals[i] * vals[i];
  });
}

/// ⊛ of all Grams except `mode` into `out` (Algorithm 2, lines 4/8/12).
inline void gram_product_excluding(const std::vector<Matrix>& grams,
                                   std::size_t mode, Matrix& out) {
  const std::size_t f = grams[0].rows();
  if (out.rows() != f || out.cols() != f) {
    out.resize(f, f);
  }
  out.fill(real_t{1});
  for (std::size_t m = 0; m < grams.size(); ++m) {
    if (m != mode) {
      hadamard_inplace(out, grams[m]);
    }
  }
}

/// Exact relative error using the freshly computed MTTKRP of the final
/// mode: ⟨X, M⟩ = ⟨K, A_last⟩ holds exactly because K depends only on the
/// other (already current) factors. ‖M‖² comes from the Gram trick.
inline real_t fit_relative_error(real_t x_norm_sq, const Matrix& k,
                                 const Matrix& a_last,
                                 const std::vector<Matrix>& grams,
                                 Matrix& acc) {
  const real_t inner = dot(k, a_last);
  const std::size_t f = grams[0].rows();
  if (acc.rows() != f || acc.cols() != f) {
    acc.resize(f, f);
  }
  acc.fill(real_t{1});
  for (const Matrix& g : grams) {
    hadamard_inplace(acc, g);
  }
  const real_t model_sq = sum_all(acc);
  real_t resid_sq = x_norm_sq - 2 * inner + model_sq;
  if (resid_sq < 0) {
    resid_sq = 0;
  }
  return x_norm_sq > 0 ? std::sqrt(resid_sq / x_norm_sq)
                       : std::sqrt(resid_sq);
}

inline real_t fit_relative_error(real_t x_norm_sq, const Matrix& k,
                                 const Matrix& a_last,
                                 const std::vector<Matrix>& grams) {
  Matrix acc;
  return fit_relative_error(x_norm_sq, k, a_last, grams, acc);
}

/// In-place factor initialization drawing from a caller-owned generator.
/// Reuses the matrices' existing storage when shapes already match, so a
/// session's repeated cold solves reallocate nothing. Draw order matches
/// the historical Matrix::random_uniform path exactly.
inline void init_factors_into(cspan<index_t> dims, rank_t rank, Rng& rng,
                              real_t x_norm_sq,
                              std::vector<Matrix>& factors) {
  factors.resize(dims.size());
  for (std::size_t m = 0; m < dims.size(); ++m) {
    Matrix& a = factors[m];
    if (a.rows() != dims[m] || a.cols() != rank) {
      a.resize(dims[m], rank);
    }
    // Uniform [0,1) keeps the start feasible for the non-negative and box
    // constraints and matches the paper's random initialization.
    for (real_t& v : a.flat()) {
      v = rng.uniform();
    }
  }

  // Balance the initial model energy against the data: on hypersparse
  // tensors a raw uniform start has ‖M₀‖ ≫ ‖X‖ (the model is dense, the
  // data is not), which makes the first least-squares pull crush every
  // factor toward zero and stalls convergence detection. Scaling each
  // factor by (‖X‖²/‖M₀‖²)^(1/2N) equalizes the norms.
  const std::size_t order = dims.size();
  real_t model_sq;
  {
    Matrix acc(rank, rank);
    acc.fill(real_t{1});
    Matrix g(rank, rank);
    for (const Matrix& a : factors) {
      gram(a, g);
      hadamard_inplace(acc, g);
    }
    model_sq = sum_all(acc);
  }
  if (model_sq > 0 && x_norm_sq > 0) {
    const real_t s = std::pow(x_norm_sq / model_sq,
                              real_t{1} / (2 * static_cast<real_t>(order)));
    for (Matrix& a : factors) {
      for (real_t& v : a.flat()) {
        v *= s;
      }
    }
  }
}

inline void init_factors_into(const CsfSet& csf, rank_t rank, Rng& rng,
                              real_t x_norm_sq,
                              std::vector<Matrix>& factors) {
  init_factors_into(csf.dims(), rank, rng, x_norm_sq, factors);
}

inline std::vector<Matrix> init_factors(const CsfSet& csf, rank_t rank,
                                        std::uint64_t seed,
                                        real_t x_norm_sq) {
  Rng rng(seed);
  std::vector<Matrix> factors;
  init_factors_into(csf, rank, rng, x_norm_sq, factors);
  return factors;
}

}  // namespace aoadmm::detail
