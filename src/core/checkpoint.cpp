#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "testing/fault_injection.hpp"
#include "util/error.hpp"

namespace aoadmm {
namespace {

constexpr char kCheckpointMagic[8] = {'A', 'O', 'C', 'K', 'P', 'T', '0', '\n'};
constexpr char kKruskalMagic[8] = {'A', 'O', 'K', 'R', 'U', 'S', '0', '\n'};

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void fnv1a(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

/// Streams raw bytes while folding them into a running checksum.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    fnv1a(hash_, data, n);
  }
  template <typename T>
  void pod(const T& v) {
    bytes(&v, sizeof(T));
  }
  void u64(std::uint64_t v) { pod(v); }

  void matrix(const Matrix& a) {
    u64(a.rows());
    u64(a.cols());
    bytes(a.data(), a.size() * sizeof(real_t));
  }

  std::uint64_t hash() const noexcept { return hash_; }

 private:
  std::ostream& out_;
  std::uint64_t hash_ = kFnvOffset;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  void bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) {
      throw ParseError("checkpoint: truncated file");
    }
    fnv1a(hash_, data, n);
  }
  template <typename T>
  void pod(T& v) {
    bytes(&v, sizeof(T));
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    pod(v);
    return v;
  }

  Matrix matrix() {
    const std::uint64_t rows = u64();
    const std::uint64_t cols = u64();
    // 1 TiB guard: a corrupt size field must not turn into a giant alloc.
    if (rows * cols > (std::uint64_t{1} << 37)) {
      throw ParseError("checkpoint: implausible matrix size (corrupt file?)");
    }
    Matrix a(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
    bytes(a.data(), a.size() * sizeof(real_t));
    return a;
  }

  std::uint64_t hash() const noexcept { return hash_; }

 private:
  std::istream& in_;
  std::uint64_t hash_ = kFnvOffset;
};

void write_header(std::ostream& out, const char (&magic)[8]) {
  out.write(magic, sizeof(magic));
  const std::uint32_t version = kCheckpointFormatVersion;
  const std::uint32_t real_size = sizeof(real_t);
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&real_size), sizeof(real_size));
}

void read_header(std::istream& in, const char (&magic)[8], const char* what) {
  char got[8] = {};
  std::uint32_t version = 0;
  std::uint32_t real_size = 0;
  in.read(got, sizeof(got));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&real_size), sizeof(real_size));
  if (!in || std::memcmp(got, magic, sizeof(got)) != 0) {
    throw ParseError(std::string(what) + ": bad magic (not a " + what +
                     " file)");
  }
  if (version != kCheckpointFormatVersion) {
    throw ParseError(std::string(what) + ": unsupported format version " +
                     std::to_string(version) + " (this build reads version " +
                     std::to_string(kCheckpointFormatVersion) + ")");
  }
  if (real_size != sizeof(real_t)) {
    throw ParseError(std::string(what) + ": written with sizeof(real_t) = " +
                     std::to_string(real_size) + ", this build uses " +
                     std::to_string(sizeof(real_t)));
  }
}

void check_trailer(std::istream& in, std::uint64_t computed, const char* what) {
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != computed) {
    throw ParseError(std::string(what) +
                     ": checksum mismatch (truncated or corrupt file)");
  }
}

/// Write-to-temp-then-rename. Any failure — open, short write, failed
/// close, failed rename — throws CheckpointError and removes the temp
/// file, so a previously written checkpoint at `path` is never disturbed.
template <typename WriteBody>
void write_file_atomic(const std::string& path, const WriteBody& body) {
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CheckpointError("checkpoint: cannot open " + tmp +
                            " for writing");
    }
    body(out);
    if (testing::maybe_fail_checkpoint_write()) {
      // Injected short write: poison the stream exactly as a full disk or
      // yanked volume would mid-payload.
      out.setstate(std::ios::badbit);
    }
    out.flush();
    if (!out) {
      throw CheckpointError("checkpoint: short write to " + tmp +
                            " (disk full?)");
    }
    out.close();
    if (out.fail()) {
      throw CheckpointError("checkpoint: close failed for " + tmp);
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename " + tmp + " to " + path);
  }
}

}  // namespace

void write_checkpoint(const CpdCheckpoint& ck, std::ostream& out) {
  write_header(out, kCheckpointMagic);
  Writer w(out);

  w.u64(ck.dims.size());
  for (const index_t d : ck.dims) {
    w.pod(d);
  }
  w.pod(ck.rank);
  w.u64(ck.seed);
  for (const std::uint64_t s : ck.rng_state) {
    w.u64(s);
  }
  w.pod(ck.outer_iteration);
  w.pod(ck.prev_error);
  w.u64(ck.total_inner_iterations);
  w.u64(ck.total_row_iterations);
  w.u64(ck.mttkrp_count);
  w.u64(ck.sparse_mttkrp_count);

  w.u64(ck.factors.size());
  for (const Matrix& a : ck.factors) {
    w.matrix(a);
  }
  w.u64(ck.duals.size());
  for (const Matrix& u : ck.duals) {
    w.matrix(u);
  }

  w.u64(ck.trace.size());
  for (const TracePoint& p : ck.trace.points()) {
    w.pod(p.outer_iteration);
    w.pod(p.seconds);
    w.pod(p.relative_error);
  }

  const std::uint64_t h = w.hash();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
}

CpdCheckpoint read_checkpoint(std::istream& in) {
  read_header(in, kCheckpointMagic, "checkpoint");
  Reader r(in);
  CpdCheckpoint ck;

  const std::uint64_t order = r.u64();
  if (order == 0 || order > 64) {
    throw ParseError("checkpoint: implausible tensor order " +
                     std::to_string(order));
  }
  ck.dims.resize(order);
  for (index_t& d : ck.dims) {
    r.pod(d);
  }
  r.pod(ck.rank);
  ck.seed = r.u64();
  for (std::uint64_t& s : ck.rng_state) {
    s = r.u64();
  }
  r.pod(ck.outer_iteration);
  r.pod(ck.prev_error);
  ck.total_inner_iterations = r.u64();
  ck.total_row_iterations = r.u64();
  ck.mttkrp_count = r.u64();
  ck.sparse_mttkrp_count = r.u64();

  const std::uint64_t nfactors = r.u64();
  if (nfactors != order) {
    throw ParseError("checkpoint: factor count does not match tensor order");
  }
  ck.factors.reserve(nfactors);
  for (std::uint64_t i = 0; i < nfactors; ++i) {
    ck.factors.push_back(r.matrix());
  }
  const std::uint64_t nduals = r.u64();
  if (nduals != order) {
    throw ParseError("checkpoint: dual count does not match tensor order");
  }
  ck.duals.reserve(nduals);
  for (std::uint64_t i = 0; i < nduals; ++i) {
    ck.duals.push_back(r.matrix());
  }

  const std::uint64_t npoints = r.u64();
  for (std::uint64_t i = 0; i < npoints; ++i) {
    TracePoint p;
    r.pod(p.outer_iteration);
    r.pod(p.seconds);
    r.pod(p.relative_error);
    ck.trace.add(p.outer_iteration, p.seconds, p.relative_error);
  }

  check_trailer(in, r.hash(), "checkpoint");
  return ck;
}

void write_checkpoint_file(const CpdCheckpoint& ck, const std::string& path) {
  write_file_atomic(path, [&](std::ostream& out) { write_checkpoint(ck, out); });
}

CpdCheckpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AOADMM_CHECK_MSG(static_cast<bool>(in), "cannot read checkpoint " + path);
  return read_checkpoint(in);
}

void write_kruskal(const KruskalTensor& k, std::ostream& out) {
  write_header(out, kKruskalMagic);
  Writer w(out);
  w.u64(k.order());
  w.pod(k.rank());
  for (const Matrix& a : k.factors()) {
    w.matrix(a);
  }
  for (const real_t l : k.lambda()) {
    w.pod(l);
  }
  const std::uint64_t h = w.hash();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
}

KruskalTensor read_kruskal(std::istream& in) {
  read_header(in, kKruskalMagic, "kruskal");
  Reader r(in);
  const std::uint64_t order = r.u64();
  if (order == 0 || order > 64) {
    throw ParseError("kruskal: implausible order " + std::to_string(order));
  }
  rank_t rank = 0;
  r.pod(rank);
  std::vector<Matrix> factors;
  factors.reserve(order);
  for (std::uint64_t i = 0; i < order; ++i) {
    factors.push_back(r.matrix());
  }
  KruskalTensor k(std::move(factors));
  if (k.rank() != rank) {
    throw ParseError("kruskal: rank field disagrees with factor shape");
  }
  std::vector<real_t> lambda(rank);
  for (real_t& l : lambda) {
    r.pod(l);
  }
  k.set_lambda(std::move(lambda));
  check_trailer(in, r.hash(), "kruskal");
  return k;
}

void write_kruskal_file(const KruskalTensor& k, const std::string& path) {
  write_file_atomic(path, [&](std::ostream& out) { write_kruskal(k, out); });
}

KruskalTensor read_kruskal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AOADMM_CHECK_MSG(static_cast<bool>(in), "cannot read kruskal model " + path);
  return read_kruskal(in);
}

}  // namespace aoadmm
