#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/cpd_impl.hpp"
#include "core/mode_update.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel_stats.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry/event_journal.hpp"
#include "obs/telemetry/trace_context.hpp"
#include "sparse/density.hpp"
#include "tensor/alto.hpp"
#include "testing/fault_injection.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace aoadmm {
namespace {

/// The driver's kernel-time breakdown (paper Fig. 3). Plain members — no
/// name lookup, nothing shared across threads.
struct KernelTimers {
  Timer mttkrp;
  Timer admm;
  Timer other;
};

/// Registry handles the driver reports into; registered once per process.
struct CpdMetrics {
  obs::Counter runs;
  obs::Counter outer_iterations;
  obs::Counter mttkrp_calls;
  obs::Counter sparse_mttkrp_calls;
  obs::Counter mttkrp_seconds;
  obs::Counter admm_seconds;
  obs::Counter checkpoints_written;
  obs::Counter robust_cholesky_jitter;
  obs::Counter robust_admm_restarts;
  obs::Counter robust_admm_abandoned;
  obs::Counter robust_mttkrp_retries;
  obs::Counter robust_factor_rollbacks;
  obs::Counter robust_checkpoint_write_failures;
  obs::Counter robust_rho_rebalances;
  obs::Histogram iteration_seconds;
  obs::Histogram admm_inner_iterations;
  obs::Histogram admm_primal_residual;
  obs::Histogram admm_dual_residual;

  static const CpdMetrics& get() {
    static const CpdMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      CpdMetrics out;
      out.runs = reg.counter("cpd/runs");
      out.outer_iterations = reg.counter("cpd/outer_iterations");
      out.mttkrp_calls = reg.counter("cpd/mttkrp_calls");
      out.sparse_mttkrp_calls = reg.counter("cpd/sparse_mttkrp_calls");
      out.mttkrp_seconds = reg.counter("cpd/mttkrp_seconds");
      out.admm_seconds = reg.counter("cpd/admm_seconds");
      out.checkpoints_written = reg.counter("cpd/checkpoints_written");
      out.robust_cholesky_jitter = reg.counter("robust/cholesky_jitter");
      out.robust_admm_restarts = reg.counter("robust/admm_restarts");
      out.robust_admm_abandoned = reg.counter("robust/admm_abandoned");
      out.robust_mttkrp_retries = reg.counter("robust/mttkrp_retries");
      out.robust_factor_rollbacks = reg.counter("robust/factor_rollbacks");
      out.robust_checkpoint_write_failures =
          reg.counter("robust/checkpoint_write_failures");
      out.robust_rho_rebalances = reg.counter("robust/rho_rebalances");
      out.iteration_seconds = reg.histogram("cpd/iteration_seconds");
      out.admm_inner_iterations = reg.histogram("admm/inner_iterations");
      out.admm_primal_residual = reg.histogram("admm/primal_residual");
      out.admm_dual_residual = reg.histogram("admm/dual_residual");
      return out;
    }();
    return m;
  }
};

}  // namespace

CpdSolver::CpdSolver(const CsfSet& csf, CpdConfig config)
    : csf_(csf),
      config_(std::move(config)),
      ws_(csf.order()),
      sparse_cache_(csf.order()),
      rng_(config_.seed),
      mode_mttkrp_seconds_(csf.order(), 0) {
  const std::size_t order = csf_.order();
  AOADMM_CHECK(order >= 2);

  validation_ = config_.validate(order);
  if (!validation_.ok()) {
    throw InvalidArgument("invalid CpdConfig:\n" + validation_.to_string());
  }

  prox_.resize(order);
  for (std::size_t m = 0; m < order; ++m) {
    prox_[m] = make_prox(config_.constraints.for_mode(m));
  }

  loss_ = make_loss(config_.loss);
  if (!loss_->quadratic()) {
    // The generalized path assembles per-row systems from mode-rooted
    // subtrees: validate() already rejects the config-side combinations
    // (tiled kernel, compressed leaves); the CsfSet itself is checked here.
    if (csf_.tiled()) {
      throw InvalidArgument(
          std::string("loss ") + loss_->name() +
          " needs untiled mode-rooted trees; rebuild the CsfSet with "
          "tile_rows = 0");
    }
    if (csf_.strategy() != CsfStrategy::kAllMode) {
      throw InvalidArgument(
          std::string("loss ") + loss_->name() +
          " assembles per-row systems from mode-rooted trees; compile the "
          "tensor with CsfStrategy::kAllMode");
    }
    // Domain check (e.g. KL rejects negative data) — one pass, fail early
    // with the offending value instead of NaN-ing mid-solve.
    for (const real_t v : csf_.for_mode(0).vals()) {
      loss_->check_datum(v);
    }
  }

  // Kernel knob vs. the compilation actually handed in. validate() can only
  // see the config; the CsfSet is ground truth for what kernels can run.
  const MttkrpKernel kernel = config_.mttkrp_kernel;
  if (csf_.tiled()) {
    if (kernel != MttkrpKernel::kAuto && kernel != MttkrpKernel::kTiled) {
      throw InvalidArgument(
          std::string("CsfSet holds tiled compilations but mttkrp_kernel=") +
          to_string(kernel) + "; use kTiled or kAuto (or build the CsfSet "
          "with tile_rows = 0)");
    }
    if (config_.leaf_format != LeafFormat::kDense) {
      throw InvalidArgument(
          "tiled MTTKRP supports only the DENSE leaf format; rebuild the "
          "CsfSet untiled to use compressed leaf factors");
    }
  } else {
    if (kernel == MttkrpKernel::kTiled) {
      throw InvalidArgument(
          "mttkrp_kernel=tiled but the CsfSet was built without tiling; "
          "construct it with tile_rows > 0");
    }
    if (kernel == MttkrpKernel::kAllMode &&
        csf_.strategy() != CsfStrategy::kAllMode) {
      throw InvalidArgument(
          "mttkrp_kernel=allmode but the CsfSet was compiled with the "
          "one-mode strategy; rebuild it with CsfStrategy::kAllMode");
    }
    if (kernel == MttkrpKernel::kOneTree &&
        csf_.strategy() == CsfStrategy::kAllMode) {
      throw InvalidArgument(
          "mttkrp_kernel=onetree but the CsfSet holds one tree per mode; "
          "rebuild it with CsfStrategy::kOneMode to exercise the non-root "
          "kernels");
    }
    if ((kernel == MttkrpKernel::kDimTree || kernel == MttkrpKernel::kAlto) &&
        csf_.strategy() != CsfStrategy::kOneMode) {
      throw InvalidArgument(
          std::string("mttkrp_kernel=") + to_string(kernel) +
          " caches intermediates over a single shared tree; rebuild the "
          "CsfSet with CsfStrategy::kOneMode");
    }
    if (kernel == MttkrpKernel::kDimTree && order < 3) {
      throw InvalidArgument(
          "mttkrp_kernel=dimtree needs order >= 3 (an order-2 tree has no "
          "partial contractions to cache)");
    }
    if (kernel == MttkrpKernel::kAlto && !alto_linearizable(csf_.dims())) {
      throw InvalidArgument(
          "mttkrp_kernel=alto: mode index bits exceed the 64-bit linearized "
          "code; use onetree or dimtree for this tensor");
    }
  }
  resolved_kernel_ = resolve_auto_kernel(
      config_.mttkrp_kernel, csf_.strategy(), csf_.tiled(),
      config_.leaf_format == LeafFormat::kDense, order, csf_.dims(),
      csf_.nnz(), config_.rank);

  x_norm_sq_ = csf_.norm_sq();
}

void CpdSolver::zero_duals() {
  const std::size_t order = csf_.order();
  const auto& dims = csf_.dims();
  duals_.resize(order);
  for (std::size_t m = 0; m < order; ++m) {
    // resize zero-fills and reuses capacity, so a warmed session's repeat
    // solves reset the duals without touching the allocator.
    duals_[m].resize(dims[m], config_.rank);
  }
}

CpdResult CpdSolver::solve() {
  AOADMM_PROFILE_SCOPE("cpd/aoadmm");
  {
    AOADMM_PROFILE_SCOPE("cpd/init");
    rng_ = Rng(config_.seed);
    detail::init_factors_into(csf_, config_.rank, rng_, x_norm_sq_,
                              factors_);
  }
  zero_duals();
  return run(1, std::numeric_limits<real_t>::infinity(), CpdResult{});
}

CpdResult CpdSolver::solve_warm(const KruskalTensor& model) {
  AOADMM_PROFILE_SCOPE("cpd/aoadmm");
  const std::size_t order = csf_.order();
  const auto& dims = csf_.dims();
  if (model.order() != order) {
    throw InvalidArgument("warm start: model order " +
                          std::to_string(model.order()) +
                          " does not match tensor order " +
                          std::to_string(order));
  }
  if (model.rank() != config_.rank) {
    throw InvalidArgument("warm start: model rank " +
                          std::to_string(model.rank()) +
                          " does not match configured rank " +
                          std::to_string(config_.rank));
  }
  for (std::size_t m = 0; m < order; ++m) {
    if (model.factors()[m].rows() != dims[m]) {
      throw InvalidArgument("warm start: factor " + std::to_string(m) +
                            " has " +
                            std::to_string(model.factors()[m].rows()) +
                            " rows, tensor mode has " +
                            std::to_string(dims[m]));
    }
  }

  factors_ = model.factors();
  // Fold the component weights into mode 0 so the seeded iterate represents
  // the same tensor the model does.
  Matrix& a0 = factors_[0];
  const std::vector<real_t>& lambda = model.lambda();
  for (std::size_t i = 0; i < a0.rows(); ++i) {
    real_t* __restrict row = a0.data() + i * a0.cols();
    for (std::size_t f = 0; f < a0.cols(); ++f) {
      row[f] *= lambda[f];
    }
  }

  // Keep the session's duals when a prior run left them behind — they
  // encode the constraint geometry near the warm iterate. A fresh session
  // starts them at zero like a cold solve.
  bool duals_usable = duals_.size() == order;
  for (std::size_t m = 0; duals_usable && m < order; ++m) {
    duals_usable = duals_[m].rows() == dims[m] &&
                   duals_[m].cols() == config_.rank;
  }
  if (!duals_usable) {
    zero_duals();
  }
  return run(1, std::numeric_limits<real_t>::infinity(), CpdResult{});
}

CpdResult CpdSolver::resume(const std::string& checkpoint_path) {
  AOADMM_PROFILE_SCOPE("cpd/aoadmm");
  CpdCheckpoint ck = read_checkpoint_file(checkpoint_path);

  const auto& dims = csf_.dims();
  if (ck.dims != std::vector<index_t>(dims.begin(), dims.end())) {
    throw InvalidArgument("resume: checkpoint tensor shape does not match "
                          "this session's tensor");
  }
  if (ck.rank != config_.rank) {
    throw InvalidArgument("resume: checkpoint rank " +
                          std::to_string(ck.rank) +
                          " does not match configured rank " +
                          std::to_string(config_.rank));
  }

  factors_ = std::move(ck.factors);
  duals_ = std::move(ck.duals);
  rng_.set_state(ck.rng_state);

  CpdResult result;
  result.total_inner_iterations = ck.total_inner_iterations;
  result.total_row_iterations = ck.total_row_iterations;
  result.mttkrp_count = ck.mttkrp_count;
  result.sparse_mttkrp_count = ck.sparse_mttkrp_count;
  result.trace = std::move(ck.trace);
  result.relative_error = ck.prev_error;
  result.outer_iterations = ck.outer_iteration;
  return run(ck.outer_iteration + 1, ck.prev_error, std::move(result));
}

CpdResult CpdSolver::run(unsigned start_outer, real_t prev_error,
                         CpdResult result) {
  if (!loss_->quadratic()) {
    // prev_error tracked relative error; the generalized loop converges on
    // the loss objective and re-derives its own baseline.
    return run_loss(start_outer, std::move(result));
  }
  const std::size_t order = csf_.order();
  const CpdConfig& opts = config_;
  const RobustnessOptions& rb = opts.admm.robustness;
  const CpdMetrics& metrics = CpdMetrics::get();
  metrics.runs.add(1);

  Timer wall;
  wall.start();
  KernelTimers timers;

  // Every entry point hands in fresh or restored factors; any cached
  // dimension-tree partials belong to the previous iterate.
  ws_.dimtree.invalidate_all();

  {
    const ScopedTimer t(timers.other);
    AOADMM_PROFILE_SCOPE("cpd/gram");
    for (std::size_t m = 0; m < order; ++m) {
      gram(factors_[m], ws_.grams[m]);
      sparse_cache_.invalidate(m);
    }
  }

  for (unsigned outer = start_outer; outer <= opts.max_outer_iterations;
       ++outer) {
    AOADMM_PROFILE_SCOPE("cpd/outer");
    // Cooperative stop: one check per outer iteration, before any work, so
    // the factors are always the last completed iterate.
    if (opts.cancel && opts.cancel->should_stop()) {
      result.stop_reason = opts.cancel->cancelled() ? StopReason::kCancelled
                                                    : StopReason::kDeadline;
      AOADMM_LOG_WARN << "outer " << outer << ": stopping ("
                      << to_string(result.stop_reason) << ")";
      break;
    }
    const double iter_start_seconds = wall.seconds();
    const obs::ParallelTotals parallel_before = obs::parallel_totals();
    const obs::ParallelTotals mttkrp_before = obs::mttkrp_totals();
    const double admm_seconds_before = timers.admm.seconds();
    const detail::DimTreeStats dimtree_before = ws_.dimtree.stats();
    std::fill(mode_mttkrp_seconds_.begin(), mode_mttkrp_seconds_.end(), 0.0);
    std::uint64_t iter_inner_iterations = 0;
    real_t worst_primal = 0;
    real_t worst_dual = 0;
    real_t sum_primal = 0;
    real_t sum_dual = 0;

    for (std::size_t m = 0; m < order; ++m) {
      AOADMM_PROFILE_SCOPE("cpd/mode");
      // A tiled set has no single tree per mode; the tiled kernel takes the
      // whole TiledCsf below and everything tree-specific is skipped.
      const CsfTensor* tree = csf_.tiled() ? nullptr : &csf_.for_mode(m);

      {
        const ScopedTimer t(timers.other);
        AOADMM_PROFILE_SCOPE("cpd/gram_product");
        detail::gram_product_excluding(ws_.grams, m, ws_.gram_prod);
      }
      testing::maybe_corrupt_gram(ws_.gram_prod);

      // MTTKRP, optionally with a compressed leaf factor. The leaf mode of
      // this tree is the factor read once per non-zero — the only one worth
      // compressing (paper §IV.C). Wrapped in a lambda so the non-finite
      // sentinel below can re-run the kernel (a transient corruption — an
      // injected fault, a flipped bit — does not recur on recompute).
      ++result.mttkrp_count;
      metrics.mttkrp_calls.add(1);
      const double mttkrp_seconds_before = timers.mttkrp.seconds();
      const auto compute_mttkrp = [&]() -> bool {
        bool used_sparse = false;
        // Sparse-leaf kernels exist for root-mode trees only (ALLMODE); a
        // one-tree set serves non-root modes through the scatter kernels.
        if (tree != nullptr && opts.leaf_format != LeafFormat::kDense &&
            tree->level_mode(0) == m) {
          const std::size_t leaf_mode = tree->level_mode(order - 1);
          SparseFactorCache::Mirror mirror;
          {
            const ScopedTimer t(timers.other);
            AOADMM_PROFILE_SCOPE("cpd/sparse_mirror");
            mirror = sparse_cache_.refresh(leaf_mode, factors_[leaf_mode],
                                           opts.leaf_format,
                                           opts.sparsity_threshold);
          }
          if (mirror.csr != nullptr) {
            const ScopedTimer t(timers.mttkrp);
            mttkrp_csf_csr(*tree, factors_, *mirror.csr, ws_.mttkrp_out,
                           opts.mttkrp_schedule);
            used_sparse = true;
          } else if (mirror.hybrid != nullptr) {
            const ScopedTimer t(timers.mttkrp);
            mttkrp_csf_hybrid(*tree, factors_, *mirror.hybrid,
                              ws_.mttkrp_out, opts.mttkrp_schedule);
            used_sparse = true;
          }
        }
        if (!used_sparse) {
          const ScopedTimer t(timers.mttkrp);
          if (tree == nullptr) {
            mttkrp_tiled(csf_.tiled_for_mode(m), factors_, ws_.mttkrp_out,
                         opts.mttkrp_schedule);
          } else {
            mttkrp_dispatch(*tree, factors_, m, ws_.mttkrp_out,
                            opts.mttkrp_schedule, resolved_kernel_,
                            &ws_.dimtree);
          }
        }
        testing::maybe_inject_nan(ws_.mttkrp_out);
        return used_sparse;
      };
      bool used_sparse = compute_mttkrp();
      if (rb.enabled && rb.check_finite && !all_finite(ws_.mttkrp_out)) {
        unsigned attempts = 0;
        while (attempts < rb.max_recoveries &&
               !all_finite(ws_.mttkrp_out)) {
          ++attempts;
          // A cached partial could carry the corruption; recompute from the
          // factors, not from the tree's intermediates.
          ws_.dimtree.invalidate_all();
          used_sparse = compute_mttkrp();
        }
        result.recovery.add({RecoveryKind::kMttkrpRetry, outer, m, attempts,
                             0, std::string(), {}});
        metrics.robust_mttkrp_retries.add(1);
        AOADMM_LOG_WARN << "outer " << outer << " mode " << m
                        << ": non-finite MTTKRP output, recomputed ("
                        << attempts << " retries)";
        if (!all_finite(ws_.mttkrp_out)) {
          throw NumericalError(
              "MTTKRP output for mode " + std::to_string(m) +
              " is non-finite even after " + std::to_string(attempts) +
              " recomputes");
        }
      }
      if (used_sparse) {
        ++result.sparse_mttkrp_count;
        metrics.sparse_mttkrp_calls.add(1);
      }
      mode_mttkrp_seconds_[m] =
          timers.mttkrp.seconds() - mttkrp_seconds_before;

      {
        const ScopedTimer t(timers.admm);
        const detail::ModeUpdateStats ms = detail::admm_mode_update(
            opts.variant, factors_[m], duals_[m], ws_.mttkrp_out,
            ws_.gram_prod, *prox_[m], opts.admm, ws_.admm, outer, m, result);
        iter_inner_iterations += ms.inner_iterations;
        worst_primal = std::max(worst_primal, ms.primal_residual);
        worst_dual = std::max(worst_dual, ms.dual_residual);
        sum_primal += ms.primal_residual;
        sum_dual += ms.dual_residual;
      }

      {
        const ScopedTimer t(timers.other);
        AOADMM_PROFILE_SCOPE("cpd/gram");
        gram(factors_[m], ws_.grams[m]);
        sparse_cache_.invalidate(m);
        // Drop exactly the dimension-tree partials that read this factor;
        // the rest stay warm for the remaining modes of the sweep.
        ws_.dimtree.invalidate_mode(m);
      }
    }

    // Fit: exact, reusing the final mode's MTTKRP output (see cpd_impl.hpp).
    real_t err;
    {
      const ScopedTimer t(timers.other);
      AOADMM_PROFILE_SCOPE("cpd/fit");
      err = detail::fit_relative_error(x_norm_sq_, ws_.mttkrp_out,
                                       factors_[order - 1], ws_.grams,
                                       ws_.fit_acc);
    }
    result.relative_error = err;
    result.outer_iterations = outer;
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), err);
    }
    AOADMM_LOG_DEBUG << "outer " << outer << " relative_error " << err;

    const double iter_seconds = wall.seconds() - iter_start_seconds;
    metrics.outer_iterations.add(1);
    metrics.iteration_seconds.observe(iter_seconds);

    if (opts.on_iteration) {
      obs::MetricsSnapshot snap;
      snap.outer_iteration = outer;
      snap.seconds = wall.seconds();
      snap.iteration_seconds = iter_seconds;
      snap.relative_error = err;
      snap.mode_mttkrp_seconds = mode_mttkrp_seconds_;
      snap.admm_seconds = timers.admm.seconds() - admm_seconds_before;
      snap.admm_inner_iterations = iter_inner_iterations;
      snap.worst_primal_residual = worst_primal;
      snap.mean_primal_residual = sum_primal / static_cast<real_t>(order);
      snap.worst_dual_residual = worst_dual;
      snap.mean_dual_residual = sum_dual / static_cast<real_t>(order);
      snap.thread_imbalance = obs::imbalance_since(parallel_before);
      snap.mttkrp_imbalance = obs::mttkrp_imbalance_since(mttkrp_before);
      {
        const obs::ParallelTotals mttkrp_now = obs::mttkrp_totals();
        snap.mttkrp_max_busy_seconds =
            mttkrp_now.max_busy_seconds - mttkrp_before.max_busy_seconds;
        snap.mttkrp_mean_busy_seconds =
            mttkrp_now.mean_busy_seconds - mttkrp_before.mean_busy_seconds;
      }
      snap.factor_density.reserve(order);
      for (std::size_t m = 0; m < order; ++m) {
        snap.factor_density.push_back(measure_density(factors_[m]).density);
      }
      snap.mttkrp_count = result.mttkrp_count;
      snap.sparse_mttkrp_count = result.sparse_mttkrp_count;
      {
        const detail::DimTreeStats dt = ws_.dimtree.stats();
        snap.dimtree_levels_computed =
            dt.levels_computed - dimtree_before.levels_computed;
        snap.dimtree_levels_reused =
            dt.levels_reused - dimtree_before.levels_reused;
      }
      opts.on_iteration(snap);
    }

    const bool converged_now = prev_error - err < opts.tolerance && outer > 1;
    prev_error = err;

    if (!converged_now && config_.checkpoint_every > 0 &&
        outer % config_.checkpoint_every == 0) {
      const ScopedTimer t(timers.other);
      AOADMM_PROFILE_SCOPE("cpd/checkpoint");
      CpdCheckpoint ck;
      const auto& dims = csf_.dims();
      ck.dims.assign(dims.begin(), dims.end());
      ck.rank = opts.rank;
      ck.seed = opts.seed;
      ck.rng_state = rng_.state();
      ck.outer_iteration = outer;
      ck.prev_error = prev_error;
      ck.total_inner_iterations = result.total_inner_iterations;
      ck.total_row_iterations = result.total_row_iterations;
      ck.mttkrp_count = result.mttkrp_count;
      ck.sparse_mttkrp_count = result.sparse_mttkrp_count;
      ck.factors = factors_;
      ck.duals = duals_;
      ck.trace = result.trace;
      try {
        write_checkpoint_file(ck, config_.checkpoint_path);
        metrics.checkpoints_written.add(1);
        obs::journal_event(
            obs::EventKind::kCheckpointWritten, obs::current_trace(),
            obs::EventJournal::Fields{}
                .num("outer_iteration", static_cast<std::uint64_t>(outer))
                .str("path", config_.checkpoint_path));
      } catch (const CheckpointError& e) {
        // The writer guarantees the previous checkpoint is untouched, so
        // under robustness a failed write is survivable: record it and
        // keep iterating. Without robustness, fail fast as before.
        if (!rb.enabled) {
          throw;
        }
        result.recovery.add({RecoveryKind::kCheckpointWriteFailure, outer, 0,
                             0, 0, e.what(), {}});
        metrics.robust_checkpoint_write_failures.add(1);
        AOADMM_LOG_WARN << "outer " << outer
                        << ": checkpoint write failed (continuing): "
                        << e.what();
      }
    }

    if (converged_now) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  wall.stop();
  result.times.total_seconds = wall.seconds();
  result.times.mttkrp_seconds = timers.mttkrp.seconds();
  result.times.admm_seconds = timers.admm.seconds();
  result.times.other_seconds = result.times.total_seconds -
                               result.times.mttkrp_seconds -
                               result.times.admm_seconds;
  metrics.mttkrp_seconds.add(result.times.mttkrp_seconds);
  metrics.admm_seconds.add(result.times.admm_seconds);

  result.factors = factors_;
  result.factor_density.clear();
  result.factor_density.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    result.factor_density.push_back(measure_density(factors_[m]).density);
  }
  return result;
}

CpdResult CpdSolver::run_loss(unsigned start_outer, CpdResult result) {
  AOADMM_PROFILE_SCOPE("cpd/loss");
  const std::size_t order = csf_.order();
  const CpdConfig& opts = config_;
  const CpdMetrics& metrics = CpdMetrics::get();
  metrics.runs.add(1);

  Timer wall;
  wall.start();
  KernelTimers timers;

  // Fresh split state for every entry point: t/u_t warm-start only across
  // the outer iterations of this run, which keeps repeated solve() calls
  // on one session deterministic.
  loss_ws_.reset(csf_);

  // Rows with no observations carry no data signal: pin them at prox(0)
  // once so they cannot pollute the other modes' row systems.
  for (std::size_t m = 0; m < order; ++m) {
    const CsfTensor& tree = csf_.for_mode(m);
    std::vector<bool> observed(factors_[m].rows(), false);
    for (const index_t i : tree.fids(0)) {
      observed[i] = true;
    }
    for (std::size_t i = 0; i < observed.size(); ++i) {
      if (!observed[i]) {
        auto row = factors_[m].row(i);
        std::fill(row.begin(), row.end(), real_t{0});
        prox_[m]->apply(factors_[m], i, i + 1, real_t{1});
      }
    }
  }

  const bool zero_fill =
      !loss_->masked() && loss_->zero_fill_slope() != real_t{0};
  const std::size_t f = opts.rank;
  std::vector<real_t> colsums(zero_fill ? order * f : 0);
  std::vector<real_t> zero_fill_s(zero_fill ? f : 0);

  double prev_objective = std::numeric_limits<double>::infinity();
  // Row-system assembly is the generalized path's MTTKRP: report it under
  // the same headings instead of leaving the kernel breakdown at zero.
  double assemble_total_seconds = 0;

  for (unsigned outer = start_outer; outer <= opts.max_outer_iterations;
       ++outer) {
    AOADMM_PROFILE_SCOPE("cpd/outer");
    if (opts.cancel && opts.cancel->should_stop()) {
      result.stop_reason = opts.cancel->cancelled() ? StopReason::kCancelled
                                                    : StopReason::kDeadline;
      AOADMM_LOG_WARN << "outer " << outer << ": stopping ("
                      << to_string(result.stop_reason) << ")";
      break;
    }
    const double iter_start_seconds = wall.seconds();
    const double admm_seconds_before = timers.admm.seconds();
    std::fill(mode_mttkrp_seconds_.begin(), mode_mttkrp_seconds_.end(), 0.0);
    std::uint64_t iter_inner_iterations = 0;
    real_t worst_primal = 0;
    real_t worst_dual = 0;
    real_t sum_primal = 0;
    real_t sum_dual = 0;

    if (zero_fill) {
      const ScopedTimer t(timers.other);
      for (std::size_t n = 0; n < order; ++n) {
        real_t* cs = colsums.data() + n * f;
        std::fill(cs, cs + f, real_t{0});
        const Matrix& a = factors_[n];
        for (std::size_t i = 0; i < a.rows(); ++i) {
          const real_t* row = a.data() + i * f;
          for (std::size_t col = 0; col < f; ++col) {
            cs[col] += row[col];
          }
        }
      }
    }

    for (std::size_t m = 0; m < order; ++m) {
      AOADMM_PROFILE_SCOPE("cpd/mode");
      const CsfTensor& tree = csf_.for_mode(m);

      cspan<const real_t> s_span;
      if (zero_fill) {
        // s[f] = Π_{n≠m} colsum_n[f]: the model mass a unit of h[f]
        // contributes across the whole slice, observed or not.
        for (std::size_t col = 0; col < f; ++col) {
          zero_fill_s[col] = 1;
        }
        for (std::size_t n = 0; n < order; ++n) {
          if (n == m) {
            continue;
          }
          const real_t* cs = colsums.data() + n * f;
          for (std::size_t col = 0; col < f; ++col) {
            zero_fill_s[col] *= cs[col];
          }
        }
        s_span = {zero_fill_s.data(), f};
      }

      const ScopedTimer t(timers.admm);
      const LossUpdateResult lr =
          loss_mode_update(tree, factors_, duals_[m], m, *loss_, *prox_[m],
                           opts.admm, s_span, loss_ws_.modes[m]);
      mode_mttkrp_seconds_[m] = lr.assemble_seconds;
      assemble_total_seconds += lr.assemble_seconds;
      result.total_inner_iterations += lr.iterations;
      result.total_row_iterations += lr.row_iterations;
      iter_inner_iterations += lr.iterations;
      worst_primal = std::max(worst_primal, lr.primal_residual);
      worst_dual = std::max(worst_dual, lr.dual_residual);
      sum_primal += lr.primal_residual;
      sum_dual += lr.dual_residual;
      metrics.admm_inner_iterations.observe(lr.iterations);
      metrics.admm_primal_residual.observe(
          static_cast<double>(lr.primal_residual));
      metrics.admm_dual_residual.observe(
          static_cast<double>(lr.dual_residual));
      if (lr.rho_rebalances > 0) {
        result.recovery.add({RecoveryKind::kRhoRebalance, outer, m,
                             lr.rho_rebalances, 0, std::string(), {}});
        metrics.robust_rho_rebalances.add(lr.rho_rebalances);
      }

      if (zero_fill) {
        // Refresh this mode's column sums for the remaining modes.
        real_t* cs = colsums.data() + m * f;
        std::fill(cs, cs + f, real_t{0});
        const Matrix& a = factors_[m];
        for (std::size_t i = 0; i < a.rows(); ++i) {
          const real_t* row = a.data() + i * f;
          for (std::size_t col = 0; col < f; ++col) {
            cs[col] += row[col];
          }
        }
      }
    }

    LossObjective lo;
    {
      const ScopedTimer t(timers.other);
      AOADMM_PROFILE_SCOPE("cpd/fit");
      lo = loss_objective(csf_.for_mode(0), factors_, *loss_, x_norm_sq_);
    }
    result.objective_value = lo.objective;
    result.relative_error = lo.observed_relative_error;
    result.outer_iterations = outer;
    result.objective_trace.push_back(lo.objective);
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), lo.observed_relative_error);
    }
    AOADMM_LOG_DEBUG << "outer " << outer << " objective " << lo.objective
                     << " observed_relative_error "
                     << lo.observed_relative_error;

    const double iter_seconds = wall.seconds() - iter_start_seconds;
    metrics.outer_iterations.add(1);
    metrics.iteration_seconds.observe(iter_seconds);

    if (opts.on_iteration) {
      obs::MetricsSnapshot snap;
      snap.outer_iteration = outer;
      snap.seconds = wall.seconds();
      snap.iteration_seconds = iter_seconds;
      snap.relative_error = lo.observed_relative_error;
      snap.mode_mttkrp_seconds = mode_mttkrp_seconds_;
      double assemble_iter = 0;
      for (const double s : mode_mttkrp_seconds_) {
        assemble_iter += s;
      }
      snap.admm_seconds =
          timers.admm.seconds() - admm_seconds_before - assemble_iter;
      snap.admm_inner_iterations = iter_inner_iterations;
      snap.worst_primal_residual = worst_primal;
      snap.mean_primal_residual = sum_primal / static_cast<real_t>(order);
      snap.worst_dual_residual = worst_dual;
      snap.mean_dual_residual = sum_dual / static_cast<real_t>(order);
      snap.factor_density.reserve(order);
      for (std::size_t m = 0; m < order; ++m) {
        snap.factor_density.push_back(measure_density(factors_[m]).density);
      }
      opts.on_iteration(snap);
    }

    // Convergence on the objective: relative decrease below tolerance.
    // The scale guard makes the test meaningful for objectives far from 1
    // (KL on counts can sit in the thousands).
    const double scale = std::max(1.0, std::abs(prev_objective));
    const bool converged_now =
        outer > 1 && std::isfinite(prev_objective) &&
        (prev_objective - lo.objective) < opts.tolerance * scale;
    prev_objective = lo.objective;

    if (!converged_now && config_.checkpoint_every > 0 &&
        outer % config_.checkpoint_every == 0) {
      const ScopedTimer t(timers.other);
      AOADMM_PROFILE_SCOPE("cpd/checkpoint");
      CpdCheckpoint ck;
      const auto& dims = csf_.dims();
      ck.dims.assign(dims.begin(), dims.end());
      ck.rank = opts.rank;
      ck.seed = opts.seed;
      ck.rng_state = rng_.state();
      ck.outer_iteration = outer;
      ck.prev_error = lo.observed_relative_error;
      ck.total_inner_iterations = result.total_inner_iterations;
      ck.total_row_iterations = result.total_row_iterations;
      ck.mttkrp_count = result.mttkrp_count;
      ck.sparse_mttkrp_count = result.sparse_mttkrp_count;
      ck.factors = factors_;
      ck.duals = duals_;
      ck.trace = result.trace;
      try {
        write_checkpoint_file(ck, config_.checkpoint_path);
        metrics.checkpoints_written.add(1);
      } catch (const CheckpointError& e) {
        if (!opts.admm.robustness.enabled) {
          throw;
        }
        result.recovery.add({RecoveryKind::kCheckpointWriteFailure, outer, 0,
                             0, 0, e.what(), {}});
        metrics.robust_checkpoint_write_failures.add(1);
      }
    }

    if (converged_now) {
      result.converged = true;
      result.stop_reason = StopReason::kConverged;
      break;
    }
  }

  wall.stop();
  result.times.total_seconds = wall.seconds();
  result.times.mttkrp_seconds = assemble_total_seconds;
  result.times.admm_seconds =
      std::max(0.0, timers.admm.seconds() - assemble_total_seconds);
  result.times.other_seconds = result.times.total_seconds -
                               result.times.mttkrp_seconds -
                               result.times.admm_seconds;
  metrics.mttkrp_seconds.add(result.times.mttkrp_seconds);
  metrics.admm_seconds.add(result.times.admm_seconds);

  result.factors = factors_;
  result.factor_density.clear();
  result.factor_density.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    result.factor_density.push_back(measure_density(factors_[m]).density);
  }
  return result;
}

}  // namespace aoadmm
