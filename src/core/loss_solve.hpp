// Generalized per-row split solve for non-quadratic or masked losses.
//
// The Frobenius fast path folds the data term into normal equations
// (MTTKRP + Gram) once per mode. Any other loss g(x, m) — KL, Huber, L1,
// or Frobenius restricted to the observed entries — breaks that algebra,
// so each factor row h gets the extra ADMM split of the AO-ADMM framework
// paper: introduce t ≈ B h (the model values at the row's observed
// entries, B = the Khatri-Rao rows along its CSF subtree) next to the
// constraint split h̄ = h, and alternate
//
//   h  <- (BᵀB + I)⁻¹ (Bᵀ(t − u_t) + (h̄ − u_h) − c/ρ)
//   t  <- prox_{g(x,·)/ρ}(B h + u_t)         (elementwise, closed form)
//   h̄  <- prox_{r/ρ}(h + u_h)                (the mode's ProxOperator)
//   u_t += B h − t,   u_h += h − h̄
//
// The h-system is independent of ρ, so it is factorized once per row per
// call and residual-balancing adaptive ρ costs nothing but the dual
// rescale. c is the linear zero-fill term an unmasked loss contributes
// over the unobserved cells (KL: slope 1); masked losses have c = 0.
//
// The split state (t, u_t) lives per non-zero of each mode's tree and
// warm-starts across outer iterations. Requires an untiled
// CsfStrategy::kAllMode compilation (per-row systems are assembled from
// mode-rooted subtrees, like core/wcpd.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/admm.hpp"
#include "core/loss.hpp"
#include "core/prox.hpp"
#include "la/matrix.hpp"
#include "tensor/csf.hpp"

namespace aoadmm {

/// Warm-started split variables for one mode: the loss-split primal t and
/// scaled dual u_t, one entry per non-zero in that mode's tree (leaf
/// order). `warm == false` means the next update re-seeds t = x, u_t = 0.
struct LossModeState {
  std::vector<real_t> t;
  std::vector<real_t> u_t;
  bool warm = false;
};

/// One LossModeState per tensor mode, owned by the solver session so
/// repeated solves reuse the allocations.
struct LossWorkspace {
  std::vector<LossModeState> modes;

  /// Size every mode's state to its tree's non-zero count and mark all of
  /// them cold (re-seeded on first use).
  void reset(const CsfSet& csf);
};

/// Aggregate outcome of one mode update (per-row worst/total, mirroring
/// AdmmResult's role on the quadratic path).
struct LossUpdateResult {
  /// Largest per-row inner iteration count.
  std::uint64_t iterations = 0;
  /// Total inner iterations summed over rows (work measure).
  std::uint64_t row_iterations = 0;
  /// Worst relative residuals over rows, from the final iteration of each.
  real_t primal_residual = 0;
  real_t dual_residual = 0;
  /// Adaptive-rho rescales summed over rows (0 unless opts.adaptive fired).
  unsigned rho_rebalances = 0;
  /// Wall-clock seconds spent assembling the per-row Khatri-Rao systems —
  /// the generalized path's MTTKRP analogue (max over threads, so it is
  /// comparable to the quadratic path's per-mode kernel time).
  double assemble_seconds = 0;
};

/// One generalized mode update: for every root row of `tree` (which must
/// be rooted at `mode`), assemble the row system from the current factors
/// and run the two-split row ADMM above. `factors[mode]` holds h̄ and is
/// updated in place together with the mode's dual matrix `u_h` and the
/// warm split state. `zero_fill_s` is Π_{n≠mode} colsum_n (length F) for
/// an unmasked loss with a zero-fill slope; pass empty otherwise.
LossUpdateResult loss_mode_update(const CsfTensor& tree,
                                  std::vector<Matrix>& factors,
                                  Matrix& u_h, std::size_t mode,
                                  const Loss& loss, const ProxOperator& prox,
                                  const AdmmOptions& opts,
                                  cspan<const real_t> zero_fill_s,
                                  LossModeState& state);

/// Objective and fit of the current model under `loss`.
struct LossObjective {
  /// Σ_Ω g(x, m) plus, for an unmasked loss, slope · (total model mass −
  /// observed model mass) over the implicit zeros.
  double objective = 0;
  /// √(Σ_Ω (x − m)² / Σ_Ω x²) — the trace/fit measure, loss-agnostic.
  real_t observed_relative_error = 0;
};

LossObjective loss_objective(const CsfTensor& tree,
                             cspan<const Matrix> factors, const Loss& loss,
                             real_t value_norm_sq);

}  // namespace aoadmm
