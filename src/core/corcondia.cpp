#include "core/corcondia.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "parallel/runtime.hpp"
#include "util/error.hpp"

#if defined(AOADMM_HAVE_OPENMP)
#include <omp.h>
#endif

namespace aoadmm {
namespace {

/// P = A (AᵀA + εI)⁻¹ — the (lightly regularized) pseudoinverse transpose.
/// Overfactored fits produce nearly collinear columns, so a relative ridge
/// keeps the solve well-posed; exactly rank-deficient inputs still raise
/// NumericalError through the Cholesky when even the ridge cannot save a
/// non-positive pivot (ε scales with the Gram's own magnitude, so an
/// all-zero column still fails).
Matrix pseudo_rows(const Matrix& a) {
  Matrix g;
  gram(a, g);
  real_t trace = 0;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    trace += g(i, i);
  }
  AOADMM_CHECK_MSG(trace > 0, "corcondia: zero factor matrix");
  const real_t ridge =
      real_t{1e-10} * trace / static_cast<real_t>(g.rows());
  for (std::size_t i = 0; i < g.rows(); ++i) {
    g(i, i) += ridge;
  }
  Matrix p = a;  // rows solved in place: P(i,:) = (AᵀA+εI)⁻¹ A(i,:)
  solve_normal_equations(g, p);
  return p;
}

}  // namespace

Matrix corcondia_core(const CooTensor& x, cspan<const Matrix> factors) {
  AOADMM_CHECK_MSG(x.order() == 3, "corcondia supports 3-mode tensors");
  AOADMM_CHECK(factors.size() == 3);
  const std::size_t f = factors[0].cols();
  for (std::size_t m = 0; m < 3; ++m) {
    AOADMM_CHECK(factors[m].rows() == x.dim(m));
    AOADMM_CHECK(factors[m].cols() == f);
  }

  const Matrix p0 = pseudo_rows(factors[0]);
  const Matrix p1 = pseudo_rows(factors[1]);
  const Matrix p2 = pseudo_rows(factors[2]);

  // core(p, q, r) laid out as an F x F^2 matrix with column q*F... use
  // column index q + r*F (q fastest within r) to match matricize().
  Matrix core(f, f * f);

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
  {
    Matrix local(f, f * f);
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(static) nowait
#endif
    for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(x.nnz());
         ++n) {
      const auto nn = static_cast<offset_t>(n);
      const real_t v = x.value(nn);
      const real_t* __restrict a = p0.data() +
          static_cast<std::size_t>(x.index(0, nn)) * f;
      const real_t* __restrict b = p1.data() +
          static_cast<std::size_t>(x.index(1, nn)) * f;
      const real_t* __restrict c = p2.data() +
          static_cast<std::size_t>(x.index(2, nn)) * f;
      for (std::size_t r = 0; r < f; ++r) {
        const real_t vc = v * c[r];
        for (std::size_t q = 0; q < f; ++q) {
          const real_t vcb = vc * b[q];
          real_t* __restrict row = local.data();
          for (std::size_t p = 0; p < f; ++p) {
            row[p * f * f + q + r * f] += vcb * a[p];
          }
        }
      }
    }
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp critical(aoadmm_corcondia_merge)
#endif
    {
      for (std::size_t k = 0; k < core.size(); ++k) {
        core.data()[k] += local.data()[k];
      }
    }
  }
  return core;
}

real_t corcondia(const CooTensor& x, cspan<const Matrix> factors) {
  const Matrix core = corcondia_core(x, factors);
  const std::size_t f = factors[0].cols();
  real_t deviation = 0;
  for (std::size_t p = 0; p < f; ++p) {
    for (std::size_t r = 0; r < f; ++r) {
      for (std::size_t q = 0; q < f; ++q) {
        const real_t target = (p == q && q == r) ? real_t{1} : real_t{0};
        const real_t d = core(p, q + r * f) - target;
        deviation += d * d;
      }
    }
  }
  return 100 * (real_t{1} - deviation / static_cast<real_t>(f));
}

}  // namespace aoadmm
