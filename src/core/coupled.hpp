// Coupled matrix-tensor factorization: a CPD that shares one or more of
// its factor matrices with side matrices,
//
//   min ‖X − ⟦A₀,…,A_{N−1}⟧‖² + Σ_c β_c ‖Y_c − A_{mode_c} W_cᵀ‖²
//        + Σ_n r_n(A_n) + Σ_c r_c(W_c),
//
// the standard way to graft side information (user features, gene
// annotations, …) onto a sparse tensor. Frobenius data terms only: the
// coupling folds into the shared mode's normal equations (K += β Y W,
// G += β WᵀW), so every update reuses the stock ADMM machinery —
// admm_update for the tensor modes with augmented systems, and a plain
// least-squares ADMM for each W_c.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/cpd.hpp"
#include "la/matrix.hpp"
#include "tensor/csf.hpp"

namespace aoadmm {

/// One side matrix coupled to a tensor mode.
struct CoupledMatrix {
  /// The data matrix, dims[mode] x J (rows aligned with the mode's index).
  Matrix y;
  /// Tensor mode whose factor it shares.
  std::size_t mode = 0;
  /// Coupling strength beta (> 0) weighting this matrix's loss term
  /// against the tensor term.
  real_t weight = 1;
  /// Constraint on the side factor W (default: none).
  ConstraintSpec w_constraint;
};

struct CoupledResult {
  /// Tensor-side outcome. relative_error is the tensor fit; the trace
  /// records the combined relative error below.
  CpdResult cpd;
  /// One J x F side factor per coupling, in input order.
  std::vector<Matrix> side_factors;
  /// ‖Y_c − A Wᵀ‖_F / ‖Y_c‖_F per coupling at termination.
  std::vector<real_t> matrix_relative_error;
  /// √((‖X−M‖² + Σ β‖Y−AWᵀ‖²) / (‖X‖² + Σ β‖Y‖²)) — the convergence
  /// measure of the coupled objective.
  real_t combined_relative_error = 1;
};

/// Run the coupled factorization. Uses rank/seed/tolerance/admm/variant/
/// constraints from `config`; requires the default (unmasked Frobenius)
/// loss and throws InvalidArgument on any other loss, on a coupling whose
/// mode or row count does not match the tensor, or on weight <= 0.
CoupledResult coupled_factorize(const CsfSet& csf, const CpdConfig& config,
                                const std::vector<CoupledMatrix>& couplings);

}  // namespace aoadmm
