#include "core/mode_update.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace aoadmm {
namespace detail {
namespace {

/// Same metric names CpdSolver always reported — the registry hands back
/// the same underlying instruments, so extraction is invisible to scrapes.
struct ModeUpdateMetrics {
  obs::Counter robust_cholesky_jitter;
  obs::Counter robust_admm_restarts;
  obs::Counter robust_admm_abandoned;
  obs::Counter robust_factor_rollbacks;
  obs::Counter robust_rho_rebalances;
  obs::Histogram admm_inner_iterations;
  obs::Histogram admm_primal_residual;
  obs::Histogram admm_dual_residual;

  static const ModeUpdateMetrics& get() {
    static const ModeUpdateMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      ModeUpdateMetrics out;
      out.robust_cholesky_jitter = reg.counter("robust/cholesky_jitter");
      out.robust_admm_restarts = reg.counter("robust/admm_restarts");
      out.robust_admm_abandoned = reg.counter("robust/admm_abandoned");
      out.robust_factor_rollbacks = reg.counter("robust/factor_rollbacks");
      out.robust_rho_rebalances = reg.counter("robust/rho_rebalances");
      out.admm_inner_iterations = reg.histogram("admm/inner_iterations");
      out.admm_primal_residual = reg.histogram("admm/primal_residual");
      out.admm_dual_residual = reg.histogram("admm/dual_residual");
      return out;
    }();
    return m;
  }
};

}  // namespace

ModeUpdateStats admm_mode_update(AdmmVariant variant, Matrix& factor,
                                 Matrix& dual, const Matrix& mttkrp,
                                 const Matrix& gram_prod,
                                 const ProxOperator& prox,
                                 const AdmmOptions& opts, AdmmScratch& scratch,
                                 unsigned outer, std::size_t mode,
                                 CpdResult& result) {
  const RobustnessOptions& rb = opts.robustness;
  const ModeUpdateMetrics& metrics = ModeUpdateMetrics::get();

  const AdmmResult ar =
      variant == AdmmVariant::kBlocked
          ? admm_update_blocked(factor, dual, mttkrp, gram_prod, prox, opts,
                                scratch)
          : admm_update(factor, dual, mttkrp, gram_prod, prox, opts, scratch);
  result.total_inner_iterations += ar.iterations;
  result.total_row_iterations += ar.row_iterations;
  metrics.admm_inner_iterations.observe(ar.iterations);
  metrics.admm_primal_residual.observe(static_cast<double>(ar.primal_residual));
  metrics.admm_dual_residual.observe(static_cast<double>(ar.dual_residual));

  // Adaptive-rho interventions are reported whenever the feature is on,
  // independent of the robustness master switch.
  if (ar.rho_rebalances > 0) {
    result.recovery.add({RecoveryKind::kRhoRebalance, outer, mode,
                         ar.rho_rebalances, static_cast<double>(ar.rho),
                         std::string(), {}});
    metrics.robust_rho_rebalances.add(ar.rho_rebalances);
    AOADMM_LOG_DEBUG << "outer " << outer << " mode " << mode
                     << ": adaptive rho rebalanced " << ar.rho_rebalances
                     << "x (final rho " << ar.rho << ")";
  }

  if (rb.enabled) {
    if (ar.cholesky_attempts > 0) {
      result.recovery.add({RecoveryKind::kCholeskyJitter, outer, mode,
                           ar.cholesky_attempts,
                           static_cast<double>(ar.cholesky_jitter),
                           std::string(), {}});
      metrics.robust_cholesky_jitter.add(1);
      AOADMM_LOG_WARN << "outer " << outer << " mode " << mode
                      << ": Cholesky needed a diagonal ridge of "
                      << ar.cholesky_jitter << " (" << ar.cholesky_attempts
                      << " jitter attempts)";
    }
    if (ar.restarts > 0) {
      result.recovery.add({RecoveryKind::kAdmmRestart, outer, mode,
                           ar.restarts, static_cast<double>(ar.rho),
                           std::string(), {}});
      metrics.robust_admm_restarts.add(ar.restarts);
      AOADMM_LOG_WARN << "outer " << outer << " mode " << mode
                      << ": divergent inner solve restarted " << ar.restarts
                      << "x (final rho " << ar.rho << ")";
    }
    if (ar.abandoned) {
      result.recovery.add({RecoveryKind::kAdmmAbandoned, outer, mode,
                           ar.restarts, static_cast<double>(ar.rho),
                           std::string(), {}});
      metrics.robust_admm_abandoned.add(1);
      AOADMM_LOG_WARN << "outer " << outer << " mode " << mode
                      << ": inner solve abandoned after " << ar.restarts
                      << " restarts; keeping previous iterate";
    }
    // Factor sentinel: a contaminated update would poison the Gram
    // matrices and, through them, every other mode. Roll back to the entry
    // iterate the ADMM scratch snapshotted for this mode.
    if (rb.check_finite && !all_finite(factor)) {
      if (!all_finite(scratch.h_entry)) {
        throw NumericalError("factor " + std::to_string(mode) +
                             " is non-finite and so is its pre-update "
                             "iterate; cannot recover");
      }
      factor = scratch.h_entry;
      dual.zero();
      result.recovery.add({RecoveryKind::kFactorRollback, outer, mode, 1, 0,
                           std::string(), {}});
      metrics.robust_factor_rollbacks.add(1);
      AOADMM_LOG_WARN << "outer " << outer << " mode " << mode
                      << ": non-finite factor update rolled back";
    }
  }

  return {ar.iterations, ar.primal_residual, ar.dual_residual};
}

}  // namespace detail
}  // namespace aoadmm
