// Held-out evaluation of a factorization: error metrics of the model's
// predictions at a set of observed coordinates (typically the test half of
// split_train_test). All metrics stream over the non-zeros in parallel.
#pragma once

#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace aoadmm {

struct PredictionMetrics {
  /// Root-mean-square error of model vs stored values.
  real_t rmse = 0;
  /// Mean absolute error.
  real_t mae = 0;
  /// Mean of the stored values (baseline for comparison).
  real_t mean_value = 0;
  offset_t count = 0;
};

/// Evaluate the rank-F model given by `factors` at every non-zero of
/// `observed`. Factors must match the tensor's dims and share one rank.
PredictionMetrics evaluate_predictions(const CooTensor& observed,
                                       cspan<const Matrix> factors);

}  // namespace aoadmm
