// Cooperative cancellation for long-running solves.
//
// A CancelToken is a tiny shared flag + optional deadline that a supervisor
// (stream/supervisor.hpp), a signal handler, or another thread arms while a
// CpdSolver runs. The solver checks the token ONCE PER OUTER ITERATION —
// never inside the kernels — so a stop request costs one relaxed load per
// iteration and a stopped solve always returns a consistent iterate: the
// factors of the last completed outer iteration. The result carries why it
// stopped in CpdResult::stop_reason.
//
// This is what makes a deadline-cancelled streaming refresh cheap instead
// of wasted: the partially converged model is still published and the next
// refresh warm-starts from it (AO-ADMM's warm-started inner solves resume
// near their fixed points).
//
// Tokens are shared via std::shared_ptr (CpdConfig::cancel) and reusable:
// reset() re-arms a token between refreshes so one allocation serves the
// lifetime of a supervisor.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace aoadmm {

class CancelToken {
 public:
  /// Request a stop. Sticky until reset(); safe from any thread / signal
  /// context (lock-free stores only).
  void cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arm a deadline `seconds` from now (steady clock). seconds <= 0 cancels
  /// immediately on the next check. Overwrites any previous deadline.
  void set_deadline_after(double seconds) noexcept {
    const std::int64_t now = steady_now_ns();
    const std::int64_t delta =
        static_cast<std::int64_t>(seconds * 1e9);
    deadline_ns_.store(now + delta, std::memory_order_release);
  }

  void clear_deadline() noexcept {
    deadline_ns_.store(0, std::memory_order_release);
  }

  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  bool deadline_expired() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_acquire);
    return d != 0 && steady_now_ns() >= d;
  }

  /// True when the solver should stop (explicit cancel or expired
  /// deadline). This is the per-outer-iteration check.
  bool should_stop() const noexcept {
    return cancelled() || deadline_expired();
  }

  /// Disarm everything so the token can serve the next solve.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_release);
    deadline_ns_.store(0, std::memory_order_release);
  }

 private:
  static std::int64_t steady_now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // 0 = no deadline
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

inline CancelTokenPtr make_cancel_token() {
  return std::make_shared<CancelToken>();
}

}  // namespace aoadmm
