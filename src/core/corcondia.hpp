// CORCONDIA — the core consistency diagnostic of Bro & Kiers (2003), the
// standard tool for judging whether a CPD's rank is appropriate. The CPD
// implicitly assumes a superdiagonal core tensor; CORCONDIA fits the
// unconstrained least-squares core G given the factors,
//     G = X ×₁ A⁺ ×₂ B⁺ ×₃ C⁺,
// and measures how close G is to the F x F x F identity:
//     corcondia = 100 · (1 − ‖G − I‖² / F).
// Near 100 ⇒ the trilinear model is appropriate; near/below 0 ⇒ the rank
// is too high or the data is not trilinear.
//
// The core is computed without materializing any dense intermediate by
// streaming over the non-zeros: G(p,q,r) = Σ_nnz x(i,j,k) · P₀(i,p) ·
// P₁(j,q) · P₂(k,r) with P_m = A_m (A_mᵀ A_m)⁻¹, at O(nnz · F³) cost —
// practical for the low ranks where the diagnostic is meaningful.
#pragma once

#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace aoadmm {

/// Compute the diagnostic for a three-mode tensor and its CPD factors.
/// Requires order == 3, matching dims, a common rank F, and full
/// column-rank factors (A_mᵀA_m must be invertible). Throws
/// InvalidArgument / NumericalError otherwise.
real_t corcondia(const CooTensor& x, cspan<const Matrix> factors);

/// The raw least-squares core tensor (F x F x F), returned as an F x F²
/// matricization G(1) with columns ordered (q fastest). Exposed for tests
/// and for users who want to inspect off-superdiagonal structure.
Matrix corcondia_core(const CooTensor& x, cspan<const Matrix> factors);

}  // namespace aoadmm
