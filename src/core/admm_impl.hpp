// Internal helpers shared by the baseline and blocked ADMM variants.
#pragma once

#include <cmath>
#include <limits>

#include "core/admm.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "util/error.hpp"

namespace aoadmm::detail {

/// The Cholesky guard a RobustnessOptions block configures.
inline CholeskyGuard to_guard(const RobustnessOptions& rb) noexcept {
  return {rb.cholesky_max_attempts, rb.cholesky_initial_jitter,
          rb.cholesky_jitter_growth};
}

/// ρ = trace(G)/F (Algorithm 1, line 3), floored away from zero so the
/// normal equations stay positive definite even for degenerate factors.
inline real_t admm_penalty(const Matrix& g) {
  const std::size_t f = g.rows();
  real_t trace = 0;
  for (std::size_t i = 0; i < f; ++i) {
    trace += g(i, i);
  }
  real_t rho = trace / static_cast<real_t>(f);
  if (!(rho > real_t{1e-12})) {
    rho = real_t{1e-12};
  }
  return rho;
}

/// G + ρI, the system matrix factored once per ADMM call (line 4).
inline Matrix regularized_gram(const Matrix& g, real_t rho) {
  Matrix out = g;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    out(i, i) += rho;
  }
  return out;
}

/// Allocation-free variant: writes G + ρI into `out` (resized only when the
/// rank changes) — the form the solver session uses on its hot path.
inline void regularized_gram_into(const Matrix& g, real_t rho, Matrix& out) {
  if (!out.same_shape(g)) {
    out.resize(g.rows(), g.cols());
  }
  const cspan<real_t> src = g.flat();
  const span<real_t> dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = src[i];
  }
  for (std::size_t i = 0; i < g.rows(); ++i) {
    out(i, i) += rho;
  }
}

struct ResidualAccum {
  real_t primal_num = 0;
  real_t primal_den = 0;
  real_t dual_num = 0;
  real_t dual_den = 0;

  void merge(const ResidualAccum& o) noexcept {
    primal_num += o.primal_num;
    primal_den += o.primal_den;
    dual_num += o.dual_num;
    dual_den += o.dual_den;
  }

  real_t primal() const noexcept {
    return primal_num / (primal_den > 0 ? primal_den : real_t{1});
  }
  real_t dual() const noexcept {
    // Algorithm 1 normalizes by ‖U‖², which vanishes when the constraints
    // are inactive (the dual settles at zero) and would stall convergence
    // detection on an already-exact iterate. Floor the denominator at a
    // tiny fraction of ‖H‖² so "both numerator and dual are negligible"
    // counts as converged.
    const real_t floor_den = real_t{1e-12} * primal_den + real_t{1e-300};
    return dual_num / (dual_den > floor_den ? dual_den : floor_den);
  }
  bool converged(real_t eps) const noexcept {
    return primal() < eps && dual() < eps;
  }
};

/// Per-inner-solve divergence detector. An iterate is declared divergent
/// when its residual accumulators go non-finite (NaN/Inf contamination
/// propagates into the sums within one iteration), or when the relative
/// primal residual both exceeds 1 — a 100% residual, far outside any
/// convergent regime — and has grown past `factor` times the best residual
/// this solve has seen. The two-part growth test avoids false positives on
/// iterates whose residual merely wobbles near convergence.
struct DivergenceMonitor {
  real_t best_primal = std::numeric_limits<real_t>::infinity();

  bool diverged(const ResidualAccum& acc, real_t factor) noexcept {
    const real_t probe =
        acc.primal_num + acc.primal_den + acc.dual_num + acc.dual_den;
    if (!std::isfinite(probe)) {
      return true;
    }
    const real_t p = acc.primal();
    if (p < best_primal) {
      best_primal = p;
      return false;
    }
    return p > real_t{1} && p > factor * best_primal;
  }
};

/// Residual-balancing decision (AdaptiveRhoOptions): the factor to multiply
/// ρ by, or 0 when the residuals are balanced (or non-finite — divergence
/// recovery owns that case, not rebalancing).
inline real_t rebalance_scale(const ResidualAccum& acc,
                              const AdaptiveRhoOptions& ad) noexcept {
  const real_t p = acc.primal();
  const real_t d = acc.dual();
  if (!(std::isfinite(p) && std::isfinite(d))) {
    return 0;
  }
  if (p > ad.ratio * d) {
    return ad.rescale;
  }
  if (d > ad.ratio * p) {
    return real_t{1} / ad.rescale;
  }
  return 0;
}

/// Rescale the scaled duals after ρ ← scale·ρ: u = y/ρ, so u ← u/scale
/// keeps the underlying multiplier y unchanged.
inline void rescale_duals(Matrix& u, real_t scale) noexcept {
  const real_t inv = real_t{1} / scale;
  for (real_t& v : u.flat()) {
    v *= inv;
  }
}

/// Least-squares step for rows [lo, hi): aux ← (G+ρI)⁻¹(K + ρ(H + U))
/// (Algorithm 1, line 6). Serial over the range; callers parallelize.
inline void admm_solve_rows(const Matrix& h, const Matrix& u, const Matrix& k,
                            real_t rho, const Cholesky& chol, Matrix& aux,
                            std::size_t lo, std::size_t hi) noexcept {
  const std::size_t f = h.cols();
  for (std::size_t i = lo; i < hi; ++i) {
    const real_t* __restrict hr = h.data() + i * f;
    const real_t* __restrict ur = u.data() + i * f;
    const real_t* __restrict kr = k.data() + i * f;
    real_t* __restrict ar = aux.data() + i * f;
    for (std::size_t c = 0; c < f; ++c) {
      ar[c] = kr[c] + rho * (hr[c] + ur[c]);
    }
    chol.solve_inplace({ar, f});
  }
}

/// Primal candidate for rows [lo, hi): h_old ← H; H ← Ĥ − U where
/// Ĥ = α·H̃ + (1−α)·H₀ is the (optionally over-relaxed) least-squares
/// iterate, written back into `aux` so the dual step sees it (lines 7–8
/// before the prox). The prox itself is applied by the caller so operators
/// that need whole rows see them contiguously.
inline void admm_primal_prep_rows(Matrix& h, const Matrix& u, Matrix& aux,
                                  Matrix& h_old, real_t alpha,
                                  std::size_t lo, std::size_t hi) noexcept {
  const std::size_t f = h.cols();
  for (std::size_t i = lo; i < hi; ++i) {
    real_t* __restrict hr = h.data() + i * f;
    real_t* __restrict ho = h_old.data() + i * f;
    const real_t* __restrict ur = u.data() + i * f;
    real_t* __restrict ar = aux.data() + i * f;
    if (alpha != real_t{1}) {
      for (std::size_t c = 0; c < f; ++c) {
        ho[c] = hr[c];
        ar[c] = alpha * ar[c] + (real_t{1} - alpha) * ho[c];
        hr[c] = ar[c] - ur[c];
      }
    } else {
      for (std::size_t c = 0; c < f; ++c) {
        ho[c] = hr[c];
        hr[c] = ar[c] - ur[c];
      }
    }
  }
}

/// Dual update + residual accumulation for rows [lo, hi): U ← U + H − H̃
/// (line 9) and the four norms of lines 10–11.
inline ResidualAccum admm_dual_rows(const Matrix& h, Matrix& u,
                                    const Matrix& aux, const Matrix& h_old,
                                    std::size_t lo, std::size_t hi) noexcept {
  const std::size_t f = h.cols();
  ResidualAccum acc;
  for (std::size_t i = lo; i < hi; ++i) {
    const real_t* __restrict hr = h.data() + i * f;
    real_t* __restrict ur = u.data() + i * f;
    const real_t* __restrict ar = aux.data() + i * f;
    const real_t* __restrict ho = h_old.data() + i * f;
    for (std::size_t c = 0; c < f; ++c) {
      const real_t diff = hr[c] - ar[c];
      ur[c] += diff;
      acc.primal_num += diff * diff;
      acc.primal_den += hr[c] * hr[c];
      const real_t step = hr[c] - ho[c];
      acc.dual_num += step * step;
      acc.dual_den += ur[c] * ur[c];
    }
  }
  return acc;
}

}  // namespace aoadmm::detail
