#include <algorithm>
#include <chrono>
#include <vector>

#include "core/admm.hpp"
#include "core/admm_impl.hpp"
#include "la/cholesky.hpp"
#include "obs/parallel_stats.hpp"
#include "obs/profile.hpp"
#include "parallel/partition.hpp"
#include "parallel/runtime.hpp"
#include "util/error.hpp"

namespace aoadmm {

std::size_t auto_block_size(std::size_t rank,
                            std::size_t cache_bytes) noexcept {
  const std::size_t bytes_per_row = 5 * rank * sizeof(real_t);
  const std::size_t rows =
      bytes_per_row > 0 ? cache_bytes / bytes_per_row : std::size_t{512};
  return std::clamp<std::size_t>(rows, 8, 512);
}

namespace {

/// The blocked variant restructured for residual-balancing adaptive ρ.
/// Rebalancing needs a *global* residual picture and a shared refactorable
/// system, both of which the free-running blocks of the default path never
/// materialize mid-solve. So when adaptive ρ is on, the inner loop runs in
/// bounded sweeps: every unfinished block iterates up to `check_every`
/// times (cache-resident, barrier-free within the sweep), then the blocks'
/// residuals are aggregated, ρ is rebalanced if they drifted apart, and the
/// Cholesky is refactored. A rebalance voids prior per-block convergence
/// verdicts (the residual scales changed), so those blocks re-enter the
/// next sweep within their remaining iteration budget.
AdmmResult admm_update_blocked_adaptive(Matrix& h, Matrix& u, const Matrix& k,
                                        const Matrix& g,
                                        const ProxOperator& prox,
                                        const AdmmOptions& opts,
                                        AdmmScratch& scratch) {
  AOADMM_PROFILE_SCOPE("admm/blocked");
  const std::size_t rows = h.rows();
  const std::size_t f = h.cols();
  AOADMM_CHECK(u.rows() == rows && u.cols() == f);
  AOADMM_CHECK(k.rows() == rows && k.cols() == f);
  AOADMM_CHECK(g.rows() == f && g.cols() == f);
  const std::size_t block_size =
      opts.block_size > 0 ? opts.block_size : auto_block_size(f);
  AOADMM_CHECK_MSG(opts.relaxation > 0 && opts.relaxation < 2,
                   "relaxation must lie in (0, 2)");
  scratch.ensure(rows, f);
  Matrix& aux = scratch.aux;
  Matrix& h_old = scratch.h_old;

  const RobustnessOptions& rb = opts.robustness;
  const AdaptiveRhoOptions& ad = opts.adaptive;
  real_t rho = detail::admm_penalty(g);
  if (rb.enabled) {
    scratch.h_entry = h;
  }

  const std::size_t nblocks = num_blocks(rows, block_size);
  const unsigned sweep_len = ad.check_every > 0 ? ad.check_every : 1;

  AdmmResult result;
  unsigned restarts = 0;
  bool abandoned = false;

  const auto factor_system = [&] {
    detail::regularized_gram_into(g, rho, scratch.sys);
    if (rb.enabled) {
      const CholeskyReport cr =
          scratch.chol.factor_guarded(scratch.sys, detail::to_guard(rb));
      result.cholesky_attempts += cr.attempts;
      if (cr.jitter > result.cholesky_jitter) {
        result.cholesky_jitter = cr.jitter;
      }
    } else {
      scratch.chol.factor(scratch.sys);
    }
  };

  // Per-block progress state, persistent across sweeps within one restart
  // attempt. Heap use here is gated behind ad.enabled, so the default
  // path's zero-allocation steady state is untouched.
  std::vector<unsigned> iters_used(nblocks);
  std::vector<unsigned char> block_done(nblocks);
  std::vector<detail::ResidualAccum> block_acc(nblocks);

  using clock = std::chrono::steady_clock;
  obs::BusyTimes busy(max_threads());

  /// Run block b for up to `budget` more iterations against the current
  /// ρ/Cholesky; returns through the per-block slots (no shared writes).
  const auto run_block = [&](std::size_t b, unsigned budget,
                             bool& diverged_out, std::uint64_t& rows_out) {
    AOADMM_PROFILE_SCOPE("admm/blocked/block");
    const auto [lo, hi] = block_range(rows, block_size, b);
    detail::DivergenceMonitor monitor;
    detail::ResidualAccum acc;
    unsigned ran = 0;
    for (; ran < budget;) {
      detail::admm_solve_rows(h, u, k, rho, scratch.chol, aux, lo, hi);
      detail::admm_primal_prep_rows(h, u, aux, h_old, opts.relaxation, lo,
                                    hi);
      prox.apply(h, lo, hi, rho);
      acc = detail::admm_dual_rows(h, u, aux, h_old, lo, hi);
      ++ran;
      if (rb.enabled && monitor.diverged(acc, rb.divergence_factor)) {
        diverged_out = true;
        break;
      }
      if (acc.converged(opts.tolerance)) {
        block_done[b] = 1;
        break;
      }
    }
    iters_used[b] += ran;
    block_acc[b] = acc;
    rows_out += static_cast<std::uint64_t>(ran) * (hi - lo);
  };

  for (;;) {  // divergence-restart attempts (same policy as the default)
    factor_system();
    std::fill(iters_used.begin(), iters_used.end(), 0u);
    std::fill(block_done.begin(), block_done.end(),
              static_cast<unsigned char>(0));
    std::fill(block_acc.begin(), block_acc.end(), detail::ResidualAccum{});
    bool any_diverged = false;

    for (;;) {  // sweeps
      bool sweep_ran_any = false;
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
      {
        bool local_diverged = false;
        bool local_ran = false;
        std::uint64_t local_rows = 0;
        double busy_seconds = 0;
#pragma omp for schedule(dynamic, 1) nowait
        for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks);
             ++b) {
          const auto bb = static_cast<std::size_t>(b);
          if (block_done[bb] || iters_used[bb] >= opts.max_iterations) {
            continue;
          }
          const auto t0 = clock::now();
          const unsigned budget =
              std::min(sweep_len, opts.max_iterations - iters_used[bb]);
          run_block(bb, budget, local_diverged, local_rows);
          local_ran = true;
          busy_seconds +=
              std::chrono::duration<double>(clock::now() - t0).count();
        }
        busy.add(thread_id(), busy_seconds);
#pragma omp critical(aoadmm_admm_adaptive_merge)
        {
          any_diverged = any_diverged || local_diverged;
          sweep_ran_any = sweep_ran_any || local_ran;
          result.row_iterations += local_rows;
        }
      }
#else
      {
        const auto t0 = clock::now();
        std::uint64_t serial_rows = 0;
        for (std::size_t b = 0; b < nblocks; ++b) {
          if (block_done[b] || iters_used[b] >= opts.max_iterations) {
            continue;
          }
          const unsigned budget =
              std::min(sweep_len, opts.max_iterations - iters_used[b]);
          run_block(b, budget, any_diverged, serial_rows);
          sweep_ran_any = true;
        }
        result.row_iterations += serial_rows;
        busy.add(0, std::chrono::duration<double>(clock::now() - t0).count());
      }
#endif
      if (any_diverged || !sweep_ran_any) {
        break;
      }
      bool all_finished = true;
      for (std::size_t b = 0; b < nblocks; ++b) {
        all_finished = all_finished &&
                       (block_done[b] || iters_used[b] >= opts.max_iterations);
      }
      if (all_finished) {
        break;
      }
      if (result.rho_rebalances < ad.max_rescales) {
        detail::ResidualAccum global;
        for (const detail::ResidualAccum& a : block_acc) {
          global.merge(a);
        }
        const real_t scale = detail::rebalance_scale(global, ad);
        if (scale != 0) {
          rho *= scale;
          detail::rescale_duals(u, scale);
          factor_system();
          ++result.rho_rebalances;
          // Convergence verdicts were issued under the old ρ; blocks with
          // budget left get to re-check under the new one.
          std::fill(block_done.begin(), block_done.end(),
                    static_cast<unsigned char>(0));
        }
      }
    }

    unsigned max_block_iters = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      max_block_iters = std::max(max_block_iters, iters_used[b]);
    }
    result.iterations += max_block_iters;

    if (!any_diverged) {
      break;
    }
    if (restarts >= rb.max_recoveries) {
      h = scratch.h_entry;
      u.zero();
      std::fill(block_acc.begin(), block_acc.end(), detail::ResidualAccum{});
      abandoned = true;
      break;
    }
    ++restarts;
    rho *= rb.rho_rescale;
    h = scratch.h_entry;
    u.zero();
  }

  real_t worst_primal = 0;
  real_t worst_dual = 0;
  for (const detail::ResidualAccum& a : block_acc) {
    worst_primal = std::max(worst_primal, a.primal());
    worst_dual = std::max(worst_dual, a.dual());
  }
  if (abandoned) {
    worst_primal = 0;
    worst_dual = 0;
  }

  result.restarts = restarts;
  result.abandoned = abandoned;
  result.rho = rho;
  result.primal_residual = worst_primal;
  result.dual_residual = worst_dual;
  return result;
}

}  // namespace

AdmmResult admm_update_blocked(Matrix& h, Matrix& u, const Matrix& k,
                               const Matrix& g, const ProxOperator& prox,
                               const AdmmOptions& opts, AdmmScratch& scratch) {
  if (opts.adaptive.enabled) {
    return admm_update_blocked_adaptive(h, u, k, g, prox, opts, scratch);
  }
  AOADMM_PROFILE_SCOPE("admm/blocked");
  const std::size_t rows = h.rows();
  const std::size_t f = h.cols();
  AOADMM_CHECK(u.rows() == rows && u.cols() == f);
  AOADMM_CHECK(k.rows() == rows && k.cols() == f);
  AOADMM_CHECK(g.rows() == f && g.cols() == f);
  const std::size_t block_size =
      opts.block_size > 0 ? opts.block_size : auto_block_size(f);
  AOADMM_CHECK_MSG(opts.relaxation > 0 && opts.relaxation < 2,
                   "relaxation must lie in (0, 2)");
  scratch.ensure(rows, f);
  Matrix& aux = scratch.aux;
  Matrix& h_old = scratch.h_old;

  // One penalty and one Cholesky are still shared by every block: the
  // blockwise reformulation splits only the row dimension, and the
  // F x F system matrix does not depend on rows.
  const RobustnessOptions& rb = opts.robustness;
  real_t rho = detail::admm_penalty(g);
  if (rb.enabled) {
    // Entry snapshot for divergence restarts and the abandon path.
    scratch.h_entry = h;
  }

  const std::size_t nblocks = num_blocks(rows, block_size);

  AdmmResult result;
  unsigned restarts = 0;
  bool abandoned = false;
  real_t worst_primal = 0;
  real_t worst_dual = 0;

  using clock = std::chrono::steady_clock;
  obs::BusyTimes busy(max_threads());

  // Divergence-recovery attempts. A restart is global — one block blowing
  // up restarts every block from the entry iterate with a rescaled penalty
  // — because the blocks share G and the outer AO step consumes the whole
  // factor; per-block rho values would break the shared factorization.
  for (;;) {
    detail::regularized_gram_into(g, rho, scratch.sys);
    if (rb.enabled) {
      const CholeskyReport cr =
          scratch.chol.factor_guarded(scratch.sys, detail::to_guard(rb));
      result.cholesky_attempts += cr.attempts;
      if (cr.jitter > result.cholesky_jitter) {
        result.cholesky_jitter = cr.jitter;
      }
    } else {
      scratch.chol.factor(scratch.sys);
    }
    const Cholesky& chol = scratch.chol;

    unsigned max_block_iters = 0;
    std::uint64_t total_row_iters = 0;
    worst_primal = 0;
    worst_dual = 0;
    bool any_diverged = false;

    /// One block's whole inner loop: its primal/dual/aux rows stay
    /// cache-resident throughout, and no barrier with other blocks ever
    /// happens (§IV.B). Each block watches its own residuals for blow-up.
    const auto run_block = [&](std::size_t b, unsigned& iters_out,
                               detail::ResidualAccum& acc_out,
                               bool& diverged_out) {
      AOADMM_PROFILE_SCOPE("admm/blocked/block");
      const auto [lo, hi] = block_range(rows, block_size, b);
      detail::DivergenceMonitor monitor;
      detail::ResidualAccum acc;
      unsigned iters = 0;
      for (; iters < opts.max_iterations;) {
        detail::admm_solve_rows(h, u, k, rho, chol, aux, lo, hi);
        detail::admm_primal_prep_rows(h, u, aux, h_old, opts.relaxation, lo,
                                      hi);
        prox.apply(h, lo, hi, rho);
        acc = detail::admm_dual_rows(h, u, aux, h_old, lo, hi);
        ++iters;
        if (rb.enabled && monitor.diverged(acc, rb.divergence_factor)) {
          diverged_out = true;
          break;
        }
        if (acc.converged(opts.tolerance)) {
          break;
        }
      }
      iters_out = iters;
      acc_out = acc;
    };

    // Blocks are equal-sized but converge after different iteration counts,
    // so they are dynamically scheduled (§IV.B). Each thread accumulates its
    // own busy time across the blocks it ran for the imbalance report.
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
    {
      unsigned local_max_iters = 0;
      std::uint64_t local_row_iters = 0;
      real_t local_worst_primal = 0;
      real_t local_worst_dual = 0;
      bool local_diverged = false;
      double busy_seconds = 0;

#pragma omp for schedule(dynamic, 1) nowait
      for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks);
           ++b) {
        const auto t0 = clock::now();
        unsigned iters = 0;
        detail::ResidualAccum acc;
        run_block(static_cast<std::size_t>(b), iters, acc, local_diverged);
        busy_seconds +=
            std::chrono::duration<double>(clock::now() - t0).count();

        const auto [lo, hi] =
            block_range(rows, block_size, static_cast<std::size_t>(b));
        local_max_iters = std::max(local_max_iters, iters);
        local_row_iters += static_cast<std::uint64_t>(iters) * (hi - lo);
        local_worst_primal = std::max(local_worst_primal, acc.primal());
        local_worst_dual = std::max(local_worst_dual, acc.dual());
      }
      busy.add(thread_id(), busy_seconds);

#pragma omp critical(aoadmm_admm_blocked_merge)
      {
        max_block_iters = std::max(max_block_iters, local_max_iters);
        total_row_iters += local_row_iters;
        worst_primal = std::max(worst_primal, local_worst_primal);
        worst_dual = std::max(worst_dual, local_worst_dual);
        any_diverged = any_diverged || local_diverged;
      }
    }
#else
    {
      const auto t0 = clock::now();
      for (std::size_t b = 0; b < nblocks; ++b) {
        unsigned iters = 0;
        detail::ResidualAccum acc;
        run_block(b, iters, acc, any_diverged);
        const auto [lo, hi] = block_range(rows, block_size, b);
        max_block_iters = std::max(max_block_iters, iters);
        total_row_iters += static_cast<std::uint64_t>(iters) * (hi - lo);
        worst_primal = std::max(worst_primal, acc.primal());
        worst_dual = std::max(worst_dual, acc.dual());
      }
      busy.add(0, std::chrono::duration<double>(clock::now() - t0).count());
    }
#endif

    result.iterations += max_block_iters;
    result.row_iterations += total_row_iters;

    if (!any_diverged) {
      break;
    }
    if (restarts >= rb.max_recoveries) {
      // Out of retries: roll the primal back to the entry iterate and reset
      // the duals so the caller keeps a sane (if stale) factor.
      h = scratch.h_entry;
      u.zero();
      worst_primal = 0;
      worst_dual = 0;
      abandoned = true;
      break;
    }
    ++restarts;
    rho *= rb.rho_rescale;
    h = scratch.h_entry;
    u.zero();
  }

  result.restarts = restarts;
  result.abandoned = abandoned;
  result.rho = rho;
  result.primal_residual = worst_primal;
  result.dual_residual = worst_dual;
  return result;
}

}  // namespace aoadmm
