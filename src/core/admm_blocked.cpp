#include <algorithm>

#include "core/admm.hpp"
#include "core/admm_impl.hpp"
#include "la/cholesky.hpp"
#include "parallel/partition.hpp"
#include "util/error.hpp"

namespace aoadmm {

std::size_t auto_block_size(std::size_t rank,
                            std::size_t cache_bytes) noexcept {
  const std::size_t bytes_per_row = 5 * rank * sizeof(real_t);
  const std::size_t rows =
      bytes_per_row > 0 ? cache_bytes / bytes_per_row : std::size_t{512};
  return std::clamp<std::size_t>(rows, 8, 512);
}

AdmmResult admm_update_blocked(Matrix& h, Matrix& u, const Matrix& k,
                               const Matrix& g, const ProxOperator& prox,
                               const AdmmOptions& opts, AdmmScratch& scratch) {
  const std::size_t rows = h.rows();
  const std::size_t f = h.cols();
  AOADMM_CHECK(u.rows() == rows && u.cols() == f);
  AOADMM_CHECK(k.rows() == rows && k.cols() == f);
  AOADMM_CHECK(g.rows() == f && g.cols() == f);
  const std::size_t block_size =
      opts.block_size > 0 ? opts.block_size : auto_block_size(f);
  AOADMM_CHECK_MSG(opts.relaxation > 0 && opts.relaxation < 2,
                   "relaxation must lie in (0, 2)");
  scratch.ensure(rows, f);
  Matrix& aux = scratch.aux;
  Matrix& h_old = scratch.h_old;

  // One penalty and one Cholesky are still shared by every block: the
  // blockwise reformulation splits only the row dimension, and the
  // F x F system matrix does not depend on rows.
  const real_t rho = detail::admm_penalty(g);
  const Cholesky chol(detail::regularized_gram(g, rho));

  const std::size_t nblocks = num_blocks(rows, block_size);

  AdmmResult result;
  unsigned max_block_iters = 0;
  std::uint64_t total_row_iters = 0;
  real_t worst_primal = 0;
  real_t worst_dual = 0;

  // Blocks are equal-sized but converge after different iteration counts,
  // so they are dynamically scheduled (§IV.B).
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 1) \
    reduction(max : max_block_iters, worst_primal, worst_dual) \
    reduction(+ : total_row_iters)
#endif
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks); ++b) {
    const auto [lo, hi] =
        block_range(rows, block_size, static_cast<std::size_t>(b));
    const std::size_t brows = hi - lo;

    detail::ResidualAccum acc;
    unsigned iters = 0;
    // The whole inner loop runs on this block before the thread moves on —
    // the block's primal/dual/aux rows stay cache-resident throughout, and
    // no barrier with other blocks ever happens.
    for (; iters < opts.max_iterations;) {
      detail::admm_solve_rows(h, u, k, rho, chol, aux, lo, hi);
      detail::admm_primal_prep_rows(h, u, aux, h_old, opts.relaxation, lo, hi);
      prox.apply(h, lo, hi, rho);
      acc = detail::admm_dual_rows(h, u, aux, h_old, lo, hi);
      ++iters;
      if (acc.converged(opts.tolerance)) {
        break;
      }
    }

    max_block_iters = std::max(max_block_iters, iters);
    total_row_iters += static_cast<std::uint64_t>(iters) * brows;
    worst_primal = std::max(worst_primal, acc.primal());
    worst_dual = std::max(worst_dual, acc.dual());
  }

  result.iterations = max_block_iters;
  result.row_iterations = total_row_iters;
  result.primal_residual = worst_primal;
  result.dual_residual = worst_dual;
  return result;
}

}  // namespace aoadmm
