// Options and result types for constrained CPD, plus the legacy free-
// function entry points. The primary API is the CpdSolver session
// (core/solver.hpp), which validates its configuration up front and reuses
// all solver state across repeated solves:
//
//   CooTensor x = read_tns_file("data.tns");
//   CsfSet csf(x);
//   CpdConfig cfg = CpdConfig()
//       .with_rank(50)
//       .with_constraints(
//           ModeConstraints::broadcast({ConstraintKind::kNonNegative}));
//   CpdSolver solver(csf, cfg);
//   CpdResult r = solver.solve();
//
// Convergence follows the paper (§V.A): factorization quality is the
// relative error ‖X − M‖_F/‖X‖_F, and the loop stops when it improves by
// less than `tolerance` or after `max_outer_iterations`.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/admm.hpp"
#include "core/prox.hpp"
#include "core/trace.hpp"
#include "la/matrix.hpp"
#include "mttkrp/mttkrp.hpp"
#include "obs/snapshot.hpp"
#include "tensor/csf.hpp"

namespace aoadmm {

/// Which ADMM inner solver the driver uses.
enum class AdmmVariant {
  kBaseline,  // §IV.A kernel-parallel
  kBlocked,   // §IV.B blockwise reformulation
};

const char* to_string(AdmmVariant v) noexcept;

/// Why the outer loop stopped. kCancelled/kDeadline come from a cooperative
/// CancelToken (core/cancel.hpp) checked once per outer iteration; the
/// returned factors are the iterate of the last completed iteration.
enum class StopReason {
  kConverged,      // tolerance reached
  kMaxIterations,  // iteration cap hit without converging
  kCancelled,      // CancelToken::cancel() observed
  kDeadline,       // CancelToken deadline expired
};

const char* to_string(StopReason r) noexcept;

struct CpdOptions {
  rank_t rank = 16;
  unsigned max_outer_iterations = 200;
  /// Stop when the relative error improves by less than this (paper: 1e-6).
  real_t tolerance = 1e-6;
  AdmmOptions admm;
  AdmmVariant variant = AdmmVariant::kBlocked;
  /// Leaf-factor storage during MTTKRP (Table II: DENSE / CSR / CSR-H).
  LeafFormat leaf_format = LeafFormat::kDense;
  /// Which MTTKRP driver the solver runs (kAuto follows the CsfSet: tiled
  /// compilations run kTiled, otherwise the strategy's ALLMODE/ONEMODE
  /// kernels).
  MttkrpKernel mttkrp_kernel = MttkrpKernel::kAuto;
  /// Scatter/scheduling policy inside the MTTKRP kernels (see
  /// mttkrp/mttkrp.hpp; kDynamic is the legacy atomic ablation baseline).
  MttkrpSchedule mttkrp_schedule = MttkrpSchedule::kAuto;
  /// Leaf-mode tile height intended for the CsfSet compilation (0 = no
  /// tiling). The tiling itself happens when the CsfSet is built — this
  /// field exists so validate() can cross-check it against mttkrp_kernel
  /// and leaf_format, and so drivers like tensor_tool have one place to
  /// read it from.
  index_t mttkrp_tile_rows = 0;
  /// Exploit factor sparsity only below this density (paper: 20%).
  real_t sparsity_threshold = 0.20;
  std::uint64_t seed = 123;
  bool record_trace = true;
  /// Invoked at the end of every outer iteration with that iteration's
  /// metrics (relative error, per-mode MTTKRP seconds, ADMM residuals,
  /// thread imbalance, ... — see obs/snapshot.hpp). Called exactly
  /// `outer_iterations` times. Leave empty to skip snapshot assembly (the
  /// per-iteration factor-density measurement is only done when set).
  std::function<void(const obs::MetricsSnapshot&)> on_iteration;
};

/// Wall-clock decomposition of a factorization (paper Fig. 3).
struct KernelBreakdown {
  double mttkrp_seconds = 0;
  double admm_seconds = 0;
  /// Gram products, fit evaluation, sparse-mirror construction, misc.
  double other_seconds = 0;
  double total_seconds = 0;

  double mttkrp_fraction() const noexcept {
    return total_seconds > 0 ? mttkrp_seconds / total_seconds : 0;
  }
  double admm_fraction() const noexcept {
    return total_seconds > 0 ? admm_seconds / total_seconds : 0;
  }
  double other_fraction() const noexcept {
    return total_seconds > 0
               ? 1.0 - mttkrp_fraction() - admm_fraction()
               : 0;
  }
};

struct CpdResult {
  std::vector<Matrix> factors;
  /// Observed-entry relative error ‖X − M‖_F/‖X‖_F (over all cells on the
  /// quadratic fast path, over Ω on the generalized loss path).
  real_t relative_error = 1;
  /// Final loss objective Σ g(x, m) (+ zero-fill term). Only set by the
  /// generalized loss path; 0 for the Frobenius fast path.
  double objective_value = 0;
  /// Per-outer-iteration objective values, same length as the trace.
  /// Empty on the Frobenius fast path.
  std::vector<double> objective_trace;
  unsigned outer_iterations = 0;
  bool converged = false;
  /// Why the loop stopped (kConverged iff `converged`).
  StopReason stop_reason = StopReason::kMaxIterations;
  ConvergenceTrace trace;
  KernelBreakdown times;
  /// Sum over all factor updates of the ADMM iterations they ran.
  std::uint64_t total_inner_iterations = 0;
  /// Sum over all updates of per-row inner iterations (work measure).
  std::uint64_t total_row_iterations = 0;
  /// How many MTTKRP calls used a compressed leaf factor.
  std::uint64_t sparse_mttkrp_count = 0;
  std::uint64_t mttkrp_count = 0;
  /// Density of each factor at termination (nnz / (I·F)).
  std::vector<real_t> factor_density;
  /// Every numerical intervention the guard rails performed (empty unless
  /// RobustnessOptions::enabled and something actually went wrong).
  RecoveryReport recovery;
};

/// Constrained CPD via AO-ADMM. `constraints` has either one entry
/// (broadcast to all modes) or one per mode.
///
/// Deprecated shim over a throwaway CpdSolver session: prefer CpdSolver
/// (core/solver.hpp) with an explicit ModeConstraints, which validates the
/// configuration up front and reuses state across repeated solves.
CpdResult cpd_aoadmm(const CsfSet& csf, const CpdOptions& opts,
                     cspan<const ConstraintSpec> constraints);

/// Unconstrained (or ridge-regularized) CPD via ALS — the classical
/// baseline AO-ADMM generalizes (§II.C: "when no constraints are enforced,
/// AO becomes ALS"). Uses rank/seed/tolerance/max_outer_iterations from
/// `opts`; admm/variant/leaf options are ignored.
CpdResult cpd_als(const CsfSet& csf, const CpdOptions& opts,
                  real_t ridge = 0);

}  // namespace aoadmm
