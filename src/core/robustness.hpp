// Numerical fault tolerance for the AO-ADMM stack.
//
// The inner solve is numerically fragile by construction: the penalty is
// fixed to ρ = tr(G)/F and G + ρI is factorized once per mode (Algorithm 1,
// line 3), so a corrupted or contaminated Gram matrix kills the run via
// NumericalError, and nothing detects NaN/Inf contamination or residual
// blow-up. RobustnessOptions gates a layered set of guard rails:
//
//  * guarded Cholesky — on a non-positive pivot, escalate a diagonal ridge
//    geometrically (bounded jitter retries) instead of throwing;
//  * ADMM divergence recovery — monitor primal/dual residuals per inner
//    solve and, on blow-up or non-finite values, rescale ρ, reset the
//    duals, and retry the inner solve a bounded number of times;
//  * NaN/Inf sentinels — cheap vectorized finite-checks on MTTKRP output
//    and factor updates, with bounded recompute/rollback recovery.
//
// Every intervention is recorded as a RecoveryEvent and surfaced in the
// RecoveryReport on CpdResult, and counted in the obs metrics registry
// (robust/* counters). All guard rails are off by default: with
// `enabled == false` the solver behaves exactly as before (fail fast).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/telemetry/trace_context.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// Gate + tuning knobs for the numerical guard rails. Carried on
/// AdmmOptions (and therefore CpdOptions/CpdConfig); see
/// CpdConfig::with_robustness().
struct RobustnessOptions {
  /// Master switch. Off means every guard rail is bypassed and numerical
  /// failures throw exactly as they always did.
  bool enabled = false;

  // --- Guarded Cholesky (la/cholesky.hpp: Cholesky::factor_guarded) ---
  /// Jitter retries after the plain attempt fails. Each retry adds
  /// `cholesky_initial_jitter * growth^k` (relative to the largest diagonal
  /// magnitude) to the diagonal before refactoring.
  unsigned cholesky_max_attempts = 8;
  real_t cholesky_initial_jitter = 1e-10;
  real_t cholesky_jitter_growth = 100;

  // --- ADMM divergence recovery ---
  /// An inner solve is declared divergent when its residual accumulators go
  /// non-finite, or the relative primal residual exceeds 1 AND has grown
  /// past `divergence_factor` times the best residual seen in the solve.
  real_t divergence_factor = 1e4;
  /// Bounded retries for a divergent inner solve (primal restored to its
  /// entry iterate, duals reset, ρ multiplied by rho_rescale) and for the
  /// non-finite MTTKRP recompute. After the budget is exhausted the update
  /// is abandoned and the previous iterate kept.
  unsigned max_recoveries = 3;
  real_t rho_rescale = 10;

  // --- NaN/Inf sentinels ---
  /// Finite-check MTTKRP outputs (recompute on contamination) and factor
  /// updates (roll back to the pre-update iterate on contamination).
  bool check_finite = true;
};

/// What kind of intervention a guard rail performed.
enum class RecoveryKind {
  /// Cholesky needed a diagonal ridge to factorize (magnitude = ridge).
  kCholeskyJitter,
  /// A divergent inner ADMM solve was restarted with rescaled ρ and reset
  /// duals (magnitude = final ρ, attempts = restarts used).
  kAdmmRestart,
  /// The inner solve still diverged after every restart; the factor was
  /// rolled back to its entry iterate and the update skipped.
  kAdmmAbandoned,
  /// Non-finite MTTKRP output detected; the kernel was re-run
  /// (attempts = recomputes needed to obtain a finite result).
  kMttkrpRetry,
  /// A factor update produced non-finite entries; the factor was rolled
  /// back to its pre-update iterate and the mode's duals were reset.
  kFactorRollback,
  /// A checkpoint write failed; the previous checkpoint file was left
  /// intact and the solve continued.
  kCheckpointWriteFailure,
  /// Residual-balancing adaptive ρ rescaled the penalty mid-solve
  /// (attempts = rescales performed, magnitude = final ρ). Reported
  /// whenever AdaptiveRhoOptions::enabled fires, independent of the
  /// RobustnessOptions master switch.
  kRhoRebalance,
};

const char* to_string(RecoveryKind k) noexcept;

/// One intervention by a guard rail, tagged with where it happened.
struct RecoveryEvent {
  RecoveryKind kind = RecoveryKind::kCholeskyJitter;
  /// Outer iteration (1-based) the event occurred in; 0 when outside the
  /// outer loop.
  unsigned outer_iteration = 0;
  /// Mode whose update was affected (meaningless for checkpoint events).
  std::size_t mode = 0;
  /// Retries/attempts the recovery consumed (kind-specific).
  unsigned attempts = 0;
  /// Kind-specific scalar: the jitter ridge, the final ρ, ...
  double magnitude = 0;
  /// Free-form context for logs ("short write", ...).
  std::string detail;
  /// Trace context active when the event fired (stamped by
  /// RecoveryReport::add from the thread-local context): links the event
  /// to the refresh solve / ingest batch it happened under. All-zero for
  /// solves run outside any traced scope.
  obs::TraceContext trace;
};

/// Structured log of every recovery performed during a solve, surfaced on
/// CpdResult::recovery. Empty on a fault-free run.
struct RecoveryReport {
  std::vector<RecoveryEvent> events;

  bool empty() const noexcept { return events.empty(); }
  std::size_t size() const noexcept { return events.size(); }
  /// Number of events of one kind.
  std::size_t count(RecoveryKind k) const noexcept;
  /// Record one event. Stamps the thread's current trace context on it,
  /// appends a `recovery` line to the installed event journal (if any),
  /// and drops a profiler instant marker — one choke point for every
  /// guard-rail call site.
  void add(RecoveryEvent e);
  /// One "outer I mode M: kind attempts=N magnitude=X" line per event.
  std::string to_string() const;
  /// Compact single-line summary, e.g. "3 recoveries (cholesky_jitter 2,
  /// admm_restart 1)"; "none" when empty.
  std::string summary() const;
};

}  // namespace aoadmm
