// Reusable buffers and the dynamic sparse-factor cache used by the CPD
// driver. Factor sparsity patterns change every outer iteration, so the
// compressed mirrors are rebuilt on demand and their construction cost is
// an explicit, reported part of total factorization time (paper §IV.C:
// overheads are "not amortized over multiple iterations").
#pragma once

#include <vector>

#include "core/admm.hpp"
#include "la/matrix.hpp"
#include "mttkrp/dimtree.hpp"
#include "mttkrp/mttkrp.hpp"
#include "sparse/csr.hpp"
#include "sparse/density.hpp"
#include "sparse/hybrid.hpp"

namespace aoadmm {

/// Per-mode compressed mirror of a (dense) factor matrix.
class SparseFactorCache {
 public:
  explicit SparseFactorCache(std::size_t order) : entries_(order) {}

  /// Mark mode's mirror stale (call after its factor is updated).
  void invalidate(std::size_t mode) { entries_.at(mode).dirty = true; }

  struct Mirror {
    /// Set when the factor is sparse enough to exploit in `format`.
    const CsrMatrix* csr = nullptr;
    const HybridMatrix* hybrid = nullptr;
    /// Measured density at refresh time.
    real_t density = 1;
    /// True if a (re)build happened during this call (conversion cost).
    bool rebuilt = false;
    /// The concrete format in effect (kAuto requests resolve to this).
    LeafFormat format = LeafFormat::kDense;
  };

  /// Measure `factor`'s density; when below `threshold`, (re)build and
  /// return the mirror in `format`. Above the threshold the mirror pointers
  /// stay null and the caller uses the dense kernel.
  Mirror refresh(std::size_t mode, const Matrix& factor, LeafFormat format,
                 real_t threshold);

  /// Density from the most recent refresh of `mode` (1 if never refreshed).
  real_t last_density(std::size_t mode) const {
    return entries_.at(mode).density;
  }

 private:
  struct Entry {
    bool dirty = true;
    real_t density = 1;
    bool valid_csr = false;
    bool valid_hybrid = false;
    LeafFormat resolved = LeafFormat::kDense;
    CsrMatrix csr;
    HybridMatrix hybrid;
  };
  std::vector<Entry> entries_;
};

/// All scratch the CPD driver needs, allocated once per factorization.
struct CpdWorkspace {
  AdmmScratch admm;
  Matrix mttkrp_out;  // K, resized per mode
  Matrix gram_prod;   // ⊛ of the other modes' Grams
  Matrix fit_acc;     // ⊛ of ALL Grams, for the fit evaluation
  std::vector<Matrix> grams;  // per-mode AᵀA, kept current
  /// Cached partial contractions for the kDimTree kernel (grow-only; empty
  /// until that kernel runs). Lives in the workspace so steady-state solver
  /// iterations stay zero-alloc.
  detail::DimTreeEngine dimtree;

  explicit CpdWorkspace(std::size_t order) : grams(order) {}
};

}  // namespace aoadmm
