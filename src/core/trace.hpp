// Convergence trace: (outer iteration, wall-clock seconds, relative error)
// triples recorded by the CPD driver. The Fig. 6 benchmark prints these as
// both error-vs-time and error-vs-iteration series.
#pragma once

#include <iosfwd>
#include <vector>

#include "util/types.hpp"

namespace aoadmm {

struct TracePoint {
  unsigned outer_iteration = 0;
  double seconds = 0;
  real_t relative_error = 0;
};

class ConvergenceTrace {
 public:
  void add(unsigned outer_iteration, double seconds, real_t relative_error) {
    points_.push_back({outer_iteration, seconds, relative_error});
  }

  const std::vector<TracePoint>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }
  std::size_t size() const noexcept { return points_.size(); }

  /// Best (lowest) error seen.
  real_t best_error() const;

  /// First wall-clock time at which the error dropped to <= target, or a
  /// negative value if it never did. Used to compare time-to-solution of
  /// base vs blocked runs (Fig. 6 analysis).
  double time_to_error(real_t target) const;

  /// First outer iteration at which the error dropped to <= target, or -1.
  long iterations_to_error(real_t target) const;

  /// CSV with header: iter,seconds,relative_error.
  void write_csv(std::ostream& out) const;

  /// JSON array of {"iter", "seconds", "relative_error"} objects.
  void write_json(std::ostream& out) const;

 private:
  std::vector<TracePoint> points_;
};

}  // namespace aoadmm
