// Observed-only constrained CPD ("weighted CPD"): minimize the squared
// error over the OBSERVED entries only,
//
//     min  ½ Σ_{(i,j,k) ∈ Ω} (X(i,j,k) − M(i,j,k))² + Σ_m r_m(A_m),
//
// instead of the full-tensor least squares of cpd_aoadmm (which treats
// every unobserved cell as a zero — fine for count-like data where absence
// means zero, wrong for ratings/measurements where absence means unknown).
//
// The AO structure survives: fixing all factors but A_m, each ROW of A_m
// has an independent quadratic subproblem with its own normal equations
//     G_i = Σ_{nnz in slice i} w wᵀ,   k_i = Σ x·w,   w = ⊛_{n≠m} A_n(idx)
// assembled in one pass over the mode-m CSF tree, then solved by a small
// per-row ADMM (any row-separable prox from core/prox.hpp). Rows are the
// natural blocks, so the paper's blocked execution model — dynamic
// scheduling, zero synchronization, per-row convergence — applies verbatim.
//
// Cost per mode: O(nnz·F²) assembly + O(I·F³) factorizations, vs the
// unweighted path's O(nnz·F) MTTKRP + one F×F factorization. Use it when
// missing ≠ zero and the rank is modest.
#pragma once

#include "core/cpd.hpp"

namespace aoadmm {

struct WcpdOptions {
  rank_t rank = 16;
  unsigned max_outer_iterations = 50;
  /// Stop when the observed-entry relative error improves by less than
  /// this.
  real_t tolerance = 1e-5;
  /// Inner ADMM controls (block_size is ignored: rows are the blocks).
  AdmmOptions admm;
  /// Ridge added to every per-row system; rows with fewer observations
  /// than the rank are underdetermined, and λI makes them well-posed
  /// (their solution shrinks toward zero).
  real_t ridge = 1e-6;
  std::uint64_t seed = 123;
  bool record_trace = true;
};

struct WcpdResult {
  std::vector<Matrix> factors;
  /// √(Σ_Ω (x − m)²) / √(Σ_Ω x²) — over observed entries only.
  real_t observed_relative_error = 1;
  unsigned outer_iterations = 0;
  bool converged = false;
  ConvergenceTrace trace;
  double total_seconds = 0;
};

/// Observed-only CPD. `constraints` has one entry (broadcast) or one per
/// mode; every shipped constraint kind is supported.
WcpdResult cpd_wopt(const CsfSet& csf, const WcpdOptions& opts,
                    cspan<const ConstraintSpec> constraints);

}  // namespace aoadmm
