// The ADMM inner solver of AO-ADMM (Algorithm 1) in two parallel flavors:
//
//  * admm_update          — the §IV.A baseline: each dense kernel (solve,
//    prox, dual update, residuals) is parallelized over rows with implicit
//    barriers in between, and convergence is a single global test over
//    aggregated residuals.
//  * admm_update_blocked  — the §IV.B reformulation: rows are split into
//    fixed-size blocks, each block runs the *whole* inner loop to its own
//    convergence, and blocks are dynamically scheduled across threads. This
//    removes every inter-kernel synchronization, keeps a block's primal/dual
//    state cache-resident across iterations, and lets "high-signal" rows
//    iterate more than already-converged ones.
//
// Both minimize  ½‖X(m) − H(⊙ₙAₙ)ᵀ‖² + r(H)  for one factor given the
// MTTKRP result K and Gram matrix G, updating the primal H and scaled dual
// U in place.
#pragma once

#include "core/prox.hpp"
#include "core/robustness.hpp"
#include "la/cholesky.hpp"
#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// Residual-balancing adaptive penalty (Boyd et al. §3.4.1, and the scheme
/// snippet 3 of SNIPPETS.md applies): when the relative primal residual
/// exceeds `ratio` times the dual one, the penalty is too weak — multiply
/// ρ by `rescale` and divide the scaled duals by it; in the mirror case
/// divide ρ and multiply the duals. Keeps the two residuals within a
/// factor of `ratio` of each other so neither stalls the inner loop on
/// ill-conditioned systems where the tr(G)/F default lands far off.
///
/// The quadratic path refactors its F x F system after every rescale (the
/// Cholesky depends on ρ); the generalized-loss path's per-row system
/// (BᵀB + I) is ρ-independent, so rebalancing there is free.
struct AdaptiveRhoOptions {
  /// Off by default: ρ stays fixed at tr(G)/F, the historical behavior.
  bool enabled = false;
  /// Imbalance threshold μ triggering a rescale.
  real_t ratio = 10;
  /// Multiplier τ applied to ρ per rescale (duals scaled by 1/τ).
  real_t rescale = 2;
  /// Check cadence in inner iterations. For the blocked variant this is
  /// also the sweep length between global residual aggregations — larger
  /// values amortize the cross-block barrier adaptivity reintroduces.
  unsigned check_every = 1;
  /// Rescale budget per inner solve, bounding refactorization cost and
  /// preventing ρ oscillation.
  unsigned max_rescales = 16;
};

struct AdmmOptions {
  /// Inner tolerance ε: stop when the relative primal AND dual residuals
  /// fall below it (Algorithm 1 line 12).
  real_t tolerance = 1e-2;
  /// Hard cap on inner iterations (per block for the blocked variant).
  unsigned max_iterations = 50;
  /// Rows per block for admm_update_blocked. The paper found 50 to balance
  /// convergence benefit against per-block overheads (§IV.B). 0 selects
  /// the analytical model (auto_block_size — the paper's §VI future work).
  std::size_t block_size = 50;
  /// Over-relaxation α ∈ (0, 2): the classical ADMM acceleration (Boyd et
  /// al. §3.4.3) — the least-squares iterate is mixed with the previous
  /// primal, Ĥ = α·H̃ + (1−α)·H₀, before the prox and dual steps. 1.0
  /// disables it; 1.5–1.8 typically speeds convergence.
  real_t relaxation = 1.0;
  /// Numerical guard rails (guarded Cholesky, divergence recovery). Off by
  /// default: a non-PD system throws and divergence runs unchecked, exactly
  /// the historical behavior.
  RobustnessOptions robustness;
  /// Residual-balancing adaptive ρ (see AdaptiveRhoOptions). Off by
  /// default.
  AdaptiveRhoOptions adaptive;
};

/// Analytical block-size model (implements the paper's future-work item:
/// "an analytical model of the ADMM algorithm could provide a method of
/// choosing block sizes"). One blocked-ADMM iteration touches five row
/// panels of F doubles per row (primal, dual, aux, previous primal, and
/// the MTTKRP rhs); the model picks the largest block whose working set
/// fits the per-thread cache budget, clamped to [8, 512] so per-block
/// overheads (small blocks) and convergence loss (huge blocks) stay
/// bounded.
std::size_t auto_block_size(std::size_t rank,
                            std::size_t cache_bytes = 256 * 1024) noexcept;

struct AdmmResult {
  /// Inner iterations executed: for the baseline, the global count; for the
  /// blocked variant, the maximum over blocks. Accumulated across
  /// divergence restarts (the true work performed).
  unsigned iterations = 0;
  /// Σ over rows of the number of iterations that touched them — the true
  /// work measure that the blocked variant reduces.
  std::uint64_t row_iterations = 0;
  /// Final relative residuals (worst block for the blocked variant).
  real_t primal_residual = 0;
  real_t dual_residual = 0;

  // --- Guard-rail telemetry (all zero unless robustness intervened) ---
  /// Jitter retries the guarded Cholesky factorization(s) consumed.
  unsigned cholesky_attempts = 0;
  /// Largest diagonal ridge the guard had to add.
  real_t cholesky_jitter = 0;
  /// Divergence restarts performed (ρ rescaled, duals reset each time).
  unsigned restarts = 0;
  /// True when the solve still diverged after every permitted restart; the
  /// primal was rolled back to its entry iterate and the duals were reset,
  /// so the caller keeps a sane (if stale) factor.
  bool abandoned = false;
  /// Final penalty in effect (== tr(G)/F unless restarts or residual
  /// rebalancing rescaled it).
  real_t rho = 0;
  /// Residual-balancing ρ rescales performed (AdaptiveRhoOptions).
  unsigned rho_rebalances = 0;
};

/// Scratch reused across ADMM calls (aux = H̃, h_old = H₀), plus the F x F
/// system matrix G + ρI and its Cholesky factorization, which are rebuilt in
/// place every call. Sized lazily to the largest factor they have seen, so a
/// long-lived solver session performs no heap allocation here after the
/// first outer iteration.
struct AdmmScratch {
  Matrix aux;
  Matrix h_old;
  Matrix sys;     // G + ρI
  Cholesky chol;  // factorization of sys, refreshed per call
  /// Snapshot of the primal at call entry, maintained only when robustness
  /// is enabled: divergence restarts and sentinel rollbacks restore it.
  Matrix h_entry;

  void ensure(std::size_t rows, std::size_t cols) {
    if (aux.rows() < rows || aux.cols() != cols) {
      aux.resize(rows, cols);
      h_old.resize(rows, cols);
    }
  }
};

/// Baseline kernel-parallel ADMM (Algorithm 1). `h` (primal) and `u` (dual)
/// are I x F and updated in place; `k` is the MTTKRP result; `g` the F x F
/// Gram matrix Σ-free of the mode being solved.
AdmmResult admm_update(Matrix& h, Matrix& u, const Matrix& k, const Matrix& g,
                       const ProxOperator& prox, const AdmmOptions& opts,
                       AdmmScratch& scratch);

/// Blockwise ADMM (§IV.B). Requires a row-separable prox (all operators in
/// this library are).
AdmmResult admm_update_blocked(Matrix& h, Matrix& u, const Matrix& k,
                               const Matrix& g, const ProxOperator& prox,
                               const AdmmOptions& opts, AdmmScratch& scratch);

}  // namespace aoadmm
