// Persistent solver sessions — the library's primary entry point.
//
// A CpdSolver binds a CsfSet to a validated CpdConfig once and then runs
// any number of factorizations against it, reusing every piece of hoisted
// state between calls: ADMM scratch (including the Cholesky system), MTTKRP
// workspaces, sparse-mirror buffers, factor and dual storage, and the
// tensor norm. After the first solve warms the buffers, a repeat solve()
// on an unchanged session performs zero heap allocations inside the outer
// loop (asserted in tests/integration/test_session.cpp against the
// alloc/aligned_calls obs counter).
//
//   CsfSet csf(x);
//   CpdConfig cfg = CpdConfig().with_rank(50).with_checkpoint("run.ckpt", 10);
//   CpdSolver solver(csf, cfg);        // validates; throws on config errors
//   CpdResult r1 = solver.solve();     // cold start from cfg.seed
//   CpdResult r2 = solver.solve_warm(KruskalTensor(r1.factors));
//   CpdResult r3 = solver.resume("run.ckpt");  // continue a killed run
//
// solve_warm seeds the factors from a prior model (λ folded into mode 0)
// and keeps the session's ADMM duals, so a re-solve after a small data or
// config perturbation converges in strictly fewer inner iterations than a
// cold start. resume() restores factors, duals, RNG state, counters, and
// the convergence trace from a checkpoint file and continues the run
// bitwise-identically (same variant/thread configuration assumed).
//
// The free functions cpd_aoadmm()/cpd_als() remain as thin shims over a
// throwaway session.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/cpd.hpp"
#include "core/loss_solve.hpp"
#include "core/workspace.hpp"
#include "util/rng.hpp"

namespace aoadmm {

class CpdSolver {
 public:
  /// Bind a tensor to a validated configuration. Runs config.validate(order)
  /// and throws InvalidArgument listing every error when validation fails;
  /// warnings are kept and readable via validation(). The CsfSet is held by
  /// reference and must outlive the solver.
  CpdSolver(const CsfSet& csf, CpdConfig config);

  const CpdConfig& config() const noexcept { return config_; }
  /// The full validation report from construction (warnings included).
  const ValidationReport& validation() const noexcept { return validation_; }

  /// Cold solve: re-initialize factors from config.seed, zero the
  /// duals, run the AO-ADMM outer loop. Callable any number of times; each
  /// call reproduces the same run on an unchanged session.
  CpdResult solve();

  /// Warm solve: seed the factors from `model` (λ folded into mode 0) and
  /// keep the session's current ADMM duals — after a prior solve on a
  /// nearby problem they carry the constraint geometry, so the inner loops
  /// start near their fixed points. Throws InvalidArgument when the model's
  /// shape or rank does not match the session.
  CpdResult solve_warm(const KruskalTensor& model);

  /// Continue a checkpointed run to completion. Restores factors, duals,
  /// RNG state, iteration counters, and the recorded trace, then resumes at
  /// the next outer iteration; the completed run's trace is bitwise
  /// identical (iteration, relative_error) to an uninterrupted one. Throws
  /// ParseError on a corrupt file and InvalidArgument when the checkpoint
  /// does not match the session's tensor or rank.
  CpdResult resume(const std::string& checkpoint_path);

 private:
  /// The AO-ADMM outer loop (Algorithm 2), shared by all three entry
  /// points. `result` arrives pre-seeded with carried-over counters and
  /// trace; factors_/duals_ hold the starting iterate. Dispatches to
  /// run_loss() when the configured loss is not the quadratic fast path.
  CpdResult run(unsigned start_outer, real_t prev_error, CpdResult result);

  /// Generalized outer loop for non-quadratic / masked losses: per-row
  /// two-split ADMM (core/loss_solve.hpp) instead of MTTKRP + normal
  /// equations, converging on the loss objective.
  CpdResult run_loss(unsigned start_outer, CpdResult result);

  void zero_duals();

  const CsfSet& csf_;
  CpdConfig config_;
  ValidationReport validation_;
  real_t x_norm_sq_ = 0;

  // Hoisted per-session state, allocated on first use and reused forever.
  std::unique_ptr<Loss> loss_;
  LossWorkspace loss_ws_;
  std::vector<std::unique_ptr<ProxOperator>> prox_;
  std::vector<Matrix> factors_;
  std::vector<Matrix> duals_;
  CpdWorkspace ws_;
  SparseFactorCache sparse_cache_;
  Rng rng_;
  std::vector<double> mode_mttkrp_seconds_;
  /// Concrete kernel after kAuto resolution (resolve_auto_kernel), fixed at
  /// construction for the session's lifetime.
  MttkrpKernel resolved_kernel_ = MttkrpKernel::kAuto;
};

}  // namespace aoadmm
