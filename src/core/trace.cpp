#include "core/trace.hpp"

#include <limits>
#include <ostream>

namespace aoadmm {

real_t ConvergenceTrace::best_error() const {
  real_t best = std::numeric_limits<real_t>::infinity();
  for (const auto& p : points_) {
    if (p.relative_error < best) {
      best = p.relative_error;
    }
  }
  return best;
}

double ConvergenceTrace::time_to_error(real_t target) const {
  for (const auto& p : points_) {
    if (p.relative_error <= target) {
      return p.seconds;
    }
  }
  return -1.0;
}

long ConvergenceTrace::iterations_to_error(real_t target) const {
  for (const auto& p : points_) {
    if (p.relative_error <= target) {
      return static_cast<long>(p.outer_iteration);
    }
  }
  return -1;
}

void ConvergenceTrace::write_csv(std::ostream& out) const {
  out << "iter,seconds,relative_error\n";
  for (const auto& p : points_) {
    out << p.outer_iteration << ',' << p.seconds << ',' << p.relative_error
        << '\n';
  }
}

void ConvergenceTrace::write_json(std::ostream& out) const {
  out << "[";
  bool first = true;
  for (const auto& p : points_) {
    out << (first ? "\n" : ",\n") << "  {\"iter\": " << p.outer_iteration
        << ", \"seconds\": " << p.seconds
        << ", \"relative_error\": " << p.relative_error << "}";
    first = false;
  }
  out << (first ? "]" : "\n]") << "\n";
}

}  // namespace aoadmm
