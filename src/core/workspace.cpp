#include "core/workspace.hpp"

namespace aoadmm {

SparseFactorCache::Mirror SparseFactorCache::refresh(std::size_t mode,
                                                     const Matrix& factor,
                                                     LeafFormat format,
                                                     real_t threshold) {
  Entry& e = entries_.at(mode);
  Mirror m;

  if (format == LeafFormat::kDense) {
    return m;
  }

  const auto build = [&](LeafFormat resolved, const DensityStats& stats) {
    if (resolved == LeafFormat::kCsr && !e.valid_csr) {
      e.csr = CsrMatrix::from_dense(factor);
      e.valid_csr = true;
      m.rebuilt = true;
    } else if (resolved == LeafFormat::kHybrid && !e.valid_hybrid) {
      e.hybrid = HybridMatrix::from_dense(factor, stats);
      e.valid_hybrid = true;
      m.rebuilt = true;
    }
  };

  if (e.dirty) {
    // One O(I·F) pass; the same stats drive the exploit decision, the
    // kAuto structure choice (paper §VI future work), and the hybrid
    // column classification.
    const DensityStats stats = measure_density(factor);
    e.density = stats.density;
    e.valid_csr = false;
    e.valid_hybrid = false;
    e.resolved = format;
    if (format == LeafFormat::kAuto) {
      e.resolved = auto_select_leaf_format(stats.nnz, factor.rows(),
                                           factor.cols(), stats.column_nnz,
                                           threshold);
    }
    if (e.density < threshold && e.resolved != LeafFormat::kDense) {
      build(e.resolved, stats);
    }
    e.dirty = false;
  } else if (e.density < threshold) {
    // Same pattern, different format requested than last time: build it.
    LeafFormat resolved = format;
    if (format == LeafFormat::kAuto) {
      resolved = e.resolved;
    } else {
      e.resolved = format;
    }
    if (resolved != LeafFormat::kDense &&
        ((resolved == LeafFormat::kCsr && !e.valid_csr) ||
         (resolved == LeafFormat::kHybrid && !e.valid_hybrid))) {
      build(resolved, measure_density(factor));
    }
  }

  m.density = e.density;
  m.format = e.resolved;
  const LeafFormat want =
      format == LeafFormat::kAuto ? e.resolved : format;
  if (want == LeafFormat::kCsr && e.valid_csr) {
    m.csr = &e.csr;
  } else if (want == LeafFormat::kHybrid && e.valid_hybrid) {
    m.hybrid = &e.hybrid;
  }
  return m;
}

}  // namespace aoadmm
