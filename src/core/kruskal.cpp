#include "core/kruskal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/blas.hpp"
#include "util/error.hpp"

namespace aoadmm {

KruskalTensor::KruskalTensor(std::vector<Matrix> factors)
    : factors_(std::move(factors)) {
  AOADMM_CHECK_MSG(!factors_.empty(), "KruskalTensor needs >= 1 factor");
  rank_ = static_cast<rank_t>(factors_[0].cols());
  AOADMM_CHECK_MSG(rank_ > 0, "KruskalTensor rank must be positive");
  for (const Matrix& a : factors_) {
    AOADMM_CHECK_MSG(a.cols() == rank_, "factor rank mismatch");
  }
  lambda_.assign(rank_, real_t{1});
}

void KruskalTensor::set_lambda(std::vector<real_t> lambda) {
  AOADMM_CHECK_MSG(lambda.size() == rank_, "lambda size must equal rank");
  lambda_ = std::move(lambda);
}

void KruskalTensor::normalize_columns() {
  for (Matrix& a : factors_) {
    for (rank_t f = 0; f < rank_; ++f) {
      real_t norm_sq = 0;
      for (std::size_t i = 0; i < a.rows(); ++i) {
        norm_sq += a(i, f) * a(i, f);
      }
      const real_t norm = std::sqrt(norm_sq);
      if (norm > 0) {
        const real_t inv = real_t{1} / norm;
        for (std::size_t i = 0; i < a.rows(); ++i) {
          a(i, f) *= inv;
        }
        lambda_[f] *= norm;
      } else {
        lambda_[f] = 0;
      }
    }
  }
}

void KruskalTensor::sort_components() {
  std::vector<rank_t> order(rank_);
  std::iota(order.begin(), order.end(), rank_t{0});
  std::stable_sort(order.begin(), order.end(), [&](rank_t x, rank_t y) {
    return lambda_[x] > lambda_[y];
  });

  std::vector<real_t> new_lambda(rank_);
  for (rank_t f = 0; f < rank_; ++f) {
    new_lambda[f] = lambda_[order[f]];
  }
  lambda_ = std::move(new_lambda);

  for (Matrix& a : factors_) {
    Matrix reordered(a.rows(), rank_);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (rank_t f = 0; f < rank_; ++f) {
        reordered(i, f) = a(i, order[f]);
      }
    }
    a = std::move(reordered);
  }
}

real_t KruskalTensor::value_at(cspan<index_t> coord) const {
  AOADMM_CHECK_MSG(coord.size() == order(), "coordinate arity mismatch");
  return kruskal_value_at(factors_, lambda_, coord);
}

real_t KruskalTensor::norm_sq() const {
  Matrix acc(rank_, rank_);
  acc.fill(real_t{1});
  Matrix g(rank_, rank_);
  for (const Matrix& a : factors_) {
    gram(a, g);
    hadamard_inplace(acc, g);
  }
  real_t out = 0;
  for (rank_t p = 0; p < rank_; ++p) {
    for (rank_t q = 0; q < rank_; ++q) {
      out += lambda_[p] * lambda_[q] * acc(p, q);
    }
  }
  return out;
}

rank_t KruskalTensor::prune(real_t tol) {
  std::vector<rank_t> keep;
  for (rank_t f = 0; f < rank_; ++f) {
    if (lambda_[f] > tol) {
      keep.push_back(f);
    }
  }
  const auto removed = static_cast<rank_t>(rank_ - keep.size());
  if (removed == 0) {
    return 0;
  }
  AOADMM_CHECK_MSG(!keep.empty(), "prune would remove every component");

  std::vector<real_t> new_lambda;
  new_lambda.reserve(keep.size());
  for (const rank_t f : keep) {
    new_lambda.push_back(lambda_[f]);
  }
  for (Matrix& a : factors_) {
    Matrix kept(a.rows(), keep.size());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t f = 0; f < keep.size(); ++f) {
        kept(i, f) = a(i, keep[f]);
      }
    }
    a = std::move(kept);
  }
  lambda_ = std::move(new_lambda);
  rank_ = static_cast<rank_t>(keep.size());
  return removed;
}

real_t factor_match_score(const KruskalTensor& a, const KruskalTensor& b) {
  AOADMM_CHECK_MSG(a.order() == b.order(), "FMS: order mismatch");
  for (std::size_t m = 0; m < a.order(); ++m) {
    AOADMM_CHECK_MSG(a.factors()[m].rows() == b.factors()[m].rows(),
                     "FMS: mode length mismatch");
  }

  // Work on normalized copies so column scaling lives entirely in λ.
  KruskalTensor an = a;
  KruskalTensor bn = b;
  an.normalize_columns();
  bn.normalize_columns();

  const rank_t ra = an.rank();
  const rank_t rb = bn.rank();
  const rank_t matched = std::min(ra, rb);

  // Pairwise congruence: product over modes of |cosine| between columns.
  Matrix sim(ra, rb);
  sim.fill(real_t{1});
  for (std::size_t m = 0; m < a.order(); ++m) {
    const Matrix& fa = an.factors()[m];
    const Matrix& fb = bn.factors()[m];
    for (rank_t r = 0; r < ra; ++r) {
      for (rank_t s = 0; s < rb; ++s) {
        real_t inner = 0;
        for (std::size_t i = 0; i < fa.rows(); ++i) {
          inner += fa(i, r) * fb(i, s);
        }
        sim(r, s) *= std::abs(inner);
      }
    }
  }

  // Weight-agreement discount.
  for (rank_t r = 0; r < ra; ++r) {
    for (rank_t s = 0; s < rb; ++s) {
      const real_t la = an.lambda()[r];
      const real_t lb = bn.lambda()[s];
      const real_t mx = std::max(la, lb);
      const real_t penalty =
          mx > 0 ? real_t{1} - std::abs(la - lb) / mx : real_t{1};
      sim(r, s) *= penalty;
    }
  }

  // Greedy maximum matching (FMS convention; optimal assignment differs
  // negligibly for well-separated components).
  std::vector<bool> used_a(ra, false);
  std::vector<bool> used_b(rb, false);
  real_t total = 0;
  for (rank_t k = 0; k < matched; ++k) {
    real_t best = -1;
    rank_t best_r = 0;
    rank_t best_s = 0;
    for (rank_t r = 0; r < ra; ++r) {
      if (used_a[r]) {
        continue;
      }
      for (rank_t s = 0; s < rb; ++s) {
        if (used_b[s]) {
          continue;
        }
        if (sim(r, s) > best) {
          best = sim(r, s);
          best_r = r;
          best_s = s;
        }
      }
    }
    used_a[best_r] = true;
    used_b[best_s] = true;
    total += best;
  }
  return matched > 0 ? total / static_cast<real_t>(matched) : real_t{0};
}

}  // namespace aoadmm
