#include "core/cpd.hpp"

#include "core/config.hpp"
#include "core/solver.hpp"

namespace aoadmm {

const char* to_string(AdmmVariant v) noexcept {
  switch (v) {
    case AdmmVariant::kBaseline:
      return "base";
    case AdmmVariant::kBlocked:
      return "blocked";
  }
  return "?";
}

CpdResult cpd_aoadmm(const CsfSet& csf, const CpdOptions& opts,
                     cspan<const ConstraintSpec> constraints) {
  CpdConfig config(opts);
  config.with_constraints(
      ModeConstraints::from_legacy(constraints, csf.order()));
  CpdSolver solver(csf, std::move(config));
  return solver.solve();
}

}  // namespace aoadmm
