#include "core/cpd.hpp"

#include "core/config.hpp"
#include "core/solver.hpp"

namespace aoadmm {

const char* to_string(AdmmVariant v) noexcept {
  switch (v) {
    case AdmmVariant::kBaseline:
      return "base";
    case AdmmVariant::kBlocked:
      return "blocked";
  }
  return "?";
}

const char* to_string(StopReason r) noexcept {
  switch (r) {
    case StopReason::kConverged:
      return "converged";
    case StopReason::kMaxIterations:
      return "max_iterations";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadline:
      return "deadline";
  }
  return "?";
}

CpdResult cpd_aoadmm(const CsfSet& csf, const CpdOptions& opts,
                     cspan<const ConstraintSpec> constraints) {
  CpdConfig config(opts);
  config.with_constraints(
      ModeConstraints::from_legacy(constraints, csf.order()));
  CpdSolver solver(csf, std::move(config));
  return solver.solve();
}

}  // namespace aoadmm
