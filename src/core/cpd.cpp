#include "core/cpd.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "core/cpd_impl.hpp"
#include "core/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel_stats.hpp"
#include "obs/profile.hpp"
#include "sparse/density.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace aoadmm {
namespace {

/// The driver's kernel-time breakdown (paper Fig. 3). Plain members — no
/// name lookup, nothing shared across threads.
struct KernelTimers {
  Timer mttkrp;
  Timer admm;
  Timer other;
};

/// Registry handles the driver reports into; registered once per process.
struct CpdMetrics {
  obs::Counter runs;
  obs::Counter outer_iterations;
  obs::Counter mttkrp_calls;
  obs::Counter sparse_mttkrp_calls;
  obs::Counter mttkrp_seconds;
  obs::Counter admm_seconds;
  obs::Histogram iteration_seconds;
  obs::Histogram admm_inner_iterations;
  obs::Histogram admm_primal_residual;
  obs::Histogram admm_dual_residual;

  static const CpdMetrics& get() {
    static const CpdMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      CpdMetrics out;
      out.runs = reg.counter("cpd/runs");
      out.outer_iterations = reg.counter("cpd/outer_iterations");
      out.mttkrp_calls = reg.counter("cpd/mttkrp_calls");
      out.sparse_mttkrp_calls = reg.counter("cpd/sparse_mttkrp_calls");
      out.mttkrp_seconds = reg.counter("cpd/mttkrp_seconds");
      out.admm_seconds = reg.counter("cpd/admm_seconds");
      out.iteration_seconds = reg.histogram("cpd/iteration_seconds");
      out.admm_inner_iterations = reg.histogram("admm/inner_iterations");
      out.admm_primal_residual = reg.histogram("admm/primal_residual");
      out.admm_dual_residual = reg.histogram("admm/dual_residual");
      return out;
    }();
    return m;
  }
};

}  // namespace

const char* to_string(AdmmVariant v) noexcept {
  switch (v) {
    case AdmmVariant::kBaseline:
      return "base";
    case AdmmVariant::kBlocked:
      return "blocked";
  }
  return "?";
}

CpdResult cpd_aoadmm(const CsfSet& csf, const CpdOptions& opts,
                     cspan<const ConstraintSpec> constraints) {
  AOADMM_PROFILE_SCOPE("cpd/aoadmm");
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(opts.rank > 0);
  AOADMM_CHECK_MSG(constraints.size() == 1 || constraints.size() == order,
                   "constraints: give 1 (broadcast) or one per mode");

  const CpdMetrics& metrics = CpdMetrics::get();
  metrics.runs.add(1);

  std::vector<std::unique_ptr<ProxOperator>> prox(order);
  for (std::size_t m = 0; m < order; ++m) {
    prox[m] = make_prox(constraints.size() == 1 ? constraints[0]
                                                : constraints[m]);
  }

  Timer wall;
  wall.start();
  KernelTimers timers;

  CpdResult result;
  const real_t x_norm_sq = detail::tensor_norm_sq(csf.for_mode(0));
  {
    AOADMM_PROFILE_SCOPE("cpd/init");
    result.factors =
        detail::init_factors(csf, opts.rank, opts.seed, x_norm_sq);
  }
  std::vector<Matrix> duals;
  duals.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    duals.emplace_back(result.factors[m].rows(), opts.rank);
  }

  CpdWorkspace ws(order);
  SparseFactorCache sparse_cache(order);
  {
    const ScopedTimer t(timers.other);
    AOADMM_PROFILE_SCOPE("cpd/gram");
    for (std::size_t m = 0; m < order; ++m) {
      gram(result.factors[m], ws.grams[m]);
    }
  }

  real_t prev_error = std::numeric_limits<real_t>::infinity();

  // Per-iteration accounting for the snapshot callback.
  std::vector<double> mode_mttkrp_seconds(order, 0);

  for (unsigned outer = 1; outer <= opts.max_outer_iterations; ++outer) {
    AOADMM_PROFILE_SCOPE("cpd/outer");
    const double iter_start_seconds = wall.seconds();
    const obs::ParallelTotals parallel_before = obs::parallel_totals();
    const double admm_seconds_before = timers.admm.seconds();
    std::fill(mode_mttkrp_seconds.begin(), mode_mttkrp_seconds.end(), 0.0);
    std::uint64_t iter_inner_iterations = 0;
    real_t worst_primal = 0;
    real_t worst_dual = 0;
    real_t sum_primal = 0;
    real_t sum_dual = 0;

    for (std::size_t m = 0; m < order; ++m) {
      AOADMM_PROFILE_SCOPE("cpd/mode");
      const CsfTensor& tree = csf.for_mode(m);

      {
        const ScopedTimer t(timers.other);
        AOADMM_PROFILE_SCOPE("cpd/gram_product");
        detail::gram_product_excluding(ws.grams, m, ws.gram_prod);
      }

      // MTTKRP, optionally with a compressed leaf factor. The leaf mode of
      // this tree is the factor read once per non-zero — the only one worth
      // compressing (paper §IV.C).
      ++result.mttkrp_count;
      metrics.mttkrp_calls.add(1);
      const double mttkrp_seconds_before = timers.mttkrp.seconds();
      bool used_sparse = false;
      // Sparse-leaf kernels exist for root-mode trees only (ALLMODE); a
      // one-tree set serves non-root modes through the atomic dispatcher.
      if (opts.leaf_format != LeafFormat::kDense &&
          tree.level_mode(0) == m) {
        const std::size_t leaf_mode = tree.level_mode(order - 1);
        SparseFactorCache::Mirror mirror;
        {
          const ScopedTimer t(timers.other);
          AOADMM_PROFILE_SCOPE("cpd/sparse_mirror");
          mirror = sparse_cache.refresh(leaf_mode, result.factors[leaf_mode],
                                        opts.leaf_format,
                                        opts.sparsity_threshold);
        }
        if (mirror.csr != nullptr) {
          const ScopedTimer t(timers.mttkrp);
          mttkrp_csf_csr(tree, result.factors, *mirror.csr, ws.mttkrp_out);
          used_sparse = true;
        } else if (mirror.hybrid != nullptr) {
          const ScopedTimer t(timers.mttkrp);
          mttkrp_csf_hybrid(tree, result.factors, *mirror.hybrid,
                            ws.mttkrp_out);
          used_sparse = true;
        }
      }
      if (!used_sparse) {
        const ScopedTimer t(timers.mttkrp);
        mttkrp_dispatch(tree, result.factors, m, ws.mttkrp_out);
      } else {
        ++result.sparse_mttkrp_count;
        metrics.sparse_mttkrp_calls.add(1);
      }
      mode_mttkrp_seconds[m] =
          timers.mttkrp.seconds() - mttkrp_seconds_before;

      {
        const ScopedTimer t(timers.admm);
        const AdmmResult ar =
            opts.variant == AdmmVariant::kBlocked
                ? admm_update_blocked(result.factors[m], duals[m],
                                      ws.mttkrp_out, ws.gram_prod, *prox[m],
                                      opts.admm, ws.admm)
                : admm_update(result.factors[m], duals[m], ws.mttkrp_out,
                              ws.gram_prod, *prox[m], opts.admm, ws.admm);
        result.total_inner_iterations += ar.iterations;
        result.total_row_iterations += ar.row_iterations;
        iter_inner_iterations += ar.iterations;
        worst_primal = std::max(worst_primal, ar.primal_residual);
        worst_dual = std::max(worst_dual, ar.dual_residual);
        sum_primal += ar.primal_residual;
        sum_dual += ar.dual_residual;
        metrics.admm_inner_iterations.observe(ar.iterations);
        metrics.admm_primal_residual.observe(
            static_cast<double>(ar.primal_residual));
        metrics.admm_dual_residual.observe(
            static_cast<double>(ar.dual_residual));
      }

      {
        const ScopedTimer t(timers.other);
        AOADMM_PROFILE_SCOPE("cpd/gram");
        gram(result.factors[m], ws.grams[m]);
        sparse_cache.invalidate(m);
      }
    }

    // Fit: exact, reusing the final mode's MTTKRP output (see cpd_impl.hpp).
    real_t err;
    {
      const ScopedTimer t(timers.other);
      AOADMM_PROFILE_SCOPE("cpd/fit");
      err = detail::fit_relative_error(x_norm_sq, ws.mttkrp_out,
                                       result.factors[order - 1], ws.grams);
    }
    result.relative_error = err;
    result.outer_iterations = outer;
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), err);
    }
    AOADMM_LOG_DEBUG << "outer " << outer << " relative_error " << err;

    const double iter_seconds = wall.seconds() - iter_start_seconds;
    metrics.outer_iterations.add(1);
    metrics.iteration_seconds.observe(iter_seconds);

    if (opts.on_iteration) {
      obs::MetricsSnapshot snap;
      snap.outer_iteration = outer;
      snap.seconds = wall.seconds();
      snap.iteration_seconds = iter_seconds;
      snap.relative_error = err;
      snap.mode_mttkrp_seconds = mode_mttkrp_seconds;
      snap.admm_seconds = timers.admm.seconds() - admm_seconds_before;
      snap.admm_inner_iterations = iter_inner_iterations;
      snap.worst_primal_residual = worst_primal;
      snap.mean_primal_residual = sum_primal / static_cast<real_t>(order);
      snap.worst_dual_residual = worst_dual;
      snap.mean_dual_residual = sum_dual / static_cast<real_t>(order);
      snap.thread_imbalance = obs::imbalance_since(parallel_before);
      snap.factor_density.reserve(order);
      for (std::size_t m = 0; m < order; ++m) {
        snap.factor_density.push_back(
            measure_density(result.factors[m]).density);
      }
      snap.mttkrp_count = result.mttkrp_count;
      snap.sparse_mttkrp_count = result.sparse_mttkrp_count;
      opts.on_iteration(snap);
    }

    if (prev_error - err < opts.tolerance && outer > 1) {
      result.converged = true;
      break;
    }
    prev_error = err;
  }

  wall.stop();
  result.times.total_seconds = wall.seconds();
  result.times.mttkrp_seconds = timers.mttkrp.seconds();
  result.times.admm_seconds = timers.admm.seconds();
  result.times.other_seconds = result.times.total_seconds -
                               result.times.mttkrp_seconds -
                               result.times.admm_seconds;
  metrics.mttkrp_seconds.add(result.times.mttkrp_seconds);
  metrics.admm_seconds.add(result.times.admm_seconds);

  result.factor_density.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    result.factor_density.push_back(
        measure_density(result.factors[m]).density);
  }
  return result;
}

}  // namespace aoadmm
