#include "core/cpd.hpp"

#include <limits>
#include <memory>

#include "core/cpd_impl.hpp"
#include "core/workspace.hpp"
#include "sparse/density.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace aoadmm {

const char* to_string(AdmmVariant v) noexcept {
  switch (v) {
    case AdmmVariant::kBaseline:
      return "base";
    case AdmmVariant::kBlocked:
      return "blocked";
  }
  return "?";
}

CpdResult cpd_aoadmm(const CsfSet& csf, const CpdOptions& opts,
                     cspan<const ConstraintSpec> constraints) {
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(opts.rank > 0);
  AOADMM_CHECK_MSG(constraints.size() == 1 || constraints.size() == order,
                   "constraints: give 1 (broadcast) or one per mode");

  std::vector<std::unique_ptr<ProxOperator>> prox(order);
  for (std::size_t m = 0; m < order; ++m) {
    prox[m] = make_prox(constraints.size() == 1 ? constraints[0]
                                                : constraints[m]);
  }

  Timer wall;
  wall.start();
  TimerSet timers;

  CpdResult result;
  const real_t x_norm_sq = detail::tensor_norm_sq(csf.for_mode(0));
  result.factors = detail::init_factors(csf, opts.rank, opts.seed, x_norm_sq);
  std::vector<Matrix> duals;
  duals.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    duals.emplace_back(result.factors[m].rows(), opts.rank);
  }

  CpdWorkspace ws(order);
  SparseFactorCache sparse_cache(order);
  {
    const ScopedTimer t(timers["other"]);
    for (std::size_t m = 0; m < order; ++m) {
      gram(result.factors[m], ws.grams[m]);
    }
  }

  real_t prev_error = std::numeric_limits<real_t>::infinity();

  for (unsigned outer = 1; outer <= opts.max_outer_iterations; ++outer) {
    for (std::size_t m = 0; m < order; ++m) {
      const CsfTensor& tree = csf.for_mode(m);

      {
        const ScopedTimer t(timers["other"]);
        detail::gram_product_excluding(ws.grams, m, ws.gram_prod);
      }

      // MTTKRP, optionally with a compressed leaf factor. The leaf mode of
      // this tree is the factor read once per non-zero — the only one worth
      // compressing (paper §IV.C).
      ++result.mttkrp_count;
      bool used_sparse = false;
      // Sparse-leaf kernels exist for root-mode trees only (ALLMODE); a
      // one-tree set serves non-root modes through the atomic dispatcher.
      if (opts.leaf_format != LeafFormat::kDense &&
          tree.level_mode(0) == m) {
        const std::size_t leaf_mode = tree.level_mode(order - 1);
        SparseFactorCache::Mirror mirror;
        {
          const ScopedTimer t(timers["other"]);
          mirror = sparse_cache.refresh(leaf_mode, result.factors[leaf_mode],
                                        opts.leaf_format,
                                        opts.sparsity_threshold);
        }
        if (mirror.csr != nullptr) {
          const ScopedTimer t(timers["mttkrp"]);
          mttkrp_csf_csr(tree, result.factors, *mirror.csr, ws.mttkrp_out);
          used_sparse = true;
        } else if (mirror.hybrid != nullptr) {
          const ScopedTimer t(timers["mttkrp"]);
          mttkrp_csf_hybrid(tree, result.factors, *mirror.hybrid,
                            ws.mttkrp_out);
          used_sparse = true;
        }
      }
      if (!used_sparse) {
        const ScopedTimer t(timers["mttkrp"]);
        mttkrp_dispatch(tree, result.factors, m, ws.mttkrp_out);
      } else {
        ++result.sparse_mttkrp_count;
      }

      {
        const ScopedTimer t(timers["admm"]);
        const AdmmResult ar =
            opts.variant == AdmmVariant::kBlocked
                ? admm_update_blocked(result.factors[m], duals[m],
                                      ws.mttkrp_out, ws.gram_prod, *prox[m],
                                      opts.admm, ws.admm)
                : admm_update(result.factors[m], duals[m], ws.mttkrp_out,
                              ws.gram_prod, *prox[m], opts.admm, ws.admm);
        result.total_inner_iterations += ar.iterations;
        result.total_row_iterations += ar.row_iterations;
      }

      {
        const ScopedTimer t(timers["other"]);
        gram(result.factors[m], ws.grams[m]);
        sparse_cache.invalidate(m);
      }
    }

    // Fit: exact, reusing the final mode's MTTKRP output (see cpd_impl.hpp).
    real_t err;
    {
      const ScopedTimer t(timers["other"]);
      err = detail::fit_relative_error(x_norm_sq, ws.mttkrp_out,
                                       result.factors[order - 1], ws.grams);
    }
    result.relative_error = err;
    result.outer_iterations = outer;
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), err);
    }
    AOADMM_LOG_DEBUG << "outer " << outer << " relative_error " << err;

    if (prev_error - err < opts.tolerance && outer > 1) {
      result.converged = true;
      break;
    }
    prev_error = err;
  }

  wall.stop();
  result.times.total_seconds = wall.seconds();
  result.times.mttkrp_seconds = timers.seconds("mttkrp");
  result.times.admm_seconds = timers.seconds("admm");
  result.times.other_seconds = result.times.total_seconds -
                               result.times.mttkrp_seconds -
                               result.times.admm_seconds;

  result.factor_density.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    result.factor_density.push_back(
        measure_density(result.factors[m]).density);
  }
  return result;
}

}  // namespace aoadmm
