#include "core/coupled.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "core/admm.hpp"
#include "core/cpd_impl.hpp"
#include "core/workspace.hpp"
#include "la/blas.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace aoadmm {
namespace {

AdmmResult run_admm(Matrix& h, Matrix& u, const Matrix& k, const Matrix& g,
                    const ProxOperator& prox, const CpdConfig& config,
                    AdmmScratch& scratch) {
  return config.variant == AdmmVariant::kBlocked
             ? admm_update_blocked(h, u, k, g, prox, config.admm, scratch)
             : admm_update(h, u, k, g, prox, config.admm, scratch);
}

/// ‖Y − A Wᵀ‖_F² by direct evaluation (the side matrices are dense and
/// small next to the tensor).
double matrix_resid_sq(const Matrix& y, const Matrix& a, const Matrix& w) {
  const Matrix model = matmul(a, transpose(w));
  double resid = 0;
  const real_t* ym = y.data();
  const real_t* mm = model.data();
  const std::size_t n = y.rows() * y.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(ym[i]) - static_cast<double>(mm[i]);
    resid += d * d;
  }
  return resid;
}

}  // namespace

CoupledResult coupled_factorize(const CsfSet& csf, const CpdConfig& config,
                                const std::vector<CoupledMatrix>& couplings) {
  const std::size_t order = csf.order();
  const auto& dims = csf.dims();
  AOADMM_CHECK(order >= 2);

  const ValidationReport report = config.validate(order);
  if (!report.ok()) {
    throw InvalidArgument("invalid CpdConfig:\n" + report.to_string());
  }
  if (config.loss.kind != LossKind::kFrobenius || config.loss.masked) {
    throw InvalidArgument(
        "coupled_factorize: the coupling folds into the Frobenius normal "
        "equations and supports only the default unmasked frobenius loss "
        "(got " + to_cli_string(config.loss) + ")");
  }
  for (std::size_t c = 0; c < couplings.size(); ++c) {
    const CoupledMatrix& cm = couplings[c];
    if (cm.mode >= order) {
      throw InvalidArgument("coupling " + std::to_string(c) + ": mode " +
                            std::to_string(cm.mode) +
                            " out of range for an order-" +
                            std::to_string(order) + " tensor");
    }
    if (cm.y.rows() != static_cast<std::size_t>(dims[cm.mode])) {
      throw InvalidArgument(
          "coupling " + std::to_string(c) + ": side matrix has " +
          std::to_string(cm.y.rows()) + " rows but mode " +
          std::to_string(cm.mode) + " has dimension " +
          std::to_string(dims[cm.mode]));
    }
    if (!(cm.weight > 0)) {
      throw InvalidArgument("coupling " + std::to_string(c) +
                            ": weight must be positive");
    }
  }

  const std::size_t f = config.rank;
  std::vector<std::unique_ptr<ProxOperator>> prox(order);
  for (std::size_t m = 0; m < order; ++m) {
    prox[m] = make_prox(config.constraints.for_mode(m));
  }
  std::vector<std::unique_ptr<ProxOperator>> w_prox(couplings.size());
  for (std::size_t c = 0; c < couplings.size(); ++c) {
    w_prox[c] = make_prox(couplings[c].w_constraint);
  }

  Timer wall;
  wall.start();

  CoupledResult result;
  const real_t x_norm_sq = detail::tensor_norm_sq(csf.for_mode(0));
  result.cpd.factors = detail::init_factors(csf, config.rank, config.seed,
                                            x_norm_sq);
  std::vector<Matrix>& factors = result.cpd.factors;
  std::vector<Matrix> duals(order);
  for (std::size_t m = 0; m < order; ++m) {
    duals[m].resize(dims[m], f);
  }

  // Side factors: seeded uniform like the tensor factors, one RNG stream
  // per coupling so adding a coupling never perturbs the others.
  result.side_factors.resize(couplings.size());
  std::vector<Matrix> w_duals(couplings.size());
  double coupled_norm_sq = static_cast<double>(x_norm_sq);
  for (std::size_t c = 0; c < couplings.size(); ++c) {
    const std::size_t j = couplings[c].y.cols();
    Matrix& w = result.side_factors[c];
    w.resize(j, f);
    Rng rng(config.seed + 0x9e3779b9u * (c + 1));
    for (real_t& v : w.flat()) {
      v = rng.uniform();
    }
    w_duals[c].resize(j, f);
    coupled_norm_sq += static_cast<double>(couplings[c].weight) *
                       static_cast<double>(fro_norm_sq(couplings[c].y));
  }

  CpdWorkspace ws(order);
  AdmmScratch w_scratch;  // separate: W row counts differ from the modes'
  Matrix k_aug;           // augmented K for coupled modes
  Matrix g_side(f, f);    // WᵀW / AᵀA for the coupling terms

  result.matrix_relative_error.assign(couplings.size(), 1);
  real_t prev_measure = std::numeric_limits<real_t>::infinity();

  for (std::size_t m = 0; m < order; ++m) {
    gram(factors[m], ws.grams[m]);
  }

  for (unsigned outer = 1; outer <= config.max_outer_iterations; ++outer) {
    for (std::size_t m = 0; m < order; ++m) {
      detail::gram_product_excluding(ws.grams, m, ws.gram_prod);
      mttkrp_dispatch(csf.for_mode(m), factors, m, ws.mttkrp_out,
                      config.mttkrp_schedule);
      ++result.cpd.mttkrp_count;

      // Fold each coupling on this mode into the normal equations:
      // K += β Y W, G += β WᵀW. Augment copies so ws.mttkrp_out stays the
      // pure MTTKRP the fit evaluation below expects.
      bool coupled_mode = false;
      for (std::size_t c = 0; c < couplings.size(); ++c) {
        if (couplings[c].mode != m) {
          continue;
        }
        if (!coupled_mode) {
          k_aug = ws.mttkrp_out;
          coupled_mode = true;
        }
        const real_t beta = couplings[c].weight;
        const Matrix yw = matmul(couplings[c].y, result.side_factors[c]);
        axpy(beta, yw.flat(), k_aug.flat());
        gram(result.side_factors[c], g_side);
        axpy(beta, g_side.flat(), ws.gram_prod.flat());
      }

      const AdmmResult ar =
          run_admm(factors[m], duals[m], coupled_mode ? k_aug : ws.mttkrp_out,
                   ws.gram_prod, *prox[m], config, ws.admm);
      result.cpd.total_inner_iterations += ar.iterations;
      result.cpd.total_row_iterations += ar.row_iterations;
      gram(factors[m], ws.grams[m]);
    }

    // Side-factor updates: min β‖Y − A Wᵀ‖² + r(W) — normal equations
    // K_W = YᵀA, G_W = AᵀA (β scales both sides and cancels).
    for (std::size_t c = 0; c < couplings.size(); ++c) {
      const Matrix& a = factors[couplings[c].mode];
      const Matrix kw = matmul_tn(couplings[c].y, a);
      gram(a, g_side);
      const AdmmResult ar =
          run_admm(result.side_factors[c], w_duals[c], kw, g_side,
                   *w_prox[c], config, w_scratch);
      result.cpd.total_inner_iterations += ar.iterations;
      result.cpd.total_row_iterations += ar.row_iterations;
    }

    // Combined fit over the tensor and every coupled matrix.
    const real_t tensor_err = detail::fit_relative_error(
        x_norm_sq, ws.mttkrp_out, factors[order - 1], ws.grams, ws.fit_acc);
    double resid_sq = static_cast<double>(tensor_err) *
                      static_cast<double>(tensor_err) *
                      static_cast<double>(x_norm_sq);
    for (std::size_t c = 0; c < couplings.size(); ++c) {
      const double mr = matrix_resid_sq(couplings[c].y,
                                        factors[couplings[c].mode],
                                        result.side_factors[c]);
      const double y_norm = static_cast<double>(fro_norm_sq(couplings[c].y));
      result.matrix_relative_error[c] =
          y_norm > 0 ? static_cast<real_t>(std::sqrt(mr / y_norm))
                     : static_cast<real_t>(std::sqrt(mr));
      resid_sq += static_cast<double>(couplings[c].weight) * mr;
    }
    const real_t combined =
        coupled_norm_sq > 0
            ? static_cast<real_t>(std::sqrt(resid_sq / coupled_norm_sq))
            : static_cast<real_t>(std::sqrt(resid_sq));

    result.cpd.relative_error = tensor_err;
    result.combined_relative_error = combined;
    result.cpd.outer_iterations = outer;
    if (config.record_trace) {
      result.cpd.trace.add(outer, wall.seconds(), combined);
    }
    if (prev_measure - combined < config.tolerance && outer > 1) {
      result.cpd.converged = true;
      break;
    }
    prev_measure = combined;
  }

  wall.stop();
  result.cpd.times.total_seconds = wall.seconds();
  return result;
}

}  // namespace aoadmm
