// Kruskal-form model: the output object of a CPD. Holds one factor matrix
// per mode plus per-component weights λ (the column norms absorbed during
// normalization, as in Kolda & Bader's survey and SPLATT's output format).
// Also provides the factor match score (FMS), the standard metric for "did
// the factorization recover the planted components?" used by the recovery
// tests.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// Single-entry Kruskal reconstruction, Σ_f λ_f ∏_m A_m(i_m, f) — the one
/// inner loop shared by model evaluation (core/eval.cpp), the examples, and
/// the live model server. Header-inline because callers run it once per
/// non-zero / per query. `lambda` may be empty (treated as all-ones).
inline real_t kruskal_value_at(cspan<const Matrix> factors,
                               cspan<real_t> lambda,
                               cspan<index_t> coord) noexcept {
  const std::size_t order = factors.size();
  const std::size_t rank = order > 0 ? factors[0].cols() : 0;
  real_t value = 0;
  for (std::size_t f = 0; f < rank; ++f) {
    real_t prod = lambda.empty() ? real_t{1} : lambda[f];
    for (std::size_t m = 0; m < order; ++m) {
      prod *= factors[m](coord[m], f);
    }
    value += prod;
  }
  return value;
}

/// Unweighted overload (λ = 1), the common case for raw CpdResult factors.
inline real_t kruskal_value_at(cspan<const Matrix> factors,
                               cspan<index_t> coord) noexcept {
  return kruskal_value_at(factors, {}, coord);
}

/// Reconstruction at the coordinate of non-zero `n` of a COO tensor —
/// avoids materializing a coordinate array per element in evaluation loops.
inline real_t kruskal_value_at(cspan<const Matrix> factors,
                               cspan<real_t> lambda, const CooTensor& x,
                               offset_t n) noexcept {
  const std::size_t order = factors.size();
  const std::size_t rank = order > 0 ? factors[0].cols() : 0;
  real_t value = 0;
  for (std::size_t f = 0; f < rank; ++f) {
    real_t prod = lambda.empty() ? real_t{1} : lambda[f];
    for (std::size_t m = 0; m < order; ++m) {
      prod *= factors[m](x.index(m, n), f);
    }
    value += prod;
  }
  return value;
}

class KruskalTensor {
 public:
  KruskalTensor() = default;

  /// Adopt factors; weights initialized to 1. All factors must share one
  /// rank and have non-zero rank.
  explicit KruskalTensor(std::vector<Matrix> factors);

  std::size_t order() const noexcept { return factors_.size(); }
  rank_t rank() const noexcept { return rank_; }
  const std::vector<Matrix>& factors() const noexcept { return factors_; }
  std::vector<Matrix>& factors() noexcept { return factors_; }
  const std::vector<real_t>& lambda() const noexcept { return lambda_; }

  /// Replace the weight vector (e.g. when deserializing a saved model).
  /// Size must equal rank().
  void set_lambda(std::vector<real_t> lambda);

  /// Normalize every factor column to unit 2-norm, absorbing the norms into
  /// λ (λ_f ← λ_f · ∏_m ‖A_m(:,f)‖). Zero columns get λ_f = 0 and are left
  /// as-is.
  void normalize_columns();

  /// Sort components by λ descending (stable; reorders every factor's
  /// columns consistently).
  void sort_components();

  /// Model value at a coordinate: Σ_f λ_f ∏_m A_m(i_m, f).
  real_t value_at(cspan<index_t> coord) const;

  /// ‖M‖² via the Gram trick: λᵀ(⊛_m A_mᵀA_m)λ.
  real_t norm_sq() const;

  /// Drop components with λ <= tol (e.g. components an l1 penalty killed).
  /// Returns the number of components removed.
  rank_t prune(real_t tol = 0);

 private:
  std::vector<Matrix> factors_;
  std::vector<real_t> lambda_;
  rank_t rank_ = 0;
};

/// Factor match score in [0, 1]: greedily matches components of `a` to
/// components of `b` by the product over modes of normalized column
/// cosines, discounted by weight disagreement:
///   score(r,s) = (1 − |λa_r − λb_s| / max(λa_r, λb_s)) ·
///                ∏_m |⟨A_m(:,r), B_m(:,s)⟩| / (‖A_m(:,r)‖‖B_m(:,s)‖).
/// FMS = mean matched score. 1.0 ⇔ identical up to permutation/scaling.
/// Requires equal order and mode lengths; ranks may differ (extra
/// components of the larger model are ignored).
real_t factor_match_score(const KruskalTensor& a, const KruskalTensor& b);

}  // namespace aoadmm
