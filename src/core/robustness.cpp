#include "core/robustness.hpp"

#include <array>
#include <sstream>
#include <utility>

#include "obs/profile.hpp"
#include "obs/telemetry/event_journal.hpp"

namespace aoadmm {

const char* to_string(RecoveryKind k) noexcept {
  switch (k) {
    case RecoveryKind::kCholeskyJitter:
      return "cholesky_jitter";
    case RecoveryKind::kAdmmRestart:
      return "admm_restart";
    case RecoveryKind::kAdmmAbandoned:
      return "admm_abandoned";
    case RecoveryKind::kMttkrpRetry:
      return "mttkrp_retry";
    case RecoveryKind::kFactorRollback:
      return "factor_rollback";
    case RecoveryKind::kCheckpointWriteFailure:
      return "checkpoint_write_failure";
    case RecoveryKind::kRhoRebalance:
      return "rho_rebalance";
  }
  return "?";
}

void RecoveryReport::add(RecoveryEvent e) {
  e.trace = obs::current_trace();
  obs::profile_instant("robust/recovery");
  obs::journal_event(obs::EventKind::kRecovery, e.trace,
                     obs::EventJournal::Fields{}
                         .str("kind", aoadmm::to_string(e.kind))
                         .num("outer_iteration",
                              static_cast<std::uint64_t>(e.outer_iteration))
                         .num("mode", static_cast<std::uint64_t>(e.mode))
                         .num("attempts",
                              static_cast<std::uint64_t>(e.attempts))
                         .num("magnitude", e.magnitude)
                         .str("detail", e.detail));
  events.push_back(std::move(e));
}

std::size_t RecoveryReport::count(RecoveryKind k) const noexcept {
  std::size_t n = 0;
  for (const RecoveryEvent& e : events) {
    n += e.kind == k ? 1 : 0;
  }
  return n;
}

std::string RecoveryReport::to_string() const {
  std::ostringstream os;
  for (const RecoveryEvent& e : events) {
    os << "outer " << e.outer_iteration << " mode " << e.mode << ": "
       << aoadmm::to_string(e.kind) << " attempts=" << e.attempts
       << " magnitude=" << e.magnitude;
    if (!e.detail.empty()) {
      os << " (" << e.detail << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::string RecoveryReport::summary() const {
  if (events.empty()) {
    return "none";
  }
  constexpr std::array<RecoveryKind, 7> kKinds = {
      RecoveryKind::kCholeskyJitter,     RecoveryKind::kAdmmRestart,
      RecoveryKind::kAdmmAbandoned,      RecoveryKind::kMttkrpRetry,
      RecoveryKind::kFactorRollback,     RecoveryKind::kCheckpointWriteFailure,
      RecoveryKind::kRhoRebalance,
  };
  std::ostringstream os;
  os << events.size() << (events.size() == 1 ? " recovery (" : " recoveries (");
  bool first = true;
  for (const RecoveryKind k : kKinds) {
    const std::size_t n = count(k);
    if (n > 0) {
      os << (first ? "" : ", ") << aoadmm::to_string(k) << " " << n;
      first = false;
    }
  }
  os << ")";
  return os.str();
}

}  // namespace aoadmm
