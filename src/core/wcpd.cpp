#include "core/wcpd.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/cpd_impl.hpp"
#include "la/cholesky.hpp"
#include "parallel/runtime.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace aoadmm {
namespace {

/// Per-thread scratch for one row's subproblem.
struct RowScratch {
  Matrix g;                 // F x F normal matrix for the row
  std::vector<real_t, AlignedAllocator<real_t>> k;      // rhs
  std::vector<real_t, AlignedAllocator<real_t>> w;      // KRP row product
  std::vector<real_t, AlignedAllocator<real_t>> aux;    // H̃ row
  std::vector<real_t, AlignedAllocator<real_t>> h_old;  // H₀ row
  std::vector<real_t, AlignedAllocator<real_t>> path;   // per-level products

  explicit RowScratch(std::size_t f, std::size_t order)
      : g(f, f), k(f), w(f), aux(f), h_old(f), path(order * f) {}
};

/// Assemble G_i and k_i for root node `r` of `tree` by one pass over its
/// subtree: w = ⊛ of the factor rows at levels 1..order-1 along each
/// root-to-leaf path; G_i += w wᵀ (upper triangle), k_i += x·w.
void assemble_row_system(const CsfTensor& tree,
                         cspan<const Matrix> factors, std::size_t r,
                         RowScratch& s) {
  const std::size_t order = tree.order();
  const std::size_t f = s.k.size();
  s.g.zero();
  for (auto& v : s.k) {
    v = 0;
  }
  const auto vals = tree.vals();
  const auto leaf_fids = tree.fids(order - 1);
  const Matrix& leaf_factor = factors[tree.level_mode(order - 1)];

  const auto visit = [&](auto&& self, std::size_t level, offset_t node,
                         const real_t* __restrict partial) -> void {
    if (level == order - 1) {
      const real_t x = vals[node];
      const real_t* __restrict lrow =
          leaf_factor.data() + static_cast<std::size_t>(leaf_fids[node]) * f;
      real_t* __restrict w = s.w.data();
      for (std::size_t c = 0; c < f; ++c) {
        w[c] = partial == nullptr ? lrow[c] : partial[c] * lrow[c];
      }
      // Rank-1 update of the upper triangle and the rhs.
      for (std::size_t p = 0; p < f; ++p) {
        const real_t wp = w[p];
        real_t* __restrict gp = s.g.data() + p * f;
        for (std::size_t q = p; q < f; ++q) {
          gp[q] += wp * w[q];
        }
        s.k[p] += x * wp;
      }
      return;
    }
    const real_t* next_partial = partial;
    if (level > 0) {
      // Extend the path product with this level's factor row.
      const Matrix& a = factors[tree.level_mode(level)];
      const real_t* __restrict row =
          a.data() + static_cast<std::size_t>(tree.fids(level)[node]) * f;
      real_t* __restrict buf = s.path.data() + level * f;
      for (std::size_t c = 0; c < f; ++c) {
        buf[c] = partial == nullptr ? row[c] : partial[c] * row[c];
      }
      next_partial = buf;
    }
    const auto fptr = tree.fptr(level);
    for (offset_t child = fptr[node]; child < fptr[node + 1]; ++child) {
      self(self, level + 1, child, next_partial);
    }
  };
  visit(visit, 0, static_cast<offset_t>(r), nullptr);

  // Mirror the upper triangle.
  for (std::size_t p = 0; p < f; ++p) {
    for (std::size_t q = p + 1; q < f; ++q) {
      s.g(q, p) = s.g(p, q);
    }
  }
}

/// Per-row ADMM on the assembled system. h/u are rows of the factor/dual
/// matrices (updated in place through the parent matrices so the prox sees
/// proper rows).
void solve_row(Matrix& h_mat, Matrix& u_mat, std::size_t row,
               const ProxOperator& prox, const AdmmOptions& admm,
               real_t ridge, RowScratch& s) {
  const std::size_t f = s.k.size();
  real_t trace = 0;
  for (std::size_t c = 0; c < f; ++c) {
    trace += s.g(c, c);
  }
  real_t rho = trace / static_cast<real_t>(f);
  if (!(rho > real_t{1e-12})) {
    rho = real_t{1e-12};
  }
  for (std::size_t c = 0; c < f; ++c) {
    s.g(c, c) += rho + ridge;
  }
  const Cholesky chol(s.g);

  real_t* __restrict h = h_mat.data() + row * f;
  real_t* __restrict u = u_mat.data() + row * f;
  real_t* __restrict aux = s.aux.data();
  real_t* __restrict h_old = s.h_old.data();

  for (unsigned iter = 0; iter < admm.max_iterations; ++iter) {
    for (std::size_t c = 0; c < f; ++c) {
      aux[c] = s.k[c] + rho * (h[c] + u[c]);
    }
    chol.solve_inplace({aux, f});
    if (admm.relaxation != real_t{1}) {
      for (std::size_t c = 0; c < f; ++c) {
        aux[c] = admm.relaxation * aux[c] +
                 (real_t{1} - admm.relaxation) * h[c];
      }
    }
    real_t pr_num = 0;
    real_t pr_den = 0;
    real_t du_num = 0;
    real_t du_den = 0;
    for (std::size_t c = 0; c < f; ++c) {
      h_old[c] = h[c];
      h[c] = aux[c] - u[c];
    }
    prox.apply(h_mat, row, row + 1, rho);
    for (std::size_t c = 0; c < f; ++c) {
      const real_t diff = h[c] - aux[c];
      u[c] += diff;
      pr_num += diff * diff;
      pr_den += h[c] * h[c];
      const real_t step = h[c] - h_old[c];
      du_num += step * step;
      du_den += u[c] * u[c];
    }
    const real_t pr = pr_num / (pr_den > 0 ? pr_den : real_t{1});
    const real_t du_floor = real_t{1e-12} * pr_den + real_t{1e-300};
    const real_t du = du_num / (du_den > du_floor ? du_den : du_floor);
    if (pr < admm.tolerance && du < admm.tolerance) {
      break;
    }
  }
}

/// Observed-entry relative error: √(Σ_Ω (x−m)²/Σ_Ω x²), streamed over the
/// root-to-leaf paths of any one CSF tree.
real_t observed_error_from_tree(const CsfTensor& tree,
                                cspan<const Matrix> factors,
                                real_t value_norm_sq) {
  const std::size_t order = tree.order();
  const std::size_t f = factors[0].cols();
  // Walk root-to-leaf paths accumulating the model value per non-zero.
  // Serial walk per root, parallel over roots.
  const auto vals = tree.vals();
  const auto leaf_fids = tree.fids(order - 1);
  const Matrix& leaf_factor = factors[tree.level_mode(order - 1)];

  const double resid_sq = parallel_reduce_sum(
      0, tree.num_nodes(0), [&](std::size_t r) {
        std::vector<real_t> path((order) * f);
        double local = 0;
        const auto visit = [&](auto&& self, std::size_t level, offset_t node,
                               const real_t* partial) -> void {
          const Matrix& a = factors[tree.level_mode(level)];
          const real_t* row =
              a.data() + static_cast<std::size_t>(tree.fids(level)[node]) * f;
          if (level == order - 1) {
            real_t model = 0;
            for (std::size_t c = 0; c < f; ++c) {
              model += partial[c] * row[c];
            }
            const real_t d = vals[node] - model;
            local += static_cast<double>(d * d);
            return;
          }
          real_t* buf = path.data() + level * f;
          for (std::size_t c = 0; c < f; ++c) {
            buf[c] = partial == nullptr ? row[c] : partial[c] * row[c];
          }
          const auto fptr = tree.fptr(level);
          for (offset_t child = fptr[node]; child < fptr[node + 1];
               ++child) {
            self(self, level + 1, child, buf);
          }
        };
        visit(visit, 0, static_cast<offset_t>(r), nullptr);
        (void)leaf_fids;
        (void)leaf_factor;
        return local;
      });
  return value_norm_sq > 0
             ? static_cast<real_t>(
                   std::sqrt(resid_sq / static_cast<double>(value_norm_sq)))
             : static_cast<real_t>(std::sqrt(resid_sq));
}

}  // namespace

WcpdResult cpd_wopt(const CsfSet& csf, const WcpdOptions& opts,
                    cspan<const ConstraintSpec> constraints) {
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(opts.rank > 0);
  AOADMM_CHECK(opts.ridge >= 0);
  AOADMM_CHECK_MSG(csf.strategy() == CsfStrategy::kAllMode,
                   "cpd_wopt assembles per-row systems from mode-rooted "
                   "trees; compile the tensor with CsfStrategy::kAllMode");
  AOADMM_CHECK_MSG(constraints.size() == 1 || constraints.size() == order,
                   "constraints: give 1 (broadcast) or one per mode");

  std::vector<std::unique_ptr<ProxOperator>> prox(order);
  for (std::size_t m = 0; m < order; ++m) {
    prox[m] = make_prox(constraints.size() == 1 ? constraints[0]
                                                : constraints[m]);
  }

  Timer wall;
  wall.start();

  WcpdResult result;
  const real_t x_norm_sq = detail::tensor_norm_sq(csf.for_mode(0));
  result.factors = detail::init_factors(csf, opts.rank, opts.seed,
                                        x_norm_sq);
  std::vector<Matrix> duals;
  duals.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    duals.emplace_back(result.factors[m].rows(), opts.rank);
  }
  const std::size_t f = opts.rank;

  // Rows with no observations carry no data signal: pin them at prox(0)
  // once so they cannot pollute the other modes' systems.
  for (std::size_t m = 0; m < order; ++m) {
    const CsfTensor& tree = csf.for_mode(m);
    std::vector<bool> observed(result.factors[m].rows(), false);
    for (const index_t i : tree.fids(0)) {
      observed[i] = true;
    }
    for (std::size_t i = 0; i < observed.size(); ++i) {
      if (!observed[i]) {
        auto row = result.factors[m].row(i);
        std::fill(row.begin(), row.end(), real_t{0});
        prox[m]->apply(result.factors[m], i, i + 1, real_t{1});
      }
    }
  }

  real_t prev_error = std::numeric_limits<real_t>::infinity();

  for (unsigned outer = 1; outer <= opts.max_outer_iterations; ++outer) {
    for (std::size_t m = 0; m < order; ++m) {
      const CsfTensor& tree = csf.for_mode(m);
      AOADMM_CHECK(tree.level_mode(0) == m);
      const auto root_fids = tree.fids(0);
      const auto nroots = static_cast<std::ptrdiff_t>(root_fids.size());
      Matrix& h = result.factors[m];
      Matrix& u = duals[m];
      const ProxOperator& p = *prox[m];

#if defined(AOADMM_HAVE_OPENMP)
#pragma omp parallel
#endif
      {
        RowScratch scratch(f, order);
#if defined(AOADMM_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 8)
#endif
        for (std::ptrdiff_t r = 0; r < nroots; ++r) {
          const auto rr = static_cast<std::size_t>(r);
          assemble_row_system(tree, result.factors, rr, scratch);
          solve_row(h, u, root_fids[rr], p, opts.admm, opts.ridge, scratch);
        }
      }
    }

    const real_t err = observed_error_from_tree(csf.for_mode(0),
                                                result.factors, x_norm_sq);
    result.observed_relative_error = err;
    result.outer_iterations = outer;
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), err);
    }
    if (prev_error - err < opts.tolerance && outer > 1) {
      result.converged = true;
      break;
    }
    prev_error = err;
  }

  wall.stop();
  result.total_seconds = wall.seconds();
  return result;
}

}  // namespace aoadmm
