#include "core/loss.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace aoadmm {

void Loss::check_datum(real_t) const {}

namespace {

/// ½(t − x)² over observed entries only — the masked Frobenius loss. The
/// unmasked case never reaches a Loss subclass (quadratic fast path).
class FrobeniusLoss final : public Loss {
 public:
  explicit FrobeniusLoss(bool masked) : masked_(masked) {}

  bool quadratic() const override { return !masked_; }
  bool masked() const override { return masked_; }

  real_t prox(real_t x, real_t v, real_t rho) const override {
    // argmin_t ½(t−x)² + ρ/2 (t−v)²
    return (rho * v + x) / (rho + real_t{1});
  }

  real_t value(real_t x, real_t t) const override {
    const real_t d = t - x;
    return real_t{0.5} * d * d;
  }

  std::string name() const override {
    return masked_ ? "frobenius(masked)" : "frobenius";
  }

 private:
  bool masked_;
};

class KLLoss final : public Loss {
 public:
  explicit KLLoss(bool masked) : masked_(masked) {}

  bool masked() const override { return masked_; }
  real_t zero_fill_slope() const override { return 1; }

  real_t prox(real_t x, real_t v, real_t rho) const override {
    // argmin_t (t − x log t) + ρ/2 (t−v)²:  ρt² + (1 − ρv)t − x = 0, keep
    // the positive root. x = 0 degenerates to the linear loss t, whose prox
    // is a downward shift clipped at the domain boundary.
    if (x <= 0) {
      const real_t t = v - real_t{1} / rho;
      return t > 0 ? t : 0;
    }
    const real_t b = rho * v - real_t{1};
    return (b + std::sqrt(b * b + 4 * rho * x)) / (2 * rho);
  }

  real_t value(real_t x, real_t t) const override {
    // Clamp the model into the domain: a transient negative model value
    // (possible under sign-free constraints) reports as if at the boundary
    // instead of producing NaN. The x·log x − x constant is dropped, so
    // value(x, x) != 0 — only differences across iterates are meaningful.
    const real_t tc = t > kDomainFloor ? t : kDomainFloor;
    return x > 0 ? tc - x * std::log(tc) : tc;
  }

  void check_datum(real_t x) const override {
    if (x < 0) {
      throw InvalidArgument(
          "KL loss requires non-negative data, found value " +
          std::to_string(x));
    }
  }

  std::string name() const override {
    return masked_ ? "kl(masked)" : "kl";
  }

 private:
  static constexpr real_t kDomainFloor = 1e-12;
  bool masked_;
};

class HuberLoss final : public Loss {
 public:
  explicit HuberLoss(real_t delta) : delta_(delta) {}

  real_t prox(real_t x, real_t v, real_t rho) const override {
    // Quadratic region: matches the Frobenius prox; beyond it the loss is
    // linear with slope ±δ, a constant shift of v. The region boundary
    // |v − x| ≤ δ(1+ρ)/ρ is exactly where the two branches meet.
    const real_t w = v - x;
    const real_t bound = delta_ * (real_t{1} + rho) / rho;
    if (std::abs(w) <= bound) {
      return x + rho * w / (real_t{1} + rho);
    }
    return v - (delta_ / rho) * (w > 0 ? real_t{1} : real_t{-1});
  }

  real_t value(real_t x, real_t t) const override {
    const real_t d = std::abs(t - x);
    return d <= delta_ ? real_t{0.5} * d * d
                       : delta_ * (d - real_t{0.5} * delta_);
  }

  std::string name() const override {
    return "huber(" + std::to_string(delta_) + ")";
  }

 private:
  real_t delta_;
};

class L1Loss final : public Loss {
 public:
  real_t prox(real_t x, real_t v, real_t rho) const override {
    // Soft threshold of v − x by 1/ρ, re-centered at x.
    const real_t w = v - x;
    const real_t th = real_t{1} / rho;
    if (w > th) return v - th;
    if (w < -th) return v + th;
    return x;
  }

  real_t value(real_t x, real_t t) const override { return std::abs(t - x); }

  std::string name() const override { return "l1"; }
};

}  // namespace

LossKind parse_loss_kind(const std::string& s) {
  if (s == "frobenius" || s == "fro" || s == "ls") return LossKind::kFrobenius;
  if (s == "kl" || s == "poisson") return LossKind::kKL;
  if (s == "huber") return LossKind::kHuber;
  if (s == "l1") return LossKind::kL1;
  throw InvalidArgument("unknown loss kind: " + s +
                        " (expected frobenius|kl|huber|l1)");
}

const char* to_string(LossKind k) noexcept {
  switch (k) {
    case LossKind::kFrobenius:
      return "frobenius";
    case LossKind::kKL:
      return "kl";
    case LossKind::kHuber:
      return "huber";
    case LossKind::kL1:
      return "l1";
  }
  return "?";
}

LossSpec parse_loss_spec(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = s.find(':', start);
    parts.push_back(s.substr(start, colon - start));
    if (colon == std::string::npos) {
      break;
    }
    start = colon + 1;
  }

  LossSpec spec;
  spec.kind = parse_loss_kind(parts[0]);
  std::size_t next = 1;
  if (next < parts.size() && parts[next] != "masked") {
    if (spec.kind != LossKind::kHuber) {
      throw InvalidArgument("loss spec \"" + s + "\": only huber takes a " +
                            "numeric parameter (the delta)");
    }
    try {
      std::size_t consumed = 0;
      spec.huber_delta =
          static_cast<real_t>(std::stod(parts[next], &consumed));
      if (consumed != parts[next].size()) {
        throw std::invalid_argument(parts[next]);
      }
    } catch (const std::exception&) {
      throw InvalidArgument("loss spec \"" + s + "\": cannot parse \"" +
                            parts[next] + "\" as the huber delta");
    }
    ++next;
  }
  if (next < parts.size()) {
    if (parts[next] != "masked") {
      throw InvalidArgument("loss spec \"" + s + "\": unexpected token \"" +
                            parts[next] + "\" (only \"masked\" is valid "
                            "here)");
    }
    spec.masked = true;
    ++next;
  }
  if (next != parts.size()) {
    throw InvalidArgument("loss spec \"" + s + "\": trailing tokens");
  }
  return spec;
}

std::string to_cli_string(const LossSpec& spec) {
  std::ostringstream os;
  os << to_string(spec.kind);
  if (spec.kind == LossKind::kHuber) {
    os << ':' << spec.huber_delta;
  }
  if (spec.masked) {
    os << ":masked";
  }
  return os.str();
}

std::unique_ptr<Loss> make_loss(const LossSpec& spec) {
  switch (spec.kind) {
    case LossKind::kFrobenius:
      return std::make_unique<FrobeniusLoss>(spec.masked);
    case LossKind::kKL:
      return std::make_unique<KLLoss>(spec.masked);
    case LossKind::kHuber:
      AOADMM_CHECK_MSG(spec.huber_delta > 0, "huber delta must be positive");
      return std::make_unique<HuberLoss>(spec.huber_delta);
    case LossKind::kL1:
      return std::make_unique<L1Loss>();
  }
  throw InvalidArgument("unhandled loss kind");
}

}  // namespace aoadmm
