#include <limits>

#include "core/cpd.hpp"
#include "core/cpd_impl.hpp"
#include "core/workspace.hpp"
#include "la/cholesky.hpp"
#include "sparse/density.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace aoadmm {

CpdResult cpd_als(const CsfSet& csf, const CpdOptions& opts, real_t ridge) {
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(ridge >= 0);

  Timer wall;
  wall.start();
  TimerSet timers;

  CpdResult result;
  const real_t x_norm_sq = detail::tensor_norm_sq(csf.for_mode(0));
  result.factors = detail::init_factors(csf, opts.rank, opts.seed, x_norm_sq);
  CpdWorkspace ws(order);
  {
    const ScopedTimer t(timers["other"]);
    for (std::size_t m = 0; m < order; ++m) {
      gram(result.factors[m], ws.grams[m]);
    }
  }

  real_t prev_error = std::numeric_limits<real_t>::infinity();

  for (unsigned outer = 1; outer <= opts.max_outer_iterations; ++outer) {
    for (std::size_t m = 0; m < order; ++m) {
      {
        const ScopedTimer t(timers["other"]);
        detail::gram_product_excluding(ws.grams, m, ws.gram_prod);
        // A touch of ridge keeps the normal equations positive definite
        // even when a factor momentarily loses rank.
        const real_t eps = ridge + real_t{1e-12};
        for (std::size_t i = 0; i < ws.gram_prod.rows(); ++i) {
          ws.gram_prod(i, i) += eps;
        }
      }
      {
        const ScopedTimer t(timers["mttkrp"]);
        ++result.mttkrp_count;
        mttkrp_dispatch(csf.for_mode(m), result.factors, m, ws.mttkrp_out);
      }
      {
        // The least-squares solve plays the role ADMM does in AO-ADMM.
        const ScopedTimer t(timers["admm"]);
        solve_normal_equations(ws.gram_prod, ws.mttkrp_out);
        result.factors[m] = ws.mttkrp_out;
      }
      {
        const ScopedTimer t(timers["other"]);
        gram(result.factors[m], ws.grams[m]);
      }
    }

    real_t err;
    {
      const ScopedTimer t(timers["other"]);
      // mttkrp_out was overwritten by the solve; recompute the final-mode
      // MTTKRP for an exact fit. (ALS is a baseline; simplicity wins.)
      mttkrp_dispatch(csf.for_mode(order - 1), result.factors, order - 1,
                      ws.mttkrp_out);
      err = detail::fit_relative_error(x_norm_sq, ws.mttkrp_out,
                                       result.factors[order - 1], ws.grams);
    }
    result.relative_error = err;
    result.outer_iterations = outer;
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), err);
    }

    if (prev_error - err < opts.tolerance && outer > 1) {
      result.converged = true;
      break;
    }
    prev_error = err;
  }

  wall.stop();
  result.times.total_seconds = wall.seconds();
  result.times.mttkrp_seconds = timers.seconds("mttkrp");
  result.times.admm_seconds = timers.seconds("admm");
  result.times.other_seconds = result.times.total_seconds -
                               result.times.mttkrp_seconds -
                               result.times.admm_seconds;

  result.factor_density.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    result.factor_density.push_back(
        measure_density(result.factors[m]).density);
  }
  return result;
}

}  // namespace aoadmm
