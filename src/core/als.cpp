#include <algorithm>
#include <limits>

#include "core/cpd.hpp"
#include "core/cpd_impl.hpp"
#include "core/workspace.hpp"
#include "la/cholesky.hpp"
#include "obs/metrics.hpp"
#include "obs/parallel_stats.hpp"
#include "obs/profile.hpp"
#include "sparse/density.hpp"
#include "tensor/alto.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace aoadmm {
namespace {

struct AlsMetrics {
  obs::Counter runs;
  obs::Counter outer_iterations;
  obs::Counter mttkrp_calls;
  obs::Histogram iteration_seconds;

  static const AlsMetrics& get() {
    static const AlsMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      AlsMetrics out;
      out.runs = reg.counter("als/runs");
      out.outer_iterations = reg.counter("als/outer_iterations");
      out.mttkrp_calls = reg.counter("als/mttkrp_calls");
      out.iteration_seconds = reg.histogram("als/iteration_seconds");
      return out;
    }();
    return m;
  }
};

}  // namespace

CpdResult cpd_als(const CsfSet& csf, const CpdOptions& opts, real_t ridge) {
  AOADMM_PROFILE_SCOPE("cpd/als");
  const std::size_t order = csf.order();
  AOADMM_CHECK(order >= 2);
  AOADMM_CHECK(ridge >= 0);
  AOADMM_CHECK_MSG(!csf.tiled(),
                   "cpd_als expects an untiled CsfSet (tiling is a CpdSolver "
                   "feature); build the set with tile_rows = 0");

  const MttkrpKernel requested = opts.mttkrp_kernel;
  if ((requested == MttkrpKernel::kDimTree ||
       requested == MttkrpKernel::kAlto) &&
      csf.strategy() != CsfStrategy::kOneMode) {
    throw InvalidArgument(
        std::string("mttkrp_kernel=") + to_string(requested) +
        " caches intermediates over a single shared tree; rebuild the "
        "CsfSet with CsfStrategy::kOneMode");
  }
  if (requested == MttkrpKernel::kDimTree && order < 3) {
    throw InvalidArgument("mttkrp_kernel=dimtree needs order >= 3");
  }
  if (requested == MttkrpKernel::kAlto && !alto_linearizable(csf.dims())) {
    throw InvalidArgument(
        "mttkrp_kernel=alto: mode index bits exceed the 64-bit linearized "
        "code; use onetree or dimtree for this tensor");
  }
  // ALS always reads dense leaf factors, so kAuto resolution sees
  // dense_leaf = true.
  const MttkrpKernel kernel =
      resolve_auto_kernel(requested, csf.strategy(), /*tiled=*/false,
                          /*dense_leaf=*/true, order, csf.dims(), csf.nnz(),
                          opts.rank);

  const AlsMetrics& metrics = AlsMetrics::get();
  metrics.runs.add(1);

  Timer wall;
  wall.start();
  Timer mttkrp_timer;
  Timer solve_timer;

  CpdResult result;
  const real_t x_norm_sq = csf.norm_sq();
  {
    AOADMM_PROFILE_SCOPE("cpd/init");
    result.factors =
        detail::init_factors(csf, opts.rank, opts.seed, x_norm_sq);
  }
  CpdWorkspace ws(order);
  {
    AOADMM_PROFILE_SCOPE("cpd/gram");
    for (std::size_t m = 0; m < order; ++m) {
      gram(result.factors[m], ws.grams[m]);
    }
  }

  real_t prev_error = std::numeric_limits<real_t>::infinity();
  std::vector<double> mode_mttkrp_seconds(order, 0);

  for (unsigned outer = 1; outer <= opts.max_outer_iterations; ++outer) {
    AOADMM_PROFILE_SCOPE("cpd/outer");
    const double iter_start_seconds = wall.seconds();
    const obs::ParallelTotals parallel_before = obs::parallel_totals();
    const double solve_seconds_before = solve_timer.seconds();
    std::fill(mode_mttkrp_seconds.begin(), mode_mttkrp_seconds.end(), 0.0);

    for (std::size_t m = 0; m < order; ++m) {
      AOADMM_PROFILE_SCOPE("cpd/mode");
      {
        AOADMM_PROFILE_SCOPE("cpd/gram_product");
        detail::gram_product_excluding(ws.grams, m, ws.gram_prod);
        // A touch of ridge keeps the normal equations positive definite
        // even when a factor momentarily loses rank.
        const real_t eps = ridge + real_t{1e-12};
        for (std::size_t i = 0; i < ws.gram_prod.rows(); ++i) {
          ws.gram_prod(i, i) += eps;
        }
      }
      {
        const ScopedTimer t(mttkrp_timer);
        const double before = mttkrp_timer.seconds();
        ++result.mttkrp_count;
        metrics.mttkrp_calls.add(1);
        mttkrp_dispatch(csf.for_mode(m), result.factors, m, ws.mttkrp_out,
                        opts.mttkrp_schedule, kernel, &ws.dimtree);
        mode_mttkrp_seconds[m] = mttkrp_timer.seconds() - before;
      }
      {
        // The least-squares solve plays the role ADMM does in AO-ADMM.
        // Unlike the ADMM path, whose ρ = tr(G)/F ridge keeps the system
        // well-conditioned, ALS adds only a tiny fixed ridge — on badly
        // scaled rank-deficient data roundoff can swamp it and the plain
        // Cholesky throws. The guarded variant escalates instead.
        const ScopedTimer t(solve_timer);
        AOADMM_PROFILE_SCOPE("cpd/solve");
        const RobustnessOptions& rb = opts.admm.robustness;
        if (rb.enabled) {
          const CholeskyReport cr = solve_normal_equations_guarded(
              ws.gram_prod, ws.mttkrp_out,
              {rb.cholesky_max_attempts, rb.cholesky_initial_jitter,
               rb.cholesky_jitter_growth});
          if (cr.attempts > 0) {
            result.recovery.add({RecoveryKind::kCholeskyJitter, outer, m,
                                 cr.attempts, static_cast<double>(cr.jitter),
                                 std::string(), {}});
          }
        } else {
          solve_normal_equations(ws.gram_prod, ws.mttkrp_out);
        }
        result.factors[m] = ws.mttkrp_out;
      }
      {
        AOADMM_PROFILE_SCOPE("cpd/gram");
        gram(result.factors[m], ws.grams[m]);
        ws.dimtree.invalidate_mode(m);
      }
    }

    real_t err;
    {
      AOADMM_PROFILE_SCOPE("cpd/fit");
      // mttkrp_out was overwritten by the solve; recompute the final-mode
      // MTTKRP for an exact fit. (ALS is a baseline; simplicity wins.)
      mttkrp_dispatch(csf.for_mode(order - 1), result.factors, order - 1,
                      ws.mttkrp_out, opts.mttkrp_schedule, kernel,
                      &ws.dimtree);
      err = detail::fit_relative_error(x_norm_sq, ws.mttkrp_out,
                                       result.factors[order - 1], ws.grams);
    }
    result.relative_error = err;
    result.outer_iterations = outer;
    if (opts.record_trace) {
      result.trace.add(outer, wall.seconds(), err);
    }

    const double iter_seconds = wall.seconds() - iter_start_seconds;
    metrics.outer_iterations.add(1);
    metrics.iteration_seconds.observe(iter_seconds);

    if (opts.on_iteration) {
      obs::MetricsSnapshot snap;
      snap.outer_iteration = outer;
      snap.seconds = wall.seconds();
      snap.iteration_seconds = iter_seconds;
      snap.relative_error = err;
      snap.mode_mttkrp_seconds = mode_mttkrp_seconds;
      // ALS has no ADMM inner loop; the solve time fills its slot and the
      // residual fields stay at their zero defaults.
      snap.admm_seconds = solve_timer.seconds() - solve_seconds_before;
      snap.thread_imbalance = obs::imbalance_since(parallel_before);
      snap.factor_density.reserve(order);
      for (std::size_t m = 0; m < order; ++m) {
        snap.factor_density.push_back(
            measure_density(result.factors[m]).density);
      }
      snap.mttkrp_count = result.mttkrp_count;
      opts.on_iteration(snap);
    }

    if (prev_error - err < opts.tolerance && outer > 1) {
      result.converged = true;
      break;
    }
    prev_error = err;
  }

  wall.stop();
  result.times.total_seconds = wall.seconds();
  result.times.mttkrp_seconds = mttkrp_timer.seconds();
  result.times.admm_seconds = solve_timer.seconds();
  result.times.other_seconds = result.times.total_seconds -
                               result.times.mttkrp_seconds -
                               result.times.admm_seconds;

  result.factor_density.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    result.factor_density.push_back(
        measure_density(result.factors[m]).density);
  }
  return result;
}

}  // namespace aoadmm
