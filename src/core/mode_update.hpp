// The per-mode ADMM update with its full guard-rail envelope, extracted
// from the CpdSolver outer loop so the sharded coordinator
// (dist/sharded_solver.hpp) runs the identical update — same variant
// dispatch, same recovery bookkeeping, same metrics — on the globally
// assembled MTTKRP. Both drivers therefore produce the same iterate given
// the same (K, G) inputs, which is what makes the 1x1x1-grid sharded solve
// bitwise-equal to the unsharded one.
#pragma once

#include <cstdint>

#include "core/admm.hpp"
#include "core/config.hpp"
#include "core/cpd.hpp"
#include "core/prox.hpp"

namespace aoadmm {
namespace detail {

/// Per-call aggregates the outer loop folds into its iteration snapshot.
struct ModeUpdateStats {
  unsigned inner_iterations = 0;
  real_t primal_residual = 0;
  real_t dual_residual = 0;
};

/// Run the configured ADMM variant on one mode's assembled system
/// (factor/dual updated in place), record every robustness intervention
/// into `result` and the metrics registry, and perform the non-finite
/// factor rollback (restores `scratch.h_entry`, zeroes the duals). Throws
/// NumericalError when the factor is contaminated beyond recovery.
ModeUpdateStats admm_mode_update(AdmmVariant variant, Matrix& factor,
                                 Matrix& dual, const Matrix& mttkrp,
                                 const Matrix& gram_prod,
                                 const ProxOperator& prox,
                                 const AdmmOptions& opts, AdmmScratch& scratch,
                                 unsigned outer, std::size_t mode,
                                 CpdResult& result);

}  // namespace detail
}  // namespace aoadmm
