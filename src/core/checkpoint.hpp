// Versioned binary serialization of solver state.
//
//  * CpdCheckpoint — everything the AO-ADMM outer loop needs to continue a
//    run bitwise-identically after a kill: factors, ADMM scaled duals, RNG
//    state, outer-iteration counter, previous error, work counters, and the
//    convergence trace so far.
//  * KruskalTensor binary round-trip — exact (full-precision) model
//    save/load, e.g. to warm-start a later session.
//
// Format: fixed little-endian-native header (magic, version, sizeof(real_t))
// followed by the payload, followed by an FNV-1a checksum of the payload.
// Values are written in memory representation, so a checkpoint is portable
// between runs on the same architecture — the intended use (resume after a
// kill, parameter sweeps on one machine), not an archival format.
// write_*_file variants write to "<path>.tmp" and rename, so a crash while
// checkpointing never corrupts the previous checkpoint.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/kruskal.hpp"
#include "core/trace.hpp"
#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Full mid-run solver state. Produced by CpdSolver at checkpoint points
/// and consumed by CpdSolver::resume().
struct CpdCheckpoint {
  /// Tensor shape the run belongs to; resume validates it against the
  /// session's tensor.
  std::vector<index_t> dims;
  rank_t rank = 0;
  std::uint64_t seed = 0;
  std::array<std::uint64_t, 4> rng_state{};
  /// Outer iterations completed when the checkpoint was taken.
  unsigned outer_iteration = 0;
  /// Relative error of that iteration (the loop's convergence reference).
  real_t prev_error = 0;
  std::uint64_t total_inner_iterations = 0;
  std::uint64_t total_row_iterations = 0;
  std::uint64_t mttkrp_count = 0;
  std::uint64_t sparse_mttkrp_count = 0;
  std::vector<Matrix> factors;
  std::vector<Matrix> duals;
  ConvergenceTrace trace;
};

/// Serialize / deserialize a checkpoint. read_checkpoint throws ParseError
/// on bad magic, version or real_t size mismatch, truncation, or checksum
/// failure.
void write_checkpoint(const CpdCheckpoint& ck, std::ostream& out);
CpdCheckpoint read_checkpoint(std::istream& in);

/// File variants; writing is atomic (temp file + rename). Throw
/// InvalidArgument when the file cannot be opened / renamed.
void write_checkpoint_file(const CpdCheckpoint& ck, const std::string& path);
CpdCheckpoint read_checkpoint_file(const std::string& path);

/// Exact binary round-trip for a Kruskal model (factors + λ weights).
void write_kruskal(const KruskalTensor& k, std::ostream& out);
KruskalTensor read_kruskal(std::istream& in);
void write_kruskal_file(const KruskalTensor& k, const std::string& path);
KruskalTensor read_kruskal_file(const std::string& path);

}  // namespace aoadmm
