#include "core/config.hpp"

#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace aoadmm {

ModeConstraints ModeConstraints::per_mode(std::vector<ConstraintSpec> specs) {
  if (specs.empty()) {
    throw InvalidArgument(
        "ModeConstraints::per_mode: need at least one spec (use broadcast() "
        "for a single constraint applied to all modes)");
  }
  ModeConstraints c;
  c.specs_ = std::move(specs);
  return c;
}

ModeConstraints ModeConstraints::from_legacy(cspan<const ConstraintSpec> specs,
                                             std::size_t order) {
  if (specs.size() == 1) {
    return broadcast(specs[0]);
  }
  if (order > 0 && specs.size() != order) {
    std::ostringstream os;
    os << "constraints: got " << specs.size() << " specs for an order-"
       << order << " tensor; give 1 (broadcast to all modes) or exactly "
       << order << " (one per mode)";
    throw InvalidArgument(os.str());
  }
  return per_mode(std::vector<ConstraintSpec>(specs.begin(), specs.end()));
}

void ModeConstraints::check_order(std::size_t order) const {
  if (!broadcasts() && specs_.size() != order) {
    std::ostringstream os;
    os << "ModeConstraints holds " << specs_.size()
       << " per-mode specs but the tensor has " << order
       << " modes; give one spec per mode or a single broadcast spec";
    throw InvalidArgument(os.str());
  }
}

const char* to_string(ValidationIssue::Severity s) noexcept {
  switch (s) {
    case ValidationIssue::Severity::kError:
      return "error";
    case ValidationIssue::Severity::kWarning:
      return "warning";
  }
  return "?";
}

bool ValidationReport::ok() const noexcept { return error_count() == 0; }

std::size_t ValidationReport::error_count() const noexcept {
  std::size_t n = 0;
  for (const ValidationIssue& i : issues) {
    n += i.severity == ValidationIssue::Severity::kError ? 1 : 0;
  }
  return n;
}

std::size_t ValidationReport::warning_count() const noexcept {
  return issues.size() - error_count();
}

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const ValidationIssue& i : issues) {
    os << aoadmm::to_string(i.severity) << " " << i.field << ": " << i.message
       << "\n";
  }
  return os.str();
}

namespace {

void check_constraint_spec(const ConstraintSpec& spec, const std::string& field,
                           ValidationReport& report) {
  using Severity = ValidationIssue::Severity;
  const auto add = [&](Severity sev, std::string msg) {
    report.issues.push_back({sev, field, std::move(msg)});
  };
  switch (spec.kind) {
    case ConstraintKind::kL1:
    case ConstraintKind::kNonNegativeL1:
    case ConstraintKind::kRidge:
      if (spec.lambda < 0) {
        add(Severity::kError, "regularization strength lambda must be >= 0");
      } else if (spec.lambda == 0) {
        add(Severity::kWarning,
            "lambda is 0, so this regularizer is a no-op; use kind=none (or "
            "nonneg for nnl1) to make that explicit");
      }
      break;
    case ConstraintKind::kBox:
      if (spec.lo > spec.hi) {
        add(Severity::kError,
            "box bounds are inverted (lo > hi); swap them or widen the box");
      }
      break;
    case ConstraintKind::kL2Ball:
      if (spec.hi <= 0) {
        add(Severity::kError,
            "l2ball radius (hi) must be positive; every factor row would "
            "collapse to zero");
      }
      break;
    default:
      break;
  }
}

bool induces_factor_sparsity(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kNonNegative:
    case ConstraintKind::kL1:
    case ConstraintKind::kNonNegativeL1:
    case ConstraintKind::kBox:  // lo = 0 clamps to exact zeros
      return true;
    default:
      return false;
  }
}

}  // namespace

CpdConfig::CpdConfig(const CpdOptions& opts) {
  rank = opts.rank;
  max_outer_iterations = opts.max_outer_iterations;
  tolerance = opts.tolerance;
  admm = opts.admm;
  variant = opts.variant;
  leaf_format = opts.leaf_format;
  mttkrp_kernel = opts.mttkrp_kernel;
  mttkrp_schedule = opts.mttkrp_schedule;
  mttkrp_tile_rows = opts.mttkrp_tile_rows;
  sparsity_threshold = opts.sparsity_threshold;
  seed = opts.seed;
  record_trace = opts.record_trace;
  on_iteration = opts.on_iteration;
}

CpdOptions CpdConfig::legacy_options() const {
  CpdOptions opts;
  opts.rank = rank;
  opts.max_outer_iterations = max_outer_iterations;
  opts.tolerance = tolerance;
  opts.admm = admm;
  opts.variant = variant;
  opts.leaf_format = leaf_format;
  opts.mttkrp_kernel = mttkrp_kernel;
  opts.mttkrp_schedule = mttkrp_schedule;
  opts.mttkrp_tile_rows = mttkrp_tile_rows;
  opts.sparsity_threshold = sparsity_threshold;
  opts.seed = seed;
  opts.record_trace = record_trace;
  opts.on_iteration = on_iteration;
  return opts;
}

ValidationReport CpdConfig::validate(std::size_t order) const {
  using Severity = ValidationIssue::Severity;
  ValidationReport report;
  const auto add = [&](Severity sev, const char* field, std::string msg) {
    report.issues.push_back({sev, field, std::move(msg)});
  };

  if (rank == 0) {
    add(Severity::kError, "rank", "rank must be positive");
  } else if (rank > 2048) {
    add(Severity::kWarning, "rank",
        "rank > 2048: each MTTKRP output and ADMM scratch holds rank doubles "
        "per row; expect heavy memory use and slow F x F Cholesky solves");
  }

  if (max_outer_iterations == 0) {
    add(Severity::kError, "max_outer_iterations",
        "max_outer_iterations must be positive");
  }
  if (tolerance < 0) {
    add(Severity::kError, "tolerance",
        "tolerance must be >= 0 (it bounds the per-iteration error "
        "improvement)");
  } else if (tolerance == 0) {
    add(Severity::kWarning, "tolerance",
        "tolerance 0 never converges early; the solver always runs all "
        "max_outer_iterations");
  }

  if (admm.max_iterations == 0) {
    add(Severity::kError, "admm.max_iterations",
        "admm.max_iterations must be positive");
  }
  if (!(admm.tolerance > 0)) {
    add(Severity::kError, "admm.tolerance",
        "admm.tolerance must be positive (the inner loop would never stop "
        "before its iteration cap)");
  }
  if (!(admm.relaxation > 0 && admm.relaxation < 2)) {
    add(Severity::kError, "admm.relaxation",
        "admm.relaxation must lie in (0, 2); 1.0 disables over-relaxation");
  }
  if (admm.block_size > 0 && admm.block_size < 4) {
    add(Severity::kWarning, "admm.block_size",
        "block sizes below 4 rows pay per-block overhead on every inner "
        "iteration; the paper found ~50 optimal, 0 selects the analytical "
        "model");
  }
  if (admm.block_size > 65536) {
    add(Severity::kWarning, "admm.block_size",
        "very large blocks forfeit the cache residency and per-block "
        "convergence the blocked variant exists for; prefer <= 512");
  }

  const RobustnessOptions& rb = admm.robustness;
  if (rb.enabled) {
    if (rb.cholesky_max_attempts == 0) {
      add(Severity::kError, "robustness.cholesky_max_attempts",
          "guarded Cholesky needs at least one jitter attempt");
    }
    if (!(rb.cholesky_initial_jitter > 0)) {
      add(Severity::kError, "robustness.cholesky_initial_jitter",
          "initial jitter must be positive (it seeds the diagonal ridge "
          "escalation)");
    }
    if (!(rb.cholesky_jitter_growth > 1)) {
      add(Severity::kError, "robustness.cholesky_jitter_growth",
          "jitter growth must exceed 1 or the escalation never escalates");
    }
    if (!(rb.divergence_factor > 1)) {
      add(Severity::kError, "robustness.divergence_factor",
          "divergence_factor must exceed 1 (residual growth past this factor "
          "triggers a restart; <= 1 would flag ordinary wobble)");
    }
    if (!(rb.rho_rescale > 1)) {
      add(Severity::kError, "robustness.rho_rescale",
          "rho_rescale must exceed 1 so each restart strengthens the "
          "penalty");
    }
    if (rb.max_recoveries == 0) {
      add(Severity::kWarning, "robustness.max_recoveries",
          "max_recoveries is 0: divergence is detected but never retried; "
          "the solve is abandoned on the first blow-up");
    }
  }

  const AdaptiveRhoOptions& ad = admm.adaptive;
  if (ad.enabled) {
    if (!(ad.ratio > 1)) {
      add(Severity::kError, "admm.adaptive.ratio",
          "adaptive.ratio must exceed 1 (a rebalance fires when one residual "
          "exceeds ratio times the other; <= 1 would rescale every check)");
    }
    if (!(ad.rescale > 1)) {
      add(Severity::kError, "admm.adaptive.rescale",
          "adaptive.rescale must exceed 1 so a rebalance actually moves rho");
    }
    if (ad.check_every == 0) {
      add(Severity::kError, "admm.adaptive.check_every",
          "adaptive.check_every must be >= 1 (iterations between residual "
          "checks; the blocked variant uses it as the sweep length)");
    }
    if (ad.max_rescales == 0) {
      add(Severity::kWarning, "admm.adaptive.max_rescales",
          "adaptive.max_rescales is 0: adaptive rho is enabled but can never "
          "rescale; disable it or raise the budget");
    }
  }

  // --- Loss / data-fidelity term ---
  const bool generalized_loss =
      loss.kind != LossKind::kFrobenius || loss.masked;
  if (loss.kind == LossKind::kHuber && !(loss.huber_delta > 0)) {
    add(Severity::kError, "loss.huber_delta",
        "huber delta must be positive (it is the width of the quadratic "
        "region; at 0 use loss=l1 instead)");
  }
  if (generalized_loss && leaf_format != LeafFormat::kDense) {
    add(Severity::kError, "loss",
        std::string("loss ") + to_cli_string(loss) +
            " takes the generalized per-row split solve, which walks the CSF "
            "tree directly and supports only leaf_format=dense");
  }
  if (generalized_loss &&
      (mttkrp_kernel == MttkrpKernel::kTiled || mttkrp_tile_rows > 0)) {
    add(Severity::kError, "loss",
        std::string("loss ") + to_cli_string(loss) +
            " takes the generalized per-row split solve and is incompatible "
            "with the tiled MTTKRP kernel (tiles split a root's non-zeros "
            "across buckets, so per-row systems cannot be assembled); unset "
            "mttkrp_kernel=tiled and mttkrp_tile_rows");
  }
  if (generalized_loss && (mttkrp_kernel == MttkrpKernel::kDimTree ||
                           mttkrp_kernel == MttkrpKernel::kAlto)) {
    add(Severity::kError, "loss",
        std::string("loss ") + to_cli_string(loss) +
            " takes the generalized per-row split solve, which needs "
            "mode-rooted trees (CsfStrategy::kAllMode); the " +
            to_string(mttkrp_kernel) +
            " kernel caches intermediates over a single shared tree and "
            "cannot serve it — use mttkrp_kernel=auto or allmode");
  }
  if (loss.kind == LossKind::kKL) {
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      const ConstraintKind k = constraints.specs()[i].kind;
      const bool sign_safe =
          k == ConstraintKind::kNonNegative ||
          k == ConstraintKind::kNonNegativeL1 ||
          k == ConstraintKind::kSimplex ||
          (k == ConstraintKind::kBox && constraints.specs()[i].lo >= 0);
      if (!sign_safe) {
        std::ostringstream field;
        field << "constraints[" << i << "]";
        add(Severity::kWarning, field.str().c_str(),
            std::string("KL loss assumes a nonnegative model, but constraint "
                        "'") +
                to_cli_string(constraints.specs()[i]) +
                "' permits negative factor entries; the model estimate is "
                "floored at a tiny positive value, which can stall "
                "convergence — prefer nonneg/simplex/nnl1 constraints");
      }
    }
  }

  if (!(sparsity_threshold >= 0 && sparsity_threshold <= 1)) {
    add(Severity::kError, "sparsity_threshold",
        "sparsity_threshold is a density fraction and must lie in [0, 1]");
  }

  // Cross-field: a sparse leaf format only ever pays off when some
  // constraint can produce exact zeros in a factor.
  if (leaf_format != LeafFormat::kDense) {
    bool any_sparsity = false;
    for (const ConstraintSpec& spec : constraints.specs()) {
      any_sparsity = any_sparsity || induces_factor_sparsity(spec.kind);
    }
    if (!any_sparsity) {
      add(Severity::kWarning, "leaf_format",
          std::string("leaf format ") + to_string(leaf_format) +
              " requested, but no configured constraint can produce factor "
              "sparsity; the dense kernel will be used every iteration and "
              "the density measurement is pure overhead");
    }
  }

  // MTTKRP driver knobs. The tiled kernel only exists for the dense leaf
  // path (tiles re-bucket the raw non-zeros, not a compressed leaf factor),
  // and tiling only happens when the CsfSet was built with tile_rows > 0.
  if (mttkrp_kernel == MttkrpKernel::kTiled &&
      leaf_format != LeafFormat::kDense) {
    add(Severity::kError, "mttkrp_kernel",
        std::string("the tiled MTTKRP kernel supports only the DENSE leaf "
                    "format, but leaf_format is ") +
            to_string(leaf_format));
  }
  if (mttkrp_tile_rows > 0 &&
      mttkrp_kernel != MttkrpKernel::kTiled &&
      mttkrp_kernel != MttkrpKernel::kAuto) {
    add(Severity::kWarning, "mttkrp_tile_rows",
        std::string("mttkrp_tile_rows is set but mttkrp_kernel=") +
            to_string(mttkrp_kernel) +
            " never runs the tiled kernel; the tiled compilation would be "
            "built and ignored");
  }
  if (mttkrp_kernel == MttkrpKernel::kTiled &&
      mttkrp_tile_rows == 0) {
    add(Severity::kWarning, "mttkrp_kernel",
        "mttkrp_kernel=tiled with mttkrp_tile_rows=0 degenerates to a "
        "single tile per mode (correct, but pays the tiled bookkeeping for "
        "no cache benefit); set mttkrp_tile_rows to the intended tile "
        "height");
  }
  // The cached-intermediate kernels read the raw factors every refresh, so
  // a compressed leaf mirror can never be consulted: reject rather than
  // silently ignore the leaf_format request.
  if ((mttkrp_kernel == MttkrpKernel::kDimTree ||
       mttkrp_kernel == MttkrpKernel::kAlto) &&
      leaf_format != LeafFormat::kDense) {
    add(Severity::kError, "mttkrp_kernel",
        std::string("the ") + to_string(mttkrp_kernel) +
            " MTTKRP kernel supports only the DENSE leaf format, but "
            "leaf_format is " +
            to_string(leaf_format));
  }
  if (mttkrp_kernel == MttkrpKernel::kOneTree &&
      mttkrp_schedule == MttkrpSchedule::kDynamic) {
    add(Severity::kWarning, "mttkrp_schedule",
        "mttkrp_schedule=dynamic puts the one-tree kernel back on the "
        "per-element atomic scatter path (the ablation baseline); use "
        "auto/weighted/owner for the atomic-free kernels");
  }
  if (mttkrp_kernel == MttkrpKernel::kAlto &&
      mttkrp_schedule == MttkrpSchedule::kDynamic) {
    add(Severity::kWarning, "mttkrp_schedule",
        "mttkrp_schedule=dynamic runs the ALTO kernel through the atomic "
        "scatter path; use auto/weighted/owner for the deterministic "
        "privatized or owner-computes variants");
  }

  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    add(Severity::kError, "checkpoint_path",
        "checkpoint_every is set but checkpoint_path is empty; give a file "
        "path to write checkpoints to");
  }
  if (!checkpoint_path.empty() && checkpoint_every == 0) {
    add(Severity::kWarning, "checkpoint_every",
        "checkpoint_path is set but checkpoint_every is 0; no checkpoints "
        "will be written");
  }

  // --- Sharded / out-of-core solve (dist/sharded_solver.hpp) ---
  if (shards.enabled()) {
    if (order > 0 && !shards.grid.empty() && shards.grid.size() != order) {
      std::ostringstream os;
      os << "shard grid has " << shards.grid.size()
         << " extents for an order-" << order
         << " tensor; give one extent per mode (e.g. --shards=2x2x1)";
      add(Severity::kError, "shards.grid", os.str());
    }
    for (std::size_t m = 0; m < shards.grid.size(); ++m) {
      if (shards.grid[m] == 0) {
        std::ostringstream os;
        os << "grid extent for mode " << m
           << " is 0; every extent must be >= 1";
        add(Severity::kError, "shards.grid", os.str());
      }
    }
    if (shards.shard_count() > 256) {
      add(Severity::kWarning, "shards.grid",
          "more than 256 shards: each shard is a worker thread plus a tile; "
          "per-shard overhead will dominate unless the tensor is enormous");
    }
    if (shards.max_resident_bytes > 0 && shards.spill_dir.empty()) {
      add(Severity::kError, "shards.max_resident_bytes",
          "a residency budget only applies to out-of-core mode; also set "
          "spill_dir (CLI: --spill-dir) or drop the budget");
    }
    const bool generalized =
        loss.kind != LossKind::kFrobenius || loss.masked;
    if (generalized) {
      add(Severity::kError, "shards",
          std::string("loss ") + to_cli_string(loss) +
              " takes the generalized per-row split solve, which the sharded "
              "coordinator does not run; use the unsharded solver or the "
              "Frobenius loss");
    }
    if (leaf_format != LeafFormat::kDense) {
      add(Severity::kError, "shards",
          "sharded solves keep whole factor blocks resident per shard and "
          "support only leaf_format=dense");
    }
    if (mttkrp_kernel != MttkrpKernel::kAuto &&
        mttkrp_kernel != MttkrpKernel::kOneTree) {
      add(Severity::kError, "mttkrp_kernel",
          std::string("sharded solves compile one tree per tile and serve "
                      "every mode from it (the one-tree kernels); "
                      "mttkrp_kernel=") +
              to_string(mttkrp_kernel) + " cannot run per shard — use auto "
              "or onetree");
    }
    if (mttkrp_tile_rows > 0) {
      add(Severity::kError, "mttkrp_tile_rows",
          "cache tiling and shard tiles are different decompositions; "
          "sharded solves do not support mttkrp_tile_rows");
    }
  }

  if (order > 0 && !constraints.broadcasts() &&
      constraints.size() != order) {
    std::ostringstream os;
    os << "got " << constraints.size() << " per-mode specs for an order-"
       << order << " tensor; give one per mode or a single broadcast spec";
    add(Severity::kError, "constraints", os.str());
  }
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    std::ostringstream field;
    field << "constraints[" << i << "]";
    check_constraint_spec(constraints.specs()[i], field.str(), report);
  }

  return report;
}

}  // namespace aoadmm
