// Validated solver configuration for the CpdSolver session API.
//
//  * ModeConstraints replaces the old implicit cspan<const ConstraintSpec>
//    convention ("one entry broadcasts, otherwise one per mode") with an
//    explicit type that states which of the two it means and rejects
//    mismatched counts with a clear error instead of a deep assert.
//  * CpdConfig wraps CpdOptions + constraints + checkpoint policy behind
//    chainable with_* setters and a validate() that returns structured
//    diagnostics (field, severity, actionable message) rather than
//    asserting — callers like tensor_tool print them as CLI errors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cpd.hpp"
#include "core/prox.hpp"

namespace aoadmm {

/// Constraints for every mode of a factorization: either one spec broadcast
/// to all modes, or exactly one spec per mode.
class ModeConstraints {
 public:
  /// Default: non-negativity broadcast to every mode (the paper's headline
  /// configuration and the previous implicit default).
  ModeConstraints() : specs_(1) {}

  static ModeConstraints broadcast(const ConstraintSpec& spec) {
    ModeConstraints c;
    c.specs_[0] = spec;
    return c;
  }

  /// One spec per mode, in mode order. Throws InvalidArgument when empty.
  static ModeConstraints per_mode(std::vector<ConstraintSpec> specs);

  /// Adapter for the legacy span convention (1 entry = broadcast, else one
  /// per mode of an order-`order` tensor). Throws InvalidArgument with an
  /// explicit count/order message on any other size.
  static ModeConstraints from_legacy(cspan<const ConstraintSpec> specs,
                                     std::size_t order);

  bool broadcasts() const noexcept { return specs_.size() == 1; }
  std::size_t size() const noexcept { return specs_.size(); }
  const std::vector<ConstraintSpec>& specs() const noexcept { return specs_; }

  /// The spec governing `mode`. Requires check_order to have passed for the
  /// tensor at hand (broadcast ignores `mode`).
  const ConstraintSpec& for_mode(std::size_t mode) const {
    return specs_[broadcasts() ? 0 : mode];
  }

  /// Throws InvalidArgument naming both counts unless this holds one
  /// broadcast spec or exactly `order` per-mode specs.
  void check_order(std::size_t order) const;

 private:
  std::vector<ConstraintSpec> specs_;
};

struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  /// Option the issue concerns, e.g. "rank" or "admm.relaxation".
  std::string field;
  /// Actionable description, suitable for direct CLI display.
  std::string message;
};

const char* to_string(ValidationIssue::Severity s) noexcept;

/// Outcome of CpdConfig::validate(): all findings, never a throw.
struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const noexcept;  // true when no kError issue is present
  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  /// One "severity field: message" line per issue.
  std::string to_string() const;
};

/// Full description of a factorization run, built fluently:
///
///   CpdConfig cfg = CpdConfig()
///       .with_rank(50)
///       .with_constraints(ModeConstraints::broadcast(nonneg))
///       .with_checkpoint("run.ckpt", 10);
///   ValidationReport report = cfg.validate(csf.order());
///   if (!report.ok()) { ... print report.to_string() ... }
struct CpdConfig {
  /// Legacy knobs, unchanged (rank, tolerances, ADMM options, variant,
  /// leaf format, seed, trace, on_iteration callback).
  CpdOptions options;
  ModeConstraints constraints;
  /// When checkpoint_every > 0, CpdSolver writes a checkpoint of the full
  /// solver state to checkpoint_path after every checkpoint_every outer
  /// iterations (atomically: temp file + rename).
  std::string checkpoint_path;
  unsigned checkpoint_every = 0;

  CpdConfig() = default;
  explicit CpdConfig(const CpdOptions& opts) : options(opts) {}

  CpdConfig& with_rank(rank_t r) { options.rank = r; return *this; }
  CpdConfig& with_max_outer(unsigned n) {
    options.max_outer_iterations = n;
    return *this;
  }
  CpdConfig& with_tolerance(real_t t) { options.tolerance = t; return *this; }
  CpdConfig& with_admm(const AdmmOptions& a) {
    options.admm = a;
    return *this;
  }
  CpdConfig& with_variant(AdmmVariant v) { options.variant = v; return *this; }
  CpdConfig& with_leaf_format(LeafFormat f) {
    options.leaf_format = f;
    return *this;
  }
  CpdConfig& with_mttkrp_kernel(MttkrpKernel k) {
    options.mttkrp_kernel = k;
    return *this;
  }
  CpdConfig& with_mttkrp_schedule(MttkrpSchedule s) {
    options.mttkrp_schedule = s;
    return *this;
  }
  CpdConfig& with_mttkrp_tile_rows(index_t rows) {
    options.mttkrp_tile_rows = rows;
    return *this;
  }
  CpdConfig& with_sparsity_threshold(real_t t) {
    options.sparsity_threshold = t;
    return *this;
  }
  CpdConfig& with_seed(std::uint64_t s) { options.seed = s; return *this; }
  CpdConfig& with_trace(bool record) {
    options.record_trace = record;
    return *this;
  }
  CpdConfig& with_constraints(ModeConstraints c) {
    constraints = std::move(c);
    return *this;
  }
  /// Numerical guard rails (guarded Cholesky, ADMM divergence recovery,
  /// NaN/Inf sentinels). See core/robustness.hpp and docs/robustness.md.
  CpdConfig& with_robustness(const RobustnessOptions& r) {
    options.admm.robustness = r;
    return *this;
  }
  /// Shorthand: enable the guard rails with their default thresholds.
  CpdConfig& with_robustness(bool enabled = true) {
    options.admm.robustness.enabled = enabled;
    return *this;
  }
  const RobustnessOptions& robustness() const noexcept {
    return options.admm.robustness;
  }
  CpdConfig& with_checkpoint(std::string path, unsigned every) {
    checkpoint_path = std::move(path);
    checkpoint_every = every;
    return *this;
  }

  /// Check every field for consistency. Pass the tensor order when known to
  /// also validate the constraint count and mode-dependent combinations;
  /// order == 0 skips those checks. Never throws: all findings are returned,
  /// errors and warnings alike.
  ValidationReport validate(std::size_t order = 0) const;
};

}  // namespace aoadmm
