// Validated solver configuration for the CpdSolver session API.
//
//  * ModeConstraints replaces the old implicit cspan<const ConstraintSpec>
//    convention ("one entry broadcasts, otherwise one per mode") with an
//    explicit type that states which of the two it means and rejects
//    mismatched counts with a clear error instead of a deep assert.
//  * CpdConfig is the single source of truth for every solver knob —
//    rank, tolerances, ADMM options, loss, kernel/schedule selection,
//    constraints, checkpoint policy — behind chainable with_* setters and
//    a validate() that returns structured diagnostics (field, severity,
//    actionable message) rather than asserting; callers like tensor_tool
//    print them as CLI errors. The legacy CpdOptions struct survives only
//    as the parameter type of the deprecated cpd_aoadmm/cpd_als free
//    functions and converts losslessly via CpdConfig(const CpdOptions&);
//    see docs/api.md for the deprecation path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/cpd.hpp"
#include "core/loss.hpp"
#include "core/prox.hpp"

namespace aoadmm {

/// Constraints for every mode of a factorization: either one spec broadcast
/// to all modes, or exactly one spec per mode.
class ModeConstraints {
 public:
  /// Default: non-negativity broadcast to every mode (the paper's headline
  /// configuration and the previous implicit default).
  ModeConstraints() : specs_(1) {}

  static ModeConstraints broadcast(const ConstraintSpec& spec) {
    ModeConstraints c;
    c.specs_[0] = spec;
    return c;
  }

  /// One spec per mode, in mode order. Throws InvalidArgument when empty.
  static ModeConstraints per_mode(std::vector<ConstraintSpec> specs);

  /// Adapter for the legacy span convention (1 entry = broadcast, else one
  /// per mode of an order-`order` tensor). Throws InvalidArgument with an
  /// explicit count/order message on any other size.
  static ModeConstraints from_legacy(cspan<const ConstraintSpec> specs,
                                     std::size_t order);

  bool broadcasts() const noexcept { return specs_.size() == 1; }
  std::size_t size() const noexcept { return specs_.size(); }
  const std::vector<ConstraintSpec>& specs() const noexcept { return specs_; }

  /// The spec governing `mode`. Requires check_order to have passed for the
  /// tensor at hand (broadcast ignores `mode`).
  const ConstraintSpec& for_mode(std::size_t mode) const {
    return specs_[broadcasts() ? 0 : mode];
  }

  /// Throws InvalidArgument naming both counts unless this holds one
  /// broadcast spec or exactly `order` per-mode specs.
  void check_order(std::size_t order) const;

 private:
  std::vector<ConstraintSpec> specs_;
};

struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  /// Option the issue concerns, e.g. "rank" or "admm.relaxation".
  std::string field;
  /// Actionable description, suitable for direct CLI display.
  std::string message;
};

const char* to_string(ValidationIssue::Severity s) noexcept;

/// Outcome of CpdConfig::validate(): all findings, never a throw.
struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const noexcept;  // true when no kError issue is present
  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  /// One "severity field: message" line per issue.
  std::string to_string() const;
};

/// Grid decomposition + out-of-core knobs for the sharded solver
/// (dist/sharded_solver.hpp). Inert unless enabled(): the single-session
/// CpdSolver ignores this block entirely.
struct ShardOptions {
  /// Cells per mode ("2x2x1" on the CLI). Empty = unsharded. A spill_dir
  /// with no grid means a 1-per-mode grid (pure out-of-core).
  std::vector<std::size_t> grid;
  /// When non-empty, tiles are serialized here and mmap-streamed back on
  /// demand instead of staying resident (out-of-core mode).
  std::string spill_dir;
  /// Decoded-tile residency budget for out-of-core mode; 0 = unbounded
  /// (tiles still spill, but nothing is evicted).
  std::size_t max_resident_bytes = 0;

  bool enabled() const noexcept {
    return !grid.empty() || !spill_dir.empty() || max_resident_bytes > 0;
  }
  bool out_of_core() const noexcept { return !spill_dir.empty(); }
  std::size_t shard_count() const noexcept {
    std::size_t n = 1;
    for (const std::size_t g : grid) n *= g;
    return grid.empty() ? 1 : n;
  }
};

/// Full description of a factorization run, built fluently:
///
///   CpdConfig cfg = CpdConfig()
///       .with_rank(50)
///       .with_constraints(ModeConstraints::broadcast(nonneg))
///       .with_checkpoint("run.ckpt", 10);
///   ValidationReport report = cfg.validate(csf.order());
///   if (!report.ok()) { ... print report.to_string() ... }
struct CpdConfig {
  rank_t rank = 16;
  unsigned max_outer_iterations = 200;
  /// Stop when the convergence measure (relative error for the Frobenius
  /// fast path, the loss objective otherwise) improves by less than this.
  real_t tolerance = 1e-6;
  AdmmOptions admm;
  AdmmVariant variant = AdmmVariant::kBlocked;
  /// Leaf-factor storage during MTTKRP (Table II: DENSE / CSR / CSR-H).
  LeafFormat leaf_format = LeafFormat::kDense;
  MttkrpKernel mttkrp_kernel = MttkrpKernel::kAuto;
  MttkrpSchedule mttkrp_schedule = MttkrpSchedule::kAuto;
  index_t mttkrp_tile_rows = 0;
  /// Exploit factor sparsity only below this density (paper: 20%).
  real_t sparsity_threshold = 0.20;
  std::uint64_t seed = 123;
  bool record_trace = true;
  /// Invoked at the end of every outer iteration with that iteration's
  /// metrics (see obs/snapshot.hpp and CpdOptions::on_iteration).
  std::function<void(const obs::MetricsSnapshot&)> on_iteration;
  /// Data-fidelity loss (core/loss.hpp). The default — unmasked Frobenius
  /// — runs the normal-equations fast path; everything else takes the
  /// generalized per-row split solve.
  LossSpec loss;
  ModeConstraints constraints;
  /// When checkpoint_every > 0, CpdSolver writes a checkpoint of the full
  /// solver state to checkpoint_path after every checkpoint_every outer
  /// iterations (atomically: temp file + rename).
  std::string checkpoint_path;
  unsigned checkpoint_every = 0;
  /// Cooperative stop request (core/cancel.hpp). When set, the outer loop
  /// checks it once per iteration and stops with StopReason::kCancelled or
  /// kDeadline, returning the last completed iterate. Null = never checked.
  CancelTokenPtr cancel;
  /// Grid decomposition + out-of-core spill (dist/sharded_solver.hpp).
  ShardOptions shards;

  CpdConfig() = default;
  /// Compatibility shim for the legacy CpdOptions entry points
  /// (cpd_aoadmm/cpd_als): copies every overlapping field. Deprecated for
  /// new code — construct a CpdConfig directly.
  explicit CpdConfig(const CpdOptions& opts);
  /// The reverse projection, for code still feeding CpdOptions consumers.
  CpdOptions legacy_options() const;

  CpdConfig& with_rank(rank_t r) { rank = r; return *this; }
  CpdConfig& with_max_outer(unsigned n) {
    max_outer_iterations = n;
    return *this;
  }
  CpdConfig& with_tolerance(real_t t) { tolerance = t; return *this; }
  CpdConfig& with_admm(const AdmmOptions& a) {
    admm = a;
    return *this;
  }
  CpdConfig& with_variant(AdmmVariant v) { variant = v; return *this; }
  CpdConfig& with_leaf_format(LeafFormat f) {
    leaf_format = f;
    return *this;
  }
  CpdConfig& with_mttkrp_kernel(MttkrpKernel k) {
    mttkrp_kernel = k;
    return *this;
  }
  CpdConfig& with_mttkrp_schedule(MttkrpSchedule s) {
    mttkrp_schedule = s;
    return *this;
  }
  CpdConfig& with_mttkrp_tile_rows(index_t rows) {
    mttkrp_tile_rows = rows;
    return *this;
  }
  CpdConfig& with_sparsity_threshold(real_t t) {
    sparsity_threshold = t;
    return *this;
  }
  CpdConfig& with_seed(std::uint64_t s) { seed = s; return *this; }
  CpdConfig& with_trace(bool record) {
    record_trace = record;
    return *this;
  }
  /// Data-fidelity loss, e.g. with_loss({LossKind::kKL}) for count data or
  /// with_loss(parse_loss_spec("huber:0.5")). See docs/losses.md.
  CpdConfig& with_loss(const LossSpec& l) {
    loss = l;
    return *this;
  }
  CpdConfig& with_constraints(ModeConstraints c) {
    constraints = std::move(c);
    return *this;
  }
  /// Numerical guard rails (guarded Cholesky, ADMM divergence recovery,
  /// NaN/Inf sentinels). See core/robustness.hpp and docs/robustness.md.
  CpdConfig& with_robustness(const RobustnessOptions& r) {
    admm.robustness = r;
    return *this;
  }
  /// Shorthand: enable the guard rails with their default thresholds.
  CpdConfig& with_robustness(bool enabled = true) {
    admm.robustness.enabled = enabled;
    return *this;
  }
  const RobustnessOptions& robustness() const noexcept {
    return admm.robustness;
  }
  /// Residual-balancing adaptive ρ (core/admm.hpp: AdaptiveRhoOptions).
  CpdConfig& with_adaptive_rho(const AdaptiveRhoOptions& a) {
    admm.adaptive = a;
    return *this;
  }
  /// Shorthand: enable adaptive ρ with its default thresholds.
  CpdConfig& with_adaptive_rho(bool enabled = true) {
    admm.adaptive.enabled = enabled;
    return *this;
  }
  const AdaptiveRhoOptions& adaptive_rho() const noexcept {
    return admm.adaptive;
  }
  CpdConfig& with_checkpoint(std::string path, unsigned every) {
    checkpoint_path = std::move(path);
    checkpoint_every = every;
    return *this;
  }
  /// Attach a cooperative cancellation token; pass nullptr to detach. The
  /// caller arms it (cancel() or set_deadline_after) while a solve runs.
  CpdConfig& with_cancel(CancelTokenPtr token) {
    cancel = std::move(token);
    return *this;
  }
  /// Grid decomposition and out-of-core spill for ShardedCpdSolver.
  CpdConfig& with_shards(ShardOptions s) {
    shards = std::move(s);
    return *this;
  }

  /// Check every field for consistency. Pass the tensor order when known to
  /// also validate the constraint count and mode-dependent combinations;
  /// order == 0 skips those checks. Never throws: all findings are returned,
  /// errors and warnings alike.
  ValidationReport validate(std::size_t order = 0) const;
};

}  // namespace aoadmm
