// ALTO-style adaptive linearized tensor format (Laukemann et al., ICS'21).
// Instead of one CSF tree per mode, every non-zero is stored once as a
// single bit-interleaved linearized index: the bits of all mode coordinates
// are round-robin interleaved (LSB first) into one 64-bit code. The format
// is mode-agnostic — the same array serves MTTKRP for every target mode —
// which cuts format memory roughly order() x versus ALLMODE CSF, and the
// flat non-zero stream partitions perfectly evenly, which load-balances
// power-law tensors whose root slices defeat fiber splitting.
//
// The library builds an AltoTensor lazily from a compiled CsfTensor (see
// CsfTensor::alto_index()) so the kAlto MTTKRP kernel slots behind the same
// CsfSet handle the solvers already hold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "tensor/csf.hpp"
#include "util/types.hpp"

namespace aoadmm {

/// One contiguous group of interleaved bits of a mode: the mode coordinate
/// bits [dst_shift, dst_shift + popcount(mask)) live at code bits
/// [src_shift, src_shift + popcount(mask)). Decoding a mode is a handful of
/// shift/and/or ops — no per-bit loop.
struct AltoRun {
  std::uint32_t src_shift = 0;  // position of the group in the code
  std::uint32_t dst_shift = 0;  // position of the group in the coordinate
  std::uint64_t mask = 0;       // popcount(mask) contiguous low bits
};

/// True when the mode lengths fit a single 64-bit linearized code, i.e.
/// sum over modes of bit_width(dim - 1) <= 64. Tensors beyond that cannot
/// use the kAlto kernel.
bool alto_linearizable(cspan<index_t> dims) noexcept;

class AltoTensor {
 public:
  /// Linearize the non-zeros of a compiled CSF tree. Coordinates are
  /// recovered from the root-to-leaf paths, encoded, and sorted by code.
  /// Requires alto_linearizable(csf.dims()).
  static AltoTensor build(const CsfTensor& csf);

  std::size_t order() const noexcept { return dims_.size(); }
  offset_t nnz() const noexcept { return vals_.size(); }
  const std::vector<index_t>& dims() const noexcept { return dims_; }

  /// Sorted linearized codes, one per non-zero, aligned with vals().
  cspan<std::uint64_t> codes() const noexcept { return codes_; }
  cspan<real_t> vals() const noexcept { return vals_; }

  /// Total interleaved bits (<= 64) and per-mode bit counts.
  std::uint32_t total_bits() const noexcept { return total_bits_; }
  std::uint32_t mode_bits(std::size_t mode) const { return mode_bits_.at(mode); }

  /// Decode runs for one mode (hot-loop accessor; no bounds check).
  cspan<AltoRun> mode_runs(std::size_t mode) const noexcept {
    return runs_[mode];
  }

  /// Per-mode union of code-position bits — the BMI2 `pext` mask. The
  /// interleave is LSB-first in both the code and the coordinate, so
  /// extracting the masked bits and packing them low yields the mode
  /// coordinate in one instruction where the CPU has BMI2 (the kernel
  /// falls back to the run loop elsewhere).
  cspan<std::uint64_t> mode_masks() const noexcept { return mode_masks_; }

  /// Coordinate of `mode` encoded in `code`.
  index_t decode_mode(std::uint64_t code, std::size_t mode) const noexcept {
    std::uint64_t v = 0;
    for (const AltoRun& r : runs_[mode]) {
      v |= ((code >> r.src_shift) & r.mask) << r.dst_shift;
    }
    return static_cast<index_t>(v);
  }

  /// Linearized code of a full coordinate tuple (build/debug path).
  std::uint64_t encode(cspan<index_t> coords) const;

  /// Even non-zero partition into `parts` chunks (parts+1 boundaries).
  /// Cached per `parts` so steady-state kernel calls stay allocation-free;
  /// the reference is valid for the tensor's lifetime. Thread-safe.
  const std::vector<std::size_t>& nnz_partition(std::size_t parts) const;

  /// Owner-computes plan for `mode` under the `parts`-way even non-zero
  /// partition: reuses MttkrpOwnerPlan (root_bounds == node_bounds == the
  /// nnz boundaries; `level` stores the target mode). Rows of the target
  /// mode touched by >= 2 chunks get compact slot ids accumulated in
  /// per-thread slot buffers and reduced by a fixup pass, exactly like the
  /// CSF owner-computes kernel. Cached per (mode, parts); thread-safe.
  const MttkrpOwnerPlan& owner_plan(std::size_t mode, std::size_t parts) const;

  /// Bytes of the linearized representation (codes + values + run tables).
  std::size_t storage_bytes() const noexcept;

 private:
  std::vector<index_t> dims_;
  std::vector<std::uint32_t> mode_bits_;
  std::uint32_t total_bits_ = 0;
  std::vector<std::vector<AltoRun>> runs_;  // per original mode
  std::vector<std::uint64_t> mode_masks_;   // per original mode
  std::vector<std::uint64_t> codes_;        // sorted ascending
  std::vector<real_t> vals_;

  /// Lazily built scheduling plans (same sharing rules as CsfTensor's
  /// PlanCache: they depend only on the immutable codes array).
  struct PlanCache {
    std::mutex mu;
    std::map<std::size_t, std::vector<std::size_t>> nnz_partitions;
    std::map<std::pair<std::size_t, std::size_t>, MttkrpOwnerPlan> owner_plans;
  };
  std::shared_ptr<PlanCache> plans_ = std::make_shared<PlanCache>();
};

}  // namespace aoadmm
