// Compressed Sparse Fiber (CSF) storage — the higher-order generalization of
// CSR used by SPLATT (paper §III.B, Fig. 2). The modes of the tensor are
// compressed recursively; each root-to-leaf path encodes one non-zero's
// coordinate and the values live at the leaves.
//
// MTTKRP for mode m is computed from a CSF whose *root* is mode m: the root
// slices are independent, so parallelizing over them is race-free. The
// library therefore keeps one CSF per mode (SPLATT's ALLMODE strategy); see
// CsfSet below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "tensor/coo.hpp"
#include "util/types.hpp"

namespace aoadmm {

class AltoTensor;  // tensor/alto.hpp

/// Precomputed plan for the owner-computes non-root MTTKRP (one entry per
/// (target level, thread count), cached on the CsfTensor). Chunk c owns the
/// contiguous root range [root_bounds[c], root_bounds[c+1]) and, through the
/// monotone fptr composition, the target-level node range
/// [node_bounds[c], node_bounds[c+1]). A target-mode row touched by exactly
/// one chunk is written directly (no synchronization: one owner); a row
/// touched by >= 2 chunks gets a compact slot id and is accumulated in
/// per-thread slot buffers, reduced by a parallel fixup pass.
struct MttkrpOwnerPlan {
  std::size_t level = 0;                  // target CSF level
  std::size_t parts = 0;                  // chunks the plan was built for
  std::vector<std::size_t> root_bounds;   // parts+1 root boundaries
  std::vector<offset_t> node_bounds;      // parts+1 target-level node bounds
  /// Per target-mode row: -1 = private to one chunk (or untouched),
  /// otherwise the row's slot id in [0, shared_rows.size()).
  std::vector<std::int32_t> row_slot;
  /// Slot id -> target-mode row, for the fixup pass.
  std::vector<index_t> shared_rows;
};

class CsfTensor {
 public:
  /// Compile `coo` into CSF with modes ordered by `mode_perm` (root first).
  /// mode_perm must be a permutation of 0..order-1. The COO tensor is
  /// copied/sorted internally and not retained. When `leaf_of_coo` is
  /// non-null it receives, per COO position, the leaf slot that non-zero's
  /// value landed in — the mapping value patching (patch_value) needs.
  static CsfTensor build(const CooTensor& coo, std::vector<std::size_t> mode_perm,
                         std::vector<offset_t>* leaf_of_coo = nullptr);

  /// Convenience: mode `root` first, remaining modes sorted by increasing
  /// length (short modes near the root compress best — SPLATT's heuristic).
  static CsfTensor build_for_mode(const CooTensor& coo, std::size_t root,
                                  std::vector<offset_t>* leaf_of_coo = nullptr);

  std::size_t order() const noexcept { return mode_perm_.size(); }
  offset_t nnz() const noexcept { return vals_.size(); }
  const std::vector<std::size_t>& mode_perm() const noexcept {
    return mode_perm_;
  }
  /// Original tensor mode stored at CSF level `level`.
  std::size_t level_mode(std::size_t level) const { return mode_perm_.at(level); }
  /// Length of the original mode at CSF level `level`.
  index_t level_dim(std::size_t level) const { return dims_.at(mode_perm_.at(level)); }
  const std::vector<index_t>& dims() const noexcept { return dims_; }

  /// Number of nodes (fibers) at a level. Level 0 = root slices present in
  /// the tensor; level order-1 = non-zeros.
  std::size_t num_nodes(std::size_t level) const {
    return fids_[level].size();
  }

  /// Mode indices of the nodes at `level`.
  cspan<index_t> fids(std::size_t level) const { return fids_[level]; }

  /// Children offsets: node n at `level` owns children
  /// [fptr(level)[n], fptr(level)[n+1]) at level+1. Defined for
  /// level < order-1.
  cspan<offset_t> fptr(std::size_t level) const { return fptr_[level]; }

  /// Non-zero values (leaf payloads), aligned with fids(order-1).
  cspan<real_t> vals() const noexcept { return vals_; }

  /// Overwrite the value in leaf slot `leaf` (from a build-time leaf_of_coo
  /// mapping). Values only — the fiber structure stays immutable, so this
  /// is valid exactly when the non-zero pattern is unchanged. Not safe
  /// concurrently with kernels reading vals().
  void patch_value(offset_t leaf, real_t value) { vals_[leaf] = value; }

  /// Number of non-zeros under each root node — the weights used to balance
  /// root-parallel MTTKRP.
  std::vector<offset_t> root_weights() const;

  /// nnz-weighted static partition of the root nodes into `parts` contiguous
  /// chunks (parts+1 boundaries; see parallel/partition.hpp). Computed once
  /// per (tensor, parts) and cached: with power-law slice costs the uniform
  /// schedule(dynamic, 16) loops leave threads idle, while a weighted static
  /// chunk costs nothing per call. The reference stays valid for the
  /// tensor's lifetime (copies share the cache). Thread-safe.
  const std::vector<std::size_t>& root_partition(std::size_t parts) const;

  /// Owner-computes plan for a non-root target at CSF `level`, partitioned
  /// into `parts` chunks. Cached per (level, parts); thread-safe. Requires
  /// 0 < level < order().
  const MttkrpOwnerPlan& owner_plan(std::size_t level,
                                    std::size_t parts) const;

  /// ALTO linearized index over this tree's non-zeros, built lazily on
  /// first use and cached alongside the scheduling plans (shared between
  /// copies; valid for the tensor's lifetime). Requires
  /// alto_linearizable(dims()). Thread-safe.
  const AltoTensor& alto_index() const;

  /// Drop a lazily built ALTO index. Value-only patching changes the leaf
  /// values the index copied, so CsfSet::patch_values calls this; the next
  /// alto_index() rebuilds from the patched leaves. Must not race with a
  /// kernel still reading the index.
  void drop_alto_index() const;

  /// Total bytes of the compressed structure (for reporting).
  std::size_t storage_bytes() const noexcept;

  /// Serialize the compiled tree to a self-contained binary blob: magic +
  /// shape header + per-level fids/fptr arrays + values + FNV-1a checksum.
  /// Values are written in memory representation (same-architecture format,
  /// like checkpoints) — this is the spill format of the out-of-core
  /// sharded solver (dist/tile_store.hpp), not an archival interchange.
  std::vector<char> serialize() const;

  /// Rebuild a tree from a serialize() blob (e.g. an mmap'd spill file).
  /// Throws ParseError on bad magic, truncation, or checksum mismatch. The
  /// returned tree has a fresh (empty) scheduling-plan cache.
  static CsfTensor deserialize(const char* data, std::size_t size);

 private:
  /// Lazily built scheduling plans, keyed by the partition geometry. Shared
  /// (not copied) between copies of the tensor: plans depend only on the
  /// immutable fids/fptr structure.
  struct PlanCache {
    std::mutex mu;
    std::map<std::size_t, std::vector<std::size_t>> root_partitions;
    std::map<std::pair<std::size_t, std::size_t>, MttkrpOwnerPlan>
        owner_plans;
    /// Lazily built ALTO linearized index (kAlto kernel). Like the plans,
    /// it depends only on the immutable non-zero structure — value-only
    /// patching (patch_values) invalidates it, which CsfSet handles by
    /// rebuilding the affected trees' caches.
    std::shared_ptr<const AltoTensor> alto;
  };

  std::vector<std::size_t> mode_perm_;
  std::vector<index_t> dims_;               // original mode lengths
  std::vector<std::vector<index_t>> fids_;  // per level
  std::vector<std::vector<offset_t>> fptr_; // per level (order-1 entries)
  std::vector<real_t> vals_;
  std::shared_ptr<PlanCache> plans_ = std::make_shared<PlanCache>();
};

/// Leaf-mode cache tiling for the root-mode kernel (the blocking SPLATT
/// applies when the per-non-zero factor exceeds cache): non-zeros are
/// bucketed by leaf index range so each pass touches only `tile_rows` rows
/// of the leaf factor, which then stay cache resident for the whole pass.
class TiledCsf {
 public:
  /// Compile `coo` for root-mode MTTKRP of `root`, tiling the leaf mode in
  /// chunks of `tile_rows` (0 = one tile, i.e. no tiling). Empty tiles are
  /// dropped.
  TiledCsf(const CooTensor& coo, std::size_t root, index_t tile_rows);

  std::size_t num_tiles() const noexcept { return tiles_.size(); }
  const CsfTensor& tile(std::size_t t) const { return tiles_.at(t); }
  std::size_t root_mode() const noexcept { return root_; }
  index_t tile_rows() const noexcept { return tile_rows_; }
  offset_t nnz() const noexcept;
  std::size_t storage_bytes() const noexcept;

 private:
  std::size_t root_ = 0;
  index_t tile_rows_ = 0;
  std::vector<CsfTensor> tiles_;
};

/// Memory/compute trade-off for the CSF compilation (SPLATT's -t flag):
///  * kAllMode — one tree per mode; every MTTKRP is root-parallel and
///    race-free. order() copies of the tensor. The paper's configuration.
///  * kOneMode — a single tree rooted at the shortest mode; non-root
///    MTTKRPs scatter through a privatized/owner-computes reduction (or
///    atomics under the explicit dynamic policy). 1/order() the memory.
enum class CsfStrategy {
  kAllMode,
  kOneMode,
};

const char* to_string(CsfStrategy s) noexcept;

/// The compiled tensor handed to the CPD driver. for_mode(m) returns the
/// tree MTTKRP for mode m should use; with kOneMode that tree's root may
/// differ from m and callers must dispatch accordingly (mttkrp_dispatch).
/// With tile_rows > 0 (requires kAllMode) each mode is compiled as a
/// TiledCsf instead and callers go through tiled_for_mode()/mttkrp_tiled.
class CsfSet {
 public:
  /// Compile every tree the strategy calls for. `track_value_patching`
  /// additionally records, per tree, where each COO non-zero's value landed
  /// (order x nnz offsets of extra memory) so later value-only updates can
  /// be patched into the compiled leaves via patch_values() instead of
  /// re-sorting and rebuilding — the streaming fast path. Unsupported for
  /// tiled compilations.
  explicit CsfSet(const CooTensor& coo,
                  CsfStrategy strategy = CsfStrategy::kAllMode,
                  index_t tile_rows = 0, bool track_value_patching = false);

  std::size_t order() const noexcept { return order_; }
  CsfStrategy strategy() const noexcept { return strategy_; }

  /// True when the set holds tiled compilations (tile_rows > 0); use
  /// tiled_for_mode() instead of for_mode() then.
  bool tiled() const noexcept { return !tiled_.empty(); }
  index_t tile_rows() const noexcept { return tile_rows_; }

  const CsfTensor& for_mode(std::size_t mode) const;
  const TiledCsf& tiled_for_mode(std::size_t mode) const;

  offset_t nnz() const noexcept { return nnz_; }
  const std::vector<index_t>& dims() const noexcept { return dims_; }

  /// Sum of squared non-zero values, ||X||_F^2 — precomputed at build time
  /// so the fit denominator does not depend on which compilation is held.
  real_t norm_sq() const noexcept { return norm_sq_; }

  /// Total bytes across all trees (the quantity kOneMode shrinks).
  std::size_t storage_bytes() const noexcept;

  /// True when the set was built with track_value_patching and can accept
  /// patch_values().
  bool value_patchable() const noexcept { return !leaf_of_coo_.empty(); }

  /// Re-scatter values from `coo` (which must have the same non-zero
  /// pattern, in the same COO order, as the tensor this set was built from)
  /// into every tree's leaves, and refresh the cached norm. When `dirty` is
  /// non-empty only those COO positions are patched — O(|dirty| * order)
  /// instead of a full rebuild's sort. Structure (fids/fptr, cached
  /// scheduling plans) is untouched, which is exactly why this is only
  /// legal for value-only churn.
  void patch_values(const CooTensor& coo, cspan<offset_t> dirty = {});

 private:
  std::size_t order_ = 0;
  CsfStrategy strategy_ = CsfStrategy::kAllMode;
  index_t tile_rows_ = 0;
  std::vector<index_t> dims_;
  offset_t nnz_ = 0;
  real_t norm_sq_ = 0;
  std::vector<CsfTensor> tensors_;
  std::vector<TiledCsf> tiled_;
  /// One entry per tree when value patching is tracked: COO position ->
  /// leaf slot in that tree.
  std::vector<std::vector<offset_t>> leaf_of_coo_;
};

}  // namespace aoadmm
