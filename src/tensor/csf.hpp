// Compressed Sparse Fiber (CSF) storage — the higher-order generalization of
// CSR used by SPLATT (paper §III.B, Fig. 2). The modes of the tensor are
// compressed recursively; each root-to-leaf path encodes one non-zero's
// coordinate and the values live at the leaves.
//
// MTTKRP for mode m is computed from a CSF whose *root* is mode m: the root
// slices are independent, so parallelizing over them is race-free. The
// library therefore keeps one CSF per mode (SPLATT's ALLMODE strategy); see
// CsfSet below.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/coo.hpp"
#include "util/types.hpp"

namespace aoadmm {

class CsfTensor {
 public:
  /// Compile `coo` into CSF with modes ordered by `mode_perm` (root first).
  /// mode_perm must be a permutation of 0..order-1. The COO tensor is
  /// copied/sorted internally and not retained.
  static CsfTensor build(const CooTensor& coo, std::vector<std::size_t> mode_perm);

  /// Convenience: mode `root` first, remaining modes sorted by increasing
  /// length (short modes near the root compress best — SPLATT's heuristic).
  static CsfTensor build_for_mode(const CooTensor& coo, std::size_t root);

  std::size_t order() const noexcept { return mode_perm_.size(); }
  offset_t nnz() const noexcept { return vals_.size(); }
  const std::vector<std::size_t>& mode_perm() const noexcept {
    return mode_perm_;
  }
  /// Original tensor mode stored at CSF level `level`.
  std::size_t level_mode(std::size_t level) const { return mode_perm_.at(level); }
  /// Length of the original mode at CSF level `level`.
  index_t level_dim(std::size_t level) const { return dims_.at(mode_perm_.at(level)); }
  const std::vector<index_t>& dims() const noexcept { return dims_; }

  /// Number of nodes (fibers) at a level. Level 0 = root slices present in
  /// the tensor; level order-1 = non-zeros.
  std::size_t num_nodes(std::size_t level) const {
    return fids_[level].size();
  }

  /// Mode indices of the nodes at `level`.
  cspan<index_t> fids(std::size_t level) const { return fids_[level]; }

  /// Children offsets: node n at `level` owns children
  /// [fptr(level)[n], fptr(level)[n+1]) at level+1. Defined for
  /// level < order-1.
  cspan<offset_t> fptr(std::size_t level) const { return fptr_[level]; }

  /// Non-zero values (leaf payloads), aligned with fids(order-1).
  cspan<real_t> vals() const noexcept { return vals_; }

  /// Number of non-zeros under each root node — the weights used to balance
  /// root-parallel MTTKRP.
  std::vector<offset_t> root_weights() const;

  /// Total bytes of the compressed structure (for reporting).
  std::size_t storage_bytes() const noexcept;

 private:
  std::vector<std::size_t> mode_perm_;
  std::vector<index_t> dims_;               // original mode lengths
  std::vector<std::vector<index_t>> fids_;  // per level
  std::vector<std::vector<offset_t>> fptr_; // per level (order-1 entries)
  std::vector<real_t> vals_;
};

/// Memory/compute trade-off for the CSF compilation (SPLATT's -t flag):
///  * kAllMode — one tree per mode; every MTTKRP is root-parallel and
///    race-free. order() copies of the tensor. The paper's configuration.
///  * kOneMode — a single tree rooted at the shortest mode; non-root
///    MTTKRPs scatter with atomics. 1/order() the memory, slower kernels.
enum class CsfStrategy {
  kAllMode,
  kOneMode,
};

const char* to_string(CsfStrategy s) noexcept;

/// The compiled tensor handed to the CPD driver. for_mode(m) returns the
/// tree MTTKRP for mode m should use; with kOneMode that tree's root may
/// differ from m and callers must dispatch accordingly (mttkrp_dispatch).
class CsfSet {
 public:
  explicit CsfSet(const CooTensor& coo,
                  CsfStrategy strategy = CsfStrategy::kAllMode);

  std::size_t order() const noexcept { return order_; }
  CsfStrategy strategy() const noexcept { return strategy_; }
  const CsfTensor& for_mode(std::size_t mode) const {
    return strategy_ == CsfStrategy::kAllMode ? tensors_.at(mode)
                                              : tensors_.at(0);
  }
  offset_t nnz() const { return tensors_.empty() ? 0 : tensors_[0].nnz(); }
  const std::vector<index_t>& dims() const { return tensors_.at(0).dims(); }

  /// Total bytes across all trees (the quantity kOneMode shrinks).
  std::size_t storage_bytes() const noexcept;

 private:
  std::size_t order_ = 0;
  CsfStrategy strategy_ = CsfStrategy::kAllMode;
  std::vector<CsfTensor> tensors_;
};

}  // namespace aoadmm
