#include "tensor/compact.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace aoadmm {
namespace {

CooTensor apply_remaps(const CooTensor& x,
                       const std::vector<ModeRemap>& remaps,
                       const std::vector<index_t>& new_dims) {
  CooTensor out(new_dims);
  out.reserve(x.nnz());
  std::vector<index_t> coord(x.order());
  for (offset_t n = 0; n < x.nnz(); ++n) {
    for (std::size_t m = 0; m < x.order(); ++m) {
      coord[m] = remaps[m].forward[x.index(m, n)];
    }
    out.add(coord, x.value(n));
  }
  return out;
}

}  // namespace

CompactResult compact_empty_slices(const CooTensor& x) {
  CompactResult result;
  result.remaps.resize(x.order());
  std::vector<index_t> new_dims(x.order());

  for (std::size_t m = 0; m < x.order(); ++m) {
    const auto counts = x.slice_nnz(m);
    ModeRemap& remap = result.remaps[m];
    remap.forward.assign(x.dim(m), ModeRemap::kInvalidIndex);
    for (index_t old_id = 0; old_id < x.dim(m); ++old_id) {
      if (counts[old_id] > 0) {
        remap.forward[old_id] = static_cast<index_t>(remap.backward.size());
        remap.backward.push_back(old_id);
      }
    }
    AOADMM_CHECK_MSG(!remap.backward.empty(),
                     "compaction would empty a mode (tensor has no "
                     "non-zeros)");
    new_dims[m] = static_cast<index_t>(remap.backward.size());
  }

  result.tensor = apply_remaps(x, result.remaps, new_dims);
  return result;
}

CompactResult relabel_by_degree(const CooTensor& x) {
  CompactResult result;
  result.remaps.resize(x.order());

  for (std::size_t m = 0; m < x.order(); ++m) {
    const auto counts = x.slice_nnz(m);
    ModeRemap& remap = result.remaps[m];
    remap.backward.resize(x.dim(m));
    std::iota(remap.backward.begin(), remap.backward.end(), index_t{0});
    std::stable_sort(remap.backward.begin(), remap.backward.end(),
                     [&](index_t a, index_t b) {
                       return counts[a] > counts[b];
                     });
    remap.forward.resize(x.dim(m));
    for (index_t new_id = 0; new_id < x.dim(m); ++new_id) {
      remap.forward[remap.backward[new_id]] = new_id;
    }
  }

  result.tensor = apply_remaps(x, result.remaps, x.dims());
  return result;
}

Matrix remap_factor_rows(const Matrix& factor, const ModeRemap& remap) {
  AOADMM_CHECK_MSG(factor.rows() == remap.forward.size(),
                   "factor rows do not match the remap's original space");
  Matrix out(remap.backward.size(), factor.cols());
  for (std::size_t new_id = 0; new_id < remap.backward.size(); ++new_id) {
    const index_t old_id = remap.backward[new_id];
    const auto src = factor.row(old_id);
    auto dst = out.row(new_id);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace aoadmm
