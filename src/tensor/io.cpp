#include "tensor/io.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace aoadmm {
namespace {

constexpr char kBinaryMagic[8] = {'A', 'O', 'T', 'N', 'S', '1', 0, 0};

[[noreturn]] void parse_fail(std::size_t lineno, std::string_view token,
                             const std::string& why) {
  throw ParseError("tns line " + std::to_string(lineno) + ": " + why +
                   " (offending token: \"" + std::string(token) + "\")");
}

/// Split on blanks/tabs/CR into `tokens` (views into `line`).
void split_fields(const std::string& line,
                  std::vector<std::string_view>& tokens) {
  const std::string_view sv(line);
  std::size_t pos = 0;
  while (pos < sv.size()) {
    const std::size_t start = sv.find_first_not_of(" \t\r", pos);
    if (start == std::string_view::npos) {
      break;
    }
    std::size_t end = sv.find_first_of(" \t\r", start);
    if (end == std::string_view::npos) {
      end = sv.size();
    }
    tokens.push_back(sv.substr(start, end - start));
    pos = end;
  }
}

/// 1-based coordinate: a full-token positive integer that fits `I` (the
/// default index_t, or uint64 on the wide-index path).
template <typename I>
I parse_index(std::string_view token, std::size_t lineno, std::size_t mode) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [p, ec] = std::from_chars(begin, end, value);
  const std::string where = "index in mode " + std::to_string(mode);
  if (ec == std::errc::result_out_of_range ||
      (ec == std::errc{} && value > std::numeric_limits<I>::max())) {
    std::string why = where + " overflows the " +
                      std::to_string(8 * sizeof(I)) + "-bit index type";
    if (sizeof(I) < sizeof(std::uint64_t)) {
      why += " (set TnsOptions::wide_indices / --wide-indices to compact "
             "billion-row modes)";
    }
    parse_fail(lineno, token, why);
  }
  if (ec != std::errc{} || p != end) {
    parse_fail(lineno, token, where + " is not a positive integer");
  }
  if (value == 0) {
    parse_fail(lineno, token, where + " must be >= 1 (.tns is 1-indexed)");
  }
  return static_cast<I>(value);
}

/// Non-zero value: a full-token finite real. NaN/Inf would silently poison
/// every downstream kernel, so they are rejected at the door.
real_t parse_value(std::string_view token, std::size_t lineno) {
  double value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [p, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range ||
      (ec == std::errc{} && p == end && !std::isfinite(value))) {
    parse_fail(lineno, token, "value is not finite (NaN/Inf rejected)");
  }
  if (ec != std::errc{} || p != end) {
    parse_fail(lineno, token, "value is not a number");
  }
  return static_cast<real_t>(value);
}

/// Everything read_tns extracts before tensor assembly: parsed 0-based
/// coordinates (width `I`), values, and the duplicate-fold mask.
template <typename I>
struct ParsedTns {
  std::size_t order = 0;
  std::vector<std::vector<I>> coords;  // 0-based, per mode
  std::vector<real_t> values;
  std::vector<bool> dead;  // entries folded away by DuplicatePolicy::kSum
};

template <typename I>
ParsedTns<I> parse_tns(std::istream& in, DuplicatePolicy policy) {
  std::string line;
  std::size_t order = 0;
  std::vector<std::vector<I>> coords;  // 0-based, per mode
  std::vector<real_t> values;
  std::vector<std::size_t> linenos;  // source line of each non-zero
  std::size_t lineno = 0;
  std::vector<std::string_view> tokens;

  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and skip blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    tokens.clear();
    split_fields(line, tokens);
    if (tokens.empty()) {
      continue;
    }
    if (order == 0) {
      if (tokens.size() < 2) {
        throw ParseError("tns line " + std::to_string(lineno) +
                         ": expected at least 2 fields (indices... value)");
      }
      order = tokens.size() - 1;
      coords.resize(order);
    } else if (tokens.size() != order + 1) {
      throw ParseError("tns line " + std::to_string(lineno) +
                       ": inconsistent arity (expected " +
                       std::to_string(order + 1) + " fields, got " +
                       std::to_string(tokens.size()) + ")");
    }
    for (std::size_t m = 0; m < order; ++m) {
      coords[m].push_back(parse_index<I>(tokens[m], lineno, m) - 1);
    }
    values.push_back(parse_value(tokens[order], lineno));
    linenos.push_back(lineno);
  }

  if (order == 0) {
    throw ParseError("tns input contains no non-zeros");
  }

  // Duplicate coordinates: detect via a sorted permutation (the input order
  // of the surviving entries is preserved). kSum folds later occurrences
  // into the first; kError reports the first collision's two lines.
  const std::size_t n = values.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    for (std::size_t m = 0; m < order; ++m) {
      if (coords[m][a] != coords[m][b]) {
        return coords[m][a] < coords[m][b];
      }
    }
    return a < b;  // stable within a coordinate group: earliest line first
  });
  const auto same_coord = [&](std::size_t a, std::size_t b) {
    for (std::size_t m = 0; m < order; ++m) {
      if (coords[m][a] != coords[m][b]) {
        return false;
      }
    }
    return true;
  };
  std::vector<bool> dead(n, false);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t prev = perm[i - 1];
    const std::size_t cur = perm[i];
    if (!same_coord(prev, cur)) {
      continue;
    }
    if (policy == DuplicatePolicy::kError) {
      std::string coord_str;
      for (std::size_t m = 0; m < order; ++m) {
        coord_str += (m ? " " : "") + std::to_string(coords[m][cur] + 1);
      }
      // `prev` may itself be a duplicate of an earlier keeper; walk back to
      // the group head so the message names the first occurrence.
      std::size_t head = i - 1;
      while (head > 0 && same_coord(perm[head - 1], cur)) {
        --head;
      }
      throw ParseError("tns line " + std::to_string(linenos[cur]) +
                       ": duplicate coordinate (" + coord_str +
                       ") first seen at line " +
                       std::to_string(linenos[perm[head]]) +
                       "; pass DuplicatePolicy::kSum to merge duplicates");
    }
    // kSum: fold into the group head (earliest line, kept alive).
    std::size_t head = i - 1;
    while (dead[perm[head]]) {
      --head;
    }
    values[perm[head]] += values[cur];
    dead[cur] = true;
  }

  ParsedTns<I> out;
  out.order = order;
  out.coords = std::move(coords);
  out.values = std::move(values);
  out.dead = std::move(dead);
  return out;
}

/// Assemble a CooTensor from parsed entries whose coordinates already fit
/// index_t.
CooTensor build_coo(const ParsedTns<index_t>& parsed) {
  const std::size_t order = parsed.order;
  const std::size_t n = parsed.values.size();
  std::vector<index_t> dims(order, 0);
  for (std::size_t m = 0; m < order; ++m) {
    for (const index_t i : parsed.coords[m]) {
      dims[m] = std::max(dims[m], static_cast<index_t>(i + 1));
    }
  }

  CooTensor out(dims);
  out.reserve(n);
  std::vector<index_t> c(order);
  for (std::size_t k = 0; k < n; ++k) {
    if (parsed.dead[k]) {
      continue;
    }
    for (std::size_t m = 0; m < order; ++m) {
      c[m] = parsed.coords[m][k];
    }
    out.add(c, parsed.values[k]);
  }
  return out;
}

/// Wide-index assembly: modes whose largest coordinate exceeds index_t are
/// compacted — occupied slices renumbered densely in sorted order — which
/// is exactly what tensor/compact.hpp does post-load for empty slices. A
/// mode with more distinct occupied slices than index_t can address cannot
/// be represented and is rejected.
CooTensor build_coo_wide(const ParsedTns<std::uint64_t>& parsed) {
  const std::size_t order = parsed.order;
  const std::size_t n = parsed.values.size();
  constexpr std::uint64_t kIndexMax = std::numeric_limits<index_t>::max();

  std::vector<std::vector<index_t>> narrow(order);
  for (std::size_t m = 0; m < order; ++m) {
    const std::vector<std::uint64_t>& wide = parsed.coords[m];
    std::uint64_t max_coord = 0;
    for (const std::uint64_t i : wide) {
      max_coord = std::max(max_coord, i);
    }
    narrow[m].resize(n);
    if (max_coord <= kIndexMax) {
      for (std::size_t k = 0; k < n; ++k) {
        narrow[m][k] = static_cast<index_t>(wide[k]);
      }
      continue;
    }
    std::vector<std::uint64_t> occupied = wide;
    std::sort(occupied.begin(), occupied.end());
    occupied.erase(std::unique(occupied.begin(), occupied.end()),
                   occupied.end());
    if (occupied.size() > kIndexMax) {
      throw ParseError(
          "mode " + std::to_string(m) + " has " +
          std::to_string(occupied.size()) +
          " distinct occupied slices, more than the " +
          std::to_string(8 * sizeof(index_t)) +
          "-bit index type can address even after compaction");
    }
    for (std::size_t k = 0; k < n; ++k) {
      const auto it =
          std::lower_bound(occupied.begin(), occupied.end(), wide[k]);
      narrow[m][k] = static_cast<index_t>(it - occupied.begin());
    }
  }

  ParsedTns<index_t> compacted;
  compacted.order = order;
  compacted.coords = std::move(narrow);
  compacted.values = parsed.values;
  compacted.dead = parsed.dead;
  return build_coo(compacted);
}

}  // namespace

CooTensor read_tns(std::istream& in, const TnsOptions& options) {
  if (options.wide_indices) {
    return build_coo_wide(parse_tns<std::uint64_t>(in, options.policy));
  }
  return build_coo(parse_tns<index_t>(in, options.policy));
}

CooTensor read_tns(std::istream& in, DuplicatePolicy policy) {
  return read_tns(in, TnsOptions{policy, false});
}

CooTensor read_tns_file(const std::string& path, const TnsOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgument("cannot open tensor file: " + path);
  }
  try {
    return read_tns(in, options);
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

CooTensor read_tns_file(const std::string& path, DuplicatePolicy policy) {
  return read_tns_file(path, TnsOptions{policy, false});
}

void write_tns(const CooTensor& x, std::ostream& out) {
  // Full round-trip precision: values must survive write→read unchanged.
  out.precision(17);
  for (offset_t n = 0; n < x.nnz(); ++n) {
    for (std::size_t m = 0; m < x.order(); ++m) {
      out << (x.index(m, n) + 1) << ' ';
    }
    out << x.value(n) << '\n';
  }
}

void write_tns_file(const CooTensor& x, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw InvalidArgument("cannot create tensor file: " + path);
  }
  write_tns(x, out);
}

void write_binary_file(const CooTensor& x, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw InvalidArgument("cannot create tensor file: " + path);
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint64_t order = x.order();
  const std::uint64_t nnz = x.nnz();
  out.write(reinterpret_cast<const char*>(&order), sizeof(order));
  out.write(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  for (std::size_t m = 0; m < x.order(); ++m) {
    const std::uint64_t d = x.dim(m);
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  for (std::size_t m = 0; m < x.order(); ++m) {
    const auto inds = x.mode_indices(m);
    out.write(reinterpret_cast<const char*>(inds.data()),
              static_cast<std::streamsize>(inds.size() * sizeof(index_t)));
  }
  const auto vals = x.values();
  out.write(reinterpret_cast<const char*>(vals.data()),
            static_cast<std::streamsize>(vals.size() * sizeof(real_t)));
  if (!out) {
    throw InvalidArgument("short write to: " + path);
  }
}

CooTensor read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw InvalidArgument("cannot open tensor file: " + path);
  }
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    throw ParseError("bad magic in binary tensor file: " + path);
  }
  std::uint64_t order = 0;
  std::uint64_t nnz = 0;
  in.read(reinterpret_cast<char*>(&order), sizeof(order));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  if (!in || order == 0 || order > 64) {
    throw ParseError("corrupt header in binary tensor file: " + path);
  }
  std::vector<index_t> dims(order);
  for (auto& d : dims) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = static_cast<index_t>(v);
  }
  std::vector<std::vector<index_t>> coords(order,
                                           std::vector<index_t>(nnz));
  for (auto& c : coords) {
    in.read(reinterpret_cast<char*>(c.data()),
            static_cast<std::streamsize>(nnz * sizeof(index_t)));
  }
  std::vector<real_t> vals(nnz);
  in.read(reinterpret_cast<char*>(vals.data()),
          static_cast<std::streamsize>(nnz * sizeof(real_t)));
  if (!in) {
    throw ParseError("truncated binary tensor file: " + path);
  }

  CooTensor out(dims);
  out.reserve(nnz);
  std::vector<index_t> c(order);
  for (offset_t n = 0; n < nnz; ++n) {
    for (std::size_t m = 0; m < order; ++m) {
      c[m] = coords[m][n];
    }
    out.add(c, vals[n]);
  }
  return out;
}

}  // namespace aoadmm
