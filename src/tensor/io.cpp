#include "tensor/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace aoadmm {
namespace {

constexpr char kBinaryMagic[8] = {'A', 'O', 'T', 'N', 'S', '1', 0, 0};

struct RawNonzero {
  std::vector<index_t> coord;
  real_t value;
};

}  // namespace

CooTensor read_tns(std::istream& in) {
  std::string line;
  std::size_t order = 0;
  std::vector<std::vector<index_t>> coords;
  std::vector<real_t> values;
  std::size_t lineno = 0;

  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and skip blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::vector<double> fields;
    double v;
    while (ls >> v) {
      fields.push_back(v);
    }
    if (fields.empty()) {
      continue;
    }
    if (order == 0) {
      if (fields.size() < 2) {
        throw ParseError("tns line " + std::to_string(lineno) +
                         ": expected at least 2 fields");
      }
      order = fields.size() - 1;
      coords.resize(order);
    } else if (fields.size() != order + 1) {
      throw ParseError("tns line " + std::to_string(lineno) +
                       ": inconsistent arity (expected " +
                       std::to_string(order + 1) + " fields)");
    }
    for (std::size_t m = 0; m < order; ++m) {
      const double idx = fields[m];
      if (idx < 1 || idx != static_cast<double>(static_cast<index_t>(idx))) {
        throw ParseError("tns line " + std::to_string(lineno) +
                         ": bad index in mode " + std::to_string(m));
      }
      coords[m].push_back(static_cast<index_t>(idx) - 1);  // 1-indexed file
    }
    values.push_back(static_cast<real_t>(fields[order]));
  }

  if (order == 0) {
    throw ParseError("tns input contains no non-zeros");
  }

  std::vector<index_t> dims(order, 0);
  for (std::size_t m = 0; m < order; ++m) {
    for (const index_t i : coords[m]) {
      dims[m] = std::max(dims[m], static_cast<index_t>(i + 1));
    }
  }

  CooTensor out(dims);
  out.reserve(values.size());
  std::vector<index_t> c(order);
  for (std::size_t n = 0; n < values.size(); ++n) {
    for (std::size_t m = 0; m < order; ++m) {
      c[m] = coords[m][n];
    }
    out.add(c, values[n]);
  }
  return out;
}

CooTensor read_tns_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgument("cannot open tensor file: " + path);
  }
  return read_tns(in);
}

void write_tns(const CooTensor& x, std::ostream& out) {
  // Full round-trip precision: values must survive write→read unchanged.
  out.precision(17);
  for (offset_t n = 0; n < x.nnz(); ++n) {
    for (std::size_t m = 0; m < x.order(); ++m) {
      out << (x.index(m, n) + 1) << ' ';
    }
    out << x.value(n) << '\n';
  }
}

void write_tns_file(const CooTensor& x, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw InvalidArgument("cannot create tensor file: " + path);
  }
  write_tns(x, out);
}

void write_binary_file(const CooTensor& x, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw InvalidArgument("cannot create tensor file: " + path);
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint64_t order = x.order();
  const std::uint64_t nnz = x.nnz();
  out.write(reinterpret_cast<const char*>(&order), sizeof(order));
  out.write(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  for (std::size_t m = 0; m < x.order(); ++m) {
    const std::uint64_t d = x.dim(m);
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  for (std::size_t m = 0; m < x.order(); ++m) {
    const auto inds = x.mode_indices(m);
    out.write(reinterpret_cast<const char*>(inds.data()),
              static_cast<std::streamsize>(inds.size() * sizeof(index_t)));
  }
  const auto vals = x.values();
  out.write(reinterpret_cast<const char*>(vals.data()),
            static_cast<std::streamsize>(vals.size() * sizeof(real_t)));
  if (!out) {
    throw InvalidArgument("short write to: " + path);
  }
}

CooTensor read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw InvalidArgument("cannot open tensor file: " + path);
  }
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    throw ParseError("bad magic in binary tensor file: " + path);
  }
  std::uint64_t order = 0;
  std::uint64_t nnz = 0;
  in.read(reinterpret_cast<char*>(&order), sizeof(order));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  if (!in || order == 0 || order > 64) {
    throw ParseError("corrupt header in binary tensor file: " + path);
  }
  std::vector<index_t> dims(order);
  for (auto& d : dims) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = static_cast<index_t>(v);
  }
  std::vector<std::vector<index_t>> coords(order,
                                           std::vector<index_t>(nnz));
  for (auto& c : coords) {
    in.read(reinterpret_cast<char*>(c.data()),
            static_cast<std::streamsize>(nnz * sizeof(index_t)));
  }
  std::vector<real_t> vals(nnz);
  in.read(reinterpret_cast<char*>(vals.data()),
          static_cast<std::streamsize>(nnz * sizeof(real_t)));
  if (!in) {
    throw ParseError("truncated binary tensor file: " + path);
  }

  CooTensor out(dims);
  out.reserve(nnz);
  std::vector<index_t> c(order);
  for (offset_t n = 0; n < nnz; ++n) {
    for (std::size_t m = 0; m < order; ++m) {
      c[m] = coords[m][n];
    }
    out.add(c, vals[n]);
  }
  return out;
}

}  // namespace aoadmm
