#include "tensor/matricize.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/khatri_rao.hpp"
#include "parallel/runtime.hpp"
#include "util/error.hpp"

namespace aoadmm {

Matrix matricize(const CooTensor& x, std::size_t mode) {
  AOADMM_CHECK(mode < x.order());
  std::size_t ncols = 1;
  for (std::size_t m = 0; m < x.order(); ++m) {
    if (m != mode) {
      ncols *= x.dim(m);
    }
  }
  Matrix out(x.dim(mode), ncols);
  for (offset_t n = 0; n < x.nnz(); ++n) {
    std::size_t col = 0;
    std::size_t stride = 1;
    for (std::size_t m = 0; m < x.order(); ++m) {
      if (m == mode) {
        continue;
      }
      col += static_cast<std::size_t>(x.index(m, n)) * stride;
      stride *= x.dim(m);
    }
    out(x.index(mode, n), col) += x.value(n);
  }
  return out;
}

Matrix reconstruct_matricized(cspan<const Matrix> factors, std::size_t mode) {
  AOADMM_CHECK(mode < factors.size());
  const Matrix krp = khatri_rao_excluding(factors, mode);
  // M(m) = A_m · krpᵀ.
  const Matrix krp_t = transpose(krp);
  return matmul(factors[mode], krp_t);
}

real_t inner_with_model(const CooTensor& x, cspan<const Matrix> factors) {
  AOADMM_CHECK(factors.size() == x.order());
  const std::size_t order = x.order();
  const std::size_t f = factors[0].cols();
  for (std::size_t m = 0; m < order; ++m) {
    AOADMM_CHECK_MSG(factors[m].rows() == x.dim(m) && factors[m].cols() == f,
                     "factor shape mismatch");
  }
  return parallel_reduce_sum(0, x.nnz(), [&](std::size_t n) {
    real_t model = 0;
    for (std::size_t c = 0; c < f; ++c) {
      real_t prod = 1;
      for (std::size_t m = 0; m < order; ++m) {
        prod *= factors[m](x.index(m, n), c);
      }
      model += prod;
    }
    return x.value(n) * model;
  });
}

real_t model_norm_sq(cspan<const Matrix> factors) {
  AOADMM_CHECK(!factors.empty());
  const std::size_t f = factors[0].cols();
  Matrix acc(f, f);
  acc.fill(real_t{1});
  Matrix g(f, f);
  for (const Matrix& a : factors) {
    gram(a, g);
    hadamard_inplace(acc, g);
  }
  return sum_all(acc);
}

real_t relative_error(const CooTensor& x, cspan<const Matrix> factors,
                      real_t x_norm_sq) {
  const real_t inner = inner_with_model(x, factors);
  const real_t mnorm = model_norm_sq(factors);
  real_t resid_sq = x_norm_sq - 2 * inner + mnorm;
  if (resid_sq < 0) {
    resid_sq = 0;  // guard round-off for near-exact fits
  }
  return x_norm_sq > 0 ? std::sqrt(resid_sq) / std::sqrt(x_norm_sq)
                       : std::sqrt(resid_sq);
}

}  // namespace aoadmm
