#include "tensor/coo.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "parallel/runtime.hpp"

namespace aoadmm {

CooTensor::CooTensor(std::vector<index_t> dims) : dims_(std::move(dims)) {
  AOADMM_CHECK_MSG(!dims_.empty(), "tensor order must be >= 1");
  for (const index_t d : dims_) {
    AOADMM_CHECK_MSG(d > 0, "every mode length must be positive");
  }
  inds_.resize(dims_.size());
}

void CooTensor::reserve(offset_t n) {
  for (auto& v : inds_) {
    v.reserve(n);
  }
  vals_.reserve(n);
}

void CooTensor::add(cspan<index_t> coord, real_t value) {
  AOADMM_CHECK_MSG(coord.size() == order(), "coordinate arity mismatch");
  for (std::size_t m = 0; m < order(); ++m) {
    AOADMM_CHECK_MSG(coord[m] < dims_[m], "coordinate out of bounds");
    inds_[m].push_back(coord[m]);
  }
  vals_.push_back(value);
}

void CooTensor::grow_to_fit(std::size_t mode, index_t idx) {
  AOADMM_CHECK(mode < order());
  if (idx < dims_[mode]) {
    return;
  }
  if (idx == std::numeric_limits<index_t>::max()) {
    throw OverflowError("mode " + std::to_string(mode) + " cannot address " +
                        "index " + std::to_string(idx) +
                        ": the slice count would overflow index_t");
  }
  dims_[mode] = idx + 1;
}

void CooTensor::append_all(const CooTensor& other) {
  AOADMM_CHECK_MSG(other.order() == order(), "append_all: order mismatch");
  const offset_t extra = other.nnz();
  if (nnz() > std::numeric_limits<offset_t>::max() - extra) {
    throw OverflowError("append_all: combined non-zero count " +
                        std::to_string(nnz()) + " + " +
                        std::to_string(extra) + " overflows offset_t");
  }
  for (std::size_t m = 0; m < order(); ++m) {
    dims_[m] = std::max(dims_[m], other.dim(m));
    inds_[m].insert(inds_[m].end(), other.inds_[m].begin(),
                    other.inds_[m].end());
  }
  vals_.insert(vals_.end(), other.vals_.begin(), other.vals_.end());
}

void CooTensor::apply_permutation(const std::vector<offset_t>& perm) {
  const offset_t n = nnz();
  std::vector<real_t> new_vals(n);
  for (offset_t i = 0; i < n; ++i) {
    new_vals[i] = vals_[perm[i]];
  }
  vals_ = std::move(new_vals);
  std::vector<index_t> tmp(n);
  for (auto& mode_inds : inds_) {
    for (offset_t i = 0; i < n; ++i) {
      tmp[i] = mode_inds[perm[i]];
    }
    mode_inds.swap(tmp);
  }
}

void CooTensor::sort_by(cspan<std::size_t> perm,
                        std::vector<offset_t>* placement) {
  AOADMM_CHECK_MSG(perm.size() == order(), "sort permutation arity mismatch");
  {
    std::vector<std::size_t> check(perm.begin(), perm.end());
    std::sort(check.begin(), check.end());
    for (std::size_t m = 0; m < check.size(); ++m) {
      AOADMM_CHECK_MSG(check[m] == m, "sort permutation is not a permutation");
    }
  }
  const offset_t n = nnz();
  std::vector<offset_t> order_idx(n);
  std::iota(order_idx.begin(), order_idx.end(), offset_t{0});

  // Comparison sorts pay O(order) key probes per comparison; CSF
  // construction is sort-bound, so keys are sorted LSD-radix style instead:
  // one stable counting sort per mode, least significant (perm.back())
  // first. O(Σ_m (nnz + I_m)) total. Falls back to a comparison sort for
  // pathological mode lengths where the counting buckets would not fit.
  constexpr index_t kMaxCountingDim = index_t{1} << 26;
  bool counting_ok = true;
  for (const std::size_t m : perm) {
    if (dims_[m] > kMaxCountingDim) {
      counting_ok = false;
      break;
    }
  }

  if (counting_ok) {
    std::vector<offset_t> next(n);
    std::vector<offset_t> counts;
    for (std::size_t level = perm.size(); level-- > 0;) {
      const std::size_t m = perm[level];
      const auto& keys = inds_[m];
      counts.assign(static_cast<std::size_t>(dims_[m]) + 1, 0);
      for (offset_t i = 0; i < n; ++i) {
        ++counts[keys[order_idx[i]] + 1];
      }
      for (std::size_t k = 1; k < counts.size(); ++k) {
        counts[k] += counts[k - 1];
      }
      for (offset_t i = 0; i < n; ++i) {
        next[counts[keys[order_idx[i]]]++] = order_idx[i];
      }
      order_idx.swap(next);
    }
  } else {
    std::sort(order_idx.begin(), order_idx.end(),
              [&](offset_t a, offset_t b) {
                for (const std::size_t m : perm) {
                  const index_t ia = inds_[m][a];
                  const index_t ib = inds_[m][b];
                  if (ia != ib) {
                    return ia < ib;
                  }
                }
                return false;
              });
  }
  if (placement != nullptr) {
    placement->resize(n);
    for (offset_t i = 0; i < n; ++i) {
      (*placement)[order_idx[i]] = i;
    }
  }
  apply_permutation(order_idx);
}

void CooTensor::sort_mode_major(std::size_t mode) {
  AOADMM_CHECK(mode < order());
  std::vector<std::size_t> perm;
  perm.push_back(mode);
  for (std::size_t m = 0; m < order(); ++m) {
    if (m != mode) {
      perm.push_back(m);
    }
  }
  sort_by(perm);
}

void CooTensor::deduplicate() {
  if (nnz() == 0) {
    return;
  }
  sort_mode_major(0);
  const offset_t n = nnz();
  offset_t out = 0;
  for (offset_t i = 1; i < n; ++i) {
    bool same = true;
    for (const auto& mode_inds : inds_) {
      if (mode_inds[i] != mode_inds[out]) {
        same = false;
        break;
      }
    }
    if (same) {
      vals_[out] += vals_[i];
    } else {
      ++out;
      for (auto& mode_inds : inds_) {
        mode_inds[out] = mode_inds[i];
      }
      vals_[out] = vals_[i];
    }
  }
  const offset_t new_n = out + 1;
  for (auto& mode_inds : inds_) {
    mode_inds.resize(new_n);
  }
  vals_.resize(new_n);
}

real_t CooTensor::norm_sq() const {
  return parallel_reduce_sum(0, vals_.size(), [&](std::size_t i) {
    return vals_[i] * vals_[i];
  });
}

std::vector<offset_t> CooTensor::slice_nnz(std::size_t mode) const {
  AOADMM_CHECK(mode < order());
  std::vector<offset_t> counts(dims_[mode], 0);
  for (const index_t idx : inds_[mode]) {
    ++counts[idx];
  }
  return counts;
}

void CooTensor::prune_explicit_zeros() {
  const offset_t n = nnz();
  offset_t out = 0;
  for (offset_t i = 0; i < n; ++i) {
    if (vals_[i] != real_t{0}) {
      if (out != i) {
        for (auto& mode_inds : inds_) {
          mode_inds[out] = mode_inds[i];
        }
        vals_[out] = vals_[i];
      }
      ++out;
    }
  }
  for (auto& mode_inds : inds_) {
    mode_inds.resize(out);
  }
  vals_.resize(out);
}

}  // namespace aoadmm
