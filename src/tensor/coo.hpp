// Coordinate-format sparse tensor: the interchange representation. Tensors
// are loaded/generated as COO, then compiled into CSF (csf.hpp) for the
// compute kernels.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace aoadmm {

class CooTensor {
 public:
  CooTensor() = default;

  /// Empty tensor with the given mode lengths (order = dims.size() >= 1).
  explicit CooTensor(std::vector<index_t> dims);

  std::size_t order() const noexcept { return dims_.size(); }
  index_t dim(std::size_t mode) const { return dims_.at(mode); }
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  offset_t nnz() const noexcept { return vals_.size(); }

  void reserve(offset_t n);

  /// Append one non-zero. `coord` must have order() entries, each within the
  /// corresponding mode length.
  void add(cspan<index_t> coord, real_t value);

  /// Grow `mode` so that index `idx` is addressable (no-op when it already
  /// is). Throws OverflowError when idx is the index_t maximum — the slice
  /// count idx+1 would wrap — leaving the tensor unchanged. This is the
  /// checked growth path streaming appends go through.
  void grow_to_fit(std::size_t mode, index_t idx);

  /// Append every non-zero of `other` (same order), growing mode lengths to
  /// cover it. Throws OverflowError when the combined non-zero count would
  /// exceed the offset_t range or a mode length would wrap; the tensor is
  /// unchanged on throw.
  void append_all(const CooTensor& other);

  /// Index of non-zero `n` along `mode`.
  index_t index(std::size_t mode, offset_t n) const noexcept {
    return inds_[mode][n];
  }
  real_t value(offset_t n) const noexcept { return vals_[n]; }
  real_t& value(offset_t n) noexcept { return vals_[n]; }

  cspan<index_t> mode_indices(std::size_t mode) const noexcept {
    return inds_[mode];
  }
  cspan<real_t> values() const noexcept { return vals_; }
  span<real_t> values() noexcept { return vals_; }

  /// Lexicographically sort non-zeros by the given mode permutation
  /// (perm[0] most significant). perm must be a permutation of 0..order-1.
  /// When `placement` is non-null it receives the position mapping:
  /// placement[p] = sorted position of the non-zero that was at p (used by
  /// CSF construction to remember where each non-zero's leaf landed).
  void sort_by(cspan<std::size_t> perm,
               std::vector<offset_t>* placement = nullptr);

  /// Sort with `mode` most significant and the remaining modes in
  /// increasing order — the ordering CSF construction wants.
  void sort_mode_major(std::size_t mode);

  /// Merge duplicate coordinates by summing their values. The tensor is
  /// sorted (mode-0 major) afterwards.
  void deduplicate();

  /// Σ x² over stored non-zeros (parallel).
  real_t norm_sq() const;

  /// Number of non-zeros in each slice of `mode` (used for load balancing
  /// and for the synthetic-data power-law checks).
  std::vector<offset_t> slice_nnz(std::size_t mode) const;

  /// Remove all non-zeros with |value| == 0 exactly.
  void prune_explicit_zeros();

 private:
  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> inds_;  // one array per mode (SoA)
  std::vector<real_t> vals_;

  void apply_permutation(const std::vector<offset_t>& perm);
};

}  // namespace aoadmm
