// Explicit (dense) matricization and dense reconstruction — reference
// implementations used by tests as oracles for the CSF kernels. These
// materialize O(∏ dims) memory and are only suitable for tiny tensors.
#pragma once

#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace aoadmm {

/// Mode-m matricization X(m): I_m x ∏_{n≠m} I_n, with lower modes varying
/// fastest among the column modes (Kolda convention, matching
/// khatri_rao_excluding).
Matrix matricize(const CooTensor& x, std::size_t mode);

/// Dense reconstruction of the rank-F model along `mode`:
/// M(m) = A_m · khatri_rao_excluding(factors, m)ᵀ.
Matrix reconstruct_matricized(cspan<const Matrix> factors, std::size_t mode);

/// Exact inner product ⟨X, M⟩ = Σ_{nnz} x(i…) · Σ_f ∏_m A_m(i_m, f),
/// streamed over the non-zeros (no dense materialization; parallel).
real_t inner_with_model(const CooTensor& x, cspan<const Matrix> factors);

/// ‖M‖² of the rank-F model via the Gram trick:
/// 1ᵀ (⊛_m A_mᵀA_m) 1 — O(Σ I_m F²), no materialization.
real_t model_norm_sq(cspan<const Matrix> factors);

/// Exact relative error ‖X − M‖_F / ‖X‖_F using the streamed inner product
/// and the Gram trick. `x_norm_sq` avoids recomputing ‖X‖² every call.
real_t relative_error(const CooTensor& x, cspan<const Matrix> factors,
                      real_t x_norm_sq);

}  // namespace aoadmm
