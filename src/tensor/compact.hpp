// Index-space preprocessing for real-world tensors: FROSTT datasets carry
// empty slices (ids that never appear), and factorization quality and
// memory both benefit from compacting them away. Also provides degree-based
// relabeling, which groups hot slices together — useful for locality
// studies and for making the synthetic generators' Zipf structure explicit.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace aoadmm {

/// Per-mode relabeling produced by a compaction: new_id = forward[old_id]
/// (kInvalidIndex for dropped ids) and old_id = backward[new_id].
struct ModeRemap {
  static constexpr index_t kInvalidIndex = ~index_t{0};
  std::vector<index_t> forward;
  std::vector<index_t> backward;
};

struct CompactResult {
  CooTensor tensor;
  /// One remap per mode.
  std::vector<ModeRemap> remaps;
};

/// Remove empty slices from every mode: the result's mode m has length
/// equal to the number of distinct indices appearing in mode m, with ids
/// assigned in increasing old-id order.
CompactResult compact_empty_slices(const CooTensor& x);

/// Relabel every mode so that slice ids are ordered by decreasing non-zero
/// count (id 0 = hottest slice). Dimensions are unchanged; ties keep old
/// order. Returns the relabeled tensor plus the remaps.
CompactResult relabel_by_degree(const CooTensor& x);

/// Apply previously computed remaps to factor rows: given a factor matrix
/// over the ORIGINAL id space of `remap`, return the matrix over the new
/// id space (rows reordered/dropped). Rows for dropped ids are discarded;
/// the output has remap.backward.size() rows.
Matrix remap_factor_rows(const Matrix& factor, const ModeRemap& remap);

}  // namespace aoadmm
