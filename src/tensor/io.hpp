// Tensor file I/O.
//
// Text format: FROSTT `.tns` — one non-zero per line, 1-indexed coordinates
// followed by the value, e.g. "17 3 204 1.5". Comments start with '#'.
//
// Binary format: a simple versioned container ("AOTNS1") holding the raw
// COO arrays, for fast reload of generated workloads.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/coo.hpp"

namespace aoadmm {

/// What to do when a .tns file lists the same coordinate more than once.
enum class DuplicatePolicy {
  /// Merge duplicates by summing their values (FROSTT convention; the
  /// default). The entry keeps the position of the first occurrence.
  kSum,
  /// Reject the file with a ParseError naming both offending lines.
  kError,
};

/// Reader options beyond the duplicate policy.
struct TnsOptions {
  DuplicatePolicy policy = DuplicatePolicy::kSum;
  /// Accept coordinates past the 32-bit index_t ceiling (billion-row
  /// modes). Coordinates are parsed at 64-bit width and any mode whose
  /// largest index exceeds index_t is compacted: its occupied slices are
  /// renumbered densely (sorted order preserved), which is harmless for
  /// factorization — empty slices carry no data — but changes that mode's
  /// row numbering. A mode with more DISTINCT occupied slices than index_t
  /// can address is rejected with ParseError. Off by default: the narrow
  /// path parses straight into index_t with no second pass.
  bool wide_indices = false;
};

/// Parse a FROSTT .tns stream. Mode lengths are inferred as the maximum
/// index seen per mode. Throws ParseError on malformed input: short or
/// inconsistent-arity lines, non-integer / zero / overflowing indices, and
/// non-finite values are all rejected with the line number and offending
/// token.
CooTensor read_tns(std::istream& in,
                   DuplicatePolicy policy = DuplicatePolicy::kSum);
CooTensor read_tns(std::istream& in, const TnsOptions& options);

/// Load a .tns file from disk. Throws ParseError (bad content, prefixed
/// with the path) or InvalidArgument (unreadable path).
CooTensor read_tns_file(const std::string& path,
                        DuplicatePolicy policy = DuplicatePolicy::kSum);
CooTensor read_tns_file(const std::string& path, const TnsOptions& options);

/// Write a tensor as .tns (1-indexed).
void write_tns(const CooTensor& x, std::ostream& out);
void write_tns_file(const CooTensor& x, const std::string& path);

/// Binary round-trip.
void write_binary_file(const CooTensor& x, const std::string& path);
CooTensor read_binary_file(const std::string& path);

}  // namespace aoadmm
