#include "tensor/csf.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>

#include "parallel/partition.hpp"
#include "tensor/alto.hpp"
#include "util/error.hpp"
#include "util/overflow.hpp"

namespace aoadmm {

CsfTensor CsfTensor::build(const CooTensor& coo,
                           std::vector<std::size_t> mode_perm,
                           std::vector<offset_t>* leaf_of_coo) {
  const std::size_t order = coo.order();
  AOADMM_CHECK_MSG(mode_perm.size() == order, "CSF mode permutation arity");
  {
    std::vector<std::size_t> check = mode_perm;
    std::sort(check.begin(), check.end());
    for (std::size_t m = 0; m < order; ++m) {
      AOADMM_CHECK_MSG(check[m] == m, "CSF mode_perm is not a permutation");
    }
  }
  AOADMM_CHECK_MSG(order >= 2, "CSF requires order >= 2");

  CooTensor sorted = coo;
  // The sort placement IS the leaf mapping: leaves sit in sorted order.
  sorted.sort_by(mode_perm, leaf_of_coo);

  CsfTensor out;
  out.mode_perm_ = std::move(mode_perm);
  out.dims_ = sorted.dims();
  out.fids_.resize(order);
  out.fptr_.resize(order - 1);

  const offset_t n = sorted.nnz();
  out.vals_.assign(sorted.values().begin(), sorted.values().end());

  // Leaf level: one node per non-zero.
  {
    const auto leaf_mode = out.mode_perm_[order - 1];
    const auto inds = sorted.mode_indices(leaf_mode);
    out.fids_[order - 1].assign(inds.begin(), inds.end());
  }

  // Upper levels: walk the sorted non-zeros once and emit a new node at
  // level l whenever the coordinate prefix [0..l] changes.
  for (std::size_t level = 0; level + 1 < order; ++level) {
    auto& fids = out.fids_[level];
    auto& fptr = out.fptr_[level];
    fids.clear();
    fptr.clear();
    const std::size_t child_level = level + 1;

    if (n == 0) {
      fptr.push_back(0);
      continue;
    }

    if (level == 0) {
      // Emit a root node whenever the root-mode index changes.
      const auto root_inds = sorted.mode_indices(out.mode_perm_[0]);
      // child node boundaries are discovered below, so build top-down
      // instead: record, for each nnz, whether a new node starts at each
      // level; then compress.
      (void)root_inds;
    }
    // Generic top-down pass: a node at `level` starts at nnz position p iff
    // any coordinate among modes mode_perm_[0..level] differs from p-1.
    // A child node at `child_level` starts iff any of modes [0..child_level]
    // differs. fptr maps node ordinal at `level` to first child ordinal at
    // `child_level`.
    std::size_t child_count = 0;
    fptr.push_back(0);
    for (offset_t p = 0; p < n; ++p) {
      bool new_node = (p == 0);
      bool new_child = (p == 0);
      if (p > 0) {
        for (std::size_t l = 0; l <= child_level; ++l) {
          const auto m = out.mode_perm_[l];
          if (sorted.index(m, p) != sorted.index(m, p - 1)) {
            if (l <= level) {
              new_node = true;
            }
            new_child = true;
            break;
          }
        }
      }
      if (new_child) {
        ++child_count;
      }
      if (new_node) {
        fids.push_back(sorted.index(out.mode_perm_[level], p));
        if (fids.size() > 1) {
          fptr.push_back(child_count - 1);
        }
      }
    }
    fptr.push_back(child_count);
  }

  if (n == 0) {
    for (auto& fptr : out.fptr_) {
      if (fptr.empty()) {
        fptr.push_back(0);
      }
    }
  }

  return out;
}

CsfTensor CsfTensor::build_for_mode(const CooTensor& coo, std::size_t root,
                                    std::vector<offset_t>* leaf_of_coo) {
  AOADMM_CHECK(root < coo.order());
  std::vector<std::size_t> perm;
  perm.push_back(root);
  std::vector<std::size_t> rest;
  for (std::size_t m = 0; m < coo.order(); ++m) {
    if (m != root) {
      rest.push_back(m);
    }
  }
  // Shorter modes toward the root compress better (more sharing per node).
  std::stable_sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
    return coo.dim(a) < coo.dim(b);
  });
  perm.insert(perm.end(), rest.begin(), rest.end());
  return build(coo, std::move(perm), leaf_of_coo);
}

std::vector<offset_t> CsfTensor::root_weights() const {
  const std::size_t roots = num_nodes(0);
  std::vector<offset_t> weights(roots, 0);
  if (order() == 0 || roots == 0) {
    return weights;
  }
  // Count leaves under each root by composing the fptr maps level by level.
  for (std::size_t r = 0; r < roots; ++r) {
    offset_t lo = fptr_[0][r];
    offset_t hi = fptr_[0][r + 1];
    for (std::size_t level = 1; level + 1 < order(); ++level) {
      lo = fptr_[level][lo];
      hi = fptr_[level][hi];
    }
    weights[r] = hi - lo;
  }
  return weights;
}

const std::vector<std::size_t>& CsfTensor::root_partition(
    std::size_t parts) const {
  parts = std::max<std::size_t>(parts, 1);
  std::lock_guard<std::mutex> lock(plans_->mu);
  auto it = plans_->root_partitions.find(parts);
  if (it == plans_->root_partitions.end()) {
    const std::vector<offset_t> weights = root_weights();
    it = plans_->root_partitions
             .emplace(parts, weighted_partition(weights, parts))
             .first;
  }
  return it->second;
}

const MttkrpOwnerPlan& CsfTensor::owner_plan(std::size_t level,
                                             std::size_t parts) const {
  AOADMM_CHECK(level > 0 && level < order());
  parts = std::max<std::size_t>(parts, 1);
  std::lock_guard<std::mutex> lock(plans_->mu);
  const auto key = std::make_pair(level, parts);
  auto it = plans_->owner_plans.find(key);
  if (it != plans_->owner_plans.end()) {
    return it->second;
  }

  MttkrpOwnerPlan plan;
  plan.level = level;
  plan.parts = parts;
  {
    // Same weighted root partition the other kernels use (compute inline:
    // root_partition() would deadlock on the non-recursive mutex).
    auto pit = plans_->root_partitions.find(parts);
    if (pit == plans_->root_partitions.end()) {
      const std::vector<offset_t> weights = root_weights();
      pit = plans_->root_partitions
                .emplace(parts, weighted_partition(weights, parts))
                .first;
    }
    plan.root_bounds = pit->second;
  }

  // Chunk boundaries at the target level: compose the (monotone) fptr maps
  // from the root boundaries down to `level`.
  plan.node_bounds.resize(parts + 1);
  for (std::size_t b = 0; b <= parts; ++b) {
    offset_t node = plan.root_bounds[b];
    for (std::size_t l = 0; l < level; ++l) {
      node = fptr_[l][node];
    }
    plan.node_bounds[b] = node;
  }

  // Classify each target-mode row: owned by exactly one chunk (written
  // directly, single writer) or shared across chunks (slot-buffered).
  const index_t rows = dims_[mode_perm_[level]];
  std::vector<std::int32_t> owner(rows, -1);  // chunk id, or -2 = shared
  const auto level_fids = fids_[level];
  for (std::size_t c = 0; c < parts; ++c) {
    const auto chunk = static_cast<std::int32_t>(c);
    for (offset_t n = plan.node_bounds[c]; n < plan.node_bounds[c + 1]; ++n) {
      std::int32_t& o = owner[level_fids[n]];
      if (o == -1) {
        o = chunk;
      } else if (o != chunk) {
        o = -2;
      }
    }
  }
  plan.row_slot.assign(rows, -1);
  for (index_t r = 0; r < rows; ++r) {
    if (owner[r] == -2) {
      plan.row_slot[r] = static_cast<std::int32_t>(plan.shared_rows.size());
      plan.shared_rows.push_back(r);
    }
  }

  return plans_->owner_plans.emplace(key, std::move(plan)).first->second;
}

const AltoTensor& CsfTensor::alto_index() const {
  std::lock_guard<std::mutex> lock(plans_->mu);
  if (!plans_->alto) {
    plans_->alto =
        std::make_shared<const AltoTensor>(AltoTensor::build(*this));
  }
  return *plans_->alto;
}

void CsfTensor::drop_alto_index() const {
  std::lock_guard<std::mutex> lock(plans_->mu);
  plans_->alto.reset();
}

std::size_t CsfTensor::storage_bytes() const noexcept {
  std::size_t bytes = vals_.size() * sizeof(real_t);
  for (const auto& f : fids_) {
    bytes += f.size() * sizeof(index_t);
  }
  for (const auto& f : fptr_) {
    bytes += f.size() * sizeof(offset_t);
  }
  return bytes;
}

namespace {

constexpr char kCsfMagic[8] = {'A', 'O', 'C', 'S', 'F', '1', 0, 0};
constexpr std::uint64_t kCsfFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kCsfFnvPrime = 1099511628211ULL;

std::uint64_t csf_fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = kCsfFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kCsfFnvPrime;
  }
  return h;
}

void put_bytes(std::vector<char>& out, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  out.insert(out.end(), p, p + n);
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  put_bytes(out, &v, sizeof(v));
}

/// Bounds-checked reader over a deserialize() blob.
struct BlobReader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  void read(void* out, std::size_t n) {
    if (n > size - pos) {
      throw ParseError("truncated CSF tile blob");
    }
    std::memcpy(out, data + pos, n);
    pos += n;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    read(&v, sizeof(v));
    return v;
  }

  template <typename T>
  void array(std::vector<T>& out, std::uint64_t count, const char* what) {
    // The element count comes from the (checksummed but not yet verified)
    // header; bound it by the remaining bytes before allocating.
    const std::size_t bytes =
        checked_mul<std::size_t>(count, sizeof(T), what);
    if (bytes > size - pos) {
      throw ParseError("truncated CSF tile blob");
    }
    out.resize(count);
    read(out.data(), bytes);
  }
};

}  // namespace

std::vector<char> CsfTensor::serialize() const {
  const std::size_t levels = order();
  std::vector<char> out;
  // Exact-size reservation keeps the spill write a single allocation even
  // for multi-GB tiles; every term is overflow-checked.
  std::size_t bytes = sizeof(kCsfMagic) + 3 * sizeof(std::uint64_t);
  bytes = checked_add(bytes, 2 * levels * sizeof(std::uint64_t),
                      "CSF blob header bytes");
  for (std::size_t l = 0; l < levels; ++l) {
    bytes = checked_add(
        bytes,
        checked_add(checked_mul(fids_[l].size(), sizeof(index_t),
                                "CSF blob fids bytes"),
                    sizeof(std::uint64_t), "CSF blob fids bytes"),
        "CSF blob bytes");
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    bytes = checked_add(
        bytes,
        checked_add(checked_mul(fptr_[l].size(), sizeof(offset_t),
                                "CSF blob fptr bytes"),
                    sizeof(std::uint64_t), "CSF blob fptr bytes"),
        "CSF blob bytes");
  }
  bytes = checked_add(bytes,
                      checked_mul(vals_.size(), sizeof(real_t),
                                  "CSF blob value bytes"),
                      "CSF blob bytes");
  out.reserve(bytes);

  put_bytes(out, kCsfMagic, sizeof(kCsfMagic));
  put_u64(out, levels);
  put_u64(out, nnz());
  for (std::size_t l = 0; l < levels; ++l) {
    put_u64(out, mode_perm_[l]);
  }
  for (std::size_t l = 0; l < levels; ++l) {
    put_u64(out, dims_[l]);
  }
  for (std::size_t l = 0; l < levels; ++l) {
    put_u64(out, fids_[l].size());
    put_bytes(out, fids_[l].data(), fids_[l].size() * sizeof(index_t));
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    put_u64(out, fptr_[l].size());
    put_bytes(out, fptr_[l].data(), fptr_[l].size() * sizeof(offset_t));
  }
  put_bytes(out, vals_.data(), vals_.size() * sizeof(real_t));
  put_u64(out, csf_fnv1a(out.data() + sizeof(kCsfMagic),
                         out.size() - sizeof(kCsfMagic)));
  return out;
}

CsfTensor CsfTensor::deserialize(const char* data, std::size_t size) {
  if (size < sizeof(kCsfMagic) + 3 * sizeof(std::uint64_t) ||
      std::memcmp(data, kCsfMagic, sizeof(kCsfMagic)) != 0) {
    throw ParseError("bad magic in CSF tile blob");
  }
  // Checksum first: everything after the magic, minus the trailing hash.
  const std::size_t payload = size - sizeof(kCsfMagic) - sizeof(std::uint64_t);
  std::uint64_t stored = 0;
  std::memcpy(&stored, data + size - sizeof(std::uint64_t), sizeof(stored));
  if (csf_fnv1a(data + sizeof(kCsfMagic), payload) != stored) {
    throw ParseError("CSF tile blob checksum mismatch");
  }

  BlobReader in{data, size - sizeof(std::uint64_t), sizeof(kCsfMagic)};
  const std::uint64_t levels = in.u64();
  const std::uint64_t nnz = in.u64();
  if (levels < 2 || levels > 64) {
    throw ParseError("corrupt CSF tile blob header (order " +
                     std::to_string(levels) + ")");
  }
  CsfTensor out;
  out.mode_perm_.resize(levels);
  out.dims_.resize(levels);
  for (auto& m : out.mode_perm_) {
    m = static_cast<std::size_t>(in.u64());
  }
  for (auto& d : out.dims_) {
    d = checked_cast<index_t>(in.u64(), "CSF tile mode length");
  }
  out.fids_.resize(levels);
  out.fptr_.resize(levels - 1);
  for (auto& fids : out.fids_) {
    in.array(fids, in.u64(), "CSF tile fids bytes");
  }
  for (auto& fptr : out.fptr_) {
    in.array(fptr, in.u64(), "CSF tile fptr bytes");
  }
  in.array(out.vals_, nnz, "CSF tile value bytes");
  if (in.pos != in.size || out.fids_[levels - 1].size() != nnz) {
    throw ParseError("corrupt CSF tile blob (size mismatch)");
  }
  return out;
}

const char* to_string(CsfStrategy s) noexcept {
  switch (s) {
    case CsfStrategy::kAllMode:
      return "ALLMODE";
    case CsfStrategy::kOneMode:
      return "ONEMODE";
  }
  return "?";
}

CsfSet::CsfSet(const CooTensor& coo, CsfStrategy strategy, index_t tile_rows,
               bool track_value_patching)
    : order_(coo.order()),
      strategy_(strategy),
      tile_rows_(tile_rows),
      dims_(coo.dims()),
      nnz_(coo.nnz()) {
  for (const real_t v : coo.values()) {
    norm_sq_ += v * v;
  }
  if (tile_rows_ > 0) {
    // Tiling exists for the root-mode kernel only, so every mode needs a
    // tree rooted at itself (validated as an error in CpdConfig too).
    AOADMM_CHECK_MSG(strategy_ == CsfStrategy::kAllMode,
                     "tiled CsfSet requires the ALLMODE strategy");
    AOADMM_CHECK_MSG(!track_value_patching,
                     "value patching is not supported for tiled CsfSets");
    tiled_.reserve(order_);
    for (std::size_t m = 0; m < order_; ++m) {
      tiled_.emplace_back(coo, m, tile_rows_);
    }
    return;
  }
  const auto perm_slot = [&](std::size_t tree) -> std::vector<offset_t>* {
    if (!track_value_patching) {
      return nullptr;
    }
    leaf_of_coo_.resize(tree + 1);
    return &leaf_of_coo_[tree];
  };
  if (strategy_ == CsfStrategy::kAllMode) {
    tensors_.reserve(coo.order());
    for (std::size_t m = 0; m < coo.order(); ++m) {
      tensors_.push_back(CsfTensor::build_for_mode(coo, m, perm_slot(m)));
    }
  } else {
    // Root at the shortest mode: best compression near the root, and the
    // root-parallel kernel serves the mode that profits least from it.
    std::size_t root = 0;
    for (std::size_t m = 1; m < coo.order(); ++m) {
      if (coo.dim(m) < coo.dim(root)) {
        root = m;
      }
    }
    tensors_.push_back(CsfTensor::build_for_mode(coo, root, perm_slot(0)));
  }
}

void CsfSet::patch_values(const CooTensor& coo, cspan<offset_t> dirty) {
  AOADMM_CHECK_MSG(value_patchable(),
                   "CsfSet was not built with track_value_patching");
  AOADMM_CHECK_MSG(coo.nnz() == nnz_,
                   "patch_values: non-zero count changed; the structure is "
                   "stale — rebuild instead");
  for (std::size_t t = 0; t < tensors_.size(); ++t) {
    CsfTensor& tree = tensors_[t];
    const std::vector<offset_t>& leaf_of = leaf_of_coo_[t];
    if (dirty.empty()) {
      for (offset_t n = 0; n < nnz_; ++n) {
        tree.patch_value(leaf_of[n], coo.value(n));
      }
    } else {
      for (const offset_t n : dirty) {
        tree.patch_value(leaf_of[n], coo.value(n));
      }
    }
    // A lazily built ALTO index copied the old values; rebuild on demand.
    tree.drop_alto_index();
  }
  norm_sq_ = coo.norm_sq();
}

const CsfTensor& CsfSet::for_mode(std::size_t mode) const {
  AOADMM_CHECK_MSG(!tiled(),
                   "CsfSet holds tiled compilations; use tiled_for_mode()");
  return strategy_ == CsfStrategy::kAllMode ? tensors_.at(mode)
                                            : tensors_.at(0);
}

const TiledCsf& CsfSet::tiled_for_mode(std::size_t mode) const {
  AOADMM_CHECK_MSG(tiled(), "CsfSet was not built with tile_rows > 0");
  return tiled_.at(mode);
}

std::size_t CsfSet::storage_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const CsfTensor& t : tensors_) {
    bytes += t.storage_bytes();
  }
  for (const TiledCsf& t : tiled_) {
    bytes += t.storage_bytes();
  }
  return bytes;
}

}  // namespace aoadmm
