#include "tensor/alto.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

#include "parallel/partition.hpp"
#include "util/error.hpp"

namespace aoadmm {

namespace {

std::uint32_t bits_for_dim(index_t dim) noexcept {
  // A mode of length 1 contributes no bits (its coordinate is always 0).
  return dim <= 1 ? 0u
                  : static_cast<std::uint32_t>(
                        std::bit_width(static_cast<std::uint64_t>(dim) - 1));
}

}  // namespace

bool alto_linearizable(cspan<index_t> dims) noexcept {
  std::uint32_t total = 0;
  for (index_t d : dims) {
    total += bits_for_dim(d);
  }
  return total <= 64;
}

AltoTensor AltoTensor::build(const CsfTensor& csf) {
  const std::size_t order = csf.order();
  AOADMM_CHECK_MSG(order >= 1, "ALTO requires a non-empty tensor");
  AltoTensor t;
  t.dims_ = csf.dims();
  AOADMM_CHECK_MSG(alto_linearizable(t.dims_),
                   "mode lengths exceed 64 interleaved bits");

  t.mode_bits_.resize(order);
  for (std::size_t m = 0; m < order; ++m) {
    t.mode_bits_[m] = bits_for_dim(t.dims_[m]);
  }

  // Round-robin LSB-first bit interleaving: cycle over the modes, assigning
  // the next unassigned coordinate bit of each mode that still has bits
  // left to the next code position. Short modes exhaust early and drop out
  // of the rotation (ALTO's adaptive encoding).
  t.runs_.assign(order, {});
  {
    std::vector<std::uint32_t> assigned(order, 0);
    std::uint32_t pos = 0;
    bool any = true;
    while (any) {
      any = false;
      for (std::size_t m = 0; m < order; ++m) {
        if (assigned[m] >= t.mode_bits_[m]) {
          continue;
        }
        any = true;
        const std::uint32_t src = pos++;
        const std::uint32_t dst = assigned[m]++;
        auto& runs = t.runs_[m];
        // Extend the previous run when both positions are contiguous.
        if (!runs.empty()) {
          AltoRun& last = runs.back();
          const std::uint32_t len =
              static_cast<std::uint32_t>(std::popcount(last.mask));
          if (last.src_shift + len == src && last.dst_shift + len == dst) {
            last.mask = (last.mask << 1) | 1u;
            continue;
          }
        }
        runs.push_back(AltoRun{src, dst, 1u});
      }
    }
    t.total_bits_ = pos;
  }
  t.mode_masks_.assign(order, 0);
  for (std::size_t m = 0; m < order; ++m) {
    for (const AltoRun& r : t.runs_[m]) {
      t.mode_masks_[m] |= r.mask << r.src_shift;
    }
  }

  // Recover per-non-zero coordinates from the CSF root-to-leaf paths,
  // encode, and sort by code. The leaf order of the tree is immaterial —
  // the linearized order replaces it.
  const offset_t nnz = csf.nnz();
  std::vector<std::pair<std::uint64_t, real_t>> enc(nnz);
  {
    std::vector<index_t> coords(order, 0);
    cspan<real_t> vals = csf.vals();
    offset_t out = 0;
    const std::size_t leaf = order - 1;
    // Unrolled control: descend writing coords, emit at leaves.
    struct Frame {
      offset_t cur;
      offset_t end;
    };
    std::vector<Frame> stack(order);
    stack[0] = Frame{0, static_cast<offset_t>(csf.num_nodes(0))};
    std::size_t level = 0;
    while (true) {
      Frame& f = stack[level];
      if (f.cur == f.end) {
        if (level == 0) {
          break;
        }
        --level;
        ++stack[level].cur;
        continue;
      }
      coords[csf.level_mode(level)] = csf.fids(level)[f.cur];
      if (level == leaf) {
        enc[out] = {t.encode(coords), vals[f.cur]};
        ++out;
        ++f.cur;
        continue;
      }
      stack[level + 1] = Frame{csf.fptr(level)[f.cur], csf.fptr(level)[f.cur + 1]};
      ++level;
    }
    AOADMM_CHECK(out == nnz);
  }
  std::sort(enc.begin(), enc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  t.codes_.resize(nnz);
  t.vals_.resize(nnz);
  for (offset_t i = 0; i < nnz; ++i) {
    t.codes_[i] = enc[i].first;
    t.vals_[i] = enc[i].second;
  }
  return t;
}

std::uint64_t AltoTensor::encode(cspan<index_t> coords) const {
  AOADMM_CHECK(coords.size() == order());
  std::uint64_t code = 0;
  for (std::size_t m = 0; m < order(); ++m) {
    const std::uint64_t c = coords[m];
    for (const AltoRun& r : runs_[m]) {
      code |= ((c >> r.dst_shift) & r.mask) << r.src_shift;
    }
  }
  return code;
}

const std::vector<std::size_t>& AltoTensor::nnz_partition(
    std::size_t parts) const {
  std::lock_guard<std::mutex> lock(plans_->mu);
  auto it = plans_->nnz_partitions.find(parts);
  if (it == plans_->nnz_partitions.end()) {
    it = plans_->nnz_partitions
             .emplace(parts, even_partition(static_cast<std::size_t>(nnz()),
                                            parts))
             .first;
  }
  return it->second;
}

const MttkrpOwnerPlan& AltoTensor::owner_plan(std::size_t mode,
                                              std::size_t parts) const {
  AOADMM_CHECK(mode < order());
  AOADMM_CHECK(parts >= 1);
  std::lock_guard<std::mutex> lock(plans_->mu);
  const auto key = std::make_pair(mode, parts);
  auto it = plans_->owner_plans.find(key);
  if (it != plans_->owner_plans.end()) {
    return it->second;
  }

  MttkrpOwnerPlan plan;
  plan.level = mode;  // repurposed: target *mode* for the flat nnz stream
  plan.parts = parts;
  const std::vector<std::size_t> bounds =
      even_partition(static_cast<std::size_t>(nnz()), parts);
  plan.root_bounds = bounds;
  plan.node_bounds.assign(bounds.begin(), bounds.end());

  // A target row is "shared" when non-zeros from more than one chunk land
  // on it; those rows go through slot buffers + fixup, everything else is
  // written directly by its single owner.
  const index_t rows = dims_[mode];
  std::vector<std::int32_t> owner(rows, -1);
  std::vector<bool> shared(rows, false);
  for (std::size_t c = 0; c < parts; ++c) {
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      const index_t r = decode_mode(codes_[i], mode);
      if (owner[r] < 0) {
        owner[r] = static_cast<std::int32_t>(c);
      } else if (owner[r] != static_cast<std::int32_t>(c)) {
        shared[r] = true;
      }
    }
  }
  plan.row_slot.assign(rows, -1);
  for (index_t r = 0; r < rows; ++r) {
    if (shared[r]) {
      plan.row_slot[r] = static_cast<std::int32_t>(plan.shared_rows.size());
      plan.shared_rows.push_back(r);
    }
  }
  it = plans_->owner_plans.emplace(key, std::move(plan)).first;
  return it->second;
}

std::size_t AltoTensor::storage_bytes() const noexcept {
  std::size_t bytes = codes_.size() * sizeof(std::uint64_t) +
                      vals_.size() * sizeof(real_t);
  for (const auto& runs : runs_) {
    bytes += runs.size() * sizeof(AltoRun);
  }
  return bytes;
}

}  // namespace aoadmm
