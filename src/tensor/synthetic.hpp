// Synthetic sparse tensor generators. These stand in for the FROSTT
// datasets of the paper's evaluation (Table I): coordinates follow a Zipf
// (power-law) popularity per mode — the non-uniform distribution that
// motivates blocked ADMM (§IV.B) — and values come from a non-negative
// low-rank ground truth plus noise so factorizations converge meaningfully.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo.hpp"
#include "util/rng.hpp"

namespace aoadmm {

struct SyntheticSpec {
  /// Mode lengths (order = dims.size()).
  std::vector<index_t> dims;
  /// Target number of distinct non-zeros (post-deduplication; the generator
  /// oversamples and trims, so the result has exactly this many unless the
  /// tensor is too small to hold them).
  offset_t nnz = 0;
  /// Zipf exponent per mode (popularity skew). Empty => 1.0 for all modes;
  /// a single entry broadcasts. 0 = uniform.
  std::vector<real_t> zipf_alpha;
  /// Rank of the non-negative ground-truth model the values are sampled
  /// from. 0 => i.i.d. uniform values in (0, 1].
  rank_t true_rank = 8;
  /// Relative Gaussian noise added to model values.
  real_t noise = 0.1;
  /// Probability that a ground-truth factor entry is exactly zero — creates
  /// recoverable factor sparsity (Table II workloads).
  real_t factor_zero_prob = 0.0;
  std::uint64_t seed = 42;
};

/// Generate a synthetic tensor per `spec`. Deterministic in spec.seed.
CooTensor make_synthetic(const SyntheticSpec& spec);

/// Generate the ground-truth factors that make_synthetic would use (same
/// seed => same factors). Useful for recovery tests.
std::vector<Matrix> synthetic_ground_truth(const SyntheticSpec& spec);

/// The four FROSTT stand-ins used throughout bench/: reddit-s, nell-s,
/// amazon-s, patents-s (Table I analogues scaled to laptop size).
/// `scale` in (0, +inf) scales the non-zero counts (1.0 = defaults).
struct NamedDataset {
  std::string name;
  SyntheticSpec spec;
  /// What the stand-in models from the paper.
  std::string paper_analogue;
};
std::vector<NamedDataset> frostt_standins(real_t scale = 1.0);

/// Find a stand-in by name; throws InvalidArgument if unknown.
NamedDataset frostt_standin(const std::string& name, real_t scale = 1.0);

}  // namespace aoadmm
