#include "tensor/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace aoadmm {
namespace {

std::vector<real_t> broadcast_alpha(const SyntheticSpec& spec) {
  const std::size_t order = spec.dims.size();
  if (spec.zipf_alpha.empty()) {
    return std::vector<real_t>(order, real_t{1});
  }
  if (spec.zipf_alpha.size() == 1) {
    return std::vector<real_t>(order, spec.zipf_alpha[0]);
  }
  AOADMM_CHECK_MSG(spec.zipf_alpha.size() == order,
                   "zipf_alpha must have 0, 1, or order entries");
  return spec.zipf_alpha;
}

/// Shuffled identity map so Zipf rank-1 ("most popular") indices are spread
/// across the mode rather than clustered at 0 — matches real data where
/// popular items appear at arbitrary ids.
std::vector<index_t> shuffled_ids(index_t n, Rng& rng) {
  std::vector<index_t> ids(n);
  for (index_t i = 0; i < n; ++i) {
    ids[i] = i;
  }
  for (index_t i = n; i > 1; --i) {
    const auto j = static_cast<index_t>(rng.uniform_index(i));
    std::swap(ids[i - 1], ids[j]);
  }
  return ids;
}

}  // namespace

std::vector<Matrix> synthetic_ground_truth(const SyntheticSpec& spec) {
  AOADMM_CHECK(spec.true_rank > 0);
  Rng rng(spec.seed ^ 0x5eedfac7u);
  std::vector<Matrix> factors;
  factors.reserve(spec.dims.size());
  for (const index_t d : spec.dims) {
    Matrix a = Matrix::random_uniform(d, spec.true_rank, rng, 0.1, 1.0);
    if (spec.factor_zero_prob > 0) {
      for (auto& v : a.flat()) {
        if (rng.uniform() < spec.factor_zero_prob) {
          v = 0;
        }
      }
    }
    factors.push_back(std::move(a));
  }
  return factors;
}

CooTensor make_synthetic(const SyntheticSpec& spec) {
  const std::size_t order = spec.dims.size();
  AOADMM_CHECK_MSG(order >= 2, "synthetic tensors must have order >= 2");
  AOADMM_CHECK(spec.nnz > 0);
  offset_t capacity = 1;
  bool overflow = false;
  for (const index_t d : spec.dims) {
    if (capacity > (offset_t{1} << 62) / d) {
      overflow = true;
      break;
    }
    capacity *= d;
  }
  AOADMM_CHECK_MSG(overflow || spec.nnz <= capacity,
                   "requested nnz exceeds tensor capacity");

  const auto alphas = broadcast_alpha(spec);
  Rng rng(spec.seed);

  std::vector<ZipfSampler> samplers;
  std::vector<std::vector<index_t>> id_maps;
  samplers.reserve(order);
  id_maps.reserve(order);
  for (std::size_t m = 0; m < order; ++m) {
    samplers.emplace_back(spec.dims[m], alphas[m]);
    id_maps.push_back(shuffled_ids(spec.dims[m], rng));
  }

  std::vector<Matrix> truth;
  if (spec.true_rank > 0) {
    truth = synthetic_ground_truth(spec);
  }

  CooTensor out(spec.dims);
  out.reserve(spec.nnz + spec.nnz / 8);
  std::vector<index_t> coord(order);

  // Oversample, deduplicate, repeat until the target count is reached.
  offset_t have = 0;
  int rounds = 0;
  while (have < spec.nnz && rounds < 64) {
    const offset_t want = spec.nnz - have;
    const offset_t batch = want + want / 8 + 16;
    for (offset_t n = 0; n < batch; ++n) {
      for (std::size_t m = 0; m < order; ++m) {
        coord[m] = id_maps[m][samplers[m](rng)];
      }
      out.add(coord, real_t{1});
    }
    // deduplicate() sums duplicate coordinates; the placeholder values are
    // discarded below, so the summing is harmless.
    out.deduplicate();
    have = out.nnz();
    ++rounds;
  }

  // Assign final values in one deterministic pass over the distinct
  // coordinates (duplicate draws above must not inflate values).
  for (offset_t n = 0; n < out.nnz(); ++n) {
    real_t value;
    if (spec.true_rank > 0) {
      real_t model = 0;
      for (rank_t c = 0; c < spec.true_rank; ++c) {
        real_t prod = 1;
        for (std::size_t m = 0; m < order; ++m) {
          prod *= truth[m](out.index(m, n), c);
        }
        model += prod;
      }
      value = model;
      if (spec.noise > 0) {
        value += spec.noise * std::abs(model) * rng.normal();
      }
      // Keep values strictly positive so non-negative factorizations have
      // signal; real rating/count tensors are positive too.
      value = std::max(value, real_t{1e-6});
    } else {
      value = std::max(rng.uniform(), real_t{1e-12});
    }
    out.value(n) = value;
  }

  // Trim any overshoot deterministically (keep the lexicographically first
  // spec.nnz entries; the set is already effectively random).
  if (out.nnz() > spec.nnz) {
    CooTensor trimmed(spec.dims);
    trimmed.reserve(spec.nnz);
    std::vector<index_t> c(order);
    for (offset_t n = 0; n < spec.nnz; ++n) {
      for (std::size_t m = 0; m < order; ++m) {
        c[m] = out.index(m, n);
      }
      trimmed.add(c, out.value(n));
    }
    return trimmed;
  }
  return out;
}

std::vector<NamedDataset> frostt_standins(real_t scale) {
  AOADMM_CHECK(scale > 0);
  // `scale` multiplies BOTH the mode lengths and the non-zero count, so the
  // nnz-per-row ratio — which decides whether MTTKRP or ADMM dominates
  // (paper Fig. 3) — is scale-invariant.
  const auto n = [scale](offset_t base) {
    return static_cast<offset_t>(std::max<real_t>(1, std::round(
        static_cast<real_t>(base) * scale)));
  };
  const auto dim = [scale](index_t base, index_t floor) {
    const auto scaled = static_cast<index_t>(std::max<real_t>(
        1, std::round(static_cast<real_t>(base) * scale)));
    return std::max(scaled, floor);
  };

  std::vector<NamedDataset> sets;

  // Reddit: 310K x 6K x 510K, 95M nnz — user x community x word, strongly
  // skewed users/words. nnz/Σdims tuned so MTTKRP and ADMM are roughly
  // balanced (the paper's middle case).
  {
    NamedDataset d;
    d.name = "reddit-s";
    d.paper_analogue = "Reddit (user x community x word, 95M nnz)";
    d.spec.dims = {dim(12000, 64), dim(400, 16), dim(20000, 64)};
    d.spec.nnz = n(1800000);
    d.spec.zipf_alpha = {1.1, 0.8, 1.1};
    d.spec.true_rank = 16;
    d.spec.noise = 0.25;
    d.spec.seed = 1001;
    sets.push_back(std::move(d));
  }

  // NELL: 3M x 2M x 25M, 143M nnz — extremely sparse with very long modes;
  // the ADMM-dominated dataset (paper Fig. 3): few nnz per row.
  {
    NamedDataset d;
    d.name = "nell-s";
    d.paper_analogue = "NELL (noun x verb x noun, 143M nnz, hypersparse)";
    d.spec.dims = {dim(40000, 64), dim(30000, 64), dim(120000, 64)};
    d.spec.nnz = n(760000);
    d.spec.zipf_alpha = {1.0, 1.0, 1.0};
    d.spec.true_rank = 16;
    d.spec.noise = 0.25;
    d.spec.seed = 1002;
    sets.push_back(std::move(d));
  }

  // Amazon: 5M x 18M x 2M, 1.7B nnz — MTTKRP-dominated (many nnz per row).
  // Exhibits recoverable factor sparsity (Table II).
  {
    NamedDataset d;
    d.name = "amazon-s";
    d.paper_analogue = "Amazon (user x item x word, 1.7B nnz)";
    d.spec.dims = {dim(8000, 64), dim(25000, 64), dim(4000, 64)};
    d.spec.nnz = n(2500000);
    d.spec.zipf_alpha = {0.9, 1.2, 0.9};
    d.spec.true_rank = 16;
    d.spec.noise = 0.25;
    d.spec.factor_zero_prob = 0.5;
    d.spec.seed = 1003;
    sets.push_back(std::move(d));
  }

  // Patents: 46 x 240K x 240K, 3.5B nnz — one tiny mode, very dense slices;
  // the most MTTKRP-bound dataset (paper: nnz/Σdims ≈ 6650; here ≈ 50,
  // enough to preserve MTTKRP dominance at the scaled rank).
  {
    NamedDataset d;
    d.name = "patents-s";
    d.paper_analogue = "Patents (year x word x word, 3.5B nnz, dense slices)";
    d.spec.dims = {dim(46, 12), dim(12000, 64), dim(12000, 64)};
    d.spec.nnz = n(4800000);
    d.spec.zipf_alpha = {0.3, 1.0, 1.0};
    d.spec.true_rank = 16;
    d.spec.noise = 0.25;
    d.spec.seed = 1004;
    sets.push_back(std::move(d));
  }

  return sets;
}

NamedDataset frostt_standin(const std::string& name, real_t scale) {
  for (auto& d : frostt_standins(scale)) {
    if (d.name == name) {
      return d;
    }
  }
  throw InvalidArgument("unknown dataset stand-in: " + name +
                        " (expected reddit-s|nell-s|amazon-s|patents-s)");
}

}  // namespace aoadmm
