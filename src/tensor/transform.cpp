#include "tensor/transform.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aoadmm {

CooTensor permute_modes(const CooTensor& x, cspan<std::size_t> perm) {
  AOADMM_CHECK_MSG(perm.size() == x.order(), "permutation arity mismatch");
  {
    std::vector<std::size_t> check(perm.begin(), perm.end());
    std::sort(check.begin(), check.end());
    for (std::size_t m = 0; m < check.size(); ++m) {
      AOADMM_CHECK_MSG(check[m] == m, "not a permutation");
    }
  }
  std::vector<index_t> dims(x.order());
  for (std::size_t m = 0; m < x.order(); ++m) {
    dims[m] = x.dim(perm[m]);
  }
  CooTensor out(dims);
  out.reserve(x.nnz());
  std::vector<index_t> coord(x.order());
  for (offset_t n = 0; n < x.nnz(); ++n) {
    for (std::size_t m = 0; m < x.order(); ++m) {
      coord[m] = x.index(perm[m], n);
    }
    out.add(coord, x.value(n));
  }
  return out;
}

CooTensor extract_slice(const CooTensor& x, std::size_t mode, index_t index) {
  AOADMM_CHECK(mode < x.order());
  AOADMM_CHECK(index < x.dim(mode));
  AOADMM_CHECK_MSG(x.order() >= 2, "cannot slice an order-1 tensor");
  std::vector<index_t> dims;
  for (std::size_t m = 0; m < x.order(); ++m) {
    if (m != mode) {
      dims.push_back(x.dim(m));
    }
  }
  CooTensor out(dims);
  std::vector<index_t> coord(dims.size());
  for (offset_t n = 0; n < x.nnz(); ++n) {
    if (x.index(mode, n) != index) {
      continue;
    }
    std::size_t k = 0;
    for (std::size_t m = 0; m < x.order(); ++m) {
      if (m != mode) {
        coord[k++] = x.index(m, n);
      }
    }
    out.add(coord, x.value(n));
  }
  return out;
}

void map_values(CooTensor& x, const std::function<real_t(real_t)>& f) {
  for (auto& v : x.values()) {
    v = f(v);
  }
}

CooTensor filter(const CooTensor& x,
                 const std::function<bool(cspan<index_t>, real_t)>& pred) {
  CooTensor out(x.dims());
  std::vector<index_t> coord(x.order());
  for (offset_t n = 0; n < x.nnz(); ++n) {
    for (std::size_t m = 0; m < x.order(); ++m) {
      coord[m] = x.index(m, n);
    }
    if (pred(coord, x.value(n))) {
      out.add(coord, x.value(n));
    }
  }
  return out;
}

TrainTestSplit split_train_test(const CooTensor& x, real_t test_fraction,
                                Rng& rng) {
  AOADMM_CHECK_MSG(test_fraction >= 0 && test_fraction <= 1,
                   "test_fraction must be in [0, 1]");
  TrainTestSplit split{CooTensor(x.dims()), CooTensor(x.dims())};
  std::vector<index_t> coord(x.order());
  for (offset_t n = 0; n < x.nnz(); ++n) {
    for (std::size_t m = 0; m < x.order(); ++m) {
      coord[m] = x.index(m, n);
    }
    CooTensor& dst =
        rng.uniform() < test_fraction ? split.test : split.train;
    dst.add(coord, x.value(n));
  }
  return split;
}

}  // namespace aoadmm
