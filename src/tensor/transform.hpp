// Structural transformations of COO tensors: mode permutation, slice
// extraction, value maps, filtering, and random non-zero holdout splits
// (the standard protocol for evaluating factorizations on held-out data).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "tensor/coo.hpp"
#include "util/rng.hpp"

namespace aoadmm {

/// Reorder the modes: result mode m is input mode perm[m]. perm must be a
/// permutation of 0..order-1.
CooTensor permute_modes(const CooTensor& x, cspan<std::size_t> perm);

/// The order-1 slice x(..., index, ...) obtained by fixing `mode` at
/// `index`: an (order-1)-mode tensor over the remaining modes (in their
/// original relative order). Requires order >= 2. Fails for order-2 inputs
/// producing order-1 outputs? No — order-1 tensors are valid CooTensors.
CooTensor extract_slice(const CooTensor& x, std::size_t mode, index_t index);

/// Apply `f` to every stored value in place.
void map_values(CooTensor& x, const std::function<real_t(real_t)>& f);

/// Keep only the non-zeros for which `pred(coord, value)` is true.
CooTensor filter(const CooTensor& x,
                 const std::function<bool(cspan<index_t>, real_t)>& pred);

/// Random holdout split: each non-zero lands in `test` with probability
/// `test_fraction`, else in `train`. Both tensors keep the full dims (so
/// factor shapes match). Deterministic in rng state.
struct TrainTestSplit {
  CooTensor train;
  CooTensor test;
};
TrainTestSplit split_train_test(const CooTensor& x, real_t test_fraction,
                                Rng& rng);

}  // namespace aoadmm
