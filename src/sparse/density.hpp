// Density measurement of factor matrices — drives the dynamic decision of
// when to mirror a factor into a compressed format (paper §V.E: "a factor
// can be gainfully treated as sparse when its density falls below 20%").
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

struct DensityStats {
  offset_t nnz = 0;
  /// nnz / (rows*cols).
  real_t density = 0;
  /// Non-zeros per column — the hybrid format sorts on this.
  std::vector<offset_t> column_nnz;
  /// Number of columns whose nnz exceeds the mean column nnz (the paper's
  /// definition of a "dense" column).
  std::size_t dense_columns = 0;
};

/// One parallel pass over the matrix. Entries with |v| <= tol count as zero.
DensityStats measure_density(const Matrix& a, real_t tol = 0);

}  // namespace aoadmm
