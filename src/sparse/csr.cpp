#include "sparse/csr.hpp"

#include <cmath>

namespace aoadmm {

CsrMatrix CsrMatrix::from_dense(const Matrix& a, real_t tol) {
  CsrMatrix out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();
  out.row_ptr_.resize(a.rows() + 1);

  offset_t count = 0;
  out.row_ptr_[0] = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const real_t* __restrict row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::abs(row[j]) > tol) {
        ++count;
      }
    }
    out.row_ptr_[i + 1] = count;
  }

  out.col_idx_.resize(count);
  out.vals_.resize(count);
  offset_t pos = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const real_t* __restrict row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::abs(row[j]) > tol) {
        out.col_idx_[pos] = static_cast<index_t>(j);
        out.vals_[pos] = row[j];
        ++pos;
      }
    }
  }
  return out;
}

real_t CsrMatrix::density() const noexcept {
  const std::size_t total = rows_ * cols_;
  return total == 0 ? real_t{0}
                    : static_cast<real_t>(nnz()) / static_cast<real_t>(total);
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto [cols, vals] = row(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out(i, cols[k]) = vals[k];
    }
  }
  return out;
}

std::size_t CsrMatrix::storage_bytes() const noexcept {
  return row_ptr_.size() * sizeof(offset_t) +
         col_idx_.size() * sizeof(index_t) + vals_.size() * sizeof(real_t);
}

}  // namespace aoadmm
