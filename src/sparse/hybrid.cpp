#include "sparse/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace aoadmm {

HybridMatrix HybridMatrix::from_dense(const Matrix& a, real_t tol) {
  return from_dense(a, measure_density(a, tol), tol);
}

HybridMatrix HybridMatrix::from_dense(const Matrix& a,
                                      const DensityStats& stats, real_t tol) {
  AOADMM_CHECK(stats.column_nnz.size() == a.cols());
  HybridMatrix out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();

  // Sort columns by nnz, densest first; "dense" = above the column mean
  // (paper's definition). At least one dense column is kept when the matrix
  // has any non-zero so the panel path is always exercised.
  std::vector<index_t> order(a.cols());
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return stats.column_nnz[x] > stats.column_nnz[y];
  });

  const real_t mean_col =
      a.cols() > 0 ? static_cast<real_t>(stats.nnz) /
                         static_cast<real_t>(a.cols())
                   : real_t{0};
  std::size_t ndense = 0;
  for (const index_t col : order) {
    if (static_cast<real_t>(stats.column_nnz[col]) > mean_col) {
      ++ndense;
    }
  }
  if (ndense == 0 && stats.nnz > 0) {
    ndense = 1;
  }
  out.dense_cols_.assign(order.begin(), order.begin() + ndense);

  // Dense panel: contiguous rows of the chosen columns.
  out.panel_.assign(out.rows_ * ndense, real_t{0});
  for (std::size_t i = 0; i < out.rows_; ++i) {
    real_t* __restrict p = out.panel_.data() + i * ndense;
    for (std::size_t d = 0; d < ndense; ++d) {
      p[d] = a(i, out.dense_cols_[d]);
    }
  }

  // CSR tail over the remaining (sparse) columns, keeping original ids.
  std::vector<bool> is_dense(a.cols(), false);
  for (const index_t c : out.dense_cols_) {
    is_dense[c] = true;
  }
  out.csr_row_ptr_.resize(out.rows_ + 1);
  out.csr_row_ptr_[0] = 0;
  offset_t count = 0;
  for (std::size_t i = 0; i < out.rows_; ++i) {
    const real_t* __restrict row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!is_dense[j] && std::abs(row[j]) > tol) {
        ++count;
      }
    }
    out.csr_row_ptr_[i + 1] = count;
  }
  out.csr_col_idx_.resize(count);
  out.csr_vals_.resize(count);
  offset_t pos = 0;
  for (std::size_t i = 0; i < out.rows_; ++i) {
    const real_t* __restrict row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!is_dense[j] && std::abs(row[j]) > tol) {
        out.csr_col_idx_[pos] = static_cast<index_t>(j);
        out.csr_vals_[pos] = row[j];
        ++pos;
      }
    }
  }
  return out;
}

Matrix HybridMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  const std::size_t ndense = dense_cols_.size();
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto panel = dense_row(i);
    for (std::size_t d = 0; d < ndense; ++d) {
      out(i, dense_cols_[d]) = panel[d];
    }
    const auto [cols, vals] = csr_row(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out(i, cols[k]) = vals[k];
    }
  }
  return out;
}

std::size_t HybridMatrix::storage_bytes() const noexcept {
  return dense_cols_.size() * sizeof(index_t) +
         panel_.size() * sizeof(real_t) +
         csr_row_ptr_.size() * sizeof(offset_t) +
         csr_col_idx_.size() * sizeof(index_t) +
         csr_vals_.size() * sizeof(real_t);
}

}  // namespace aoadmm
