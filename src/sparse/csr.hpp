// Compressed sparse row storage for *factor matrices* (paper §IV.C). Unlike
// the tensor, factor sparsity evolves dynamically: a CSR mirror is rebuilt
// from the dense factor whenever its density drops below the exploitation
// threshold, so construction is a single O(I·F) pass.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "la/matrix.hpp"
#include "util/types.hpp"

namespace aoadmm {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compress `a`, treating entries with |value| <= tol as zero (prox
  /// operators produce exact zeros, so tol defaults to 0).
  static CsrMatrix from_dense(const Matrix& a, real_t tol = 0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  offset_t nnz() const noexcept { return vals_.size(); }

  cspan<offset_t> row_ptr() const noexcept { return row_ptr_; }
  cspan<index_t> col_idx() const noexcept { return col_idx_; }
  cspan<real_t> values() const noexcept { return vals_; }

  /// Column indices and values of row i.
  std::pair<cspan<index_t>, cspan<real_t>> row(std::size_t i) const noexcept {
    const offset_t lo = row_ptr_[i];
    const offset_t hi = row_ptr_[i + 1];
    return {cspan<index_t>{col_idx_.data() + lo, hi - lo},
            cspan<real_t>{vals_.data() + lo, hi - lo}};
  }

  /// nnz / (rows * cols); 0 for an empty matrix.
  real_t density() const noexcept;

  Matrix to_dense() const;

  std::size_t storage_bytes() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<offset_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<real_t> vals_;
};

}  // namespace aoadmm
