// Hybrid dense + CSR factor storage (paper §IV.C). Factor sparsity is
// non-uniform: a few columns are mostly dense while the rest hold a handful
// of non-zeros. The hybrid format sorts columns by non-zero count, keeps the
// "dense" columns (nnz above the column mean) in a contiguous dense panel,
// and compresses the tail into CSR. During MTTKRP the CSR row is prefetched
// while the dense panel is being computed, hiding the extra latency CSR
// incurs (row-length indirection).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "la/matrix.hpp"
#include "sparse/density.hpp"
#include "util/types.hpp"

namespace aoadmm {

class HybridMatrix {
 public:
  HybridMatrix() = default;

  /// Build from a dense factor. `stats` must come from measure_density(a)
  /// with the same tolerance (the overload without stats measures itself).
  static HybridMatrix from_dense(const Matrix& a, const DensityStats& stats,
                                 real_t tol = 0);
  static HybridMatrix from_dense(const Matrix& a, real_t tol = 0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t num_dense_cols() const noexcept { return dense_cols_.size(); }
  offset_t csr_nnz() const noexcept { return csr_vals_.size(); }

  /// Original column ids of the dense panel, in panel order.
  cspan<index_t> dense_cols() const noexcept { return dense_cols_; }

  /// Row i of the dense panel (num_dense_cols entries, panel order).
  cspan<real_t> dense_row(std::size_t i) const noexcept {
    return {panel_.data() + i * dense_cols_.size(), dense_cols_.size()};
  }

  /// CSR tail of row i: (original column ids, values).
  std::pair<cspan<index_t>, cspan<real_t>> csr_row(
      std::size_t i) const noexcept {
    const offset_t lo = csr_row_ptr_[i];
    const offset_t hi = csr_row_ptr_[i + 1];
    return {cspan<index_t>{csr_col_idx_.data() + lo, hi - lo},
            cspan<real_t>{csr_vals_.data() + lo, hi - lo}};
  }

  /// Issue software prefetches for row i's CSR structures (row pointer
  /// indirection is the latency cost the dense panel hides).
  void prefetch_row(std::size_t i) const noexcept {
    __builtin_prefetch(&csr_row_ptr_[i], 0, 1);
    const offset_t lo = csr_row_ptr_[i];
    __builtin_prefetch(csr_col_idx_.data() + lo, 0, 1);
    __builtin_prefetch(csr_vals_.data() + lo, 0, 1);
  }

  Matrix to_dense() const;

  std::size_t storage_bytes() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<index_t> dense_cols_;  // original ids, sorted by nnz desc
  std::vector<real_t, AlignedAllocator<real_t>> panel_;  // rows_ x |dense_cols_|
  std::vector<offset_t> csr_row_ptr_;
  std::vector<index_t> csr_col_idx_;  // original column ids
  std::vector<real_t> csr_vals_;
};

}  // namespace aoadmm
