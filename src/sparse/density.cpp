#include "sparse/density.hpp"

#include <cmath>

namespace aoadmm {

DensityStats measure_density(const Matrix& a, real_t tol) {
  DensityStats stats;
  stats.column_nnz.assign(a.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const real_t* __restrict row = a.data() + i * a.cols();
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::abs(row[j]) > tol) {
        ++stats.column_nnz[j];
      }
    }
  }
  for (const offset_t c : stats.column_nnz) {
    stats.nnz += c;
  }
  const std::size_t total = a.rows() * a.cols();
  stats.density = total == 0 ? real_t{0}
                             : static_cast<real_t>(stats.nnz) /
                                   static_cast<real_t>(total);
  if (a.cols() > 0) {
    const real_t mean_col =
        static_cast<real_t>(stats.nnz) / static_cast<real_t>(a.cols());
    for (const offset_t c : stats.column_nnz) {
      if (static_cast<real_t>(c) > mean_col) {
        ++stats.dense_columns;
      }
    }
  }
  return stats;
}

}  // namespace aoadmm
