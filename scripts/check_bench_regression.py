#!/usr/bin/env python3
"""Compare google-benchmark JSON runs against committed baselines.

Usage:
    check_bench_regression.py --baseline BENCH_baseline.json \
        --current bench_out.json [--threshold 1.25] [--update]

--baseline/--current may be repeated to gate several suites in one
invocation (pairs match positionally; benchmark names are merged across
files, so suites must not share benchmark names):

    check_bench_regression.py \
        --baseline BENCH_baseline.json --current /tmp/micro.json \
        --baseline BENCH_stream_baseline.json --current /tmp/stream.json

For every benchmark present in both sides, computes

    ratio = current_time / baseline_time

after normalizing both sides to nanoseconds and, when a benchmark was run
with repetitions, taking the *median* aggregate (falling back to the raw
entry when no aggregates exist). Exits non-zero when any ratio exceeds the
threshold (default 1.25, i.e. a >25% per-kernel slowdown).

Benchmarks present in only one file are reported as warnings, never
failures: a freshly added kernel must not fail CI for lacking history, and
a renamed kernel should fail review, not the build. --update rewrites the
baseline from the current run (commit the result deliberately).

Absolute wall-clock times on shared CI runners are noisy; a *ratio* of two
runs taken minutes apart on the same machine is far more stable, which is
why the harness compares same-machine pairs instead of pinning absolute
numbers. Do not run this under sanitizers — instrumentation skews kernels
unevenly and the ratios stop meaning anything.
"""

import argparse
import json
import shutil
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """Map benchmark name -> representative real_time in nanoseconds."""
    with open(path) as f:
        data = json.load(f)
    raw = {}
    medians = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        unit = TIME_UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None:
            print(f"warning: {path}: unknown time_unit in {b.get('name')}; "
                  "skipped", file=sys.stderr)
            continue
        time_ns = float(b["real_time"]) * unit
        if b.get("run_type") == "aggregate":
            medians[b["run_name"]] = time_ns
        else:
            raw[b["name"]] = time_ns
    # Median aggregates (from --benchmark_repetitions) win over raw entries.
    raw.update(medians)
    return raw


def merge_times(paths):
    """Merged name -> time map across several files; duplicates are errors
    (two suites gating the same name would silently shadow each other)."""
    merged = {}
    for path in paths:
        times = load_times(path)
        for name in set(times) & set(merged):
            print(f"error: benchmark '{name}' appears in more than one file "
                  f"(last: {path})", file=sys.stderr)
            sys.exit(2)
        merged.update(times)
    return merged


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, action="append",
                    help="committed baseline JSON; repeatable, pairs "
                         "positionally with --current")
    ap.add_argument("--current", required=True, action="append",
                    help="fresh benchmark JSON; repeatable")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current/baseline exceeds this "
                         "(default: 1.25)")
    ap.add_argument("--update", action="store_true",
                    help="overwrite each baseline with its current run")
    args = ap.parse_args()

    if len(args.baseline) != len(args.current):
        print("error: --baseline and --current must be given the same "
              "number of times", file=sys.stderr)
        return 2

    if args.update:
        for base_path, cur_path in zip(args.baseline, args.current):
            shutil.copyfile(cur_path, base_path)
            print(f"baseline {base_path} updated from {cur_path}")
        return 0

    baseline = merge_times(args.baseline)
    current = merge_times(args.current)

    for name in sorted(set(baseline) - set(current)):
        print(f"warning: '{name}' is in the baseline but was not run",
              file=sys.stderr)
    for name in sorted(set(current) - set(baseline)):
        print(f"warning: '{name}' has no baseline entry (new benchmark?); "
              "re-baseline with --update", file=sys.stderr)

    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no benchmarks in common between baseline and current",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in common:
        base_ns, cur_ns = baseline[name], current[name]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = "  <-- REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<{width}}  {base_ns:>10.0f}ns  {cur_ns:>10.0f}ns  "
              f"{ratio:5.2f}x{flag}")
        if ratio > args.threshold:
            regressions.append((name, ratio))

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nall {len(common)} benchmarks within {args.threshold:.2f}x "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
