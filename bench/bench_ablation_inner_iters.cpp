// Ablation: the ADMM inner-iteration budget. Algorithm 1's inner loop runs
// "until r < eps and s < eps" with an implementation cap; the cap trades
// per-outer-iteration cost against subproblem accuracy (and thus outer
// convergence). The paper does not sweep this knob explicitly — this
// harness makes the trade-off measurable.
#include <cstdio>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Ablation — ADMM inner-iteration cap",
               "rank-scaled non-negative CPD; fixed 10 outer iterations; "
               "quality/time vs inner budget");

  const unsigned caps[] = {1, 2, 5, 10, 25, 50};
  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};

  TablePrinter table({"Dataset", "inner cap", "time(s)", "final err",
                      "row-iters"},
                     {12, 11, 10, 12, 14});
  table.print_header();

  for (const std::string name : {"reddit-s", "patents-s"}) {
    const CsfSet& csf = DatasetCache::instance().csf(name);
    for (const unsigned cap : caps) {
      CpdOptions opts = default_cpd_options();
      opts.max_outer_iterations = bench_max_outer(10);
      opts.tolerance = 0;
      opts.admm.max_iterations = cap;
      const CpdResult r = cpd_aoadmm(csf, opts, {&nonneg, 1});
      table.print_row({name, std::to_string(cap),
                       TablePrinter::fmt(r.times.total_seconds, 3),
                       TablePrinter::fmt(r.relative_error, 6),
                       std::to_string(r.total_row_iterations)});
    }
  }

  std::printf("\nexpectation: a handful of inner iterations reaches almost "
              "the accuracy of 50 at a fraction of the time (AO-ADMM's "
              "warm-started inner problems converge fast).\n");
  return 0;
}
