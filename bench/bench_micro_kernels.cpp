// Kernel-level microbenchmarks on google-benchmark: MTTKRP variants, the
// ADMM inner step, and the dense-LA primitives that make up ADMM. These
// complement the paper-table harnesses by exposing each kernel in
// isolation.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "common.hpp"

#include "core/admm.hpp"
#include "core/loss.hpp"
#include "core/loss_solve.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "mttkrp/mttkrp.hpp"
#include "parallel/runtime.hpp"
#include "tensor/synthetic.hpp"
#include "util/rng.hpp"

namespace aoadmm {
namespace {

SyntheticSpec micro_tensor_spec() {
  SyntheticSpec spec;
  spec.dims = {4000, 3000, 6000};
  spec.nnz = 150000;
  spec.true_rank = 4;
  spec.zipf_alpha = {1.0};
  spec.seed = 7;
  return spec;
}

const CooTensor& micro_tensor() {
  bench::install_metrics_sidecar();  // micro benches bypass DatasetCache
  static const CooTensor x = make_synthetic(micro_tensor_spec());
  return x;
}

const CsfTensor& micro_csf() {
  static const CsfTensor csf = CsfTensor::build_for_mode(micro_tensor(), 0);
  return csf;
}

std::vector<Matrix> micro_factors(rank_t rank, real_t zero_prob = 0) {
  Rng rng(11);
  std::vector<Matrix> out;
  for (const index_t d : micro_tensor().dims()) {
    Matrix m = Matrix::random_uniform(d, rank, rng, 0.1, 1.0);
    if (zero_prob > 0) {
      for (auto& v : m.flat()) {
        if (rng.uniform() < zero_prob) {
          v = 0;
        }
      }
    }
    out.push_back(std::move(m));
  }
  return out;
}

void BM_MttkrpCsfDense(benchmark::State& state) {
  const auto rank = static_cast<rank_t>(state.range(0));
  const auto factors = micro_factors(rank);
  Matrix out;
  for (auto _ : state) {
    mttkrp_csf(micro_csf(), factors, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(micro_tensor().nnz()));
}
BENCHMARK(BM_MttkrpCsfDense)->Arg(16)->Arg(64);

void BM_MttkrpCsfCsr(benchmark::State& state) {
  const auto rank = static_cast<rank_t>(state.range(0));
  auto factors = micro_factors(rank, 0.9);
  const std::size_t leaf_mode = micro_csf().level_mode(2);
  const CsrMatrix leaf = CsrMatrix::from_dense(factors[leaf_mode]);
  Matrix out;
  for (auto _ : state) {
    mttkrp_csf_csr(micro_csf(), factors, leaf, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(micro_tensor().nnz()));
}
BENCHMARK(BM_MttkrpCsfCsr)->Arg(16)->Arg(64);

void BM_MttkrpCsfHybrid(benchmark::State& state) {
  const auto rank = static_cast<rank_t>(state.range(0));
  auto factors = micro_factors(rank, 0.9);
  const std::size_t leaf_mode = micro_csf().level_mode(2);
  const HybridMatrix leaf = HybridMatrix::from_dense(factors[leaf_mode]);
  Matrix out;
  for (auto _ : state) {
    mttkrp_csf_hybrid(micro_csf(), factors, leaf, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(micro_tensor().nnz()));
}
BENCHMARK(BM_MttkrpCsfHybrid)->Arg(16)->Arg(64);

// -----------------------------------------------------------------------
// The paper's sparse-factor wins are a MEMORY-BOUND effect: its Amazon
// factor is ~28 GB-touched per MTTKRP, far beyond LLC. This pair
// reproduces that regime with a long leaf mode whose factor (~200 MB at
// rank 64) cannot be cache resident, accessed in random order.
// -----------------------------------------------------------------------

struct MemoryBoundSetup {
  CooTensor coo{std::vector<index_t>{512, 256, 400000}};
  CsfTensor csf;
  std::vector<Matrix> factors;
  CsrMatrix leaf_csr;

  MemoryBoundSetup() {
    Rng rng(99);
    coo.reserve(1200000);
    std::vector<index_t> c(3);
    for (int n = 0; n < 1200000; ++n) {
      c[0] = static_cast<index_t>(rng.uniform_index(512));
      c[1] = static_cast<index_t>(rng.uniform_index(256));
      c[2] = static_cast<index_t>(rng.uniform_index(400000));
      coo.add(c, rng.uniform(0.1, 1.0));
    }
    coo.deduplicate();
    csf = CsfTensor::build_for_mode(coo, 0);
    for (const index_t d : coo.dims()) {
      Matrix m = Matrix::random_uniform(d, 64, rng, 0.1, 1.0);
      factors.push_back(std::move(m));
    }
    // Sparsify the long leaf factor to 10% density.
    Matrix& leaf = factors[csf.level_mode(2)];
    for (auto& v : leaf.flat()) {
      if (rng.uniform() < 0.9) {
        v = 0;
      }
    }
    leaf_csr = CsrMatrix::from_dense(leaf);
  }

  static const MemoryBoundSetup& instance() {
    static const MemoryBoundSetup s;
    return s;
  }
};

void BM_MttkrpMemoryBoundDense(benchmark::State& state) {
  const auto& s = MemoryBoundSetup::instance();
  Matrix out;
  for (auto _ : state) {
    mttkrp_csf(s.csf, s.factors, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.coo.nnz()));
}
BENCHMARK(BM_MttkrpMemoryBoundDense)->Unit(benchmark::kMillisecond);

void BM_MttkrpMemoryBoundCsr(benchmark::State& state) {
  const auto& s = MemoryBoundSetup::instance();
  Matrix out;
  for (auto _ : state) {
    mttkrp_csf_csr(s.csf, s.factors, s.leaf_csr, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.coo.nnz()));
}
BENCHMARK(BM_MttkrpMemoryBoundCsr)->Unit(benchmark::kMillisecond);

// Tiling pays when leaf rows are REUSED: each tile pass then serves many
// accesses from a cache-resident slab. (With reuse ~1 — the CSR setup
// above — fiber fragmentation outweighs locality and tiling loses; that
// boundary is exactly why SPLATT exposes tiling as an option.) This setup
// has ~19 accesses per leaf row and a 67 MB leaf factor.
struct TiledSetup {
  CooTensor coo{std::vector<index_t>{256, 128, 131072}};
  std::vector<Matrix> factors;

  TiledSetup() {
    Rng rng(101);
    coo.reserve(2500000);
    std::vector<index_t> c(3);
    for (int n = 0; n < 2500000; ++n) {
      c[0] = static_cast<index_t>(rng.uniform_index(256));
      c[1] = static_cast<index_t>(rng.uniform_index(128));
      c[2] = static_cast<index_t>(rng.uniform_index(131072));
      coo.add(c, rng.uniform(0.1, 1.0));
    }
    coo.deduplicate();
    for (const index_t d : coo.dims()) {
      factors.push_back(Matrix::random_uniform(d, 64, rng, 0.1, 1.0));
    }
  }

  static const TiledSetup& instance() {
    static const TiledSetup s;
    return s;
  }
};

void BM_MttkrpMemoryBoundTiled(benchmark::State& state) {
  const auto& s = TiledSetup::instance();
  const auto tile_rows = static_cast<index_t>(state.range(0));
  const TiledCsf tiled(s.coo, 0, tile_rows);  // 0 = single tile (untiled)
  Matrix out;
  for (auto _ : state) {
    mttkrp_tiled(tiled, s.factors, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.coo.nnz()));
}
BENCHMARK(BM_MttkrpMemoryBoundTiled)
    ->Arg(0)
    ->Arg(8192)
    ->Arg(32768)
    ->Unit(benchmark::kMillisecond);

// -----------------------------------------------------------------------
// Non-root scatter strategies (the atomic-free MTTKRP work): one power-law
// order-3 tensor, one tree rooted at mode 0, target mode 1, and the three
// scatter policies head to head. AOADMM_BENCH_NONROOT_NNZ scales the
// tensor (default 1M non-zeros; the committed speedup numbers use 5M).
// -----------------------------------------------------------------------

struct NonRootSetup {
  CooTensor coo;
  CsfTensor csf;
  std::vector<Matrix> factors;

  NonRootSetup() {
    SyntheticSpec spec;
    spec.dims = {3000, 40000, 5000};
    spec.nnz = 1000000;
    if (const char* env = std::getenv("AOADMM_BENCH_NONROOT_NNZ")) {
      spec.nnz = static_cast<offset_t>(std::strtoull(env, nullptr, 10));
    }
    spec.zipf_alpha = {1.1};  // power-law slice sizes: the imbalanced case
    spec.true_rank = 4;
    spec.seed = 1234;
    coo = make_synthetic(spec);
    csf = CsfTensor::build_for_mode(coo, 0);
    Rng rng(55);
    for (const index_t d : coo.dims()) {
      factors.push_back(Matrix::random_uniform(d, 32, rng, 0.1, 1.0));
    }
  }

  static const NonRootSetup& instance() {
    static const NonRootSetup s;
    return s;
  }
};

void run_nonroot(benchmark::State& state, MttkrpSchedule schedule) {
  const auto& s = NonRootSetup::instance();
  const int threads = static_cast<int>(state.range(0));
  const int saved = max_threads();
  set_num_threads(threads);
  Matrix out;
  for (auto _ : state) {
    mttkrp_csf_nonroot(s.csf, s.factors, 1, out, schedule);
    benchmark::DoNotOptimize(out.data());
  }
  set_num_threads(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.coo.nnz()));
}

void BM_MttkrpNonRootAtomic(benchmark::State& state) {
  run_nonroot(state, MttkrpSchedule::kDynamic);
}
BENCHMARK(BM_MttkrpNonRootAtomic)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MttkrpNonRootPrivatized(benchmark::State& state) {
  run_nonroot(state, MttkrpSchedule::kWeighted);
}
BENCHMARK(BM_MttkrpNonRootPrivatized)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MttkrpNonRootOwner(benchmark::State& state) {
  run_nonroot(state, MttkrpSchedule::kOwner);
}
BENCHMARK(BM_MttkrpNonRootOwner)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Root kernel: weighted static chunks vs. the legacy dynamic loop on the
// same power-law tensor (the nnz-weighted scheduling half of the work).
void BM_MttkrpRootSchedule(benchmark::State& state) {
  const auto& s = NonRootSetup::instance();
  const auto schedule = static_cast<MttkrpSchedule>(state.range(0));
  Matrix out;
  for (auto _ : state) {
    mttkrp_csf(s.csf, s.factors, out, /*accumulate=*/false, schedule);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.coo.nnz()));
}
BENCHMARK(BM_MttkrpRootSchedule)
    ->Arg(static_cast<int>(MttkrpSchedule::kDynamic))
    ->Arg(static_cast<int>(MttkrpSchedule::kWeighted))
    ->Unit(benchmark::kMillisecond);

void BM_CsrConstruction(benchmark::State& state) {
  const auto factors = micro_factors(16, 0.9);
  const Matrix& leaf = factors[2];
  for (auto _ : state) {
    const CsrMatrix csr = CsrMatrix::from_dense(leaf);
    benchmark::DoNotOptimize(csr.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(leaf.size()));
}
BENCHMARK(BM_CsrConstruction);

void BM_AdmmStep(benchmark::State& state) {
  const auto variant = static_cast<int>(state.range(0));
  const std::size_t rows = 20000;
  const rank_t f = 16;
  Rng rng(3);
  const Matrix w = Matrix::random_normal(4 * f, f, rng);
  Matrix g;
  gram(w, g);
  const Matrix k = Matrix::random_uniform(rows, f, rng, 0, 1);
  const auto prox = make_prox({ConstraintKind::kNonNegative});
  AdmmOptions opts;
  opts.max_iterations = 5;
  opts.tolerance = 0;  // run exactly 5 inner iterations per call
  AdmmScratch scratch;
  Matrix h(rows, f);
  Matrix u(rows, f);
  for (auto _ : state) {
    if (variant == 0) {
      admm_update(h, u, k, g, *prox, opts, scratch);
    } else {
      admm_update_blocked(h, u, k, g, *prox, opts, scratch);
    }
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows) * 5);
}
BENCHMARK(BM_AdmmStep)->Arg(0)->Arg(1);  // 0=baseline, 1=blocked

// The generalized per-row two-split solver (non-quadratic / masked
// losses). Separate from BM_AdmmStep on purpose: that benchmark IS the
// Frobenius hot path and must not move when the loss zoo changes, while
// this one tracks the per-row machinery (row Gram assembly, one Cholesky
// per row, elementwise loss prox) across the loss menu.
void BM_LossRowSolve(benchmark::State& state) {
  static const LossSpec kSpecs[] = {
      {LossKind::kFrobenius, 1, true},  // masked Frobenius (completion)
      {LossKind::kKL, 1, true},
      {LossKind::kHuber, 0.5, true},
      {LossKind::kL1, 1, true},
  };
  const LossSpec spec = kSpecs[state.range(0)];
  const auto loss = make_loss(spec);
  const auto prox = make_prox({ConstraintKind::kNonNegative});
  const rank_t f = 16;
  std::vector<Matrix> factors = micro_factors(f);
  Matrix u_h(factors[0].rows(), f);
  AdmmOptions opts;
  opts.max_iterations = 5;
  opts.tolerance = 0;  // run exactly 5 inner iterations per row per call
  LossModeState split;
  split.t.resize(micro_csf().nnz());
  split.u_t.resize(micro_csf().nnz());
  for (auto _ : state) {
    loss_mode_update(micro_csf(), factors, u_h, 0, *loss, *prox, opts, {},
                     split);
    benchmark::DoNotOptimize(factors[0].data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(micro_csf().nnz()) * 5);
}
BENCHMARK(BM_LossRowSolve)
    ->Arg(0)   // frobenius:masked
    ->Arg(1)   // kl
    ->Arg(2)   // huber:0.5
    ->Arg(3)   // l1
    ->Unit(benchmark::kMillisecond);

void BM_Cholesky(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix w = Matrix::random_normal(2 * f, f, rng);
  Matrix g;
  gram(w, g);
  for (std::size_t i = 0; i < f; ++i) {
    g(i, i) += 1.0;
  }
  for (auto _ : state) {
    const Cholesky chol(g);
    benchmark::DoNotOptimize(chol.lower().data());
  }
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(64)->Arg(200);

void BM_CholeskySolveRows(benchmark::State& state) {
  const std::size_t f = 16;
  const std::size_t rows = 20000;
  Rng rng(6);
  const Matrix w = Matrix::random_normal(2 * f, f, rng);
  Matrix g;
  gram(w, g);
  for (std::size_t i = 0; i < f; ++i) {
    g(i, i) += 1.0;
  }
  const Cholesky chol(g);
  Matrix rhs = Matrix::random_normal(rows, f, rng);
  for (auto _ : state) {
    chol.solve_rows_inplace(rhs);
    benchmark::DoNotOptimize(rhs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_CholeskySolveRows);

void BM_Gram(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Matrix a = Matrix::random_normal(rows, 16, rng);
  Matrix g;
  for (auto _ : state) {
    gram(a, g);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_Gram)->Arg(10000)->Arg(100000);

void BM_ProxApply(benchmark::State& state) {
  const auto kind = static_cast<ConstraintKind>(state.range(0));
  ConstraintSpec spec;
  spec.kind = kind;
  spec.lambda = 0.1;
  const auto prox = make_prox(spec);
  Rng rng(8);
  Matrix h = Matrix::random_uniform(50000, 16, rng, -1, 1);
  for (auto _ : state) {
    prox->apply(h, 0, h.rows(), 1.0);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.size()));
}
BENCHMARK(BM_ProxApply)
    ->Arg(static_cast<int>(ConstraintKind::kNonNegative))
    ->Arg(static_cast<int>(ConstraintKind::kL1))
    ->Arg(static_cast<int>(ConstraintKind::kSimplex));

void BM_CsfBuild(benchmark::State& state) {
  for (auto _ : state) {
    const CsfTensor csf = CsfTensor::build_for_mode(micro_tensor(), 0);
    benchmark::DoNotOptimize(csf.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(micro_tensor().nnz()));
}
BENCHMARK(BM_CsfBuild);

}  // namespace
}  // namespace aoadmm
