// Table II: effect of sparse factor-matrix data structures on total CPD
// time under l1 regularization (lambda = 1e-1), across ranks.
//
// Paper: Reddit & Amazon, ranks {50, 100, 200}, formats DENSE / CSR /
// CSR-H; sparse formats win in all cases (1.1x–2.3x), CSR-H helps Reddit
// but not Amazon. Here ranks are scaled to {16, 32, 64} (override with
// AOADMM_BENCH_TABLE2_RANKS="16,32,64"); NELL and Patents are omitted for
// the paper's reason — they do not converge to sparse factors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "sparse/density.hpp"
#include "util/timer.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

namespace {

std::vector<rank_t> table2_ranks() {
  const char* env = std::getenv("AOADMM_BENCH_TABLE2_RANKS");
  if (env == nullptr || *env == '\0') {
    return {16, 32, 64};
  }
  std::vector<rank_t> out;
  std::string s(env);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty()) {
      out.push_back(static_cast<rank_t>(std::strtol(tok.c_str(), nullptr, 10)));
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main() {
  print_banner("Table II — Sparse factor structures during MTTKRP",
               "total CPD seconds under l1 (lambda=1e-1) per format; paper "
               "ranks {50,100,200} scaled to {16,32,64}");

  ConstraintSpec l1{ConstraintKind::kNonNegativeL1};
  l1.lambda = 0.1;  // the paper's 1e-1 * ||.||_1 on all factors

  const auto ranks = table2_ranks();
  TablePrinter table({"Dataset", "rank", "format", "time(s)", "final err",
                      "leaf density", "sparse mttkrps"},
                     {12, 7, 9, 10, 12, 14, 15});
  table.print_header();

  for (const std::string name : {"reddit-s", "amazon-s"}) {
    const CsfSet& csf = DatasetCache::instance().csf(name);
    for (const rank_t rank : ranks) {
      for (const LeafFormat fmt :
           {LeafFormat::kDense, LeafFormat::kCsr, LeafFormat::kHybrid}) {
        CpdOptions opts = default_cpd_options();
        opts.rank = rank;
        opts.max_outer_iterations = bench_max_outer(8);
        opts.tolerance = 0;  // fixed outer count => comparable times
        opts.leaf_format = fmt;
        opts.sparsity_threshold = 0.20;  // paper §V.E
        const CpdResult r = cpd_aoadmm(csf, opts, {&l1, 1});

        // The factor stored sparsely during MTTKRP is the longest mode's
        // (the leaf of every CSF tree); report its final density.
        real_t leaf_density = 1;
        std::size_t longest = 0;
        for (std::size_t m = 1; m < r.factors.size(); ++m) {
          if (r.factors[m].rows() > r.factors[longest].rows()) {
            longest = m;
          }
        }
        leaf_density = r.factor_density[longest];

        table.print_row(
            {name, std::to_string(rank), to_string(fmt),
             TablePrinter::fmt(r.times.total_seconds, 3),
             TablePrinter::fmt(r.relative_error, 5),
             TablePrinter::pct(leaf_density),
             std::to_string(r.sparse_mttkrp_count) + "/" +
                 std::to_string(r.mttkrp_count)});
      }
    }
  }

  // Kernel-level view: time ONLY the MTTKRP that compression accelerates,
  // using the converged (sparse) factors of an l1 run. Total factorization
  // time above includes ADMM, which grows as F² and dilutes the gain.
  std::printf("\nKernel-level MTTKRP time on the converged sparse factors "
              "(mode-0 tree, %d repetitions):\n", 10);
  TablePrinter kern({"Dataset", "rank", "leaf density", "DENSE(s)",
                     "CSR(s)", "CSR-H(s)", "best speedup"},
                    {12, 7, 14, 10, 9, 10, 13});
  kern.print_header();
  for (const std::string name : {"reddit-s", "amazon-s"}) {
    const CsfSet& csf = DatasetCache::instance().csf(name);
    const CsfTensor& tree = csf.for_mode(0);
    for (const rank_t rank : ranks) {
      CpdOptions opts = default_cpd_options();
      opts.rank = rank;
      opts.max_outer_iterations = bench_max_outer(8);
      opts.tolerance = 0;
      const CpdResult r = cpd_aoadmm(csf, opts, {&l1, 1});

      const std::size_t leaf_mode = tree.level_mode(2);
      const Matrix& leaf_dense = r.factors[leaf_mode];
      const DensityStats stats = measure_density(leaf_dense);
      const CsrMatrix leaf_csr = CsrMatrix::from_dense(leaf_dense);
      const HybridMatrix leaf_hyb = HybridMatrix::from_dense(leaf_dense,
                                                             stats);
      Matrix out;
      const int reps = 10;
      Timer t_dense;
      Timer t_csr;
      Timer t_hyb;
      for (int rep = 0; rep < reps; ++rep) {
        {
          const ScopedTimer t(t_dense);
          mttkrp_csf(tree, r.factors, out);
        }
        {
          const ScopedTimer t(t_csr);
          mttkrp_csf_csr(tree, r.factors, leaf_csr, out);
        }
        {
          const ScopedTimer t(t_hyb);
          mttkrp_csf_hybrid(tree, r.factors, leaf_hyb, out);
        }
      }
      const double best =
          std::min(t_csr.seconds(), t_hyb.seconds());
      kern.print_row({name, std::to_string(rank),
                      TablePrinter::pct(stats.density),
                      TablePrinter::fmt(t_dense.seconds(), 3),
                      TablePrinter::fmt(t_csr.seconds(), 3),
                      TablePrinter::fmt(t_hyb.seconds(), 3),
                      TablePrinter::fmt(t_dense.seconds() /
                                            (best > 0 ? best : 1e-9), 2) +
                          "x"});
    }
  }

  std::printf("\npaper's qualitative result: CSR and CSR-H beat DENSE once "
              "factors are sparse; CSR-H helps Reddit but not Amazon.\n");
  return 0;
}
