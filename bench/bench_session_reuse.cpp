// Ablation: session reuse. The CpdSolver session hoists every allocation
// and precomputation (tensor norm, prox operators, ADMM scratch + Cholesky
// system, MTTKRP workspaces, factor/dual storage) out of the solve path,
// so repeated solves — the parameter-sweep and warm-restart workload the
// session API exists for — pay none of it again. This harness measures
// that: per-solve wall time and aligned-allocator traffic for (a) a fresh
// session per solve (the old cpd_aoadmm behavior), (b) repeat cold solves
// on one session, and (c) warm starts on one session.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common.hpp"
#include "core/solver.hpp"
#include "util/aligned.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

namespace {

struct Sample {
  double seconds = 0;
  std::uint64_t allocs = 0;
  std::uint64_t inner_iters = 0;
  real_t err = 0;
};

Sample measure(const char* label, const std::function<CpdResult()>& run) {
  const AlignedAllocStats before = aligned_alloc_stats();
  const CpdResult r = run();
  const AlignedAllocStats after = aligned_alloc_stats();
  Sample s;
  s.seconds = r.times.total_seconds;
  s.allocs = after.calls - before.calls;
  s.inner_iters = r.total_inner_iterations;
  s.err = r.relative_error;
  (void)label;
  return s;
}

}  // namespace

int main() {
  print_banner("Ablation — solver session reuse",
               "repeat solves on one CpdSolver vs a fresh session each "
               "time; aligned allocations counted per solve");

  const unsigned repeats = 4;

  TablePrinter table({"Dataset", "mode", "solve", "time(s)", "allocs",
                      "inner", "err"},
                     {12, 14, 7, 10, 10, 9, 10});
  table.print_header();

  for (const std::string name : {"reddit-s", "patents-s"}) {
    const CsfSet& csf = DatasetCache::instance().csf(name);
    CpdOptions opts = default_cpd_options();
    opts.max_outer_iterations = bench_max_outer(10);
    opts.tolerance = 0;
    opts.record_trace = false;
    const CpdConfig cfg(opts);

    // (a) Fresh session per solve — construction + first-touch every time.
    for (unsigned i = 1; i <= repeats; ++i) {
      const Sample s = measure("fresh", [&] {
        CpdSolver solver(csf, cfg);
        return solver.solve();
      });
      table.print_row({name, "fresh-session", std::to_string(i),
                       TablePrinter::fmt(s.seconds, 3),
                       std::to_string(s.allocs),
                       std::to_string(s.inner_iters),
                       TablePrinter::fmt(s.err, 6)});
    }

    // (b) One session, repeated cold solves — buffers stay warm.
    {
      CpdSolver solver(csf, cfg);
      for (unsigned i = 1; i <= repeats; ++i) {
        const Sample s = measure("reused", [&] { return solver.solve(); });
        table.print_row({name, "reused-cold", std::to_string(i),
                         TablePrinter::fmt(s.seconds, 3),
                         std::to_string(s.allocs),
                         std::to_string(s.inner_iters),
                         TablePrinter::fmt(s.err, 6)});
      }
    }

    // (c) One session, warm starts from the previous model.
    {
      CpdSolver solver(csf, cfg);
      CpdResult prev = solver.solve();
      for (unsigned i = 1; i <= repeats; ++i) {
        const Sample s = measure("warm", [&] {
          return solver.solve_warm(KruskalTensor(prev.factors));
        });
        table.print_row({name, "reused-warm", std::to_string(i),
                         TablePrinter::fmt(s.seconds, 3),
                         std::to_string(s.allocs),
                         std::to_string(s.inner_iters),
                         TablePrinter::fmt(s.err, 6)});
      }
    }
  }

  std::printf("\nexpectation: reused-cold solves after the first report "
              "(near-)zero aligned allocations — the steady-state loop is "
              "allocation-free — and reused-warm solves finish in fewer "
              "inner iterations than any cold solve.\n");
  return 0;
}
