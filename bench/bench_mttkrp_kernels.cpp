// Head-to-head MTTKRP kernel families on google-benchmark: the plain
// one-tree walk (kOneTree), the dimension-tree engine with cached partial
// contractions (kDimTree), and the bit-interleaved linearized kernel
// (kAlto), all over the same power-law (Zipf alpha=1.3) tensors at orders
// 3-5 and ranks {8, 16, 32, 64}.
//
// Each benchmark iteration is one full CYCLIC SWEEP — an MTTKRP per mode,
// with the per-mode cache invalidation the CPD driver performs after a
// factor update — so the dimension-tree numbers include the recompute cost
// its reuse has to pay for, not just warm-cache reads. CI gates the
// headline claim on this suite: dimension tree >= 1.2x over one-tree at
// order 4, rank 32 (see .github/workflows/ci.yml bench-regression).
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "common.hpp"

#include "mttkrp/alto.hpp"
#include "mttkrp/dimtree.hpp"
#include "mttkrp/mttkrp.hpp"
#include "tensor/alto.hpp"
#include "tensor/synthetic.hpp"
#include "util/rng.hpp"

namespace aoadmm {
namespace {

// One Zipf tensor + ONEMODE compilation per order, cached per process; the
// three kernel families time the identical sweep over the identical tree.
struct KernelSetup {
  CooTensor coo;
  CsfSet csf;
  std::map<rank_t, std::vector<Matrix>> factors;

  explicit KernelSetup(std::size_t order)
      : coo(make_synthetic(bench::zipf_workload(order))),
        csf(coo, CsfStrategy::kOneMode) {
    Rng rng(17 + static_cast<std::uint64_t>(order));
    for (const rank_t rank : {8, 16, 32, 64}) {
      std::vector<Matrix>& f = factors[rank];
      for (const index_t d : coo.dims()) {
        f.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
      }
    }
  }

  const CsfTensor& tree() const { return csf.for_mode(0); }

  static const KernelSetup& instance(std::size_t order) {
    bench::install_metrics_sidecar();
    static const KernelSetup s3(3);
    static const KernelSetup s4(4);
    static const KernelSetup s5(5);
    switch (order) {
      case 3: return s3;
      case 4: return s4;
      default: return s5;
    }
  }
};

void set_sweep_counters(benchmark::State& state, const KernelSetup& s) {
  // nnz touched per sweep: one MTTKRP per mode.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.coo.nnz()) *
                          static_cast<std::int64_t>(s.coo.order()));
}

void BM_MttkrpSweepOneTree(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  const auto rank = static_cast<rank_t>(state.range(1));
  const KernelSetup& s = KernelSetup::instance(order);
  const auto& factors = s.factors.at(rank);
  Matrix out;
  for (auto _ : state) {
    for (std::size_t m = 0; m < order; ++m) {
      mttkrp_dispatch(s.tree(), factors, m, out, MttkrpSchedule::kAuto,
                      MttkrpKernel::kOneTree);
      benchmark::DoNotOptimize(out.data());
    }
  }
  set_sweep_counters(state, s);
}

void BM_MttkrpSweepDimTree(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  const auto rank = static_cast<rank_t>(state.range(1));
  const KernelSetup& s = KernelSetup::instance(order);
  const auto& factors = s.factors.at(rank);
  detail::DimTreeEngine engine;
  Matrix out;
  // Warm sweep: binds the engine to (tree, rank) and pre-sizes the
  // per-level scratch so the timed region measures the steady state the
  // solver runs in (zero-alloc, caches populated).
  for (std::size_t m = 0; m < order; ++m) {
    engine.mttkrp(s.tree(), factors, m, out);
    engine.invalidate_mode(m);
  }
  for (auto _ : state) {
    for (std::size_t m = 0; m < order; ++m) {
      mttkrp_dispatch(s.tree(), factors, m, out, MttkrpSchedule::kAuto,
                      MttkrpKernel::kDimTree, &engine);
      // The solver updates factor m right after its MTTKRP; charge the
      // resulting cache invalidation to the sweep.
      engine.invalidate_mode(m);
      benchmark::DoNotOptimize(out.data());
    }
  }
  set_sweep_counters(state, s);
}

void BM_MttkrpSweepAlto(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  const auto rank = static_cast<rank_t>(state.range(1));
  const KernelSetup& s = KernelSetup::instance(order);
  const auto& factors = s.factors.at(rank);
  Matrix out;
  // Build the linearized index (and its partition plans) outside the timed
  // region — the solver builds it once per tensor, not once per sweep.
  mttkrp_alto(s.tree().alto_index(), factors, 0, out);
  for (auto _ : state) {
    for (std::size_t m = 0; m < order; ++m) {
      mttkrp_dispatch(s.tree(), factors, m, out, MttkrpSchedule::kAuto,
                      MttkrpKernel::kAlto);
      benchmark::DoNotOptimize(out.data());
    }
  }
  set_sweep_counters(state, s);
}

void sweep_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t order : {3, 4, 5}) {
    for (const std::int64_t rank : {8, 16, 32, 64}) {
      b->Args({order, rank});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_MttkrpSweepOneTree)->Apply(sweep_args);
BENCHMARK(BM_MttkrpSweepDimTree)->Apply(sweep_args);
BENCHMARK(BM_MttkrpSweepAlto)->Apply(sweep_args);

}  // namespace
}  // namespace aoadmm
