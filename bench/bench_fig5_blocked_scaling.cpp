// Figure 5: parallel speedup of the BLOCKED (§IV.B) AO-ADMM on a rank-50
// non-negative CPD.
//
// Paper shape: 12.7x (Patents) to 14.6x (NELL) at 20 threads — the trend of
// Fig. 4 reverses: ADMM-dominated datasets now scale BEST because blocked
// ADMM has temporal locality and no inter-kernel synchronization.
#include "scaling_common.hpp"

int main() {
  return aoadmm::bench::run_scaling_figure(
      "Figure 5 — Speedup of blocked AO-ADMM vs threads",
      aoadmm::AdmmVariant::kBlocked);
}
