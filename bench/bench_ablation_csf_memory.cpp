// Ablation: CSF memory strategy — ALLMODE (one tree per mode, the paper's
// configuration, race-free root-parallel MTTKRP) vs ONEMODE (a single
// tree, ~1/order the memory, atomic scatter for non-root modes). This is
// the SPLATT trade-off the paper's implementation inherits.
#include <cstdio>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Ablation — CSF memory strategy (ALLMODE vs ONEMODE)",
               "same factorization on both compilations; ONEMODE trades "
               "MTTKRP speed for ~3x less tensor memory");

  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};
  TablePrinter table({"Dataset", "strategy", "CSF MB", "time(s)",
                      "mttkrp(s)", "final err"},
                     {12, 10, 10, 10, 11, 12});
  table.print_header();

  for (const std::string name : {"reddit-s", "patents-s"}) {
    const CooTensor& coo = DatasetCache::instance().coo(name);
    for (const CsfStrategy strategy :
         {CsfStrategy::kAllMode, CsfStrategy::kOneMode}) {
      const CsfSet csf(coo, strategy);
      CpdOptions opts = default_cpd_options();
      opts.max_outer_iterations = bench_max_outer(5);
      opts.tolerance = 0;
      const CpdResult r = cpd_aoadmm(csf, opts, {&nonneg, 1});
      table.print_row(
          {name, to_string(strategy),
           TablePrinter::fmt(static_cast<double>(csf.storage_bytes()) /
                                 (1024.0 * 1024.0),
                             1),
           TablePrinter::fmt(r.times.total_seconds, 3),
           TablePrinter::fmt(r.times.mttkrp_seconds, 3),
           TablePrinter::fmt(r.relative_error, 6)});
    }
  }

  std::printf("\nexpectation: identical errors; ONEMODE uses ~1/3 the CSF "
              "bytes and spends more time in MTTKRP (atomic scatter).\n");
  return 0;
}
