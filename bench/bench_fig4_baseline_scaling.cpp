// Figure 4: parallel speedup of the BASELINE (kernel-parallel, §IV.A)
// AO-ADMM on a rank-50 non-negative CPD.
//
// Paper shape: 5.4x (NELL) to 12.7x (Patents) at 20 threads — the
// MTTKRP-dominated datasets scale best because SPLATT's kernels are already
// optimized, while ADMM-heavy NELL is limited by barrier overheads.
#include "scaling_common.hpp"

int main() {
  return aoadmm::bench::run_scaling_figure(
      "Figure 4 — Speedup of baseline AO-ADMM vs threads",
      aoadmm::AdmmVariant::kBaseline);
}
