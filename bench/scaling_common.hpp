// Shared driver for the two thread-scaling figures (Fig. 4 baseline,
// Fig. 5 blocked): run the same rank-R non-negative factorization at each
// thread count and report speedup over 1 thread.
#pragma once

#include <cstdio>

#include "common.hpp"
#include "parallel/runtime.hpp"

namespace aoadmm::bench {

inline int run_scaling_figure(const char* title, AdmmVariant variant) {
  print_banner(title,
               "rank-50 non-negative CPD in the paper; speedup relative to "
               "1 thread. NOTE: flat curves on a 1-core container are "
               "expected — rerun on a multicore host for the paper's shape.");

  CpdOptions opts = default_cpd_options();
  opts.variant = variant;
  opts.max_outer_iterations = bench_max_outer(5);
  opts.tolerance = 0;  // fixed work per run so times are comparable
  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};
  const auto threads = bench_thread_sweep();

  TablePrinter table({"Dataset", "threads", "time(s)", "speedup"},
                     {12, 10, 12, 10});
  table.print_header();

  const int restore_threads = max_threads();
  for (const NamedDataset& d : DatasetCache::instance().descriptors()) {
    const CsfSet& csf = DatasetCache::instance().csf(d.name);
    double t1 = 0;
    for (const int t : threads) {
      set_num_threads(t);
      const CpdResult r = cpd_aoadmm(csf, opts, {&nonneg, 1});
      if (t == 1) {
        t1 = r.times.total_seconds;
      }
      const double speedup =
          r.times.total_seconds > 0 ? t1 / r.times.total_seconds : 0;
      table.print_row({d.name, std::to_string(t),
                       TablePrinter::fmt(r.times.total_seconds, 3),
                       TablePrinter::fmt(speedup, 2) + "x"});
    }
  }
  set_num_threads(restore_threads);
  return 0;
}

}  // namespace aoadmm::bench
