// Figure 6: convergence of base vs blocked AO-ADMM on a rank-50
// non-negative factorization, as a function of BOTH wall-clock time and
// outer iteration (the paper separates convergence gains from execution
// gains this way).
//
// Paper shape: blocking improves per-iteration convergence on every
// dataset; NELL converges 3.7x faster to a 3% lower error; Reddit/Patents
// converge in fewer iterations at <1% error difference.
// Besides the printed tables, each run's full trace is written to
// $AOADMM_BENCH_TRACE_DIR (default ".") as fig6_<dataset>_<variant>.csv
// and .json for plotting.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

namespace {

void write_series(const std::string& dataset, const char* variant,
                  const ConvergenceTrace& trace) {
  const char* env = std::getenv("AOADMM_BENCH_TRACE_DIR");
  const std::string dir = (env != nullptr && *env != '\0') ? env : ".";
  const std::string stem = dir + "/fig6_" + dataset + "_" + variant;
  {
    std::ofstream out(stem + ".csv");
    if (out) {
      trace.write_csv(out);
    }
  }
  {
    std::ofstream out(stem + ".json");
    if (out) {
      trace.write_json(out);
    }
  }
}

void print_series(const char* label, const ConvergenceTrace& trace) {
  std::printf("  %s:\n    iter  seconds   rel-error\n", label);
  const auto& pts = trace.points();
  // Subsample long traces to ~12 rows, always keeping first and last.
  const std::size_t stride = pts.size() > 12 ? pts.size() / 12 : 1;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i % stride == 0 || i + 1 == pts.size()) {
      std::printf("    %4u  %8.3f  %.6f\n", pts[i].outer_iteration,
                  pts[i].seconds, static_cast<double>(pts[i].relative_error));
    }
  }
}

}  // namespace

int main() {
  print_banner("Figure 6 — Convergence of base vs blocked AO-ADMM",
               "relative error vs time AND vs outer iteration, rank-50 "
               "non-negative CPD in the paper");

  CpdOptions common = default_cpd_options();
  common.max_outer_iterations = bench_max_outer(20);
  common.tolerance = 1e-6;
  // Allow more inner iterations so non-uniform convergence (the effect
  // blocking exploits) is visible.
  common.admm.max_iterations = 25;
  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};

  TablePrinter summary({"Dataset", "variant", "iters", "time(s)",
                        "final err", "row-iters"},
                       {12, 10, 8, 10, 12, 14});

  struct Run {
    std::string dataset;
    CpdResult base;
    CpdResult blocked;
  };
  std::vector<Run> runs;

  for (const NamedDataset& d : DatasetCache::instance().descriptors()) {
    const CsfSet& csf = DatasetCache::instance().csf(d.name);
    Run run;
    run.dataset = d.name;
    {
      CpdOptions opts = common;
      opts.variant = AdmmVariant::kBaseline;
      run.base = cpd_aoadmm(csf, opts, {&nonneg, 1});
    }
    {
      CpdOptions opts = common;
      opts.variant = AdmmVariant::kBlocked;
      run.blocked = cpd_aoadmm(csf, opts, {&nonneg, 1});
    }
    runs.push_back(std::move(run));
  }

  summary.print_header();
  for (const Run& r : runs) {
    summary.print_row({r.dataset, "base", std::to_string(r.base.outer_iterations),
                       TablePrinter::fmt(r.base.times.total_seconds, 2),
                       TablePrinter::fmt(r.base.relative_error, 6),
                       std::to_string(r.base.total_row_iterations)});
    summary.print_row({r.dataset, "blocked",
                       std::to_string(r.blocked.outer_iterations),
                       TablePrinter::fmt(r.blocked.times.total_seconds, 2),
                       TablePrinter::fmt(r.blocked.relative_error, 6),
                       std::to_string(r.blocked.total_row_iterations)});
  }

  std::printf("\nFull series (error vs time and vs iteration):\n");
  for (const Run& r : runs) {
    std::printf("\n%s\n", r.dataset.c_str());
    print_series("base", r.base.trace);
    print_series("blocked", r.blocked.trace);
    write_series(r.dataset, "base", r.base.trace);
    write_series(r.dataset, "blocked", r.blocked.trace);
  }
  std::printf("\ntraces written to %s/fig6_<dataset>_<variant>.{csv,json}\n",
              [] {
                const char* env = std::getenv("AOADMM_BENCH_TRACE_DIR");
                return (env != nullptr && *env != '\0') ? env : ".";
              }());

  std::printf("\npaper's qualitative result: blocked reaches equal/lower "
              "error in fewer iterations and less time on every dataset.\n");
  return 0;
}
