// Ablation (paper §V.E / future work §VI): the density threshold below
// which a factor is mirrored into a compressed format. The paper determined
// 20% empirically; automatic selection is listed as future work. This
// harness sweeps the threshold so the trade-off is measurable.
#include <cstdio>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Ablation — sparsity-exploitation density threshold",
               "l1-regularized CPD with CSR leaf factors across thresholds; "
               "paper uses 20%");

  const real_t thresholds[] = {0.05, 0.10, 0.20, 0.40, 0.80};
  ConstraintSpec l1{ConstraintKind::kNonNegativeL1};
  l1.lambda = 0.1;

  TablePrinter table({"Dataset", "threshold", "time(s)", "final err",
                      "sparse mttkrps"},
                     {12, 11, 10, 12, 15});
  table.print_header();

  for (const std::string name : {"reddit-s", "amazon-s"}) {
    const CsfSet& csf = DatasetCache::instance().csf(name);
    for (const real_t thr : thresholds) {
      CpdOptions opts = default_cpd_options();
      opts.max_outer_iterations = bench_max_outer(8);
      opts.tolerance = 0;
      opts.leaf_format = LeafFormat::kCsr;
      opts.sparsity_threshold = thr;
      const CpdResult r = cpd_aoadmm(csf, opts, {&l1, 1});
      table.print_row({name, TablePrinter::pct(thr, 0),
                       TablePrinter::fmt(r.times.total_seconds, 3),
                       TablePrinter::fmt(r.relative_error, 5),
                       std::to_string(r.sparse_mttkrp_count) + "/" +
                           std::to_string(r.mttkrp_count)});
    }
  }

  std::printf("\nexpectation: higher thresholds exploit sparsity earlier; "
              "past the crossover the CSR overhead on dense-ish factors "
              "costs more than it saves.\n");
  return 0;
}
