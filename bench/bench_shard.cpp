// Strong scaling of the sharded AO-ADMM driver (dist/sharded_solver.hpp)
// on a committed Zipf workload, plus the out-of-core streaming overhead on
// the same grid.
//
// Each worker runs its tile's MTTKRP single-threaded (set_num_threads(1)),
// so the shard count is the only parallelism dial: BM_ShardSolve/{1,2,4,8}
// is a clean worker-scaling curve on a machine with that many hardware
// threads (the workload is sized for 8). The tensor is large enough that
// the distributed MTTKRP dominates the coordinator's serial ADMM — the
// scaling these numbers gate is the exchange + reduction machinery, not
// Amdahl noise. CI asserts 4-shard >= 2x over 1-shard on >=4-core runners
// (see .github/workflows/ci.yml bench-regression).
//
// BM_ShardSolveOutOfCore runs the 4-shard grid with tiles spilled and a
// residency budget of about one tile, so every sweep step pays the mmap
// decode: its gap to BM_ShardSolve/4 is the out-of-core tax.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common.hpp"

#include "dist/sharded_solver.hpp"
#include "parallel/runtime.hpp"
#include "tensor/synthetic.hpp"

namespace aoadmm {
namespace {

/// 8M non-zeros at scale 1.0 (2M at the default container scale 0.25),
/// Zipf-skewed, mode 0 long so a {S,1,1} grid cuts balanced row blocks.
const CooTensor& shard_tensor() {
  static const CooTensor x = [] {
    bench::install_metrics_sidecar();
    SyntheticSpec spec;
    spec.dims = {4000, 2000, 1500};
    spec.nnz = static_cast<offset_t>(static_cast<real_t>(8000000) *
                                     bench::bench_scale());
    spec.zipf_alpha = {1.1};
    spec.true_rank = 8;
    spec.seed = 20260809;
    return make_synthetic(spec);
  }();
  return x;
}

CpdConfig shard_config() {
  CpdConfig cfg;
  cfg.with_rank(bench::bench_rank())
      .with_max_outer(3)
      .with_tolerance(0)  // fixed iteration count: time 3 full sweeps
      .with_seed(77);
  ConstraintSpec nonneg;
  nonneg.kind = ConstraintKind::kNonNegative;
  cfg.with_constraints(ModeConstraints::broadcast(nonneg));
  return cfg;
}

void BM_ShardSolve(benchmark::State& state) {
  set_num_threads(1);
  const auto shards = static_cast<std::size_t>(state.range(0));
  CpdConfig cfg = shard_config();
  ShardOptions so;
  so.grid = {shards, 1, 1};
  cfg.with_shards(so);
  ShardedCpdSolver solver(shard_tensor(), cfg);
  for (auto _ : state) {
    const CpdResult r = solver.solve();
    benchmark::DoNotOptimize(r.relative_error);
  }
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardSolve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardSolveOutOfCore(benchmark::State& state) {
  set_num_threads(1);
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::string spill =
      (std::filesystem::temp_directory_path() / "aoadmm_bench_shard_spill")
          .string();
  std::filesystem::remove_all(spill);
  CpdConfig cfg = shard_config();
  ShardOptions so;
  so.grid = {shards, 1, 1};
  so.spill_dir = spill;
  // About one decoded tile: every sweep step streams its tile back in.
  so.max_resident_bytes =
      static_cast<std::size_t>(shard_tensor().nnz()) * sizeof(real_t) * 2 /
      shards;
  cfg.with_shards(so);
  ShardedCpdSolver solver(shard_tensor(), cfg);
  for (auto _ : state) {
    const CpdResult r = solver.solve();
    benchmark::DoNotOptimize(r.relative_error);
  }
  const TileResidency::Stats rs = solver.residency_stats();
  state.counters["tile_loads"] = static_cast<double>(rs.loads);
  state.counters["tile_evictions"] = static_cast<double>(rs.evictions);
  std::filesystem::remove_all(spill);
}
BENCHMARK(BM_ShardSolveOutOfCore)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace aoadmm
