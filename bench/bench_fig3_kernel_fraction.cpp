// Figure 3: fraction of factorization time spent in MTTKRP vs ADMM vs other
// during a rank-50 (scaled: bench_rank) non-negative factorization, using
// the unblocked baseline exactly as the paper's §V.B measurement does.
//
// Paper shape to reproduce: NELL is ADMM-dominated (long, hypersparse
// modes); Amazon and Patents are MTTKRP-dominated (more non-zeros per
// slice); Reddit sits in between.
#include <cstdio>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Figure 3 — Fraction of time in MTTKRP and ADMM",
               "rank-50 non-negative CPD in the paper; baseline (unblocked) "
               "AO-ADMM, no sparsity optimizations");

  CpdOptions opts = default_cpd_options();
  opts.variant = AdmmVariant::kBaseline;
  opts.max_outer_iterations = bench_max_outer(5);
  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};

  TablePrinter table({"Dataset", "MTTKRP", "ADMM", "OTHER", "total(s)"},
                     {12, 10, 10, 10, 12});
  table.print_header();

  for (const NamedDataset& d : DatasetCache::instance().descriptors()) {
    const CsfSet& csf = DatasetCache::instance().csf(d.name);
    const CpdResult r = cpd_aoadmm(csf, opts, {&nonneg, 1});
    table.print_row({d.name, TablePrinter::pct(r.times.mttkrp_fraction()),
                     TablePrinter::pct(r.times.admm_fraction()),
                     TablePrinter::pct(r.times.other_fraction()),
                     TablePrinter::fmt(r.times.total_seconds, 3)});
  }

  std::printf("\npaper's qualitative result: NELL mostly ADMM; Amazon and "
              "Patents mostly MTTKRP.\n");
  return 0;
}
