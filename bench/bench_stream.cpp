// Streaming-subsystem benchmarks on google-benchmark: ingest throughput
// (batch apply into a StreamingTensor), the two CSF refresh paths (full
// rebuild vs value-only leaf patch), and serve-side query latency — alone
// and with a publisher thread swapping snapshots underneath the reader.
//
// Registered in the bench-regression CI gate against
// BENCH_stream_baseline.json (medians, ratio-based).
#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"

#include "obs/telemetry/exposition.hpp"
#include "obs/telemetry/window_quantiles.hpp"
#include "stream/model_server.hpp"
#include "stream/replay.hpp"
#include "stream/streaming_tensor.hpp"
#include "stream/wal.hpp"
#include "tensor/synthetic.hpp"
#include "util/rng.hpp"

namespace aoadmm {
namespace {

constexpr std::size_t kBatches = 16;

SyntheticSpec stream_tensor_spec() {
  SyntheticSpec spec;
  spec.dims = {2000, 1500, 64};  // mode 2 = time
  spec.nnz = 200000;
  spec.true_rank = 4;
  spec.zipf_alpha = {1.0};
  spec.seed = 7;
  return spec;
}

const CooTensor& stream_events() {
  bench::install_metrics_sidecar();
  static const CooTensor x = make_synthetic(stream_tensor_spec());
  return x;
}

const std::vector<CooTensor>& stream_batches() {
  static const std::vector<CooTensor> batches =
      make_replay_batches(stream_events(), 2, kBatches);
  return batches;
}

KruskalTensor serving_model(rank_t rank) {
  Rng rng(11);
  std::vector<Matrix> factors;
  for (const index_t d : stream_events().dims()) {
    factors.push_back(Matrix::random_uniform(d, rank, rng, 0.1, 1.0));
  }
  return KruskalTensor(std::move(factors));
}

/// Ingest: replay every batch into a fresh StreamingTensor (append +
/// overwrite + coordinate-map maintenance, no solve).
void BM_StreamIngest(benchmark::State& state) {
  const auto& batches = stream_batches();
  for (auto _ : state) {
    StreamingTensor tensor(std::vector<index_t>(3, 1), StreamingOptions{});
    offset_t appended = 0;
    for (const CooTensor& b : batches) {
      appended += tensor.apply(b);
    }
    benchmark::DoNotOptimize(appended);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream_events().nnz()));
}
BENCHMARK(BM_StreamIngest)->Unit(benchmark::kMillisecond);

/// WAL-protected ingest: the same replay with every batch appended to a
/// write-ahead log segment first. Arg(0) = WalFsync::kNever (the default;
/// the <10% overhead claim in docs/fault_tolerance.md is against
/// BM_StreamIngest), Arg(1) = kEveryBatch (the machine-crash-safe mode,
/// expected to be dominated by fsync latency).
void BM_StreamIngestWal(benchmark::State& state) {
  const auto& batches = stream_batches();
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "bench_wal" /
       ("ingest" + std::to_string(state.range(0))))
          .string();
  WalOptions wopts;
  wopts.fsync = state.range(0) == 0 ? WalFsync::kNever : WalFsync::kEveryBatch;
  for (auto _ : state) {
    StreamingTensor tensor(std::vector<index_t>(3, 1), StreamingOptions{});
    WriteAheadLog wal(prefix, wopts);
    tensor.attach_wal(&wal);
    offset_t appended = 0;
    for (const CooTensor& b : batches) {
      appended += tensor.apply(b);
    }
    benchmark::DoNotOptimize(appended);
    state.PauseTiming();
    std::filesystem::remove_all(
        std::filesystem::path(prefix).parent_path());  // fresh log per iter
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream_events().nnz()));
}
BENCHMARK(BM_StreamIngestWal)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Structural refresh: each iteration appends one brand-new entry (a fresh
/// time tick, so the coordinate cannot collide) and times the full CSF
/// rebuild that structural churn forces.
void BM_StreamCsfRebuild(benchmark::State& state) {
  const auto& batches = stream_batches();
  StreamingTensor tensor(std::vector<index_t>(3, 1), StreamingOptions{});
  for (const CooTensor& b : batches) {
    tensor.apply(b);
  }
  tensor.csf();
  index_t next_tick = static_cast<index_t>(tensor.dims()[2]);
  for (auto _ : state) {
    state.PauseTiming();
    CooTensor one(tensor.dims());
    const index_t coord[3] = {0, 0, next_tick++};
    one.grow_to_fit(2, coord[2]);
    one.add({coord, 3}, 1.0);
    tensor.apply(one);
    state.ResumeTiming();
    const CsfSet& csf = tensor.csf();
    benchmark::DoNotOptimize(csf.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream_events().nnz()));
}
BENCHMARK(BM_StreamCsfRebuild)->Unit(benchmark::kMillisecond);

/// Value-only refresh: overwrite one batch's values, then csf() takes the
/// leaf-patch path (no tree rebuilt).
void BM_StreamCsfValuePatch(benchmark::State& state) {
  const auto& batches = stream_batches();
  StreamingTensor tensor(std::vector<index_t>(3, 1), StreamingOptions{});
  for (const CooTensor& b : batches) {
    tensor.apply(b);
  }
  tensor.csf();  // compile once; batches re-applied below are overwrites
  CooTensor churn = batches.front();
  for (auto _ : state) {
    state.PauseTiming();
    for (offset_t n = 0; n < churn.nnz(); ++n) {
      churn.value(n) += 0.5;
    }
    tensor.apply(churn);
    state.ResumeTiming();
    const CsfSet& csf = tensor.csf();
    benchmark::DoNotOptimize(csf.norm_sq());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(churn.nnz()));
}
BENCHMARK(BM_StreamCsfValuePatch)->Unit(benchmark::kMillisecond);

/// Serve: single-entry prediction against a published snapshot.
void BM_StreamQueryPredict(benchmark::State& state) {
  const auto rank = static_cast<rank_t>(state.range(0));
  ModelServer server;
  server.publish(serving_model(rank));
  ModelServer::Reader reader = server.reader();

  Rng rng(23);
  const auto& dims = stream_events().dims();
  std::vector<std::array<index_t, 3>> coords(1024);
  for (auto& c : coords) {
    for (std::size_t m = 0; m < 3; ++m) {
      c[m] = static_cast<index_t>(rng.uniform_index(dims[m]));
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& c = coords[i++ & 1023];
    benchmark::DoNotOptimize(reader.predict({c.data(), 3}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamQueryPredict)->Arg(16)->Arg(64);

/// Serve: top-16 recommendation over the full target mode.
void BM_StreamQueryTopK(benchmark::State& state) {
  const auto rank = static_cast<rank_t>(state.range(0));
  ModelServer server;
  server.publish(serving_model(rank));
  ModelServer::Reader reader = server.reader();

  Rng rng(23);
  const auto& dims = stream_events().dims();
  std::size_t i = 0;
  std::vector<index_t> rows(256);
  for (auto& r : rows) {
    r = static_cast<index_t>(rng.uniform_index(dims[0]));
  }
  for (auto _ : state) {
    const auto best = reader.top_k(0, rows[i++ & 255], 1, 16);
    benchmark::DoNotOptimize(best.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamQueryTopK)->Arg(16)->Unit(benchmark::kMicrosecond);

/// Serve under churn: a publisher thread swaps snapshots continuously while
/// this thread queries — the latency cost of epoch re-acquisition.
void BM_StreamQueryUnderRefresh(benchmark::State& state) {
  const rank_t rank = 16;
  ModelServer server;
  server.publish(serving_model(rank));

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    KruskalTensor a = serving_model(rank);
    KruskalTensor b = serving_model(rank);
    bool flip = false;
    while (!stop.load(std::memory_order_relaxed)) {
      server.publish(flip ? a : b);
      flip = !flip;
      std::this_thread::yield();
    }
  });

  ModelServer::Reader reader = server.reader();
  Rng rng(23);
  const auto& dims = stream_events().dims();
  std::vector<std::array<index_t, 3>> coords(1024);
  for (auto& c : coords) {
    for (std::size_t m = 0; m < 3; ++m) {
      c[m] = static_cast<index_t>(rng.uniform_index(dims[m]));
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& c = coords[i++ & 1023];
    benchmark::DoNotOptimize(reader.predict({c.data(), 3}));
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamQueryUnderRefresh);

/// Telemetry overhead: the same predict loop with the windowed-quantile
/// recording gated off (arg 0) and on (arg 1). The acceptance bar for the
/// telemetry plane is <5% between the two.
void BM_StreamQueryTelemetry(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::set_telemetry_enabled(enabled);
  ModelServer server;
  server.publish(serving_model(16));
  ModelServer::Reader reader = server.reader();

  Rng rng(23);
  const auto& dims = stream_events().dims();
  std::vector<std::array<index_t, 3>> coords(1024);
  for (auto& c : coords) {
    for (std::size_t m = 0; m < 3; ++m) {
      c[m] = static_cast<index_t>(rng.uniform_index(dims[m]));
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& c = coords[i++ & 1023];
    benchmark::DoNotOptimize(reader.predict({c.data(), 3}));
  }
  obs::set_telemetry_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamQueryTelemetry)->Arg(0)->Arg(1);

/// Top-k with telemetry off/on — the longer query, same <5% bar.
void BM_StreamTopKTelemetry(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::set_telemetry_enabled(enabled);
  ModelServer server;
  server.publish(serving_model(16));
  ModelServer::Reader reader = server.reader();

  Rng rng(23);
  const auto& dims = stream_events().dims();
  std::size_t i = 0;
  std::vector<index_t> rows(256);
  for (auto& r : rows) {
    r = static_cast<index_t>(rng.uniform_index(dims[0]));
  }
  for (auto _ : state) {
    const auto best = reader.top_k(0, rows[i++ & 255], 1, 16);
    benchmark::DoNotOptimize(best.data());
  }
  obs::set_telemetry_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamTopKTelemetry)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Scrape under load: a background thread hammers queries while this
/// thread renders the full Prometheus exposition — the cost a scraper
/// imposes, and proof that rendering never blocks the hot path.
void BM_StreamScrapeUnderLoad(benchmark::State& state) {
  ModelServer server;
  server.publish(serving_model(16));

  std::atomic<bool> stop{false};
  std::thread querier([&] {
    ModelServer::Reader reader = server.reader();
    Rng rng(31);
    const auto& dims = stream_events().dims();
    std::array<index_t, 3> c{};
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t m = 0; m < 3; ++m) {
        c[m] = static_cast<index_t>(rng.uniform_index(dims[m]));
      }
      benchmark::DoNotOptimize(reader.predict({c.data(), 3}));
    }
  });

  for (auto _ : state) {
    std::ostringstream out;
    obs::write_prometheus(out);
    benchmark::DoNotOptimize(out.str().size());
  }
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamScrapeUnderLoad)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aoadmm
