// Table I: summary of the evaluation datasets. Prints both the paper's
// original FROSTT tensors and the synthetic stand-ins this reproduction
// generates (same mode-length ratios, Zipf-skewed non-zeros).
#include <algorithm>
#include <cstdio>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Table I — Summary of datasets",
               "paper: Reddit 95M / NELL 143M / Amazon 1.7B / Patents 3.5B "
               "nnz; stand-ins scaled to laptop size");

  TablePrinter table({"Dataset", "NNZ", "I", "J", "K", "density", "models"},
                     {12, 12, 10, 10, 10, 12, 40});
  table.print_header();

  for (const NamedDataset& d : DatasetCache::instance().descriptors()) {
    const CooTensor& x = DatasetCache::instance().coo(d.name);
    double capacity = 1.0;
    for (const index_t dim : x.dims()) {
      capacity *= static_cast<double>(dim);
    }
    char nnz_buf[32];
    std::snprintf(nnz_buf, sizeof(nnz_buf), "%llu",
                  static_cast<unsigned long long>(x.nnz()));
    char dens_buf[32];
    std::snprintf(dens_buf, sizeof(dens_buf), "%.2e",
                  static_cast<double>(x.nnz()) / capacity);
    table.print_row({d.name, nnz_buf, std::to_string(x.dim(0)),
                     std::to_string(x.dim(1)), std::to_string(x.dim(2)),
                     dens_buf, d.paper_analogue});
  }

  std::printf("\nSlice-popularity skew (power-law check, mode-0 top slice vs "
              "median):\n");
  TablePrinter skew({"Dataset", "max slice nnz", "median slice nnz"},
                    {12, 16, 18});
  skew.print_header();
  for (const NamedDataset& d : DatasetCache::instance().descriptors()) {
    const CooTensor& x = DatasetCache::instance().coo(d.name);
    auto counts = x.slice_nnz(0);
    std::sort(counts.begin(), counts.end());
    const offset_t max = counts.back();
    const offset_t med = counts[counts.size() / 2];
    skew.print_row({d.name, std::to_string(max), std::to_string(med)});
  }
  return 0;
}
