#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "parallel/runtime.hpp"
#include "util/error.hpp"

namespace aoadmm::bench {
namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double out = std::strtod(v, &end);
  return end != v ? out : fallback;
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long out = std::strtol(v, &end, 10);
  return end != v ? out : fallback;
}

}  // namespace

real_t bench_scale() {
  return static_cast<real_t>(env_double("AOADMM_BENCH_SCALE", 0.25));
}

rank_t bench_rank() {
  return static_cast<rank_t>(env_long("AOADMM_BENCH_RANK", 16));
}

unsigned bench_max_outer(unsigned fallback) {
  return static_cast<unsigned>(
      env_long("AOADMM_BENCH_MAX_OUTER", static_cast<long>(fallback)));
}

std::vector<int> bench_thread_sweep() {
  const long max_env = env_long("AOADMM_BENCH_MAX_THREADS", 0);
  int max_t = max_env > 0 ? static_cast<int>(max_env)
                          : static_cast<int>(std::thread::hardware_concurrency());
  if (max_t < 1) {
    max_t = 1;
  }
  std::vector<int> sweep;
  for (int t = 1; t <= max_t; t *= 2) {
    sweep.push_back(t);
  }
  if (sweep.back() != max_t) {
    sweep.push_back(max_t);
  }
  return sweep;
}

void install_metrics_sidecar() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("AOADMM_BENCH_METRICS_JSON");
    if (path == nullptr || *path == '\0') {
      return;
    }
    // atexit handlers take no arguments; park the path in static storage.
    static std::string sidecar_path;
    sidecar_path = path;
    std::atexit([] {
      std::ofstream out(sidecar_path);
      if (out) {
        obs::MetricsRegistry::global().write_json(out);
      }
    });
  });
}

DatasetCache& DatasetCache::instance() {
  static DatasetCache cache;
  install_metrics_sidecar();
  return cache;
}

const CooTensor& DatasetCache::coo(const std::string& name) {
  auto it = coo_.find(name);
  if (it == coo_.end()) {
    const NamedDataset d = frostt_standin(name, bench_scale());
    std::fprintf(stderr, "[bench] generating %s (nnz=%llu)...\n", name.c_str(),
                 static_cast<unsigned long long>(d.spec.nnz));
    it = coo_.emplace(name, make_synthetic(d.spec)).first;
  }
  return it->second;
}

const CsfSet& DatasetCache::csf(const std::string& name) {
  auto it = csf_.find(name);
  if (it == csf_.end()) {
    it = csf_.emplace(name, CsfSet(coo(name))).first;
  }
  return it->second;
}

std::vector<NamedDataset> DatasetCache::descriptors() const {
  return frostt_standins(bench_scale());
}

CpdOptions default_cpd_options() {
  CpdOptions opts;
  opts.rank = bench_rank();
  opts.tolerance = 1e-6;  // paper §V.A
  opts.max_outer_iterations = bench_max_outer(200);
  opts.admm.tolerance = 1e-2;
  // AO-ADMM runs few inner iterations per update (warm starts make the
  // subproblems easy; cf. Huang et al. and bench_ablation_inner_iters).
  opts.admm.max_iterations = 5;
  opts.admm.block_size = 50;  // paper §IV.B
  opts.seed = 4242;
  return opts;
}

SyntheticSpec zipf_workload(std::size_t order, real_t alpha) {
  SyntheticSpec spec;
  switch (order) {
    case 3:
      // Strong mode-length skew + low density: the resolve_auto_kernel
      // regime that routes order-3 ONEMODE sets to kAlto (fiber splitting
      // degenerates; the linearized stream stays evenly partitionable).
      spec.dims = {30000, 400, 300};
      spec.nnz = 400000;
      break;
    case 4:
      spec.dims = {800, 700, 600, 500};
      spec.nnz = 300000;
      break;
    case 5:
      spec.dims = {220, 190, 160, 140, 120};
      spec.nnz = 250000;
      break;
    default:
      throw InvalidArgument("zipf_workload: order must be 3, 4 or 5");
  }
  spec.nnz = static_cast<offset_t>(static_cast<real_t>(spec.nnz) *
                                   bench_scale());
  spec.zipf_alpha = {alpha};
  spec.true_rank = 8;
  spec.seed = 20260809 + static_cast<std::uint64_t>(order);
  return spec;
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {}

void TablePrinter::print_header() const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    std::printf("%-*s", widths_[i], headers_[i].c_str());
  }
  std::printf("\n");
  int total = 0;
  for (const int w : widths_) {
    total += w;
  }
  for (int i = 0; i < total; ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

void TablePrinter::print_row(const std::vector<std::string>& cells) const {
  for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s", widths_[i], cells[i].c_str());
  }
  std::printf("\n");
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

void print_banner(const std::string& experiment, const std::string& summary) {
  install_metrics_sidecar();
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", summary.c_str());
  std::printf("workloads: synthetic FROSTT stand-ins (scale=%.3g, rank=%u, "
              "threads<=%d)\n",
              static_cast<double>(bench_scale()),
              static_cast<unsigned>(bench_rank()), max_threads());
  std::printf("shape (who wins / crossovers) is the reproduction target, not "
              "absolute seconds.\n");
  std::printf("================================================================\n");
}

}  // namespace aoadmm::bench
