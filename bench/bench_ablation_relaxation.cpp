// Ablation: ADMM over-relaxation (Boyd et al. §3.4.3). The paper's
// Algorithm 1 is plain ADMM; this harness measures how much the standard
// α-relaxation extension buys on the full constrained CPD.
#include <cstdio>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Ablation — ADMM over-relaxation",
               "rank-scaled non-negative CPD under alpha in {1.0, 1.5, "
               "1.8}; fixed outer iterations");

  const real_t alphas[] = {1.0, 1.5, 1.8};
  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};

  TablePrinter table({"Dataset", "alpha", "time(s)", "final err",
                      "inner iters"},
                     {12, 8, 10, 12, 13});
  table.print_header();

  for (const std::string name : {"reddit-s", "nell-s"}) {
    const CsfSet& csf = DatasetCache::instance().csf(name);
    for (const real_t alpha : alphas) {
      CpdOptions opts = default_cpd_options();
      opts.max_outer_iterations = bench_max_outer(10);
      opts.tolerance = 0;
      opts.admm.max_iterations = 25;
      opts.admm.relaxation = alpha;
      const CpdResult r = cpd_aoadmm(csf, opts, {&nonneg, 1});
      table.print_row({name, TablePrinter::fmt(alpha, 1),
                       TablePrinter::fmt(r.times.total_seconds, 3),
                       TablePrinter::fmt(r.relative_error, 6),
                       std::to_string(r.total_inner_iterations)});
    }
  }

  std::printf("\nexpectation: alpha ~1.5-1.8 reduces inner iterations (and "
              "often total time) at matched quality.\n");
  return 0;
}
