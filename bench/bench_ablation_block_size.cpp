// Ablation (paper §IV.B / future work §VI): block-size selection for
// blocked ADMM. The paper reports 50 rows as the empirical sweet spot
// between convergence benefit (small blocks) and per-block overheads
// (function calls, instruction cache) — this harness sweeps the knob.
#include <cstdio>

#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Ablation — blocked-ADMM block size",
               "time/quality across block sizes; paper picked 50 rows "
               "empirically, B=rows(one block) degenerates to the baseline "
               "convergence behaviour");

  const std::size_t block_sizes[] = {1, 8, 50, 256, 4096};
  CpdOptions common = default_cpd_options();
  common.max_outer_iterations = bench_max_outer(10);
  common.tolerance = 0;
  common.admm.max_iterations = 25;
  common.variant = AdmmVariant::kBlocked;
  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};

  TablePrinter table(
      {"Dataset", "block", "time(s)", "final err", "row-iters"},
      {12, 8, 10, 12, 14});
  table.print_header();

  for (const std::string name : {"reddit-s", "nell-s"}) {
    const CsfSet& csf = DatasetCache::instance().csf(name);
    for (const std::size_t b : block_sizes) {
      CpdOptions opts = common;
      opts.admm.block_size = b;
      const CpdResult r = cpd_aoadmm(csf, opts, {&nonneg, 1});
      table.print_row({name, std::to_string(b),
                       TablePrinter::fmt(r.times.total_seconds, 3),
                       TablePrinter::fmt(r.relative_error, 6),
                       std::to_string(r.total_row_iterations)});
    }
  }

  std::printf("\nexpectation: small blocks minimize row-iterations (work); "
              "very small blocks pay per-block overhead; ~50 balances.\n");
  return 0;
}
