// Shared infrastructure for the paper-reproduction benchmarks: the dataset
// registry (FROSTT stand-ins, cached per process), environment-variable
// scaling knobs, and fixed-width table printing that mirrors the paper's
// tables.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/cpd.hpp"
#include "tensor/coo.hpp"
#include "tensor/csf.hpp"
#include "tensor/synthetic.hpp"

namespace aoadmm::bench {

/// Workload-size multiplier, env AOADMM_BENCH_SCALE (default 0.25 — sized
/// for a single-core container; raise toward 1.0 on a real workstation).
real_t bench_scale();

/// Rank used by the headline benchmarks, env AOADMM_BENCH_RANK (default 16,
/// the scaled analogue of the paper's rank 50).
rank_t bench_rank();

/// Outer-iteration cap, env AOADMM_BENCH_MAX_OUTER (default varies per
/// harness; this returns the override or `fallback`).
unsigned bench_max_outer(unsigned fallback);

/// Thread counts to sweep for the scaling figures: {1, 2, 4, ...} up to
/// env AOADMM_BENCH_MAX_THREADS (default: hardware concurrency).
std::vector<int> bench_thread_sweep();

/// Lazily generated, process-cached dataset instances.
class DatasetCache {
 public:
  /// The tensor for a named stand-in at bench_scale().
  const CooTensor& coo(const std::string& name);
  /// Its CSF compilation (built once).
  const CsfSet& csf(const std::string& name);
  /// All four stand-in descriptors at bench_scale().
  std::vector<NamedDataset> descriptors() const;

  static DatasetCache& instance();

 private:
  std::map<std::string, CooTensor> coo_;
  std::map<std::string, CsfSet> csf_;
};

/// Default CPD options shared by the harnesses (rank/tolerances per paper,
/// iteration caps scaled for the container).
CpdOptions default_cpd_options();

/// Power-law MTTKRP workload for the kernel head-to-head suite
/// (bench_mttkrp_kernels): `order` in {3, 4, 5} with per-mode Zipf
/// exponent `alpha` (default 1.3 — strong popularity skew, the regime
/// where linearized/cached kernels separate from the plain tree walk).
/// Non-zero counts scale with bench_scale(); deterministic per
/// (order, alpha). Dims stay within the 64-bit ALTO code budget.
SyntheticSpec zipf_workload(std::size_t order, real_t alpha = 1.3);

/// Fixed-width table printing.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths);
  void print_header() const;
  void print_row(const std::vector<std::string>& cells) const;
  static std::string fmt(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// Banner with the experiment id and the substitution notice.
void print_banner(const std::string& experiment, const std::string& summary);

/// If env AOADMM_BENCH_METRICS_JSON names a path, registers (once per
/// process) an atexit hook that dumps the global metric registry there as
/// JSON — a machine-readable sidecar next to every harness's table output.
/// print_banner() and DatasetCache::instance() call this, so every bench
/// binary gets the hook without touching its main().
void install_metrics_sidecar();

}  // namespace aoadmm::bench
