// Ablation (library extension): least-squares-over-all-cells CPD
// (cpd_aoadmm; missing = zero) vs observed-only CPD (cpd_wopt; missing =
// unknown) as the sampling density of a planted low-rank tensor varies.
// Reports training fit and held-out RMSE: the observed-only objective
// should dominate on sparsely sampled data and the gap should close as the
// tensor approaches fully observed.
#include <cstdio>

#include "core/eval.hpp"
#include "core/wcpd.hpp"
#include "tensor/transform.hpp"
#include "common.hpp"

using namespace aoadmm;
using namespace aoadmm::bench;

int main() {
  print_banner("Ablation — LS objective vs observed-only objective",
               "planted rank-4 tensor at varying sampling density; 20% "
               "holdout; lower held-out RMSE is better");

  const real_t fills[] = {0.05, 0.15, 0.40, 0.80};
  const std::vector<index_t> dims{40, 35, 30};
  const double capacity = 40.0 * 35.0 * 30.0;

  TablePrinter table({"fill", "objective", "train err", "holdout RMSE",
                      "time(s)"},
                     {8, 12, 12, 14, 10});
  table.print_header();

  for (const real_t fill : fills) {
    SyntheticSpec spec;
    spec.dims = dims;
    spec.nnz = static_cast<offset_t>(capacity * fill);
    spec.true_rank = 4;
    spec.noise = 0.05;
    spec.zipf_alpha = {0.0};
    spec.seed = 77;
    const CooTensor x = make_synthetic(spec);
    Rng rng(78);
    const TrainTestSplit split = split_train_test(x, 0.2, rng);
    const CsfSet csf(split.train);
    const ConstraintSpec nonneg{ConstraintKind::kNonNegative};

    {
      CpdOptions opts = default_cpd_options();
      opts.rank = 6;
      opts.max_outer_iterations = bench_max_outer(40);
      const CpdResult r = cpd_aoadmm(csf, opts, {&nonneg, 1});
      const PredictionMetrics m = evaluate_predictions(split.test,
                                                       r.factors);
      table.print_row({TablePrinter::pct(fill, 0), "ls",
                       TablePrinter::fmt(r.relative_error, 4),
                       TablePrinter::fmt(m.rmse, 4),
                       TablePrinter::fmt(r.times.total_seconds, 3)});
    }
    {
      WcpdOptions opts;
      opts.rank = 6;
      opts.max_outer_iterations = bench_max_outer(40);
      opts.ridge = 0.01;
      const WcpdResult r = cpd_wopt(csf, opts, {&nonneg, 1});
      const PredictionMetrics m = evaluate_predictions(split.test,
                                                       r.factors);
      table.print_row({TablePrinter::pct(fill, 0), "observed",
                       TablePrinter::fmt(r.observed_relative_error, 4),
                       TablePrinter::fmt(m.rmse, 4),
                       TablePrinter::fmt(r.total_seconds, 3)});
    }
  }

  std::printf("\nexpectation: observed-only wins at low fill (missing != "
              "zero); the objectives converge as fill approaches 100%%.\n");
  return 0;
}
