# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_recommender "/root/repo/build/examples/recommender")
set_tests_properties(example_recommender PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_anomaly "/root/repo/build/examples/network_anomaly")
set_tests_properties(example_network_anomaly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topic_model "/root/repo/build/examples/topic_model")
set_tests_properties(example_topic_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rank_selection "/root/repo/build/examples/rank_selection")
set_tests_properties(example_rank_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tensor_tool "sh" "-c" "      ./tensor_tool generate --out tt_test.tns --dims 40x30x20 --nnz 2000 &&       ./tensor_tool stats tt_test.tns &&       ./tensor_tool convert tt_test.tns tt_test.bin &&       ./tensor_tool cpd tt_test.bin --rank 4 --max-outer 10           --constraint nnl1 --lambda 0.05 --format auto           --save-factors tt_model --trace tt_trace.csv &&       ./tensor_tool cpd tt_test.bin --rank 4 --max-outer 10           --objective observed &&       rm -f tt_test.tns tt_test.bin tt_trace.csv tt_model.mode*.mat")
set_tests_properties(example_tensor_tool PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
