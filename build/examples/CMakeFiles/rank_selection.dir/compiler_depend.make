# Empty compiler generated dependencies file for rank_selection.
# This may be replaced when dependencies are built.
