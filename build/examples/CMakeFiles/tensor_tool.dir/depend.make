# Empty dependencies file for tensor_tool.
# This may be replaced when dependencies are built.
