file(REMOVE_RECURSE
  "CMakeFiles/tensor_tool.dir/tensor_tool.cpp.o"
  "CMakeFiles/tensor_tool.dir/tensor_tool.cpp.o.d"
  "tensor_tool"
  "tensor_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
