file(REMOVE_RECURSE
  "CMakeFiles/topic_model.dir/topic_model.cpp.o"
  "CMakeFiles/topic_model.dir/topic_model.cpp.o.d"
  "topic_model"
  "topic_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
