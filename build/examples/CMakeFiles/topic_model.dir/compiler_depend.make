# Empty compiler generated dependencies file for topic_model.
# This may be replaced when dependencies are built.
