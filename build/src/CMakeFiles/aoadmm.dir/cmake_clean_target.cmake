file(REMOVE_RECURSE
  "libaoadmm.a"
)
