
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admm.cpp" "src/CMakeFiles/aoadmm.dir/core/admm.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/admm.cpp.o.d"
  "/root/repo/src/core/admm_blocked.cpp" "src/CMakeFiles/aoadmm.dir/core/admm_blocked.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/admm_blocked.cpp.o.d"
  "/root/repo/src/core/als.cpp" "src/CMakeFiles/aoadmm.dir/core/als.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/als.cpp.o.d"
  "/root/repo/src/core/corcondia.cpp" "src/CMakeFiles/aoadmm.dir/core/corcondia.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/corcondia.cpp.o.d"
  "/root/repo/src/core/cpd.cpp" "src/CMakeFiles/aoadmm.dir/core/cpd.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/cpd.cpp.o.d"
  "/root/repo/src/core/eval.cpp" "src/CMakeFiles/aoadmm.dir/core/eval.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/eval.cpp.o.d"
  "/root/repo/src/core/kruskal.cpp" "src/CMakeFiles/aoadmm.dir/core/kruskal.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/kruskal.cpp.o.d"
  "/root/repo/src/core/prox.cpp" "src/CMakeFiles/aoadmm.dir/core/prox.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/prox.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/CMakeFiles/aoadmm.dir/core/trace.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/trace.cpp.o.d"
  "/root/repo/src/core/wcpd.cpp" "src/CMakeFiles/aoadmm.dir/core/wcpd.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/wcpd.cpp.o.d"
  "/root/repo/src/core/workspace.cpp" "src/CMakeFiles/aoadmm.dir/core/workspace.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/core/workspace.cpp.o.d"
  "/root/repo/src/la/blas.cpp" "src/CMakeFiles/aoadmm.dir/la/blas.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/la/blas.cpp.o.d"
  "/root/repo/src/la/cholesky.cpp" "src/CMakeFiles/aoadmm.dir/la/cholesky.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/la/cholesky.cpp.o.d"
  "/root/repo/src/la/khatri_rao.cpp" "src/CMakeFiles/aoadmm.dir/la/khatri_rao.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/la/khatri_rao.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/CMakeFiles/aoadmm.dir/la/matrix.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/la/matrix.cpp.o.d"
  "/root/repo/src/la/matrix_io.cpp" "src/CMakeFiles/aoadmm.dir/la/matrix_io.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/la/matrix_io.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp.cpp" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp_coo.cpp" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_coo.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_coo.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp_csf.cpp" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_csf.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_csf.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp_csr.cpp" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_csr.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_csr.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp_hybrid.cpp" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_hybrid.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_hybrid.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp_nonroot.cpp" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_nonroot.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_nonroot.cpp.o.d"
  "/root/repo/src/mttkrp/mttkrp_tiled.cpp" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_tiled.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/mttkrp/mttkrp_tiled.cpp.o.d"
  "/root/repo/src/parallel/partition.cpp" "src/CMakeFiles/aoadmm.dir/parallel/partition.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/parallel/partition.cpp.o.d"
  "/root/repo/src/parallel/runtime.cpp" "src/CMakeFiles/aoadmm.dir/parallel/runtime.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/parallel/runtime.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/aoadmm.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/density.cpp" "src/CMakeFiles/aoadmm.dir/sparse/density.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/sparse/density.cpp.o.d"
  "/root/repo/src/sparse/hybrid.cpp" "src/CMakeFiles/aoadmm.dir/sparse/hybrid.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/sparse/hybrid.cpp.o.d"
  "/root/repo/src/tensor/compact.cpp" "src/CMakeFiles/aoadmm.dir/tensor/compact.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/tensor/compact.cpp.o.d"
  "/root/repo/src/tensor/coo.cpp" "src/CMakeFiles/aoadmm.dir/tensor/coo.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/tensor/coo.cpp.o.d"
  "/root/repo/src/tensor/csf.cpp" "src/CMakeFiles/aoadmm.dir/tensor/csf.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/tensor/csf.cpp.o.d"
  "/root/repo/src/tensor/io.cpp" "src/CMakeFiles/aoadmm.dir/tensor/io.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/tensor/io.cpp.o.d"
  "/root/repo/src/tensor/matricize.cpp" "src/CMakeFiles/aoadmm.dir/tensor/matricize.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/tensor/matricize.cpp.o.d"
  "/root/repo/src/tensor/synthetic.cpp" "src/CMakeFiles/aoadmm.dir/tensor/synthetic.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/tensor/synthetic.cpp.o.d"
  "/root/repo/src/tensor/transform.cpp" "src/CMakeFiles/aoadmm.dir/tensor/transform.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/tensor/transform.cpp.o.d"
  "/root/repo/src/util/aligned.cpp" "src/CMakeFiles/aoadmm.dir/util/aligned.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/util/aligned.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/aoadmm.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/util/log.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/aoadmm.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/util/options.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/aoadmm.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/aoadmm.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/aoadmm.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/aoadmm.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
