# Empty compiler generated dependencies file for aoadmm.
# This may be replaced when dependencies are built.
