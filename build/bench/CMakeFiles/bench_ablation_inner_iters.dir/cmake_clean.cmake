file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inner_iters.dir/bench_ablation_inner_iters.cpp.o"
  "CMakeFiles/bench_ablation_inner_iters.dir/bench_ablation_inner_iters.cpp.o.d"
  "bench_ablation_inner_iters"
  "bench_ablation_inner_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inner_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
