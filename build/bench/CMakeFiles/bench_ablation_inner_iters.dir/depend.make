# Empty dependencies file for bench_ablation_inner_iters.
# This may be replaced when dependencies are built.
