# Empty compiler generated dependencies file for bench_table2_sparse_factors.
# This may be replaced when dependencies are built.
