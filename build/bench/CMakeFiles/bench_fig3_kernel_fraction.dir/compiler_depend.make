# Empty compiler generated dependencies file for bench_fig3_kernel_fraction.
# This may be replaced when dependencies are built.
