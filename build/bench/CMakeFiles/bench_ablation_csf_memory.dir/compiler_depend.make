# Empty compiler generated dependencies file for bench_ablation_csf_memory.
# This may be replaced when dependencies are built.
