# Empty dependencies file for bench_fig5_blocked_scaling.
# This may be replaced when dependencies are built.
