file(REMOVE_RECURSE
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_auto_format.cpp.o"
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_auto_format.cpp.o.d"
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_mttkrp.cpp.o"
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_mttkrp.cpp.o.d"
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_mttkrp_nonroot.cpp.o"
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_mttkrp_nonroot.cpp.o.d"
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_mttkrp_tiled.cpp.o"
  "CMakeFiles/test_mttkrp.dir/mttkrp/test_mttkrp_tiled.cpp.o.d"
  "test_mttkrp"
  "test_mttkrp.pdb"
  "test_mttkrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
