file(REMOVE_RECURSE
  "CMakeFiles/test_sparse.dir/sparse/test_csr.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_csr.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_density.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_density.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_hybrid.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_hybrid.cpp.o.d"
  "test_sparse"
  "test_sparse.pdb"
  "test_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
