
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor/test_compact.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/test_compact.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_compact.cpp.o.d"
  "/root/repo/tests/tensor/test_coo.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/test_coo.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_coo.cpp.o.d"
  "/root/repo/tests/tensor/test_csf.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/test_csf.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_csf.cpp.o.d"
  "/root/repo/tests/tensor/test_io.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_io.cpp.o.d"
  "/root/repo/tests/tensor/test_matricize.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/test_matricize.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_matricize.cpp.o.d"
  "/root/repo/tests/tensor/test_synthetic.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_synthetic.cpp.o.d"
  "/root/repo/tests/tensor/test_transform.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/test_transform.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aoadmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
