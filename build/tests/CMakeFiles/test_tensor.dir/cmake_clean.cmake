file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/tensor/test_compact.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/test_compact.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_coo.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/test_coo.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_csf.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/test_csf.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_io.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/test_io.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_matricize.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/test_matricize.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_synthetic.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/test_synthetic.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_transform.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/test_transform.cpp.o.d"
  "test_tensor"
  "test_tensor.pdb"
  "test_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
