file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_admm.cpp.o"
  "CMakeFiles/test_core.dir/core/test_admm.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_corcondia.cpp.o"
  "CMakeFiles/test_core.dir/core/test_corcondia.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cpd.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cpd.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_eval.cpp.o"
  "CMakeFiles/test_core.dir/core/test_eval.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_kruskal.cpp.o"
  "CMakeFiles/test_core.dir/core/test_kruskal.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_prox.cpp.o"
  "CMakeFiles/test_core.dir/core/test_prox.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_wcpd.cpp.o"
  "CMakeFiles/test_core.dir/core/test_wcpd.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_workspace.cpp.o"
  "CMakeFiles/test_core.dir/core/test_workspace.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
