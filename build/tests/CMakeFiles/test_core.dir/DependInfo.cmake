
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_admm.cpp" "tests/CMakeFiles/test_core.dir/core/test_admm.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_admm.cpp.o.d"
  "/root/repo/tests/core/test_corcondia.cpp" "tests/CMakeFiles/test_core.dir/core/test_corcondia.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_corcondia.cpp.o.d"
  "/root/repo/tests/core/test_cpd.cpp" "tests/CMakeFiles/test_core.dir/core/test_cpd.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cpd.cpp.o.d"
  "/root/repo/tests/core/test_eval.cpp" "tests/CMakeFiles/test_core.dir/core/test_eval.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_eval.cpp.o.d"
  "/root/repo/tests/core/test_kruskal.cpp" "tests/CMakeFiles/test_core.dir/core/test_kruskal.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_kruskal.cpp.o.d"
  "/root/repo/tests/core/test_prox.cpp" "tests/CMakeFiles/test_core.dir/core/test_prox.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_prox.cpp.o.d"
  "/root/repo/tests/core/test_trace.cpp" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "/root/repo/tests/core/test_wcpd.cpp" "tests/CMakeFiles/test_core.dir/core/test_wcpd.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_wcpd.cpp.o.d"
  "/root/repo/tests/core/test_workspace.cpp" "tests/CMakeFiles/test_core.dir/core/test_workspace.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_workspace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aoadmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
