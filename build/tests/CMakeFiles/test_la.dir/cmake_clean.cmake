file(REMOVE_RECURSE
  "CMakeFiles/test_la.dir/la/test_blas.cpp.o"
  "CMakeFiles/test_la.dir/la/test_blas.cpp.o.d"
  "CMakeFiles/test_la.dir/la/test_cholesky.cpp.o"
  "CMakeFiles/test_la.dir/la/test_cholesky.cpp.o.d"
  "CMakeFiles/test_la.dir/la/test_khatri_rao.cpp.o"
  "CMakeFiles/test_la.dir/la/test_khatri_rao.cpp.o.d"
  "CMakeFiles/test_la.dir/la/test_matrix.cpp.o"
  "CMakeFiles/test_la.dir/la/test_matrix.cpp.o.d"
  "CMakeFiles/test_la.dir/la/test_matrix_io.cpp.o"
  "CMakeFiles/test_la.dir/la/test_matrix_io.cpp.o.d"
  "test_la"
  "test_la.pdb"
  "test_la[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
