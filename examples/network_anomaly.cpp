// Network anomaly detection (the paper's cybersecurity motivation):
// factorize a source x destination x time-window traffic tensor with
// non-negativity, then flag windows whose traffic is poorly explained by
// the low-rank "normal behaviour" model.
//
// The synthetic workload has stable background flows (a few services talk
// to many clients every window) plus an injected exfiltration burst — one
// source suddenly touching many destinations in a short span of windows.
//
// Run: ./network_anomaly [--hosts 256] [--windows 48] [--rank 6]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cpd.hpp"
#include "tensor/coo.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

using namespace aoadmm;

namespace {

constexpr index_t kAnomalySource = 7;

CooTensor make_traffic(index_t hosts, index_t windows, index_t anomaly_start,
                       index_t anomaly_len, Rng& rng) {
  CooTensor x({hosts, hosts, windows});
  // Background: 8 "server" sources each talk to ~1/4 of hosts every window
  // with stable volume.
  const index_t servers = 8;
  for (index_t w = 0; w < windows; ++w) {
    for (index_t s = 0; s < servers; ++s) {
      const index_t src = s * (hosts / servers);
      for (index_t d = 0; d < hosts; d += 4) {
        const index_t dst = (d + s) % hosts;
        const index_t coord[3] = {src, dst, w};
        x.add({coord, 3}, 10.0 + 2.0 * rng.uniform());
      }
    }
    // Sparse peer-to-peer chatter.
    for (int k = 0; k < static_cast<int>(hosts) / 2; ++k) {
      const auto src = static_cast<index_t>(rng.uniform_index(hosts));
      const auto dst = static_cast<index_t>(rng.uniform_index(hosts));
      const index_t coord[3] = {src, dst, w};
      x.add({coord, 3}, 1.0 + rng.uniform());
    }
  }
  // Injected anomaly: one quiet host fans out to hundreds of destinations
  // in a narrow span of windows.
  for (index_t w = anomaly_start; w < anomaly_start + anomaly_len; ++w) {
    for (index_t d = 0; d < hosts; d += 2) {
      const index_t coord[3] = {kAnomalySource, d, w};
      x.add({coord, 3}, 25.0 + 5.0 * rng.uniform());
    }
  }
  x.deduplicate();
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto hosts = static_cast<index_t>(opts.get_int("hosts", 256));
  const auto windows = static_cast<index_t>(opts.get_int("windows", 48));
  const auto rank = static_cast<rank_t>(opts.get_int("rank", 6));
  const index_t anomaly_start = windows / 2;
  const index_t anomaly_len = 3;

  Rng rng(31337);
  const CooTensor x =
      make_traffic(hosts, windows, anomaly_start, anomaly_len, rng);
  std::printf("traffic tensor: %u x %u hosts x %u windows, %llu flows\n",
              hosts, hosts, windows,
              static_cast<unsigned long long>(x.nnz()));
  std::printf("injected anomaly: source %u fanning out in windows "
              "[%u, %u)\n\n",
              kAnomalySource, anomaly_start, anomaly_start + anomaly_len);

  const CsfSet csf(x);
  CpdOptions cpd_opts;
  cpd_opts.rank = rank;
  cpd_opts.max_outer_iterations = 40;
  cpd_opts.tolerance = 1e-5;
  const ConstraintSpec nonneg{ConstraintKind::kNonNegative};
  const CpdResult r = cpd_aoadmm(csf, cpd_opts, {&nonneg, 1});
  std::printf("factorized: %u outer iterations, relative error %.4f\n\n",
              r.outer_iterations, static_cast<double>(r.relative_error));

  // Anomaly score per window: the residual mass of that window's slice —
  // traffic the normal-behaviour model fails to explain.
  std::vector<real_t> score(windows, 0);
  const Matrix& time_factor = r.factors[2];
  for (offset_t n = 0; n < x.nnz(); ++n) {
    const index_t s = x.index(0, n);
    const index_t d = x.index(1, n);
    const index_t w = x.index(2, n);
    real_t model = 0;
    for (std::size_t f = 0; f < rank; ++f) {
      model += r.factors[0](s, f) * r.factors[1](d, f) * time_factor(w, f);
    }
    const real_t resid = x.value(n) - model;
    score[w] += resid * resid;
  }

  // Rank windows by score.
  std::vector<index_t> order(windows);
  for (index_t w = 0; w < windows; ++w) {
    order[w] = w;
  }
  std::sort(order.begin(), order.end(),
            [&](index_t a, index_t b) { return score[a] > score[b]; });

  std::printf("top-5 anomalous windows by residual mass:\n");
  int flagged_in_burst = 0;
  for (int k = 0; k < 5; ++k) {
    const index_t w = order[k];
    const bool in_burst = w >= anomaly_start && w < anomaly_start + anomaly_len;
    std::printf("  window %-4u score %10.1f %s\n", w,
                static_cast<double>(score[w]),
                in_burst ? "<-- injected anomaly" : "");
    flagged_in_burst += in_burst ? 1 : 0;
  }

  std::printf("\ndetected %d/%u injected windows in the top-5.\n",
              flagged_in_burst, anomaly_len);
  return flagged_in_burst > 0 ? 0 : 1;
}
